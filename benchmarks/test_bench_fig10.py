"""Fig. 10 — monthly cloud cost of the five backup schemes.

Paper shape: AA-Dedupe is cheapest (container packing kills the
per-request cost that chunk-granular transfer pays; dedup kills the
storage/transfer cost that file-granular transfer pays).  The paper
quotes a 12–29 % saving; our synthetic workload yields a larger gap
because Avamar/SAM's per-chunk PUT counts dominate their bill — see
EXPERIMENTS.md for the accounting.
"""

from conftest import emit

from repro.metrics import Table


def test_fig10_cloud_cost(benchmark, figures):
    costs = benchmark.pedantic(lambda: figures.fig10_cost,
                               rounds=1, iterations=1)
    table = Table(["scheme", "storage $", "transfer $", "requests $",
                   "total $"],
                  title="Fig. 10: monthly cloud cost (April-2011 S3 "
                        "prices, paper-scale)")
    for scheme, breakdown in costs.items():
        table.add_row([scheme, breakdown.storage, breakdown.transfer,
                       breakdown.requests, breakdown.total])
    emit(table.render())

    totals = {s: b.total for s, b in costs.items()}
    # AA-Dedupe is the cheapest scheme overall.
    assert totals["AA-Dedupe"] == min(totals.values())
    # The paper's request-cost argument: file-granular schemes pay less
    # in requests than chunk-granular ones...
    assert costs["JungleDisk"].requests < costs["Avamar"].requests
    assert costs["BackupPC"].requests < costs["SAM"].requests
    # ...and container packing beats both.
    assert costs["AA-Dedupe"].requests < costs["JungleDisk"].requests
    # Storage+transfer ordering follows dedup effectiveness.
    assert costs["AA-Dedupe"].storage <= costs["BackupPC"].storage
    # At least the paper's 12 % saving against every other scheme.
    for other in ("JungleDisk", "BackupPC", "Avamar", "SAM"):
        assert totals["AA-Dedupe"] < 0.88 * totals[other]
