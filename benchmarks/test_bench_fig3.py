"""Fig. 3 — computational overhead of typical hash functions.

Two views are produced:

* the **modelled** execution times on the paper's 2.53 GHz laptop
  (WFC vs SC × Rabin/MD5/SHA-1 over a 60 MB dataset), which reproduce
  the figure's shape: time tracks data capacity, Rabin < MD5 < SHA-1;
* a **real microbenchmark** of this library's fingerprinter
  implementations on the current machine (pytest-benchmark rows).
"""

import numpy as np
import pytest
from conftest import emit

from repro.analysis import fig3_hash_overhead
from repro.hashing import get_hash
from repro.metrics import Table
from repro.util.units import MB


def test_fig3_modelled_overhead(benchmark):
    times = benchmark.pedantic(fig3_hash_overhead, rounds=1, iterations=1)
    table = Table(["chunking", "Rabin(12B)", "MD5(16B)", "SHA-1(20B)"],
                  title="Fig. 3: hash execution time on 60MB "
                        "(modelled, paper platform, seconds)")
    for chunking in ("wfc", "sc"):
        table.add_row([chunking.upper(),
                       f"{times[(chunking, 'rabin12')]:.2f}s",
                       f"{times[(chunking, 'md5')]:.2f}s",
                       f"{times[(chunking, 'sha1')]:.2f}s"])
    emit(table.render())
    for chunking in ("wfc", "sc"):
        assert times[(chunking, "rabin12")] < times[(chunking, "md5")] \
            < times[(chunking, "sha1")]
    # Capacity (not granularity) dominates: WFC ~= SC per hash.
    for h in ("rabin12", "md5", "sha1"):
        assert times[("sc", h)] < 1.4 * times[("wfc", h)]


@pytest.mark.parametrize("hash_name", ["rabin12", "md5", "sha1"])
def test_fig3_real_fingerprint_throughput(benchmark, hash_name):
    data = np.random.default_rng(3).integers(
        0, 256, size=1 * MB, dtype=np.uint8).tobytes()
    fingerprinter = get_hash(hash_name)
    digest = benchmark(fingerprinter.hash, data)
    assert len(digest) == fingerprinter.digest_size
