"""Fleet-scale directory bench — the million-client tiers under load.

Drives the global dedup directory with **100+ simulated clients**
(24 in smoke mode, see ``FLEET_SCALE_BENCH_SMOKE``) probing and
publishing through per-``(client, app)`` :class:`~repro.fleet.FleetIndex`
fronts in waves, the same epoch-barrier protocol the full
:class:`~repro.fleet.FleetService` uses — but without spinning up 100
complete backup engines, so the bench isolates *directory* cost.

Two arms over byte-identical workloads:

* **baseline** — the PR-3 directory shape: disk-backed shards
  (``bloom_fp_rate=None`` models the raw index: every descent pays
  binary-search disk probes) behind a plain LRU front;
* **scaled** — the same disk backing behind the new tiers: per-shard
  Bloom front absorbing cold misses, HPDedup-style locality cache, and
  consistent-hash splits rebalancing hot shards at epoch barriers.

Both arms are *exact* dedup (the filter has no false negatives over
the committed set), so the dedup ratio must match to the byte while
the backing ``disk_probes`` drop by at least 5x — that is the
ISSUE's acceptance bar, priced in server seek seconds via the paper's
disk model.  Rebalance determinism is asserted the hard way: the
scaled arm runs twice with different thread-pool sizes and the
committed content of every shard must be identical.

Set ``FLEET_SCALE_BENCH_SMOKE=1`` for the down-scaled CI configuration.
"""

from __future__ import annotations

import hashlib
import os
from concurrent.futures import ThreadPoolExecutor

from conftest import emit

from repro.fleet import FleetIndex, GlobalDedupDirectory
from repro.index import IndexEntry
from repro.index.disk import DiskIndex
from repro.metrics import Table
from repro.obs import Tracer
from repro.simulate.diskmodel import PAPER_DISK

SMOKE = bool(int(os.environ.get("FLEET_SCALE_BENCH_SMOKE", "0")))
CLIENTS = 24 if SMOKE else 120
WAVES = 4
ROUNDS = 2
APPS = ("doc", "media")
SHARED_PER_APP = 96 if SMOKE else 192     # corpus every client carries
PRIVATE_PER_ROUND = 12 if SMOKE else 24   # cold, never-shared chunks
SPLIT_ENTRIES = 300 if SMOKE else 1500
MEMTABLE = 128 if SMOKE else 256


def _fp(tag: str) -> bytes:
    return hashlib.sha1(tag.encode()).digest()


def _length(fp: bytes) -> int:
    return (fp[0] + 1) * 64  # deterministic per fingerprint


def _stream(rank: int, round_no: int, app: str):
    """One client's chunk stream for one session: the shared corpus
    (cross-client duplicates) then its private tail (cold chunks)."""
    fps = [_fp(f"shared/{app}/{i}") for i in range(SHARED_PER_APP)]
    fps += [_fp(f"private/{app}/{rank}/{round_no}/{i}")
            for i in range(PRIVATE_PER_ROUND)]
    return fps


def _run_arm(directory: GlobalDedupDirectory, max_workers: int):
    """Wave/epoch protocol over ``CLIENTS`` simulated clients."""
    indexes = {(rank, app): FleetIndex(directory, app, rank)
               for rank in range(CLIENTS) for app in APPS}
    seq = {rank: 0 for rank in range(CLIENTS)}

    def session(rank: int, round_no: int) -> None:
        for app in APPS:
            ix = indexes[(rank, app)]
            for fp in _stream(rank, round_no, app):
                if ix.lookup(fp) is None:
                    seq[rank] += 1
                    ix.insert(IndexEntry(
                        fingerprint=fp, container_id=rank,
                        offset=seq[rank], length=_length(fp)))
            ix.flush_publishes()

    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        for round_no in range(ROUNDS):
            for wave in range(WAVES):
                members = [r for r in range(CLIENTS) if r % WAVES == wave]
                futures = [pool.submit(session, rank, round_no)
                           for rank in members]
                for future in futures:
                    future.result()
                directory.commit_epoch()

    rows = directory.stats_rows()
    return {
        "entries": len(directory),
        "remote_hits": sum(ix.remote_hits for ix in indexes.values()),
        "adopted_bytes": sum(ix.adopted_bytes for ix in indexes.values()),
        "filter_absorbed": sum(ix.filter_absorbed
                               for ix in indexes.values()),
        "disk_probes": sum(r["disk_probes"] for r in rows),
        "batches": sum(r["batches"] for r in rows),
        "probes": sum(r["probes"] for r in rows),
        "filter_rejects": directory.filter_rejects,
        "rebalances": directory.rebalances,
        "migrated": directory.migrated_entries,
        "committed": {s.name: s.committed_entries()
                      for s in directory.shards()},
        "shards": len(directory.shards()),
    }


def _disk_factory(root):
    def factory(app, bucket):
        # bloom_fp_rate=None models the raw disk index: every descent
        # pays its binary-search probes (the PR-3 cost baseline).
        return DiskIndex(root / f"{app}-{bucket}",
                         memtable_limit=MEMTABLE, bloom_fp_rate=None)
    return factory


def _baseline_directory(root):
    return GlobalDedupDirectory(shards_per_app=2,
                                index_factory=_disk_factory(root),
                                cache_capacity=256)


def _scaled_directory(root, tracer=None):
    return GlobalDedupDirectory(shards_per_app=2,
                                index_factory=_disk_factory(root),
                                locality_capacity=256,
                                filter_capacity=4096,
                                shard_split_entries=SPLIT_ENTRIES,
                                tracer=tracer)


def test_fleet_scale_filter_and_locality_tiers(benchmark, tmp_path):
    tracer = Tracer()

    def run():
        base_dir = _baseline_directory(tmp_path / "base")
        scaled_dir = _scaled_directory(tmp_path / "scaled", tracer=tracer)
        try:
            base = _run_arm(base_dir, max_workers=8)
            scaled = _run_arm(scaled_dir, max_workers=8)
        finally:
            base_dir.close()
            scaled_dir.close()
        return base, scaled

    base, scaled = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(["arm", "shards", "disk probes", "seek s", "batches",
                   "filter rejects", "splits", "entries"],
                  title=f"fleet directory at {CLIENTS} clients")
    for name, arm in (("PR-3 baseline (disk+LRU)", base),
                      ("filter+locality+splits", scaled)):
        table.add_row([name, arm["shards"], arm["disk_probes"],
                       PAPER_DISK.random_io_seconds(arm["disk_probes"]),
                       arm["batches"], arm["filter_rejects"],
                       arm["rebalances"], arm["entries"]])
    emit(table.render())

    # A real fleet drove it.
    assert CLIENTS >= (24 if SMOKE else 100)

    # Equal dedup: both arms are exact, so committed entries and
    # cross-client adoption must match to the byte.
    assert scaled["entries"] == base["entries"] > 0
    assert scaled["remote_hits"] == base["remote_hits"] > 0
    assert scaled["adopted_bytes"] == base["adopted_bytes"] > 0

    # ISSUE acceptance: the filter front (plus locality cache) cuts the
    # backing's disk probes by at least 5x at that equal dedup ratio.
    assert base["disk_probes"] > 0
    assert scaled["disk_probes"] * 5 <= base["disk_probes"]

    # The tiers actually engaged: cold misses died in the filter (and
    # clients kept them out of their memos), splits rebalanced load.
    assert scaled["filter_rejects"] > 0
    assert scaled["filter_absorbed"] > 0
    assert scaled["rebalances"] > 0
    assert scaled["migrated"] > 0
    assert scaled["shards"] > len(APPS) * 2

    # Observability: the rebalance span and the filter counter flow
    # through the tracer.
    assert any(s.name == "fleet.rebalance" for s in tracer.spans())
    counters = tracer.metrics.snapshot()["counters"]
    assert counters.get("fleet_filter_rejects_total", 0) > 0


def test_fleet_scale_rebalance_determinism(benchmark, tmp_path):
    """Splits migrate entries at epoch barriers; committed content must
    be byte-identical no matter the thread-pool size."""

    def run():
        results = []
        for workers in (1, 8):
            directory = _scaled_directory(tmp_path / f"w{workers}")
            try:
                results.append(_run_arm(directory, max_workers=workers))
            finally:
                directory.close()
        return results

    serial, threaded = benchmark.pedantic(run, rounds=1, iterations=1)

    assert serial["rebalances"] == threaded["rebalances"] > 0
    assert serial["committed"].keys() == threaded["committed"].keys()
    assert serial["committed"] == threaded["committed"]
    assert serial["entries"] == threaded["entries"]
    assert serial["disk_probes"] == threaded["disk_probes"]
    emit(f"rebalance determinism held over {serial['shards']} shards, "
         f"{serial['rebalances']} splits, {serial['migrated']} entries "
         f"migrated")
