"""Ablation C — the intelligent (application-adaptive) chunking policy.

Runs the AA engine with its per-category policy table against three
degenerate policies (everything-WFC, everything-SC, everything-CDC) on
identical snapshots.  The adaptive table should match the best
effectiveness (~all-CDC/all-SC) while approaching the best throughput
(~all-WFC) — i.e. the best *efficiency*, which is the paper's thesis.
"""

from conftest import SCALE, emit

from repro.classify.policy import DedupPolicy
from repro.core import aa_dedupe_config
from repro.metrics import Table
from repro.trace.driver import run_paper_evaluation
from repro.util.units import KIB, format_bytes


def _fixed(name: str, chunker: str, hash_name: str, **params):
    return aa_dedupe_config(name=name, policy_table=None,
                            fixed_policy=DedupPolicy(chunker, hash_name,
                                                     params))


def test_adaptive_vs_fixed_chunking(benchmark, workload_snapshots):
    def run():
        schemes = [
            aa_dedupe_config(),
            _fixed("all-WFC", "wfc", "rabin12"),
            _fixed("all-SC", "sc", "md5", chunk_size=8 * KIB),
            _fixed("all-CDC", "cdc", "sha1", avg_size=8 * KIB,
                   min_size=2 * KIB, max_size=16 * KIB),
        ]
        return run_paper_evaluation(scale=SCALE,
                                    snapshots=workload_snapshots,
                                    schemes=schemes)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    up = result.scale_to_paper()
    table = Table(["policy", "stored", "mean DR", "mean DE"],
                  title="Ablation C: adaptive vs fixed chunking policy")
    summary = {}
    for name, run_ in result.runs.items():
        mean_dr = sum(r.stats.dedup_ratio for r in run_.sessions) / len(
            run_.sessions)
        summary[name] = (run_.total_uploaded(), mean_dr,
                         run_.mean_efficiency())
        table.add_row([name,
                       format_bytes(run_.total_uploaded() * up,
                                    decimal=True),
                       mean_dr,
                       format_bytes(run_.mean_efficiency(), decimal=True)
                       + "/s"])
    emit(table.render())

    stored = {n: v[0] for n, v in summary.items()}
    de = {n: v[2] for n, v in summary.items()}
    # The adaptive policy is strictly the most space-efficient.
    assert stored["AA-Dedupe"] == min(stored.values())
    # Whole-file-only dedup wastes gross space (no sub-file redundancy).
    assert stored["all-WFC"] > 2 * stored["AA-Dedupe"]
    # Uniform CDC is compute-bound: less than 60 % of AA's efficiency
    # *and* worse space (forced cuts lose VM-image duplicates).
    assert de["all-CDC"] < 0.6 * de["AA-Dedupe"]
    assert stored["all-CDC"] > 1.1 * stored["AA-Dedupe"]
    # Uniform SC is the strongest degenerate policy on this VM-heavy
    # workload (it is what AA itself picks for the dominant class), yet
    # it still stores measurably more and its DE edge stays small.
    assert stored["all-SC"] > 1.03 * stored["AA-Dedupe"]
    assert de["all-SC"] < 1.25 * de["AA-Dedupe"]
    # Pareto check: no degenerate policy beats AA on both axes at once.
    for name in ("all-WFC", "all-SC", "all-CDC"):
        assert stored[name] > stored["AA-Dedupe"] or \
            de[name] < de["AA-Dedupe"], name
