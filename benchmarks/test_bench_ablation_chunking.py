"""Ablation C — the intelligent (application-adaptive) chunking policy,
plus the fast-chunker head-to-head harness.

Part 1 runs the AA engine with its per-category policy table against
three degenerate policies (everything-WFC, everything-SC,
everything-CDC) on identical snapshots.  The adaptive table should match
the best effectiveness (~all-CDC/all-SC) while approaching the best
throughput (~all-WFC) — i.e. the best *efficiency*, which is the
paper's thesis.

Part 2 races every CDC-family boundary engine (Rabin, Gear, FastCDC,
SeqCDC — see docs/CHUNKING.md) on one versioned-document workload and
reports scan throughput next to the dedup ratio each engine achieves,
so a speedup that silently wrecks the paper's metric is caught here.
Set ``CHUNKER_BENCH_SMOKE=1`` to shrink the corpus for CI smoke runs.
"""

import hashlib
import os
import time

import numpy as np
from conftest import SCALE, emit

from repro.chunking import CDC_FAMILY
from repro.chunking.base import get_chunker
from repro.classify.policy import DedupPolicy
from repro.core import aa_dedupe_config
from repro.metrics import Table
from repro.trace.driver import run_paper_evaluation
from repro.util.units import KIB, format_bytes


def _fixed(name: str, chunker: str, hash_name: str, **params):
    return aa_dedupe_config(name=name, policy_table=None,
                            fixed_policy=DedupPolicy(chunker, hash_name,
                                                     params))


def test_adaptive_vs_fixed_chunking(benchmark, workload_snapshots):
    def run():
        schemes = [
            aa_dedupe_config(),
            _fixed("all-WFC", "wfc", "rabin12"),
            _fixed("all-SC", "sc", "md5", chunk_size=8 * KIB),
            _fixed("all-CDC", "cdc", "sha1", avg_size=8 * KIB,
                   min_size=2 * KIB, max_size=16 * KIB),
        ]
        return run_paper_evaluation(scale=SCALE,
                                    snapshots=workload_snapshots,
                                    schemes=schemes)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    up = result.scale_to_paper()
    table = Table(["policy", "stored", "mean DR", "mean DE"],
                  title="Ablation C: adaptive vs fixed chunking policy")
    summary = {}
    for name, run_ in result.runs.items():
        mean_dr = sum(r.stats.dedup_ratio for r in run_.sessions) / len(
            run_.sessions)
        summary[name] = (run_.total_uploaded(), mean_dr,
                         run_.mean_efficiency())
        table.add_row([name,
                       format_bytes(run_.total_uploaded() * up,
                                    decimal=True),
                       mean_dr,
                       format_bytes(run_.mean_efficiency(), decimal=True)
                       + "/s"])
    emit(table.render())

    stored = {n: v[0] for n, v in summary.items()}
    de = {n: v[2] for n, v in summary.items()}
    # The adaptive policy is strictly the most space-efficient.
    assert stored["AA-Dedupe"] == min(stored.values())
    # Whole-file-only dedup wastes gross space (no sub-file redundancy).
    assert stored["all-WFC"] > 2 * stored["AA-Dedupe"]
    # Uniform CDC is compute-bound: less than 60 % of AA's efficiency
    # *and* worse space (forced cuts lose VM-image duplicates).
    assert de["all-CDC"] < 0.6 * de["AA-Dedupe"]
    assert stored["all-CDC"] > 1.1 * stored["AA-Dedupe"]
    # Uniform SC is the strongest degenerate policy on this VM-heavy
    # workload (it is what AA itself picks for the dominant class), yet
    # it still stores measurably more and its DE edge stays small.
    assert stored["all-SC"] > 1.03 * stored["AA-Dedupe"]
    assert de["all-SC"] < 1.25 * de["AA-Dedupe"]
    # Pareto check: no degenerate policy beats AA on both axes at once.
    for name in ("all-WFC", "all-SC", "all-CDC"):
        assert stored[name] > stored["AA-Dedupe"] or \
            de[name] < de["AA-Dedupe"], name


# ---------------------------------------------------------------------------
# Fast-chunker head-to-head: scan throughput vs dedup ratio per engine.

_SMOKE = os.environ.get("CHUNKER_BENCH_SMOKE") == "1"


def _versioned_documents(docs, sessions, doc_kib, seed=2011):
    """Documents under light editing across backup sessions — the
    workload where boundary quality shows up as dedup ratio."""
    r = np.random.default_rng(seed)

    def edit(data):
        arr = bytearray(data)
        for _ in range(int(r.integers(2, 7))):
            pos = int(r.integers(0, max(1, len(arr) - 40)))
            arr[pos:pos + 24] = r.integers(0, 256, 24,
                                           dtype=np.uint8).tobytes()
        pos = int(r.integers(0, len(arr) + 1))
        patch = r.integers(0, 256, int(r.integers(16, 80)),
                           dtype=np.uint8).tobytes()
        return bytes(arr[:pos]) + patch + bytes(arr[pos:])

    current = [r.integers(0, 256, doc_kib * 1024, dtype=np.uint8).tobytes()
               for _ in range(docs)]
    versions = []
    for _ in range(sessions):
        versions.extend(current)
        current = [edit(doc) for doc in current]
    return versions


def _race_chunker(chunker, buffers):
    """(throughput MB/s, dedup ratio) for one engine on ``buffers``.

    The timed section is the boundary scan alone (``cut_points``) — the
    loop the fast family exists to accelerate; fingerprinting for the
    dedup ratio happens outside the clock.
    """
    total_bytes = sum(len(b) for b in buffers)
    start = time.perf_counter()
    all_cuts = [chunker.cut_points(data) for data in buffers]
    elapsed = time.perf_counter() - start

    seen = set()
    unique = 0
    for data, cuts in zip(buffers, all_cuts):
        prev = 0
        for cut in cuts:
            digest = hashlib.sha1(data[prev:cut]).digest()
            if digest not in seen:
                seen.add(digest)
                unique += cut - prev
            prev = cut
    return total_bytes / elapsed / 1e6, total_bytes / unique


def test_chunker_head_to_head():
    """Gear/FastCDC must beat the vectorized Rabin scan without giving
    up more than 5% dedup ratio; SeqCDC rides along for scale."""
    if _SMOKE:
        versions = _versioned_documents(docs=3, sessions=4, doc_kib=128)
    else:
        versions = _versioned_documents(docs=4, sessions=6, doc_kib=1024)

    results = {}
    table = Table(["chunker", "scan MB/s", "dedup ratio", "vs rabin"],
                  title="Fast-chunker head-to-head "
                        "(versioned-document workload)")
    for name in CDC_FAMILY:
        chunker = get_chunker(name)
        chunker.cut_points(versions[0])            # warm table caches
        results[name] = _race_chunker(chunker, versions)
    rabin_mbps, rabin_ratio = results["cdc"]
    for name in CDC_FAMILY:
        mbps, ratio = results[name]
        table.add_row([name, f"{mbps:.1f}", f"{ratio:.4f}",
                       f"{100.0 * ratio / rabin_ratio - 100.0:+.1f}%"])
    emit(table.render())

    for name in ("gear", "fastcdc"):
        mbps, ratio = results[name]
        assert mbps >= rabin_mbps, (name, mbps, rabin_mbps)
        assert ratio >= 0.95 * rabin_ratio, (name, ratio, rabin_ratio)
    # SeqCDC trades boundary quality bounds for raw scan speed; hold it
    # to the same ratio band so regressions surface, not to the
    # throughput floor (it clears that by an order of magnitude anyway).
    seq_mbps, seq_ratio = results["seqcdc"]
    assert seq_mbps >= rabin_mbps
    assert seq_ratio >= 0.95 * rabin_ratio
