"""Table 1 — chunk-level redundancy per application (after file-level
dedup), and Observation 4 (negligible cross-application sharing)."""

from conftest import emit

from repro.analysis import cross_application_sharing, table1_redundancy
from repro.metrics import Table
from repro.util.units import MB


def test_table1_per_application_redundancy(benchmark):
    rows = benchmark.pedantic(
        lambda: table1_redundancy(total_bytes=400 * MB),
        rounds=1, iterations=1)

    table = Table(["app", "dataset", "SC DR", "paper", "CDC DR", "paper "],
                  title="Table 1: sub-file redundancy by application")
    for r in rows:
        table.add_row([r.app, f"{r.dataset_bytes / 1e6:.0f}MB",
                       f"{r.sc_dr:.3f}", f"{r.paper_sc_dr:.3f}",
                       f"{r.cdc_dr:.3f}", f"{r.paper_cdc_dr:.3f}"])
    emit(table.render())

    by_app = {r.app: r for r in rows}
    # Compressed media: negligible sub-file redundancy (top rows).
    for app in ("avi", "mp3", "iso", "dmg", "rar", "jpg"):
        assert by_app[app].sc_dr < 1.03, app
    # Observation 3: SC >= CDC for VM images.
    assert by_app["vmdk"].sc_dr > by_app["vmdk"].cdc_dr
    assert abs(by_app["vmdk"].sc_dr - 1.286) < 0.12
    # Dynamic documents carry the real redundancy.
    assert by_app["doc"].cdc_dr > 1.12
    # CDC >= SC for insert-heavy documents (txt).
    assert by_app["txt"].cdc_dr >= by_app["txt"].sc_dr


def test_cross_application_sharing(benchmark):
    shared, total = benchmark.pedantic(
        lambda: cross_application_sharing(total_bytes=120 * MB),
        rounds=1, iterations=1)
    emit(f"Observation 4: {shared} chunks shared across applications of "
         f"{total} unique (paper: one 16 KB chunk in 41 GB)")
    assert shared <= 2
    assert total > 2000
