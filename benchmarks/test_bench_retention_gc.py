"""Ablation F — deletion support: retention + garbage collection.

Sec. III-F notes that "supporting deletion of files requires an
additional process in the background."  This bench runs six weekly
backups (real bytes), applies a keep-last-2 retention policy, collects
garbage, and measures what the background process achieves: reclaimed
cloud bytes, surviving-container utilisation, and — crucially — that
every retained session still restores bit-exactly.
"""

import pytest
from conftest import emit

from repro.cloud import InMemoryBackend
from repro.core import (
    BackupClient,
    RestoreClient,
    aa_dedupe_config,
    collect_garbage,
)
from repro.core import naming
from repro.core.retention import keep_last
from repro.metrics import Table
from repro.util.units import KIB, MB, format_bytes
from repro.workloads import (
    WorkloadGenerator,
    materialize_snapshot,
    snapshot_to_memory_source,
)

SESSIONS = 6
KEEP = 2


def test_retention_gc_cycle(benchmark):
    def run():
        generator = WorkloadGenerator(total_bytes=10 * MB, seed=66,
                                      max_mean_file_size=MB)
        snapshots = list(generator.sessions(SESSIONS))
        cloud = InMemoryBackend()
        client = BackupClient(cloud,
                              aa_dedupe_config(container_size=64 * KIB))
        for snap in snapshots:
            client.backup(snapshot_to_memory_source(snap))
        before = cloud.stored_bytes()
        retain = keep_last(range(SESSIONS), KEEP)
        report = collect_garbage(cloud, retain)
        after = cloud.stored_bytes()
        return snapshots, cloud, before, after, report, retain

    snapshots, cloud, before, after, report, retain = benchmark.pedantic(
        run, rounds=1, iterations=1)

    live = len(cloud.list(naming.CONTAINER_PREFIX))
    utilisations = []
    for cid, live_bytes in report.container_live_bytes.items():
        utilisations.append(min(1.0, live_bytes / (64 * KIB)))
    table = Table(["metric", "value"],
                  title=f"Ablation F: keep-last-{KEEP} retention over "
                        f"{SESSIONS} weekly sessions")
    table.add_row(["cloud bytes before GC", format_bytes(before)])
    table.add_row(["cloud bytes after GC", format_bytes(after)])
    table.add_row(["reclaimed", format_bytes(before - after)])
    table.add_row(["manifests deleted", report.deleted_manifests])
    table.add_row(["containers deleted", report.deleted_containers])
    table.add_row(["containers live", live])
    table.add_row(["mean live-container utilisation",
                   f"{sum(utilisations) / len(utilisations):.2f}"])
    emit(table.render())

    # GC reclaimed something and removed the right manifests.
    assert after < before
    assert report.deleted_manifests == SESSIONS - KEEP
    # Every retained session restores bit-exactly after the sweep.
    for sid in sorted(retain):
        restored, _ = RestoreClient(cloud).restore_to_memory(sid)
        assert restored == materialize_snapshot(snapshots[sid]), sid
    # Dropped sessions are really gone.
    with pytest.raises(Exception):
        RestoreClient(cloud).restore_to_memory(0)
