"""Service-layer bench: a multi-job declarative backup service end to end.

Drives ``repro.service`` the way an operator would: three heterogeneous
jobs (different schemes, chunkers and schedules) over one shared
backend for a simulated week, with both retention policy types running
real garbage collection along the way.  Reports per-job run counts,
dedup, retention churn and reclaimed bytes — and asserts the properties
the layer promises: bit-determinism across fresh invocations, every
retained session restoring bit-exactly, and cross-job liveness (one
job's retention never breaking another job's restores).

Set ``SERVICE_BENCH_SMOKE=1`` to shrink the horizon/corpora for CI.
"""

import os

from conftest import emit

from repro.cloud import InMemoryBackend, NamespacedBackend
from repro.core import RestoreClient
from repro.core.gc import session_catalog
from repro.core.retention import RetainLastN, RetainMaxAge
from repro.metrics import Table
from repro.service import (
    BackupService,
    IntervalSchedule,
    JobSpec,
    SyntheticJobSource,
)
from repro.service.spec import ServiceSpec
from repro.util.units import format_bytes

SMOKE = bool(int(os.environ.get("SERVICE_BENCH_SMOKE", "0")))
DAY = 86400.0
HORIZON = (2 if SMOKE else 7) * DAY
FILES = 3 if SMOKE else 6
FILE_KIB = 16 if SMOKE else 48


def _spec() -> ServiceSpec:
    return ServiceSpec(jobs=(
        JobSpec(name="documents",
                source=SyntheticJobSource("documents", files=FILES,
                                          file_kib=FILE_KIB,
                                          churn=0.25),
                schedule=IntervalSchedule(DAY / 4),
                retention=RetainLastN(3)),
        JobSpec(name="media", scheme="Avamar", chunker="fastcdc",
                source=SyntheticJobSource("media", files=FILES,
                                          file_kib=FILE_KIB,
                                          churn=0.1),
                schedule=IntervalSchedule(DAY, offset=3600),
                retention=RetainMaxAge(3 * DAY)),
        JobSpec(name="vm-images", chunker="seqcdc",
                app_chunkers={"vmdk": "seqcdc"},
                source=SyntheticJobSource("vm-images",
                                          files=max(2, FILES // 2),
                                          file_kib=FILE_KIB * 2,
                                          churn=0.1),
                schedule=IntervalSchedule(DAY / 2, offset=7200),
                retention=RetainLastN(4)),
    ))


def _run_service(backend):
    service = BackupService(_spec(), backend=backend)
    try:
        return service.run(until=HORIZON)
    finally:
        service.close()


def test_service_week(benchmark):
    def run():
        backend = InMemoryBackend()
        report = _run_service(backend)
        return backend, report

    backend, report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.exit_code == 0

    # -- determinism: a fresh invocation reproduces every stored byte --
    backend2 = InMemoryBackend()
    report2 = _run_service(backend2)
    snap1 = {k: backend.get(k) for k in backend.list("")}
    snap2 = {k: backend2.get(k) for k in backend2.list("")}
    assert snap1 == snap2
    assert [r.to_json() for r in report.reports] == \
        [r.to_json() for r in report2.reports]

    # -- every retained session of every job restores bit-exactly ----
    restored_sessions = 0
    restored_bytes = 0
    for job in _spec().jobs:
        view = NamespacedBackend(backend, job.name)
        for sid in sorted(session_catalog(view)):
            files, rep = RestoreClient(view).restore_to_memory(sid)
            assert files
            restored_sessions += 1
            restored_bytes += rep.bytes_restored

    # -- rollup table -------------------------------------------------
    by_job = {}
    for r in report.reports:
        by_job.setdefault(r.job, []).append(r)
    table = Table(
        ["job", "runs", "scanned", "uploaded", "DR", "dropped",
         "swept objects"],
        title=f"service week ({HORIZON / DAY:.0f} virtual days, "
              f"shared backend)")
    total_dropped = 0
    for name, runs in by_job.items():
        scanned = sum(r.stats.bytes_scanned for r in runs if r.stats)
        unique = sum(r.stats.bytes_unique for r in runs if r.stats)
        uploaded = sum(r.stats.bytes_uploaded for r in runs if r.stats)
        dropped = sum(len(r.retention.dropped) for r in runs
                      if r.retention)
        swept = sum(r.retention.deleted_containers
                    + r.retention.deleted_objects for r in runs
                    if r.retention)
        total_dropped += dropped
        table.add_row([name, len(runs), format_bytes(scanned),
                       format_bytes(uploaded),
                       scanned / unique if unique else float("inf"),
                       dropped, swept])
    lines = [table.render(),
             f"restored {restored_sessions} retained sessions "
             f"({format_bytes(restored_bytes)}) bit-exactly; "
             f"store holds {format_bytes(backend.stored_bytes())} in "
             f"{backend.object_count()} objects"]
    emit("\n".join(lines))

    # Both retention policy types actually dropped sessions.
    assert total_dropped > 0
    dropped_by = {name: sum(len(r.retention.dropped) for r in runs
                            if r.retention)
                  for name, runs in by_job.items()}
    assert dropped_by["documents"] > 0          # RetainLastN
    if not SMOKE:
        assert dropped_by["media"] > 0          # RetainMaxAge
    # Retention left exactly what the policies promise.
    docs_view = NamespacedBackend(backend, "documents")
    assert len(session_catalog(docs_view)) == 3
