"""Fig. 8 — deduplication efficiency (bytes saved per second).

Paper: AA-Dedupe ≈ 2× BackupPC, 5× SAM, 7× Avamar on average.  Our
measured multipliers (see EXPERIMENTS.md): ≈2× BackupPC and ≈7× Avamar
match; SAM lands nearer 2× because our SAM's whole-file tier for
compressed media is more effective than the paper's measurement of SAM.
"""

from conftest import emit

from repro.metrics import Table
from repro.util.units import format_bytes


def test_fig8_dedup_efficiency(benchmark, figures):
    series = benchmark.pedantic(lambda: figures.fig8_efficiency,
                                rounds=1, iterations=1)
    schemes = list(series)
    table = Table(["session"] + schemes,
                  title="Fig. 8: dedup efficiency, bytes saved per second")
    for i in range(len(next(iter(series.values())))):
        table.add_row([i + 1] + [
            format_bytes(series[s][i], decimal=True) + "/s"
            for s in schemes])
    mean = {s: sum(v) / len(v) for s, v in series.items()}
    table.add_row(["mean"] + [
        format_bytes(mean[s], decimal=True) + "/s" for s in schemes])
    emit(table.render())
    aa = mean["AA-Dedupe"]
    emit(f"AA-Dedupe multipliers: x{aa / mean['BackupPC']:.1f} BackupPC "
         f"(paper 2), x{aa / mean['SAM']:.1f} SAM (paper 5), "
         f"x{aa / mean['Avamar']:.1f} Avamar (paper 7)")

    # AA-Dedupe leads every dedup scheme...
    for other in ("BackupPC", "SAM", "Avamar"):
        assert aa > 1.4 * mean[other]
    # ... by roughly the paper's factors at the extremes.
    assert 1.5 < aa / mean["BackupPC"] < 4.0      # paper: 2
    assert 4.0 < aa / mean["Avamar"] < 14.0       # paper: 7
    # Avamar is the least efficient dedup scheme.
    assert mean["Avamar"] == min(mean[s] for s in
                                 ("BackupPC", "SAM", "Avamar"))
