"""Figs. 1 & 2 — file count and storage capacity by file-size bucket.

Paper anchors: 61 % of files are < 10 KB yet hold only 1.2 % of bytes;
1.4 % of files are > 1 MB and hold 75 % of bytes.
"""

from conftest import emit

from repro.analysis import fig1_fig2_size_distribution
from repro.metrics import Table
from repro.util.units import format_bytes


def test_fig1_fig2_size_distribution(benchmark):
    rows = benchmark.pedantic(
        lambda: fig1_fig2_size_distribution(n_files=200_000),
        rounds=1, iterations=1)

    table = Table(["size bucket", "file share", "paper", "capacity share",
                   "paper "],
                  title="Figs. 1-2: PC dataset file-size distribution")
    for row in rows:
        bucket = ("< " + format_bytes(row.upper_bound)
                  if row.upper_bound != float("inf") else ">= 1.0MiB")
        table.add_row([bucket, f"{row.count_share:.3f}",
                       f"{row.paper_count_share:.3f}",
                       f"{row.capacity_share:.3f}",
                       f"{row.paper_capacity_share:.3f}"])
    emit(table.render())

    tiny, _mid, large = rows
    assert abs(tiny.count_share - 0.61) < 0.03
    assert tiny.capacity_share < 0.04
    assert abs(large.count_share - 0.014) < 0.008
    assert abs(large.capacity_share - 0.75) < 0.10
