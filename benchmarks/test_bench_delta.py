"""Delta bench — similarity + delta compression on versioned documents.

Drives the AA-Dedupe engine over a versioned-document workload (a set
of office files, each lightly edited between sessions — the churn
pattern the delta stage targets) twice: exact-only and with
``delta_compress=True``.  Reports per-session upload volume, dedup
ratio and the delta stage's own accounting, then asserts the paper-
style claims the stage must honour:

* delta uploads strictly fewer bytes than exact-only on this workload;
* every delta-enabled session restores bit-identically;
* the store passes a full scrub (zero findings) afterwards.

Set ``DELTA_BENCH_SMOKE=1`` to run a down-scaled configuration (CI).
"""

from __future__ import annotations

import os

import numpy as np
from conftest import emit

from repro.cloud.memory import InMemoryBackend
from repro.core.backup import BackupClient
from repro.core.options import aa_dedupe_config
from repro.core.restore import RestoreClient
from repro.core.scrub import scrub_cloud
from repro.core.source import MemorySource
from repro.metrics import Table
from repro.util.units import format_bytes

SMOKE = bool(int(os.environ.get("DELTA_BENCH_SMOKE", "0")))
DOCS = 4 if SMOKE else 12
SESSIONS = 3 if SMOKE else 5
DOC_KIB = 32 if SMOKE else 96
SEED = 2011

_EXTS = ("doc", "txt", "ppt", "xls", "html", "pdf")


def _edit(data: bytes, r: np.random.Generator) -> bytes:
    """Small in-place edits plus one insertion (document churn)."""
    arr = bytearray(data)
    for _ in range(int(r.integers(2, 7))):
        pos = int(r.integers(0, max(1, len(arr) - 40)))
        arr[pos:pos + 24] = r.integers(0, 256, 24,
                                       dtype=np.uint8).tobytes()
    pos = int(r.integers(0, len(arr) + 1))
    patch = r.integers(0, 256, int(r.integers(16, 80)),
                       dtype=np.uint8).tobytes()
    return bytes(arr[:pos]) + patch + bytes(arr[pos:])


def _versioned_sessions():
    """`SESSIONS` snapshots of `DOCS` documents under light editing."""
    r = np.random.default_rng(SEED)
    files = {
        f"work/doc{i:02d}.{_EXTS[i % len(_EXTS)]}":
            r.integers(0, 256, DOC_KIB * 1024,
                       dtype=np.uint8).tobytes()
        for i in range(DOCS)
    }
    snapshots = [dict(files)]
    for _ in range(1, SESSIONS):
        # Two thirds of the documents change between sessions.
        for path in sorted(files):
            if r.random() < 2 / 3:
                files[path] = _edit(files[path], r)
        snapshots.append(dict(files))
    return snapshots


def _run(delta: bool):
    # Unpadded containers so upload volume reflects payload, not the
    # fixed-size padding floor — the same setting for both arms.
    config = aa_dedupe_config(delta_compress=delta,
                              container_size=256 * 1024,
                              pad_containers=False)
    cloud = InMemoryBackend()
    client = BackupClient(cloud, config)
    stats = [client.backup(MemorySource(snap))
             for snap in _versioned_sessions()]
    client.close()
    return cloud, stats


def test_delta_savings_on_versioned_documents():
    snapshots = _versioned_sessions()
    exact_cloud, exact_stats = _run(delta=False)
    delta_cloud, delta_stats = _run(delta=True)

    table = Table(["session", "exact upload", "delta upload",
                   "delta chunks", "delta saved", "DR exact", "DR delta"])
    for ex, de in zip(exact_stats, delta_stats):
        table.add_row([
            de.session_id,
            format_bytes(ex.bytes_uploaded),
            format_bytes(de.bytes_uploaded),
            de.chunks_delta,
            format_bytes(de.delta_bytes_saved),
            f"{ex.dedup_ratio:.2f}",
            f"{de.dedup_ratio:.2f}",
        ])
    exact_total = exact_cloud.stats.bytes_uploaded
    delta_total = delta_cloud.stats.bytes_uploaded
    emit(table.render()
         + f"\ntotal uploaded: exact {format_bytes(exact_total)}, "
           f"delta {format_bytes(delta_total)} "
           f"({100 * (1 - delta_total / exact_total):.1f}% less)")

    # The headline claim: measurably fewer bytes shipped.
    assert delta_total < exact_total
    assert sum(s.chunks_delta for s in delta_stats) > 0
    assert sum(s.delta_bytes_saved for s in delta_stats) > 0
    # Incremental sessions must beat exact dedup, not just tie it.
    incr_exact = sum(s.bytes_unique for s in exact_stats[1:])
    incr_delta = sum(s.bytes_unique for s in delta_stats[1:])
    assert incr_delta < incr_exact

    # Every delta-enabled session restores bit-identically...
    restorer = RestoreClient(delta_cloud)
    for sid, snap in enumerate(snapshots):
        out, _ = restorer.restore_to_memory(sid)
        assert out == snap, f"session {sid} not bit-identical"

    # ...and the store passes a full scrub with zero findings.
    report = scrub_cloud(delta_cloud)
    assert report.clean, report.problems
    assert report.deltas_validated > 0
