"""Ablation E — average chunk size (paper Sec. III-C).

"In general, the deduplication ratio is inversely proportional to the
average chunk size.  On the other hand, the average chunk size is also
inversely proportional to the space overhead due to file metadata and
chunk index."  This bench sweeps SC chunk size on identical snapshots
and reports both sides of the trade-off, locating the sweet spot the
paper's 8 KB choice sits in.
"""

from conftest import SCALE, emit

from repro.classify.policy import DedupPolicy
from repro.core import aa_dedupe_config
from repro.metrics import Table
from repro.trace.driver import run_paper_evaluation
from repro.util.units import KIB, format_bytes

SIZES = (2 * KIB, 4 * KIB, 8 * KIB, 16 * KIB, 32 * KIB, 64 * KIB)
_ENTRY_BYTES = 48
_REF_BYTES = 56


def test_chunk_size_sweep(benchmark, workload_snapshots):
    def run():
        schemes = [aa_dedupe_config(
            name=f"SC-{size // KIB}KiB", policy_table=None,
            fixed_policy=DedupPolicy("sc", "md5", {"chunk_size": size}))
            for size in SIZES]
        return run_paper_evaluation(scale=SCALE,
                                    snapshots=workload_snapshots,
                                    schemes=schemes)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    up = result.scale_to_paper()
    table = Table(["chunk size", "mean DR", "stored", "index+recipe "
                   "metadata", "metadata/stored"],
                  title="Ablation E: average chunk size trade-off")
    rows = {}
    for size, (name, run_) in zip(SIZES, result.runs.items()):
        mean_dr = sum(r.stats.dedup_ratio
                      for r in run_.sessions) / len(run_.sessions)
        chunks = sum(r.stats.ops.chunks_produced for r in run_.sessions)
        unique = sum(r.stats.chunks_unique for r in run_.sessions)
        metadata = unique * _ENTRY_BYTES + chunks * _REF_BYTES
        stored = run_.total_uploaded()
        rows[size] = (mean_dr, stored, metadata)
        table.add_row([format_bytes(size), mean_dr,
                       format_bytes(stored * up, decimal=True),
                       format_bytes(metadata * up, decimal=True),
                       f"{metadata / stored:.4f}"])
    emit(table.render())

    # Smaller chunks => better (or equal) dedup ratio...
    drs = [rows[s][0] for s in SIZES]
    assert all(a >= 0.98 * b for a, b in zip(drs, drs[1:]))
    assert drs[0] > drs[-1]
    # ...but strictly more metadata.
    metadata = [rows[s][2] for s in SIZES]
    assert metadata == sorted(metadata, reverse=True)
    # The paper's 8 KiB keeps most of 2 KiB's dedup ratio at ~1/4 of its
    # metadata — and, counting container framing, actually *minimises*
    # total stored bytes: the sweet spot.
    assert rows[8 * KIB][0] > 0.75 * rows[2 * KIB][0]
    assert rows[8 * KIB][2] < 0.4 * rows[2 * KIB][2]
    assert rows[8 * KIB][1] == min(r[1] for r in rows.values())
