"""Robustness — do the paper's conclusions survive a different dataset?

The 351 GB workload's composition is the one thing the paper does not
publish, so our default mix is a modelling choice.  This bench re-runs
the five-scheme evaluation on a document-centric "office" composition
(few media files, modest VM share, lots of mutable documents) and
asserts every qualitative claim still holds.
"""

from conftest import SCALE, emit

from repro.metrics import Table
from repro.trace.driver import PAPER_SESSION_BYTES, run_paper_evaluation
from repro.util.units import format_bytes
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.presets import OFFICE_SHARES, profiles_with_shares


def test_office_workload_preserves_shapes(benchmark):
    def run():
        total = int(PAPER_SESSION_BYTES * SCALE)
        generator = WorkloadGenerator(
            total_bytes=total,
            profiles=profiles_with_shares(OFFICE_SHARES),
            seed=2012,
            max_mean_file_size=max(64 * 1024, total // 40))
        snapshots = list(generator.sessions(10))
        return run_paper_evaluation(scale=SCALE, snapshots=snapshots)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    up = result.scale_to_paper()
    table = Table(["scheme", "stored", "mean DE", "mean window h",
                   "monthly $"],
                  title="Office-workstation workload (robustness check)")
    stored, de, window, cost = {}, {}, {}, {}
    for name, run_ in result.runs.items():
        stored[name] = run_.total_uploaded()
        de[name] = run_.mean_efficiency()
        window[name] = sum(r.window_seconds for r in run_.sessions) / len(
            run_.sessions)
        cost[name] = run_.monthly_cost(scale_to_paper=up)
        table.add_row([name,
                       format_bytes(stored[name] * up, decimal=True),
                       format_bytes(de[name], decimal=True) + "/s",
                       window[name] * up / 3600, cost[name]])
    emit(table.render())

    # Every qualitative paper claim, on a different composition:
    dedupers = ("BackupPC", "SAM", "Avamar", "AA-Dedupe")
    # (Fig. 7) dedup beats incremental; AA similar-or-better than all.
    assert stored["AA-Dedupe"] < stored["JungleDisk"]
    assert stored["AA-Dedupe"] <= 1.05 * min(stored[s] for s in dedupers)
    # (Fig. 8) AA leads every dedup scheme; Avamar trails them all.
    for other in ("BackupPC", "SAM", "Avamar"):
        assert de["AA-Dedupe"] > 1.3 * de[other]
    assert de["Avamar"] == min(de[s] for s in dedupers)
    # (Fig. 9) AA has the shortest mean window.
    assert window["AA-Dedupe"] == min(window.values())
    # (Fig. 10) AA is the cheapest.
    assert cost["AA-Dedupe"] == min(cost.values())
