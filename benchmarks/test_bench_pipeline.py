"""Pipelined-engine bench — stage overlap on a Table-1-style workload.

Backs up one session of the paper's PC application mix with the staged
engine (read → chunk → hash → serial commit → pack → upload) against a
WAN-throttled backend, twice: serial uploads and pipelined uploads.
The wall-clock tracer's stage-occupancy intervals then prove the
tentpole claim — dedup CPU stages and WAN transfer run *concurrently*:

* the hash/chunk/read interval union overlaps the transfer intervals
  for most of the smaller side (stages busy at the same instants);
* the first upload starts before the last hash finishes;
* pipelining shrinks the session's wall clock vs the serial arm;
* the pipelined store still restores every file bit-identically.

Set ``PIPELINE_BENCH_SMOKE=1`` to run a down-scaled configuration (CI).
"""

from __future__ import annotations

import os
import time

from conftest import emit

from repro.cloud.memory import InMemoryBackend
from repro.core.backup import BackupClient
from repro.core.options import aa_dedupe_config
from repro.core.restore import RestoreClient
from repro.metrics import Table
from repro.obs import Tracer
from repro.obs.profile import (overlap_seconds, render_profile,
                               stage_breakdown)
from repro.util.units import KIB, MB, format_bytes
from repro.workloads import (
    WorkloadGenerator,
    materialize_snapshot,
    snapshot_to_memory_source,
)

SMOKE = bool(int(os.environ.get("PIPELINE_BENCH_SMOKE", "0")))
TOTAL_BYTES = (12 if SMOKE else 32) * MB
SEED = 2011
#: Throttle so one session's unique bytes upload in roughly a second —
#: the same order as the dedup CPU time, where overlap matters most.
UPLOAD_SECONDS = 0.8 if SMOKE else 2.0


class ThrottledBackend(InMemoryBackend):
    """In-memory store with a modelled WAN: puts sleep at a fixed rate."""

    def __init__(self, bytes_per_second: float) -> None:
        super().__init__()
        self.bytes_per_second = bytes_per_second

    def _put(self, key: str, data: bytes) -> None:
        time.sleep(len(data) / self.bytes_per_second)
        super()._put(key, data)


def _snapshot():
    gen = WorkloadGenerator(total_bytes=TOTAL_BYTES, seed=SEED,
                            max_mean_file_size=1 * MB)
    return gen.initial_snapshot()


def _run(snapshot, pipeline: bool):
    cloud = ThrottledBackend(TOTAL_BYTES / UPLOAD_SECONDS)
    tracer = Tracer()  # wall clock: occupancy needs real timestamps
    config = aa_dedupe_config(container_size=256 * KIB,
                              parallel_workers=4,
                              pipeline_uploads=pipeline)
    client = BackupClient(cloud, config, tracer=tracer)
    start = time.perf_counter()
    stats = client.backup(snapshot_to_memory_source(snapshot))
    client.close()
    wall = time.perf_counter() - start
    return cloud, tracer, stats, wall


def test_pipeline_overlaps_hash_and_upload():
    snapshot = _snapshot()
    _, _, _, serial_wall = _run(snapshot, pipeline=False)
    cloud, tracer, stats, wall = _run(snapshot, pipeline=True)

    profile = stage_breakdown(tracer.spans())
    transfer = profile.stage_intervals.get("transfer", [])
    dedup_intervals = sorted(
        ivl for stage in ("read", "chunk", "hash")
        for ivl in profile.stage_intervals.get(stage, []))
    hash_intervals = profile.stage_intervals.get("hash", [])
    assert transfer, "no upload spans recorded"
    assert hash_intervals, "no hash spans recorded"

    overlap = overlap_seconds(dedup_intervals, transfer)
    transfer_busy = sum(end - start for start, end in transfer)
    dedup_busy = sum(end - start for start, end in dedup_intervals)

    table = Table(["metric", "value"])
    table.add_row(["bytes scanned", format_bytes(stats.bytes_scanned)])
    table.add_row(["serial wall", f"{serial_wall:.3f} s"])
    table.add_row(["pipelined wall", f"{wall:.3f} s"])
    table.add_row(["dedup-stage busy", f"{dedup_busy:.3f} s"])
    table.add_row(["transfer busy", f"{transfer_busy:.3f} s"])
    table.add_row(["dedup∩transfer", f"{overlap:.3f} s"])
    emit(table.render())
    emit(render_profile(tracer.spans()))

    # Uploads must begin while dedup is still hashing...
    first_upload = min(start for start, _end in transfer)
    last_hash = max(end for _start, end in hash_intervals)
    assert first_upload < last_hash, \
        "pipelined uploads only started after hashing finished"
    # ...and the two sides must be busy at the same instants for most
    # of the smaller side (near-full overlap, not a token handoff).
    assert overlap > 0.3 * min(dedup_busy, transfer_busy), (
        f"dedup/transfer overlap {overlap:.3f}s too small "
        f"(dedup {dedup_busy:.3f}s, transfer {transfer_busy:.3f}s)")
    # Overlap is wall-clock savings: the pipelined arm must beat the
    # serial arm on the same throttled WAN.
    assert wall < serial_wall, (
        f"pipelined wall {wall:.3f}s not below serial {serial_wall:.3f}s")

    # The per-stage busy ledger survives into session stats.
    assert stats.stage_busy_seconds.get("upload", 0.0) > 0.0
    for stage in ("read", "chunk", "hash", "commit"):
        assert stage in stats.stage_busy_seconds

    # Concurrency must never cost correctness: bit-exact restore.
    restored, _ = RestoreClient(cloud).restore_to_memory(0)
    assert restored == materialize_snapshot(snapshot)
