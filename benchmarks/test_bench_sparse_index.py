"""Related-work comparison — application-aware exact indexing vs
Sparse Indexing (FAST'09, the paper's reference [20]).

Both attack the same disk-index bottleneck; the trade-offs differ:

* **AA-Dedupe** keeps exact, per-application indices whose *policy*
  makes them small (WFC collapses compressed media to one entry per
  file);
* **Sparse Indexing** keeps a sampled index (tiny RAM regardless of
  policy) but misses duplicates outside its champion segments
  (approximate dedup).

This bench runs both over the same weekly chunk streams and reports RAM
entries vs dedup effectiveness.
"""

from conftest import emit

from repro.classify.filetype import classify_name
from repro.core import aa_dedupe_config
from repro.index.sparse import SparseIndexDeduper
from repro.metrics import Table
from repro.trace.simchunk import BoundaryModel, sim_chunks
from repro.util.units import format_bytes


def _chunk_stream(snapshot, boundaries):
    """The AA chunk stream of one snapshot: (namespace, chunk_id, len)."""
    config = aa_dedupe_config()
    for path in sorted(snapshot.files):
        comp = snapshot.files[path]
        if comp.size < config.tiny_file_threshold:
            continue
        app = classify_name(path)
        policy = config.policy_for(app.category)
        for chunk_id, length in sim_chunks(comp, policy.chunker,
                                           boundaries):
            yield app.label, chunk_id, length


def test_exact_vs_sparse_indexing(benchmark, workload_snapshots):
    def run():
        boundaries = BoundaryModel()
        snapshots = workload_snapshots[:4]
        # Exact per-app indexing (AA's structure).
        exact_index = {}
        exact_unique = 0
        exact_total = 0
        sparse = SparseIndexDeduper(segment_chunks=512, sample_bits=6,
                                    max_champions=4)
        for snapshot in snapshots:
            for app, chunk_id, length in _chunk_stream(snapshot,
                                                       boundaries):
                exact_total += length
                seen = exact_index.setdefault(app, set())
                if chunk_id not in seen:
                    seen.add(chunk_id)
                    exact_unique += length
                sparse.push(chunk_id, length)
        stats = sparse.finish()
        return exact_index, exact_unique, exact_total, sparse, stats

    exact_index, exact_unique, exact_total, sparse, stats = \
        benchmark.pedantic(run, rounds=1, iterations=1)

    exact_entries = sum(len(s) for s in exact_index.values())
    table = Table(["approach", "RAM entries", "unique stored",
                   "dedup ratio", "IO per segment"],
                  title="Exact app-aware indexing vs Sparse Indexing")
    table.add_row(["AA-Dedupe (exact)", f"{exact_entries:,}",
                   format_bytes(exact_unique, decimal=True),
                   exact_total / exact_unique, "per-chunk RAM probe"])
    table.add_row(["Sparse Indexing", f"{sparse.ram_entries():,}",
                   format_bytes(stats.bytes_unique, decimal=True),
                   stats.dedup_ratio,
                   f"{stats.champions_loaded / stats.segments_processed:.1f}"
                   " manifest loads"])
    emit(table.render())

    # Sparse RAM is an order of magnitude smaller...
    assert sparse.ram_entries() < exact_entries / 8
    # ...but it stores more than exact dedup (approximation loss),
    assert stats.bytes_unique >= exact_unique
    # within a bounded factor on a weekly-full workload (champions catch
    # the dominant cross-session duplicates).
    assert stats.bytes_unique < 1.6 * exact_unique
    # Champion budget held.
    assert stats.champions_loaded <= 4 * stats.segments_processed


def test_sparse_shard_backing_in_fleet_directory(benchmark):
    """The fleet directory's long-tail tier: sampling-based shards.

    Wires :class:`~repro.index.sparse.SparseShardIndex` in as the shard
    backing of a :class:`~repro.fleet.GlobalDedupDirectory` and replays
    a two-session backup (session 2 = session 1 with light churn)
    against it and against the exact memory backing.  Epoch commits
    seal one segment per 512-chunk slice, so a later probe batch's
    hooks elect exactly the manifests its stream locality predicts —
    the FAST'09 trade: a ~1/2^sample_bits RAM index and a few
    sequential manifest loads per batch, for a bounded dedup loss.
    """
    import hashlib

    from repro.fleet import GlobalDedupDirectory
    from repro.index import IndexEntry
    from repro.index.sparse import SparseShardIndex

    chunks, slice_len, batch = 4096, 512, 64

    def fp(tag):
        return hashlib.sha1(tag.encode()).digest()

    session1 = [fp(f"chunk/{i}") for i in range(chunks)]
    session2 = [fp(f"churn/{i}") if i % 50 == 0 else session1[i]
                for i in range(chunks)]

    def replay(directory):
        # Session 1 uploads: publish slice by slice, committing per
        # slice (the wave/epoch protocol) so manifests mirror stream
        # segments.
        for base in range(0, chunks, slice_len):
            directory.publish_batch(
                "doc",
                [IndexEntry(fingerprint=f, container_id=0, offset=i,
                            length=128)
                 for i, f in enumerate(session1[base:base + slice_len])],
                rank=0)
            directory.commit_epoch()
        # Session 2 probes in stream order, batched.
        hits = 0
        for base in range(0, chunks, batch):
            found = directory.lookup_batch("doc",
                                           session2[base:base + batch])
            hits += sum(e is not None for e in found)
        return hits

    def run():
        sparse_dir = GlobalDedupDirectory(
            shards_per_app=1,
            index_factory=lambda app, bucket: SparseShardIndex(
                segment_chunks=slice_len, sample_bits=4, max_champions=4))
        exact_dir = GlobalDedupDirectory(shards_per_app=1)
        sparse_hits = replay(sparse_dir)
        exact_hits = replay(exact_dir)
        return sparse_dir, exact_dir, sparse_hits, exact_hits

    sparse_dir, exact_dir, sparse_hits, exact_hits = \
        benchmark.pedantic(run, rounds=1, iterations=1)

    (sparse_shard,) = sparse_dir.shards()
    sparse_ram = sparse_shard.index.ram_entries()
    exact_ram = len(exact_dir)
    stats = sparse_shard.stats

    table = Table(["backing", "RAM entries", "probe hits", "disk loads"],
                  title="Fleet shard backing: exact vs sparse long tail")
    table.add_row(["MemoryIndex (exact)", f"{exact_ram:,}",
                   exact_hits, 0])
    table.add_row(["SparseShardIndex", f"{sparse_ram:,}", sparse_hits,
                   stats.disk_probes])
    emit(table.render())

    # Sampling shrinks shard RAM by far more than it costs in hits.
    assert sparse_ram < exact_ram / 4
    assert sparse_hits <= exact_hits          # approximate, never magic
    assert sparse_hits >= 0.8 * exact_hits    # bounded loss
    # Manifest IO is charged and bounded by the champion budget.
    assert stats.disk_probes > 0
    assert stats.disk_probes <= 4 * (chunks // batch)
    assert stats.disk_bytes > 0
