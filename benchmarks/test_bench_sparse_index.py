"""Related-work comparison — application-aware exact indexing vs
Sparse Indexing (FAST'09, the paper's reference [20]).

Both attack the same disk-index bottleneck; the trade-offs differ:

* **AA-Dedupe** keeps exact, per-application indices whose *policy*
  makes them small (WFC collapses compressed media to one entry per
  file);
* **Sparse Indexing** keeps a sampled index (tiny RAM regardless of
  policy) but misses duplicates outside its champion segments
  (approximate dedup).

This bench runs both over the same weekly chunk streams and reports RAM
entries vs dedup effectiveness.
"""

from conftest import emit

from repro.classify.filetype import classify_name
from repro.core import aa_dedupe_config
from repro.index.sparse import SparseIndexDeduper
from repro.metrics import Table
from repro.trace.simchunk import BoundaryModel, sim_chunks
from repro.util.units import format_bytes


def _chunk_stream(snapshot, boundaries):
    """The AA chunk stream of one snapshot: (namespace, chunk_id, len)."""
    config = aa_dedupe_config()
    for path in sorted(snapshot.files):
        comp = snapshot.files[path]
        if comp.size < config.tiny_file_threshold:
            continue
        app = classify_name(path)
        policy = config.policy_for(app.category)
        for chunk_id, length in sim_chunks(comp, policy.chunker,
                                           boundaries):
            yield app.label, chunk_id, length


def test_exact_vs_sparse_indexing(benchmark, workload_snapshots):
    def run():
        boundaries = BoundaryModel()
        snapshots = workload_snapshots[:4]
        # Exact per-app indexing (AA's structure).
        exact_index = {}
        exact_unique = 0
        exact_total = 0
        sparse = SparseIndexDeduper(segment_chunks=512, sample_bits=6,
                                    max_champions=4)
        for snapshot in snapshots:
            for app, chunk_id, length in _chunk_stream(snapshot,
                                                       boundaries):
                exact_total += length
                seen = exact_index.setdefault(app, set())
                if chunk_id not in seen:
                    seen.add(chunk_id)
                    exact_unique += length
                sparse.push(chunk_id, length)
        stats = sparse.finish()
        return exact_index, exact_unique, exact_total, sparse, stats

    exact_index, exact_unique, exact_total, sparse, stats = \
        benchmark.pedantic(run, rounds=1, iterations=1)

    exact_entries = sum(len(s) for s in exact_index.values())
    table = Table(["approach", "RAM entries", "unique stored",
                   "dedup ratio", "IO per segment"],
                  title="Exact app-aware indexing vs Sparse Indexing")
    table.add_row(["AA-Dedupe (exact)", f"{exact_entries:,}",
                   format_bytes(exact_unique, decimal=True),
                   exact_total / exact_unique, "per-chunk RAM probe"])
    table.add_row(["Sparse Indexing", f"{sparse.ram_entries():,}",
                   format_bytes(stats.bytes_unique, decimal=True),
                   stats.dedup_ratio,
                   f"{stats.champions_loaded / stats.segments_processed:.1f}"
                   " manifest loads"])
    emit(table.render())

    # Sparse RAM is an order of magnitude smaller...
    assert sparse.ram_entries() < exact_entries / 8
    # ...but it stores more than exact dedup (approximation loss),
    assert stats.bytes_unique >= exact_unique
    # within a bounded factor on a weekly-full workload (champions catch
    # the dominant cross-session duplicates).
    assert stats.bytes_unique < 1.6 * exact_unique
    # Champion budget held.
    assert stats.champions_loaded <= 4 * stats.segments_processed
