"""Ablation D — the file size filter (paper Sec. III-B, Observation 1).

Sweeps the tiny-file threshold on identical snapshots.  Observation 1
says ~61 % of files are <10 KB but hold ~1.2 % of bytes: filtering them
removes the majority of per-file/per-chunk work and index metadata for
a negligible loss of dedup effectiveness, while an oversized threshold
starts re-uploading real data every session.
"""

from conftest import SCALE, emit

from repro.core import aa_dedupe_config
from repro.metrics import Table
from repro.trace.driver import run_paper_evaluation
from repro.util.units import KIB, format_bytes

THRESHOLDS = (0, 1 * KIB, 10 * KIB, 100 * KIB)


def test_tiny_filter_threshold_sweep(benchmark, workload_snapshots):
    def run():
        schemes = [aa_dedupe_config(
            name=f"AA-tiny<{t // KIB}KiB" if t else "AA-no-filter",
            tiny_file_threshold=t) for t in THRESHOLDS]
        return run_paper_evaluation(scale=SCALE,
                                    snapshots=workload_snapshots,
                                    schemes=schemes)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    up = result.scale_to_paper()
    table = Table(["threshold", "stored", "chunks", "index lookups",
                   "tiny files", "mean DE"],
                  title="Ablation D: tiny-file filter threshold")
    rows = {}
    for t, (name, run_) in zip(THRESHOLDS, result.runs.items()):
        chunks = sum(r.stats.ops.chunks_produced for r in run_.sessions)
        lookups = sum(r.stats.ops.index_lookups for r in run_.sessions)
        tiny = sum(r.stats.files_tiny for r in run_.sessions)
        rows[t] = (run_.total_uploaded(), chunks, lookups,
                   run_.mean_efficiency())
        table.add_row([format_bytes(t) if t else "off",
                       format_bytes(run_.total_uploaded() * up,
                                    decimal=True),
                       f"{chunks * up:,.0f}", f"{lookups * up:,.0f}",
                       f"{tiny * up:,.0f}",
                       format_bytes(run_.mean_efficiency(), decimal=True)
                       + "/s"])
    emit(table.render())

    # Work (chunks, index lookups) falls monotonically with threshold —
    # the filter's whole purpose…
    chunk_counts = [rows[t][1] for t in THRESHOLDS]
    lookup_counts = [rows[t][2] for t in THRESHOLDS]
    assert chunk_counts == sorted(chunk_counts, reverse=True)
    assert lookup_counts == sorted(lookup_counts, reverse=True)
    # …while storage rises monotonically (filtered files re-upload each
    # session) — the trade-off Observation 1 says is worth it at 10 KiB.
    stored = [rows[t][0] for t in THRESHOLDS]
    assert stored == sorted(stored)
    # At the paper's 10 KiB the premium stays modest…
    assert rows[10 * KIB][0] < 1.15 * rows[0][0]
    # …and efficiency is not hurt.
    assert rows[10 * KIB][3] > 0.95 * rows[0][3]
