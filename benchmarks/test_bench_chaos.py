"""Chaos bench — goodput and re-upload overhead versus injected faults.

Runs the real backup engine (AA-Dedupe plus two baseline extremes:
Jungle Disk's whole-file uploads and Avamar's per-chunk puts) against a
:class:`ChaosBackend` over the paper WAN at increasing transient-error
rates, with retries on a virtual clock.  Reported per scheme and rate:

* **goodput** — logical bytes protected per modelled WAN second (falls
  as fault rate rises, because failed attempts and backoff burn time);
* **waste** — bytes burned on failed attempts as a fraction of all
  bytes offered to the wire;
* **retries** — how many retry sleeps the policy issued.

A second table measures *resume efficiency*: a mid-session crash at
~85 % of containers, then a journal-driven re-run — re-uploaded
container bytes must stay under 20 % of the session's container total
(the ISSUE acceptance bar), versus 100 % without a journal.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.baselines.schemes import avamar_config, jungle_disk_config
from repro.cloud import ChaosBackend, InMemoryBackend, RetryPolicy, \
    SimulatedCloud
from repro.core import BackupClient, MemorySource, RestoreClient, \
    aa_dedupe_config, naming
from repro.core.scrub import scrub_cloud
from repro.metrics import Table
from repro.simulate.clock import VirtualClock
from repro.util.units import KIB, format_bytes

FAULT_RATES = [0.0, 0.02, 0.05, 0.10]
CONTAINER = 64 * KIB


def _workload(seed=2011, n_files=30, file_size=40_000):
    rng = np.random.default_rng(seed)
    return {f"docs/f{i:03d}.doc": rng.integers(
        0, 256, file_size, dtype=np.uint8).tobytes()
        for i in range(n_files)}


def _configs():
    return [
        aa_dedupe_config(container_size=CONTAINER),
        jungle_disk_config(),
        avamar_config(),
    ]


def _run_one(config, files, rate, seed=7):
    clock = VirtualClock()
    chaos = ChaosBackend(InMemoryBackend(), seed=seed,
                         transient_error_rate=rate,
                         latency_spike_rate=rate / 2,
                         latency_spike_seconds=2.0)
    retry = RetryPolicy(max_attempts=10, seed=seed, clock=clock)
    cloud = SimulatedCloud(chaos, clock=clock, retry=retry)
    client = BackupClient(cloud, config)
    stats = client.backup(MemorySource(files))
    goodput = stats.bytes_scanned / max(cloud.transfer_seconds(), 1e-9)
    stored = chaos.stored_bytes()
    offered = cloud.stats.bytes_uploaded
    waste = (offered - stored) / max(offered, 1)
    return dict(goodput=goodput, waste=waste,
                retries=retry.stats.retries,
                faults=chaos.chaos.total_faults,
                transfer=cloud.transfer_seconds(), stats=stats,
                cloud=cloud)


def test_goodput_vs_fault_rate(benchmark):
    files = _workload()

    def run():
        results = {}
        for config in _configs():
            for rate in FAULT_RATES:
                results[(config.name, rate)] = _run_one(
                    config, files, rate)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(["scheme", "fault rate", "goodput", "waste %",
                   "retries", "WAN s"],
                  title="Chaos bench: goodput vs injected fault rate "
                        "(paper WAN, virtual clock)")
    for (name, rate), r in results.items():
        table.add_row([name, f"{rate:.2f}",
                       format_bytes(r["goodput"], decimal=True) + "/s",
                       f"{100 * r['waste']:.1f}",
                       r["retries"], f"{r['transfer']:.1f}"])
    emit(table.render())

    for config in _configs():
        clean = results[(config.name, 0.0)]
        worst = results[(config.name, FAULT_RATES[-1])]
        # Fault-free runs neither retry nor waste bytes.
        assert clean["retries"] == 0 and clean["waste"] == 0.0
        # Every chaotic run still completed all files via retries...
        assert worst["stats"].files_total == len(files)
        # ...at a goodput cost that the model actually registers.
        assert worst["goodput"] < clean["goodput"]
        assert worst["waste"] > 0.0
        # The store survived the chaos bit-exact.
        restored, _ = RestoreClient(worst["cloud"]).restore_to_memory(0)
        assert restored == files


def test_resume_overhead_after_crash(benchmark):
    files = _workload(seed=4)

    class CrashBackend(InMemoryBackend):
        def __init__(self, crash_after):
            super().__init__()
            self.crash_after = crash_after
            self.armed = True
            self.container_puts = 0
            self.container_bytes = 0

        def _put(self, key, data):
            if key.startswith(naming.CONTAINER_PREFIX):
                if self.armed and self.container_puts >= self.crash_after:
                    raise RuntimeError("simulated crash")
                self.container_puts += 1
                self.container_bytes += len(data)
            super()._put(key, data)

    def run():
        rows = {}
        for resumable in (True, False):
            cfg = aa_dedupe_config(container_size=CONTAINER,
                                   resumable=resumable)
            dry = InMemoryBackend()
            BackupClient(dry, cfg).backup(MemorySource(files))
            container_keys = dry.list(naming.CONTAINER_PREFIX)
            session_total = sum(len(dry._objects[k])
                                for k in container_keys)

            cloud = CrashBackend(
                crash_after=int(len(container_keys) * 0.85))
            try:
                BackupClient(cloud, cfg).backup(MemorySource(files),
                                                session_id=0)
            except RuntimeError:
                pass
            cloud.armed = False
            cloud.container_bytes = 0
            stats = BackupClient(cloud, cfg).backup(MemorySource(files),
                                                    session_id=0)
            # fraction of one session's container bytes re-uploaded
            reupload = cloud.container_bytes / session_total
            rows[resumable] = dict(reupload=reupload, stats=stats,
                                   cloud=cloud)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(["journal", "re-uploaded", "skipped objects"],
                  title="Crash at 85% of containers, then re-run")
    for resumable, r in rows.items():
        table.add_row(["on" if resumable else "off",
                       f"{100 * r['reupload']:.1f}%",
                       r["stats"].resume_skipped_objects])
    emit(table.render())

    # Journal resume re-uploads < 20% of container bytes (acceptance
    # bar); without the journal the whole session re-uploads.
    assert rows[True]["reupload"] < 0.20
    assert rows[False]["reupload"] > 0.95
    # Both converge to a byte-identical, scrub-clean store.
    for r in rows.values():
        restored, _ = RestoreClient(r["cloud"]).restore_to_memory(0)
        assert restored == files
        assert scrub_cloud(r["cloud"]).clean
