"""Fig. 6 — the application-aware index structure, made measurable.

The paper's Fig. 6 is an architecture diagram: one small chunk index per
file type, each with its own (chunking, hash) pair.  This bench runs the
AA trace client over the weekly workload and reports what that structure
actually looks like in numbers: per-application traffic, dedup ratio,
subindex population and RAM footprint vs the residency budget.
"""

from conftest import SCALE, emit

from repro.classify.filetype import classify_name
from repro.core import aa_dedupe_config
from repro.metrics import Table
from repro.simulate.diskmodel import IndexResidencyModel
from repro.trace.engine import TraceBackupClient
from repro.util.units import format_bytes


def test_fig6_per_application_indices(benchmark, workload_snapshots):
    residency = IndexResidencyModel(
        ram_budget=max(1, int(IndexResidencyModel().ram_budget * SCALE)))

    def run():
        client = TraceBackupClient(aa_dedupe_config(), residency=residency)
        stats = [client.backup(s) for s in workload_snapshots[:3]]
        return client, stats

    client, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    last = stats[-1]
    sizes = client.namespace_sizes()
    budget_entries = residency.ram_budget // residency.entry_bytes

    table = Table(["subindex", "entries", "RAM", "resident",
                   "session-3 DR"],
                  title="Fig. 6: per-application index family "
                        f"(budget {format_bytes(residency.ram_budget)})")
    for app in sorted(sizes, key=sizes.get, reverse=True):
        ram = sizes[app] * residency.entry_bytes
        table.add_row([app, f"{sizes[app]:,}", format_bytes(ram),
                       "yes" if sizes[app] <= budget_entries else "NO",
                       f"{last.app_dedup_ratio(app):.2f}"
                       if app in last.app_scanned else "-"])
    total = sum(sizes.values())
    table.add_row(["(unified would be)", f"{total:,}",
                   format_bytes(total * residency.entry_bytes),
                   "yes" if total <= budget_entries else "NO", "-"])
    emit(table.render())

    # The paper's argument, verified: every subindex fits the budget...
    assert all(n <= budget_entries for n in sizes.values())
    # ...while their union is within a factor of spilling (the unified
    # index keeps growing each week; see ablation A for the 10-session
    # consequence).
    assert total > 0.7 * budget_entries
    # The VM-image index dominates, as the capacity shares predict.
    assert max(sizes, key=sizes.get) == "vmdk"
    # Per-application dedup ratios reflect the categories: unchanged
    # compressed media dedups at file level (huge DR), mutable documents
    # dedup well but below media, and every app deduped in session 3.
    assert last.app_dedup_ratio("mp3") > last.app_dedup_ratio("txt") > 2
