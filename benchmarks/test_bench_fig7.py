"""Fig. 7 — cumulative cloud storage capacity of the five schemes.

Paper shape: the four source-dedup schemes beat incremental backup
(Jungle Disk); AA-Dedupe achieves similar-or-better space efficiency
than Avamar and SAM.
"""

from conftest import emit

from repro.metrics import Table
from repro.util.units import format_bytes


def test_fig7_cumulative_storage(benchmark, figures):
    series = benchmark.pedantic(lambda: figures.fig7_cumulative_storage,
                                rounds=1, iterations=1)
    schemes = list(series)
    sessions = len(next(iter(series.values())))
    table = Table(["session"] + schemes,
                  title="Fig. 7: cumulative cloud storage "
                        "(paper-scale estimate)")
    for i in range(sessions):
        table.add_row([i + 1] + [
            format_bytes(series[s][i], decimal=True) for s in schemes])
    emit(table.render())

    final = {s: series[s][-1] for s in schemes}
    # Dedup schemes beat the incremental scheme.
    for s in ("BackupPC", "Avamar", "SAM", "AA-Dedupe"):
        assert final[s] < final["JungleDisk"]
    # File-level dedup beats pure incremental (copy traffic).
    assert final["BackupPC"] < final["JungleDisk"]
    # Fine-grained dedup far ahead of file-level.
    assert final["Avamar"] < 0.6 * final["BackupPC"]
    # "similar or better space efficiency than Avamar and SAM".
    assert final["AA-Dedupe"] <= 1.05 * final["Avamar"]
    assert final["AA-Dedupe"] <= 1.05 * final["SAM"]
    # Cumulative curves are monotone.
    for s in schemes:
        assert series[s] == sorted(series[s])
