"""Fleet bench — cross-client dedup and directory load at fleet scale.

Drives a fleet of concurrent AA-Dedupe clients (8 by default; 4 in
smoke mode, see ``FLEET_BENCH_SMOKE``) against **one shared backend**
through :class:`repro.fleet.FleetService` and reports:

* **aggregate goodput** — fleet logical bytes protected per second of
  makespan (the slowest client's modelled WAN time);
* **cross-client versus intra-client dedup** — how much of the fleet's
  savings came from the server-side global directory rather than each
  client's own history;
* **shard hit distribution** — per-``(app, fingerprint-prefix)`` probe
  load on the directory, including the batch amortisation and, for a
  disk-backed directory, the priced server seek time.

Determinism is asserted the hard way: the whole fleet run is executed
twice (different thread-pool sizes) and every simulation output must
match bit-for-bit.

Set ``FLEET_BENCH_SMOKE=1`` to run a down-scaled configuration (CI).
"""

from __future__ import annotations

import os
from dataclasses import asdict

from conftest import emit

from repro.fleet import FleetService, synthetic_fleet_sources
from repro.index.disk import DiskIndex
from repro.metrics import Table
from repro.obs import Tracer
from repro.util.units import format_bytes

SMOKE = bool(int(os.environ.get("FLEET_BENCH_SMOKE", "0")))
CLIENTS = 4 if SMOKE else 8
SESSIONS = 2 if SMOKE else 3
FILE_KIB = 12 if SMOKE else 16
SEED = 2011

_WALL_FIELDS = {"dedup_wall_seconds", "upload_wall_seconds"}


def _sources():
    return synthetic_fleet_sources(CLIENTS, SESSIONS, seed=SEED,
                                   file_kib=FILE_KIB)


def _run(max_workers: int, tracer=None, **service_kw):
    service = FleetService(clients=CLIENTS, tracer=tracer, **service_kw)
    try:
        report = service.run(_sources(), max_workers=max_workers)
    finally:
        service.close()
    return report


def _simulation_key(report):
    return [
        ([{k: v for k, v in asdict(s).items() if k not in _WALL_FIELDS}
          for s in c.sessions],
         c.transfer_seconds, c.bill, c.cross_bytes)
        for c in report.clients
    ] + [report.shard_rows]


def test_fleet_scale_dedup(benchmark):
    tracer = Tracer()

    def run():
        return _run(max_workers=CLIENTS, tracer=tracer)

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    emit(report.render())

    # A real fleet ran: N concurrent clients, one shared backend.
    assert len(report.clients) == CLIENTS >= (4 if SMOKE else 8)
    assert all(len(c.sessions) == SESSIONS for c in report.clients)

    # Cross-client dedup exists and is attributed separately from
    # intra-client savings.
    assert report.cross_bytes > 0
    assert report.intra_bytes > 0
    assert 0 < report.cross_client_fraction < 1
    assert report.dedup_ratio > 1
    assert report.aggregate_goodput > 0

    # Directory accounting adds up: every committed entry came through
    # a shard, and batched probing never exceeds per-fingerprint cost.
    assert sum(r["accepted"] for r in report.shard_rows) == \
        report.directory_entries
    assert all(r["batches"] <= r["probes"] for r in report.shard_rows)

    # The run is wired through the observability stack.
    spans = tracer.spans()
    assert any(s.name == "fleet.run" for s in spans)
    assert any(s.name == "fleet.commit_epoch" for s in spans)
    counters = tracer.metrics.snapshot()["counters"]
    assert counters.get("fleet_directory_committed_total", 0) == \
        report.directory_entries


def test_fleet_determinism_for_fixed_seed(benchmark):
    def run():
        return _simulation_key(_run(max_workers=1)), \
            _simulation_key(_run(max_workers=CLIENTS))

    serial, threaded = benchmark.pedantic(run, rounds=1, iterations=1)
    assert serial == threaded


def test_fleet_directory_disk_backing(benchmark, tmp_path):
    """Disk-backed shards: the shard stats price server-side seeks."""

    # Tight memtable + small LRU front: shards spill to runs and probes
    # actually reach the disk, so the seek pricing has something to see.
    def factory(app, bucket):
        return DiskIndex(tmp_path / f"{app}-{bucket}", memtable_limit=2)

    def _run_disk():
        from repro.fleet import GlobalDedupDirectory
        service = FleetService(
            clients=CLIENTS,
            directory=GlobalDedupDirectory(shards_per_app=2,
                                           index_factory=factory,
                                           cache_capacity=2))
        try:
            return service.run(_sources(), max_workers=CLIENTS)
        finally:
            service.close()

    report = benchmark.pedantic(_run_disk, rounds=1, iterations=1)

    table = Table(["backing", "disk probes", "memory hits",
                   "server seek s"],
                  title="Fleet directory: disk-backed shard cost")
    total_disk = sum(r["disk_probes"] for r in report.shard_rows)
    total_mem = sum(r["memory_hits"] for r in report.shard_rows)
    table.add_row(["disk + LRU front", total_disk, total_mem,
                   report.server_seek_seconds()])
    emit(table.render())

    # Same dedup outcome as memory shards; only the priced cost moves.
    memory_report = _run(max_workers=CLIENTS)
    assert report.cross_bytes == memory_report.cross_bytes
    assert report.directory_entries == memory_report.directory_entries
    assert total_disk > 0
    assert report.server_seek_seconds() > 0
    emit(f"fleet stored {format_bytes(report.bytes_unique)} unique of "
         f"{format_bytes(report.bytes_scanned)} scanned")
