"""Ablation B — container size (paper Sec. III-F).

Sweeps the AA-Dedupe container size from 64 KiB to 16 MiB on identical
snapshots.  Small containers multiply PUT requests (request cost + WAN
stalls); huge containers waste padding on the final per-stream seal.
The paper's 1 MB choice sits at the flat bottom of the cost curve —
matching Amazon's guidance that objects should exceed ~100 KB.
"""

from conftest import SCALE, emit

from repro.core import aa_dedupe_config
from repro.metrics import Table
from repro.trace.driver import run_paper_evaluation
from repro.util.units import KIB, MIB, format_bytes


SIZES = (64 * KIB, 256 * KIB, 1 * MIB, 4 * MIB, 16 * MIB)


def test_container_size_sweep(benchmark, workload_snapshots):
    def run():
        schemes = [aa_dedupe_config(name=f"AA-{size // KIB}KiB",
                                    container_size=size)
                   for size in SIZES]
        return run_paper_evaluation(scale=SCALE,
                                    snapshots=workload_snapshots,
                                    schemes=schemes)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    up = result.scale_to_paper()
    table = Table(["container", "PUT requests", "uploaded", "monthly $",
                   "mean window h"],
                  title="Ablation B: container size sweep (paper-scale)")
    stats = {}
    for size, (name, run_) in zip(SIZES, result.runs.items()):
        puts = run_.total_put_requests() * up
        cost = run_.monthly_cost(scale_to_paper=up)
        window = sum(r.window_seconds for r in run_.sessions) / len(
            run_.sessions) * up / 3600
        stats[size] = (puts, cost, window)
        table.add_row([format_bytes(size), f"{puts:,.0f}",
                       format_bytes(run_.total_uploaded() * up,
                                    decimal=True),
                       cost, window])
    emit(table.render())

    # Bigger containers => strictly fewer requests.
    puts = [stats[s][0] for s in SIZES]
    assert puts == sorted(puts, reverse=True)
    # The paper's 1 MB choice is within 10% of the best cost in the sweep.
    best_cost = min(stats[s][1] for s in SIZES)
    assert stats[1 * MIB][1] <= 1.10 * best_cost
    # Tiny containers are clearly more expensive than 1 MB.
    assert stats[64 * KIB][1] > stats[1 * MIB][1]
