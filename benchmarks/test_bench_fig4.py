"""Fig. 4 — deduplication throughput of WFC/SC/CDC × three hashes.

Modelled throughputs on the paper platform (the figure's shape: simpler
chunking ⇒ higher throughput, weaker hash ⇒ higher throughput), plus a
real microbenchmark of this library's chunkers.
"""

import numpy as np
import pytest
from conftest import emit

from repro.analysis import fig4_throughputs
from repro.chunking import RabinCDC, StaticChunker, WholeFileChunker
from repro.metrics import Table
from repro.util.units import MB, format_bytes


def test_fig4_modelled_throughput(benchmark):
    thr = benchmark.pedantic(fig4_throughputs, rounds=1, iterations=1)
    table = Table(["chunking", "Rabin", "MD5", "SHA-1"],
                  title="Fig. 4: dedup throughput "
                        "(modelled, paper platform)")
    for chunking in ("wfc", "sc", "cdc"):
        table.add_row([chunking.upper()] + [
            format_bytes(thr[(chunking, h)], decimal=True) + "/s"
            for h in ("rabin12", "md5", "sha1")])
    emit(table.render())

    for h in ("rabin12", "md5", "sha1"):
        assert thr[("wfc", h)] > thr[("sc", h)] > thr[("cdc", h)]
    for c in ("wfc", "sc", "cdc"):
        assert thr[(c, "rabin12")] > thr[(c, "md5")] > thr[(c, "sha1")]


@pytest.mark.parametrize("chunker_name,factory", [
    ("wfc", WholeFileChunker),
    ("sc", StaticChunker),
    ("cdc", RabinCDC),
])
def test_fig4_real_chunker_throughput(benchmark, chunker_name, factory):
    data = np.random.default_rng(4).integers(
        0, 256, size=2 * MB, dtype=np.uint8).tobytes()
    chunker = factory()
    chunks = benchmark(chunker.chunk, data)
    assert sum(c.length for c in chunks) == len(data)
