"""Fig. 11 — energy consumption of the source-dedup schemes.

Paper shape: the highly space-efficient but compute/IO-heavy schemes
(Avamar, SAM) burn the most energy during deduplication; AA-Dedupe's
weak-hash policy makes it the most power-efficient (paper: ~1/4 of
Avamar, ~1/3 of SAM).
"""

from conftest import emit

from repro.metrics import Table


def test_fig11_energy(benchmark, figures):
    series = benchmark.pedantic(lambda: figures.fig11_energy,
                                rounds=1, iterations=1)
    dedupers = ["BackupPC", "Avamar", "SAM", "AA-Dedupe"]
    table = Table(["session"] + dedupers,
                  title="Fig. 11: dedup-phase energy per session "
                        "(paper-scale kJ)")
    for i in range(len(series["AA-Dedupe"])):
        table.add_row([i + 1] + [f"{series[s][i] / 1000:.0f}"
                                 for s in dedupers])
    total = {s: sum(series[s]) for s in dedupers}
    table.add_row(["total"] + [f"{total[s] / 1000:.0f}" for s in dedupers])
    emit(table.render())
    emit(f"AA-Dedupe energy multipliers: Avamar x"
         f"{total['Avamar'] / total['AA-Dedupe']:.1f} (paper ~4), "
         f"SAM x{total['SAM'] / total['AA-Dedupe']:.1f} (paper ~3)")

    # AA-Dedupe consumes the least energy of all dedup schemes.
    assert total["AA-Dedupe"] == min(total.values())
    # Avamar is the most energy-hungry, by a large factor.
    assert total["Avamar"] > 3 * total["AA-Dedupe"]
    # SAM sits above AA-Dedupe as well.
    assert total["SAM"] > 1.3 * total["AA-Dedupe"]
