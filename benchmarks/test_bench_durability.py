"""Durability bench — restore success under a fault-domain kill.

Backs up a fleet of AA-Dedupe clients against one shared backend, then
kills an **entire fault domain** (every primary container assigned to
it plus every replica it hosts) and measures what the paper's use case
ultimately cares about: *can every client still restore every
session?*  Two arms:

* **no replication** — the seed behaviour: each container exists once,
  so losing a domain loses ~1/len(domains) of the containers and the
  sessions referencing them fail to restore;
* **replication R>=2** — a criticality-weighted
  :class:`~repro.durability.policy.DurabilityPolicy` (base 2 copies)
  places replicas in surviving domains;
  :class:`~repro.core.restore.RestoreClient` fails over, so restores
  succeed despite the dead domain.

After the kill, the replicated arm runs the full recovery loop the
subsystem promises: scrub surfaces repairable findings, ``repair``
rebuilds every lost copy from survivors (the reported **repair
traffic**), a second scrub comes back clean, and a GC pass sweeps
nothing it should not (zero orphaned replicas, still clean).

Set ``DURABILITY_BENCH_SMOKE=1`` to run a down-scaled configuration
(CI).
"""

from __future__ import annotations

import os

from conftest import emit

from repro.cloud import NamespacedBackend
from repro.core import RestoreClient, aa_dedupe_config, collect_garbage
from repro.core import naming
from repro.core.scrub import scrub_cloud
from repro.durability import (DurabilityPolicy, ReplicationPlan,
                              kill_domain, repair_cloud)
from repro.errors import ReproError
from repro.fleet import FleetService, synthetic_fleet_sources
from repro.metrics import Table
from repro.util.units import KIB, format_bytes

SMOKE = bool(int(os.environ.get("DURABILITY_BENCH_SMOKE", "0")))
CLIENTS = 3 if SMOKE else 6
SESSIONS = 2 if SMOKE else 3
SEED = 2011
DOMAINS = ("d0", "d1", "d2")
KILLED = "d0"


def _run_fleet():
    service = FleetService(
        clients=CLIENTS,
        config_factory=lambda rank: aa_dedupe_config(
            container_size=32 * KIB),
        waves=1)
    sources = synthetic_fleet_sources(CLIENTS, SESSIONS, seed=SEED)
    service.run(sources, max_workers=2)
    service.close()
    return service


def _restore_success(backend) -> tuple[int, int, int]:
    """(succeeded, attempted, failovers) over every client x session."""
    ok = attempted = failovers = 0
    for rank in range(CLIENTS):
        view = NamespacedBackend(backend, f"c{rank:03d}")
        for session in range(SESSIONS):
            attempted += 1
            client = RestoreClient(view)
            try:
                _files, report = client.restore_to_memory(session)
            except ReproError:
                continue
            ok += 1
            failovers += report.failovers
    return ok, attempted, failovers


def _arm(replicate: bool) -> dict:
    service = _run_fleet()
    backend = service.backend
    result = dict(replica_bytes=0, repair_bytes=0)
    if replicate:
        rep = service.replicate(
            policy=DurabilityPolicy(base_replicas=2), domains=DOMAINS)
        assert not rep.problems
        result["replica_bytes"] = rep.replica_bytes
    primaries = len(backend.list(naming.CONTAINER_PREFIX))
    result["killed"] = kill_domain(backend, KILLED, DOMAINS)
    result["primaries"] = primaries
    ok, attempted, failovers = _restore_success(backend)
    result.update(ok=ok, attempted=attempted, failovers=failovers,
                  success=ok / attempted, backend=backend)
    return result


def test_domain_kill_restore_success(benchmark):
    results = benchmark.pedantic(
        lambda: {False: _arm(False), True: _arm(True)},
        rounds=1, iterations=1)

    table = Table(["arm", "containers", "objects killed",
                   "restores ok", "success %", "failovers",
                   "replica overhead"],
                  title=f"Domain kill ({KILLED} of {len(DOMAINS)}): "
                        f"restore success, {CLIENTS} clients x "
                        f"{SESSIONS} sessions")
    for replicated, r in results.items():
        table.add_row(["R>=2" if replicated else "R=1",
                       r["primaries"], r["killed"],
                       f"{r['ok']}/{r['attempted']}",
                       f"{100 * r['success']:.1f}",
                       r["failovers"],
                       format_bytes(r["replica_bytes"])])
    emit(table.render())

    baseline, tiered = results[False], results[True]
    # The kill actually destroyed data in both arms.
    assert baseline["killed"] >= 1 and tiered["killed"] >= 1
    # Without replication a dead domain means failed restores...
    assert baseline["success"] < 1.0
    # ...with R>=2 every restore succeeds via replica failover
    # (acceptance bar: >= 99%).
    assert tiered["success"] >= 0.99
    assert tiered["failovers"] >= 1
    assert tiered["success"] > baseline["success"]


def test_scrub_repair_gc_converge_after_kill(benchmark):
    def run():
        service = _run_fleet()
        backend = service.backend
        service.replicate(policy=DurabilityPolicy(base_replicas=2),
                          domains=DOMAINS)
        assert scrub_cloud(backend).clean
        kill_domain(backend, KILLED, DOMAINS)

        degraded = scrub_cloud(backend)
        repair = repair_cloud(backend)
        healed = scrub_cloud(backend)
        gc = collect_garbage(backend, retain_sessions=[])
        final = scrub_cloud(backend)
        return dict(backend=backend, degraded=degraded, repair=repair,
                    healed=healed, gc=gc, final=final)

    r = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(["stage", "outcome"],
                  title="Recovery loop after the domain kill")
    table.add_row(["scrub (degraded)", r["degraded"].summary_line()])
    table.add_row(["repair", f"{r['repair'].repaired} copies rebuilt, "
                   f"{format_bytes(r['repair'].bytes_copied)} "
                   f"repair traffic"])
    table.add_row(["scrub (healed)", r["healed"].summary_line()])
    table.add_row(["gc", f"{r['gc'].deleted_replicas} replicas swept, "
                   f"{r['gc'].plan_pruned} plan entries pruned"])
    table.add_row(["scrub (final)", r["final"].summary_line()])
    emit(table.render())

    # The kill degraded durability without losing data...
    assert not r["degraded"].clean and not r["degraded"].problems
    assert all(f.repairable for f in r["degraded"].findings)
    # ...repair rebuilt every copy from survivors...
    assert r["repair"].ok and r["repair"].repaired >= 1
    assert r["repair"].bytes_copied > 0
    assert r["healed"].clean
    # ...and GC swept nothing live: zero orphaned replicas, replicas
    # of live containers (tenant-marked) all kept, store still clean.
    assert r["gc"].deleted_containers == 0
    assert r["gc"].deleted_replicas == 0
    plan = ReplicationPlan.load(r["backend"])
    for key in r["backend"].list(naming.REPLICA_PREFIX):
        _domain, cid = naming.parse_replica_key(key)
        assert plan is not None and cid in plan
        assert r["backend"].exists(naming.container_key(cid))
    assert r["final"].clean
