"""Fig. 9 — backup window size per session.

Paper shape: Avamar is worst (compute/index-bound — its first full
session even exceeds the plain full-backup transfer window); for every
other scheme the window is transfer-bound; AA-Dedupe is consistently the
shortest.
"""

from conftest import SCALE, emit

from repro.metrics import Table
from repro.util.units import format_seconds


def test_fig9_backup_window(benchmark, figures, paper_eval):
    series = benchmark.pedantic(lambda: figures.fig9_window,
                                rounds=1, iterations=1)
    schemes = list(series)
    table = Table(["session"] + schemes + ["full-backup"],
                  title="Fig. 9: backup window (paper-scale estimate)")
    up = paper_eval.scale_to_paper()
    full_backup = [nbytes * up / 500_000
                   for nbytes in paper_eval.session_bytes]
    for i in range(len(full_backup)):
        table.add_row([i + 1]
                      + [format_seconds(series[s][i]) for s in schemes]
                      + [format_seconds(full_backup[i])])
    emit(table.render())

    mean = {s: sum(v) / len(v) for s, v in series.items()}
    # AA-Dedupe has the shortest window, in every single session.
    for i in range(len(full_backup)):
        assert all(series["AA-Dedupe"][i] <= series[s][i]
                   for s in schemes)
    # Avamar's initial full session exceeds even a plain full backup
    # ("even worse than the full backup method").
    assert series["Avamar"][0] > full_backup[0]
    # Among the fine-grained dedup schemes Avamar is the slowest, and it
    # is the only scheme whose window is dedup-stage-bound; BackupPC and
    # Jungle Disk are transfer-bound by their whole-file re-uploads.
    assert mean["Avamar"] > mean["SAM"] > mean["AA-Dedupe"]
    dedup_time = {
        s: sum(r.dedup_seconds for r in paper_eval.runs[s].sessions)
        for s in schemes}
    assert dedup_time["Avamar"] == max(dedup_time.values())
