"""Shared fixtures for the benchmark harness.

The paper-scale evaluation (10 weekly sessions × 5 schemes) is run once
per pytest session at ``SCALE`` of the 351 GB workload and shared by all
figure benches; byte/cost/time outputs are reported scaled back up to
paper size.  Run with ``-s`` (or rely on the final summary) to see the
regenerated tables next to the paper's reference values.
"""

from __future__ import annotations

import pytest

from repro.analysis.figures import PaperFigures, paper_figures_7_to_11
from repro.trace.driver import EvaluationResult, run_paper_evaluation

#: Fraction of the paper's 35.1 GB weekly sessions the trace evaluation
#: simulates (the index RAM budget scales with it, preserving ratios).
SCALE = 0.004
SESSIONS = 10


@pytest.fixture(scope="session")
def workload_snapshots():
    """The shared weekly workload (generated once per pytest session)."""
    from repro.trace.driver import PAPER_SESSION_BYTES
    from repro.workloads.generator import WorkloadGenerator

    total = int(PAPER_SESSION_BYTES * SCALE)
    generator = WorkloadGenerator(total_bytes=total, seed=2011,
                                  max_mean_file_size=max(64 * 1024,
                                                         total // 40))
    return list(generator.sessions(SESSIONS))


@pytest.fixture(scope="session")
def paper_eval(workload_snapshots) -> EvaluationResult:
    """The five-scheme, ten-session trace evaluation (shared)."""
    return run_paper_evaluation(scale=SCALE, sessions=SESSIONS,
                                snapshots=workload_snapshots)


@pytest.fixture(scope="session")
def figures(paper_eval) -> PaperFigures:
    """All Fig. 7–11 series extracted from the shared evaluation."""
    return paper_figures_7_to_11(result=paper_eval)


def emit(text: str) -> None:
    """Print a regenerated table (pytest shows it with -s / on failure)."""
    print("\n" + text)
