"""Stat-cache bench — cross-session recipe replay on unchanged files.

Drives the AA-Dedupe engine over an unchanged-majority PC workload (the
paper's application mix minus VM images, whose 90 %-weekly block
rewrites are not the population this cache targets) twice: with the
stat cache and with ``stat_cache=False``.  Reports per-session read and
hash volume plus replay counts, then asserts the claims the cache must
honour:

* warm sessions read and hash at most 20 % of the bytes the cache-off
  arm reads (the unchanged majority is replayed from cached recipes);
* the cache changes client CPU work only — both arms restore every
  session bit-identically;
* the cached store passes a full scrub (zero findings) afterwards.

Set ``STATCACHE_BENCH_SMOKE=1`` to run a down-scaled configuration (CI).
"""

from __future__ import annotations

import os

from conftest import emit

from repro.cloud.memory import InMemoryBackend
from repro.core.backup import BackupClient
from repro.core.options import aa_dedupe_config
from repro.core.restore import RestoreClient
from repro.core.scrub import scrub_cloud
from repro.metrics import Table
from repro.util.units import MB, format_bytes
from repro.workloads import (
    WorkloadGenerator,
    materialize_snapshot,
    snapshot_to_memory_source,
)
from repro.workloads.profiles import PAPER_PROFILES

SMOKE = bool(int(os.environ.get("STATCACHE_BENCH_SMOKE", "0")))
TOTAL_BYTES = (16 if SMOKE else 64) * MB
SESSIONS = 2 if SMOKE else 3
SEED = 2011


def _snapshots():
    profiles = [p for p in PAPER_PROFILES if p.label != "vmdk"]
    gen = WorkloadGenerator(total_bytes=TOTAL_BYTES, seed=SEED,
                            max_mean_file_size=2 * MB, profiles=profiles)
    return list(gen.sessions(SESSIONS))


def _run(snapshots, stat_cache: bool):
    config = aa_dedupe_config(stat_cache=stat_cache)
    cloud = InMemoryBackend()
    client = BackupClient(cloud, config)
    stats = [client.backup(snapshot_to_memory_source(s))
             for s in snapshots]
    client.close()
    return cloud, stats


def test_statcache_skips_rechunking_unchanged_files():
    snapshots = _snapshots()
    off_cloud, off_stats = _run(snapshots, stat_cache=False)
    on_cloud, on_stats = _run(snapshots, stat_cache=True)

    table = Table(["session", "read (off)", "read (cache)",
                   "hashed (cache)", "replayed", "stale", "DR cache"])
    for off, on in zip(off_stats, on_stats):
        table.add_row([
            on.session_id,
            format_bytes(off.ops.read_bytes),
            format_bytes(on.ops.read_bytes),
            format_bytes(sum(on.ops.hashed_bytes.values())),
            f"{on.files_unchanged}/{on.files_total}",
            on.statcache_stale,
            f"{on.dedup_ratio:.2f}",
        ])
    emit(table.render())

    # Cold sessions are identical work in both arms.
    assert on_stats[0].ops.read_bytes == off_stats[0].ops.read_bytes
    assert on_stats[0].files_unchanged == 0

    # The headline claim: warm sessions read and hash at most 20 % of
    # what the cache-off arm does on the same snapshot.
    for off, on in zip(off_stats[1:], on_stats[1:]):
        assert on.files_unchanged > 0.5 * on.files_total
        assert on.ops.read_bytes <= 0.2 * off.ops.read_bytes
        assert (sum(on.ops.hashed_bytes.values())
                <= 0.2 * sum(off.ops.hashed_bytes.values()))
        # The replay still feeds dedup accounting the full dataset.
        assert on.bytes_scanned == off.bytes_scanned

    # The cache changes CPU work, not backup content: every session of
    # the cached arm restores bit-identically.
    restorer = RestoreClient(on_cloud)
    for sid, snap in enumerate(snapshots):
        out, report = restorer.restore_to_memory(sid)
        assert out == materialize_snapshot(snap), \
            f"session {sid} not bit-identical"
        assert not report.corrupt

    # ...and the replayed store passes a full scrub with zero findings.
    report = scrub_cloud(on_cloud)
    assert report.clean, report.problems
