"""Ablation A — the application-aware index structure (paper Sec. III-E).

Runs AA-Dedupe with its per-application index family versus the same
policy over a single unified (global) index, on identical snapshots:
the unified index outgrows the RAM budget and starts paying random disk
IOs, while every per-application subindex stays resident.  Also
exercises the paper's future-work direction: parallel subindex lookups
on a real on-disk index.
"""

import hashlib

from conftest import SCALE, emit

from repro.core import aa_dedupe_config
from repro.index import AppAwareIndex, DiskIndex, IndexEntry
from repro.metrics import Table
from repro.trace.driver import run_paper_evaluation
from repro.util.units import format_bytes, format_seconds


def test_app_aware_vs_unified_index(benchmark, workload_snapshots):
    def run():
        return run_paper_evaluation(
            scale=SCALE,
            snapshots=workload_snapshots,
            schemes=[aa_dedupe_config(),
                     aa_dedupe_config(name="AA-unified-index",
                                      index_layout="global")])

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    up = result.scale_to_paper()
    table = Table(["variant", "index entries", "largest ns", "disk IOs",
                   "dedup time", "mean DE"],
                  title="Ablation A: per-application vs unified index")
    for name, run_ in result.runs.items():
        total_ios = sum(r.index_disk_ios for r in run_.sessions)
        dedup = sum(r.dedup_seconds for r in run_.sessions)
        table.add_row([name, "-", "-", f"{total_ios * up:,.0f}",
                       format_seconds(dedup * up),
                       format_bytes(run_.mean_efficiency(), decimal=True)
                       + "/s"])
    emit(table.render())

    aa = result.runs["AA-Dedupe"]
    unified = result.runs["AA-unified-index"]
    # Identical dedup effectiveness (Observation 2: no cross-app dups) —
    # compared on unique payload bytes; uploaded bytes differ slightly
    # because per-app container streams pad their last container each.
    aa_unique = sum(r.stats.bytes_unique for r in aa.sessions)
    unified_unique = sum(r.stats.bytes_unique for r in unified.sessions)
    assert aa_unique == unified_unique
    # …but the unified index pays disk IOs the partitioned one avoids.
    aa_ios = sum(r.index_disk_ios for r in aa.sessions)
    unified_ios = sum(r.index_disk_ios for r in unified.sessions)
    assert aa_ios == 0
    assert unified_ios > 1000
    # Note: AA's own policy (WFC for compressed media) already shrinks
    # the chunk population, so at 35 GB the unified variant only *begins*
    # to spill — the efficiency gap is modest here and widens with
    # dataset size; the dedup-energy gap is already pronounced.
    assert aa.mean_efficiency() > 1.05 * unified.mean_efficiency()
    aa_energy = sum(r.energy_joules for r in aa.sessions)
    unified_energy = sum(r.energy_joules for r in unified.sessions)
    assert unified_energy > 1.1 * aa_energy
    # The spill deepens as the index grows: by the final session the
    # unified variant burns well over 1.5x the dedup energy.
    assert unified.sessions[-1].energy_joules > \
        1.5 * aa.sessions[-1].energy_joules


def _populated_index(tmp_path, apps=4, entries_per_app=400):
    index = AppAwareIndex(factory=lambda app: DiskIndex(
        tmp_path / app, memtable_limit=64), max_workers=4)
    queries = []
    for a in range(apps):
        app = f"app{a}"
        for i in range(entries_per_app):
            fp = hashlib.sha1(f"{app}/{i}".encode()).digest()
            index.insert(app, IndexEntry(fp, a, i, 100))
            queries.append((app, fp))
    index.flush()
    return index, queries


def test_parallel_subindex_lookup(benchmark, tmp_path):
    """Future-work feature: concurrent per-application index probing."""
    index, queries = _populated_index(tmp_path)
    results = benchmark(index.lookup_batch, queries, True)
    assert all(r is not None for r in results)
    index.close()


def test_serial_subindex_lookup(benchmark, tmp_path):
    """Serial baseline for the parallel lookup benchmark."""
    index, queries = _populated_index(tmp_path)
    results = benchmark(index.lookup_batch, queries, False)
    assert all(r is not None for r in results)
    index.close()
