"""Restore performance — the chunk-locality claim, quantified.

Sec. III-F: the container manager "uses chunk locality to group chunks
likely to be retrieved together so that the data restoration performance
will be reasonably good."  This bench restores a real backed-up session
under different container-cache sizes and measures container fetches:
with locality-preserving packing, even a small cache keeps re-fetches
near the theoretical minimum of one fetch per container.
"""

import pytest
from conftest import emit

from repro.cloud import InMemoryBackend
from repro.core import BackupClient, RestoreClient, aa_dedupe_config
from repro.core import naming
from repro.metrics import Table
from repro.util.units import KIB, MB
from repro.workloads import WorkloadGenerator, snapshot_to_memory_source


@pytest.fixture(scope="module")
def backed_up_cloud():
    generator = WorkloadGenerator(total_bytes=12 * MB, seed=33,
                                  max_mean_file_size=1 * MB)
    snapshot = generator.initial_snapshot()
    cloud = InMemoryBackend()
    client = BackupClient(cloud,
                          aa_dedupe_config(container_size=64 * KIB))
    client.backup(snapshot_to_memory_source(snapshot))
    return cloud


def test_restore_container_cache_sweep(benchmark, backed_up_cloud):
    cloud = backed_up_cloud
    containers = len(cloud.list(naming.CONTAINER_PREFIX))

    def run():
        results = {}
        for cache_size in (1, 2, 8, 64):
            before = cloud.stats.get_requests
            client = RestoreClient(cloud, container_cache_size=cache_size)
            _files, report = client.restore_to_memory(0)
            results[cache_size] = (report.containers_fetched,
                                   cloud.stats.get_requests - before)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(["cache (containers)", "container fetches",
                   "min possible", "overfetch"],
                  title="Restore: container cache vs fetches "
                        f"({containers} containers in store)")
    for cache_size, (fetched, _gets) in results.items():
        table.add_row([cache_size, fetched, containers,
                       f"{fetched / containers:.2f}x"])
    emit(table.render())

    # A generous cache achieves the minimum: one fetch per container.
    assert results[64][0] == containers
    # Thanks to chunk locality, even a tiny cache stays within 2x of the
    # minimum rather than degenerating to one fetch per chunk.
    assert results[2][0] <= 2 * containers
    # More cache never means more fetches.
    fetches = [results[c][0] for c in (1, 2, 8, 64)]
    assert fetches == sorted(fetches, reverse=True)


def test_restore_throughput_real(benchmark, backed_up_cloud):
    """Wall-clock restore of the session (pytest-benchmark rows)."""
    def restore():
        client = RestoreClient(backed_up_cloud, container_cache_size=16)
        files, report = client.restore_to_memory(0)
        return report

    report = benchmark.pedantic(restore, rounds=3, iterations=1)
    assert report.files_restored > 50
