"""Deduplication effectiveness and efficiency metrics.

The paper's contribution metric (Sec. IV-B): **bytes saved per second**::

    DE = SC / DT_time = (1 - 1/DR) · DT

where SC is saved capacity, DR the dedup ratio, DT the dedup throughput.
Both formulations are provided and property-tested for equivalence.
"""

from __future__ import annotations

__all__ = ["dedup_ratio", "bytes_saved_per_second", "dedup_efficiency"]


def dedup_ratio(bytes_before: float, bytes_after: float) -> float:
    """DR: logical bytes over stored bytes (≥ 1 for any dedup)."""
    if bytes_after <= 0:
        return float("inf") if bytes_before > 0 else 1.0
    return bytes_before / bytes_after


def bytes_saved_per_second(bytes_before: float, bytes_after: float,
                           dedup_seconds: float) -> float:
    """DE by its definition: saved capacity per second of dedup time."""
    if dedup_seconds <= 0:
        return float("inf") if bytes_before > bytes_after else 0.0
    return (bytes_before - bytes_after) / dedup_seconds


def dedup_efficiency(dr: float, throughput: float) -> float:
    """DE by the paper's closed form ``(1 − 1/DR) · DT``."""
    if dr <= 0:
        raise ValueError("dedup ratio must be positive")
    return (1.0 - 1.0 / dr) * throughput
