"""Fixed-width text tables for bench output.

The benchmark harness regenerates each paper table/figure as text; this
tiny formatter keeps the output aligned and diff-friendly without any
plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["Table"]


class Table:
    """Accumulate rows, render with aligned columns.

    >>> t = Table(["scheme", "DR"])
    >>> t.add_row(["AA-Dedupe", 27.5])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    scheme     |    DR
    -----------+------
    AA-Dedupe  | 27.50
    """

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    @staticmethod
    def _fmt(value) -> str:
        if isinstance(value, float):
            if value != value:  # NaN
                return "nan"
            if abs(value) >= 1000 or (value != 0 and abs(value) < 0.01):
                return f"{value:.3g}"
            return f"{value:.2f}"
        return str(value)

    def add_row(self, values: Iterable) -> None:
        """Append one row (values are formatted on render)."""
        row = [self._fmt(v) for v in values]
        if len(row) != len(self.headers):
            raise ValueError("row width != header width")
        self.rows.append(row)

    def render(self) -> str:
        """Render the table as aligned text."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        def fmt_row(cells, align_left_first=True):
            parts = []
            for i, cell in enumerate(cells):
                if i == 0:
                    parts.append(cell.ljust(widths[i] + 1))
                else:
                    parts.append(cell.rjust(widths[i]))
            return " | ".join(parts).rstrip()

        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt_row(self.headers))
        lines.append("-+-".join("-" * (w + (1 if i == 0 else 0))
                                for i, w in enumerate(widths)))
        for row in self.rows:
            lines.append(fmt_row(row))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
