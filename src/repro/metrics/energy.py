"""Energy metric (paper Sec. IV-F, Fig. 11)."""

from __future__ import annotations

from repro.simulate.powermodel import PAPER_POWER, PowerModel

__all__ = ["session_energy_joules"]


def session_energy_joules(dedup_seconds: float,
                          transfer_seconds: float = 0.0,
                          power: PowerModel = PAPER_POWER,
                          pipelined: bool = True,
                          dedup_only: bool = True) -> float:
    """Energy of a backup session.

    With ``dedup_only=True`` (the paper's Fig. 11 methodology — power is
    metered "during the deduplication process") only the dedup phase is
    charged; otherwise the full pipelined session is integrated.
    """
    if dedup_only:
        return power.dedup_energy_joules(dedup_seconds)
    return power.session_energy_joules(dedup_seconds, transfer_seconds,
                                       pipelined=pipelined)
