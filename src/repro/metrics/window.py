"""Backup window metric (paper Sec. IV-D).

``BWS = DS · max(1/DT, 1/(DR·NT))`` — with the pipelined engine the
window is governed by the slower of deduplication and WAN transfer.
"""

from __future__ import annotations

__all__ = ["backup_window_seconds"]


def backup_window_seconds(dataset_bytes: float,
                          dedup_throughput: float,
                          dedup_ratio: float,
                          network_throughput: float,
                          pipelined: bool = True) -> float:
    """Evaluate the paper's BWS expression from rates.

    ``network_throughput`` (NT) is upload bytes/second; ``dedup_ratio``
    reduces the transferred volume to ``DS/DR``.
    """
    if dedup_throughput <= 0 or network_throughput <= 0 or dedup_ratio <= 0:
        raise ValueError("rates must be positive")
    dedup_time = dataset_bytes / dedup_throughput
    transfer_time = dataset_bytes / (dedup_ratio * network_throughput)
    if pipelined:
        return max(dedup_time, transfer_time)
    return dedup_time + transfer_time
