"""Evaluation metrics: the paper's Sec. IV quantities as functions.

* :mod:`repro.metrics.dedup` — dedup ratio DR and the paper's new metric
  *bytes saved per second* (deduplication efficiency DE);
* :mod:`repro.metrics.window` — backup window BWS;
* :mod:`repro.metrics.cost` — cloud cost CC;
* :mod:`repro.metrics.energy` — session energy;
* :mod:`repro.metrics.report` — fixed-width text tables for the bench
  harness output.
"""

from repro.metrics.dedup import dedup_ratio, bytes_saved_per_second, dedup_efficiency
from repro.metrics.window import backup_window_seconds
from repro.metrics.cost import cloud_cost, CostBreakdown
from repro.metrics.energy import session_energy_joules
from repro.metrics.report import Table

__all__ = [
    "dedup_ratio",
    "bytes_saved_per_second",
    "dedup_efficiency",
    "backup_window_seconds",
    "cloud_cost",
    "CostBreakdown",
    "session_energy_joules",
    "Table",
]
