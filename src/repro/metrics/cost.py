"""Cloud cost metric (paper Sec. IV-E).

``CC = DS/DR · (SP + TP) + OC · OP`` with April-2011 Amazon S3 prices.
:func:`cloud_cost` evaluates it from observed byte/request totals and
returns a :class:`CostBreakdown` so benches can show where the money
goes (the request-cost column is what container aggregation wins).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.pricing import PriceBook, S3_APRIL_2011

__all__ = ["CostBreakdown", "cloud_cost"]


@dataclass(frozen=True)
class CostBreakdown:
    """Monthly bill split into the three S3 components (USD)."""

    storage: float
    transfer: float
    requests: float

    @property
    def total(self) -> float:
        """Sum of all components."""
        return self.storage + self.transfer + self.requests


def cloud_cost(stored_bytes: float, uploaded_bytes: float,
               put_requests: int,
               prices: PriceBook = S3_APRIL_2011,
               months: float = 1.0) -> CostBreakdown:
    """The paper's CC as a component breakdown."""
    return CostBreakdown(
        storage=prices.storage_cost(stored_bytes, months),
        transfer=prices.transfer_cost(uploaded_bytes),
        requests=prices.request_cost(put_requests),
    )
