"""Per-job retention applied through the real garbage collector.

Each job's sessions live as manifests in its tenant namespace
(``clients/<job>/manifests/``).  Applying a retention policy is a
two-phase operation on the *shared* backend:

1. **select + drop** — catalogue the job's sessions through its
   :class:`~repro.cloud.NamespacedBackend` view, let the policy pick the
   retained set, and delete the dropped manifests *through the view*
   (only this job's liveness pins are released);
2. **sweep** — run :func:`~repro.core.gc.collect_garbage` against the
   **root** backend, retaining every root session.  The collector's
   fleet-wide mark phase re-walks every surviving tenant manifest, so
   data another job still references is never deleted, and a
   data-deleting sweep bumps every tenant's stat-cache epoch.

Running the collector through the job's view instead would be unsafe:
the view maps the tenant mark walk to ``clients/<job>/clients/…`` —
empty — so every *other* job's liveness pins would be invisible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.core import naming
from repro.core.gc import GCReport, collect_garbage, session_catalog

__all__ = ["RetentionOutcome", "apply_retention"]


@dataclass
class RetentionOutcome:
    """What one retention pass selected and what the sweep removed."""

    policy: str
    retained: List[int] = field(default_factory=list)
    dropped: List[int] = field(default_factory=list)
    deleted_containers: int = 0
    deleted_objects: int = 0
    statcache_invalidated: bool = False
    #: GC refusals (unreadable manifests etc.); non-empty means the
    #: dropped manifests are gone but no data was swept this pass — the
    #: next clean sweep reclaims it.
    problems: List[str] = field(default_factory=list)

    @property
    def swept(self) -> bool:
        return self.deleted_containers > 0 or self.deleted_objects > 0


def _root_session_ids(root) -> Set[int]:
    ids: Set[int] = set()
    for key in root.list(naming.MANIFEST_PREFIX):
        stem = key.rsplit("session-", 1)[-1]
        try:
            ids.add(int(stem.split(".", 1)[0]))
        except ValueError:
            continue
    return ids


def apply_retention(root, view, policy, now: float,
                    tracer=None) -> Optional[RetentionOutcome]:
    """Apply ``policy`` to the job behind ``view``; sweep via ``root``.

    ``view`` is the job's namespaced backend, ``root`` the underlying
    shared backend, ``now`` the virtual time the policy evaluates ages
    against.  Returns ``None`` when the job has no sessions yet.
    """
    catalog = session_catalog(view)
    if not catalog:
        return None
    retained = policy.select(catalog, now)
    dropped = sorted(set(catalog) - retained)
    outcome = RetentionOutcome(policy=type(policy).__name__,
                               retained=sorted(retained),
                               dropped=dropped)
    if not dropped:
        return outcome
    for session_id in dropped:
        view.delete(naming.manifest_key(session_id))
    # Root sessions are not this job's to drop: retain them all.  The
    # sweep still reclaims whatever the dropped tenant manifests alone
    # were pinning.
    report: GCReport = collect_garbage(root, _root_session_ids(root))
    outcome.deleted_containers = report.deleted_containers
    outcome.deleted_objects = report.deleted_objects
    outcome.statcache_invalidated = report.statcache_invalidated
    outcome.problems = list(report.problems)
    return outcome
