"""Interval schedules evaluated on the service's deterministic clock.

The declarative service layer schedules jobs the way the exemplar
backup-plan schema does — ``{frequencyInSeconds, offset}`` — rather than
cron strings: an interval/offset pair has exact arithmetic on the
:class:`~repro.simulate.clock.VirtualClock`, so a whole multi-job
service loop replays bit-identically in tests and benchmarks.  A job's
occurrences are ``offset, offset + interval, offset + 2·interval, …``;
the scheduler (:class:`repro.service.runner.BackupService`) advances the
clock to the earliest pending occurrence and runs every job due there in
declaration order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError

__all__ = ["IntervalSchedule", "JobClock"]


@dataclass(frozen=True)
class IntervalSchedule:
    """Occurrences every ``interval`` seconds, phase-shifted by ``offset``.

    ``offset`` staggers jobs that share an interval — the service-loop
    analogue of the fleet's backup waves — and doubles as the first
    occurrence time.
    """

    interval: float
    offset: float = 0.0

    def __post_init__(self) -> None:
        if not (self.interval > 0):
            raise ConfigError(
                f"schedule interval must be > 0 seconds, "
                f"got {self.interval}")
        if self.offset < 0:
            raise ConfigError(
                f"schedule offset must be >= 0 seconds, "
                f"got {self.offset}")

    def first(self) -> float:
        """Time of the first occurrence."""
        return self.offset

    def next_after(self, t: float) -> float:
        """The earliest occurrence strictly after ``t``."""
        if t < self.offset:
            return self.offset
        k = math.floor((t - self.offset) / self.interval) + 1
        return self.offset + k * self.interval

    def occurrences_until(self, horizon: float) -> int:
        """How many occurrences fall in ``[offset, horizon]``."""
        if horizon < self.offset:
            return 0
        return int(math.floor((horizon - self.offset) / self.interval)) + 1


class JobClock:
    """Per-job scheduling state: when it last ran, when it is next due,
    and how it has been faring.

    ``next_due`` is ``None`` for unscheduled (manually triggered) jobs.
    """

    def __init__(self, schedule: Optional[IntervalSchedule]) -> None:
        self.schedule = schedule
        self.next_due: Optional[float] = (
            schedule.first() if schedule is not None else None)
        self.last_run_at: Optional[float] = None
        self.runs = 0
        self.failures = 0
        self.consecutive_failures = 0

    def due(self, now: float) -> bool:
        """Whether a scheduled occurrence is pending at ``now``."""
        return self.next_due is not None and self.next_due <= now

    def note_run(self, scheduled_for: float, ok: bool) -> None:
        """Record one executed occurrence and roll the schedule forward."""
        self.last_run_at = scheduled_for
        self.runs += 1
        if ok:
            self.consecutive_failures = 0
        else:
            self.failures += 1
            self.consecutive_failures += 1
        if self.schedule is not None:
            self.next_due = self.schedule.next_after(scheduled_for)
