"""Declarative job specs: YAML/dict configs parsed into dataclasses.

The schema follows the BackupPlan shape of the exemplar data model —
per-job source, scheme, ``{interval, offset}`` schedule, retention
policy, hooks and tags — validated eagerly so every mistake surfaces as
a :class:`~repro.errors.ConfigError` *before* any job runs (the CLI
maps that to exit code 2).  A minimal config::

    jobs:
      - name: documents
        source: {path: /home/me/Documents}
        schedule: {interval: 86400, offset: 3600}
        retention: {policy: retain-last, count: 7}

Everything else defaults to the paper's AA-Dedupe scheme.  See
``docs/SERVICE.md`` for the full schema and ``examples/jobs.yaml`` for
a worked multi-job file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Tuple, Union

from repro.core.options import SchemeConfig
from repro.core.retention import RetainLastN, RetainMaxAge
from repro.errors import ConfigError
from repro.service.hooks import HookSet, HookSpec
from repro.service.schedule import IntervalSchedule
from repro.service.sources import (
    CallableJobSource,
    DirectoryJobSource,
    JobSource,
    SyntheticJobSource,
)
from repro.util.units import parse_size

__all__ = ["JobSpec", "ServiceSpec", "parse_config", "load_config",
           "loads_config"]

_TOP_KEYS = {"jobs", "until"}
_JOB_KEYS = {"name", "scheme", "chunker", "app_chunkers",
             "container_size", "delta", "stat_cache", "pipeline",
             "parallel", "options", "schedule", "retention", "hooks",
             "tags", "source"}
_SOURCE_KEYS = {"kind", "path", "prefix", "seed", "files", "file_kib",
                "churn"}
_SCHEDULE_KEYS = {"interval", "offset"}
_RETENTION_KEYS = {"policy", "count", "seconds"}
_HOOKS_KEYS = {"pre", "post", "failure_policy"}
_HOOK_KEYS = {"name", "run", "builtin"}


def _fail(context: str, message: str) -> "ConfigError":
    return ConfigError(f"{context}: {message}")


def _check_keys(doc: Mapping, allowed: set, context: str) -> None:
    unknown = sorted(set(doc) - allowed)
    if unknown:
        raise _fail(context,
                    f"unknown key(s) {', '.join(map(repr, unknown))}; "
                    f"allowed: {', '.join(sorted(allowed))}")


def _number(value, context: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _fail(context, f"expected a number, got {value!r}")
    return float(value)


def _scheme_by_name(name: str) -> SchemeConfig:
    """Resolve a scheme name, raising ConfigError (not SystemExit)."""
    from repro.baselines import all_scheme_configs
    for config in all_scheme_configs():
        if config.name.lower() == name.lower():
            return config
    names = ", ".join(c.name for c in all_scheme_configs())
    raise ConfigError(f"unknown scheme {name!r}; available: {names}")


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _SourceSpec:
    """Parsed ``source:`` block; builds the runtime JobSource."""

    kind: str                      # "directory" | "synthetic"
    path: Optional[str] = None
    prefix: Optional[str] = None   # synthetic: defaults to the job name
    seed: int = 2011
    files: int = 6
    file_kib: int = 24
    churn: float = 0.25

    def build(self, job_name: str) -> JobSource:
        if self.kind == "directory":
            return DirectoryJobSource(self.path)
        return SyntheticJobSource(self.prefix or job_name,
                                  seed=self.seed, files=self.files,
                                  file_kib=self.file_kib,
                                  churn=self.churn)

    def describe(self) -> str:
        if self.kind == "directory":
            return self.path or "?"
        return (f"synthetic(files={self.files}, "
                f"{self.file_kib} KiB, churn={self.churn})")


def _parse_source(doc, context: str) -> _SourceSpec:
    if isinstance(doc, str):
        return _SourceSpec(kind="directory", path=doc)
    if not isinstance(doc, Mapping):
        raise _fail(context, "source must be a path string or a mapping")
    _check_keys(doc, _SOURCE_KEYS, context)
    kind = doc.get("kind")
    if kind is None:
        kind = "directory" if "path" in doc else "synthetic"
    if kind == "directory":
        path = doc.get("path")
        if not isinstance(path, str) or not path:
            raise _fail(context, "directory source needs a path")
        return _SourceSpec(kind="directory", path=path)
    if kind != "synthetic":
        raise _fail(context, f"unknown source kind {kind!r}; "
                             f"valid: directory, synthetic")
    spec = {}
    for key in ("seed", "files", "file_kib"):
        if key in doc:
            value = doc[key]
            if isinstance(value, bool) or not isinstance(value, int):
                raise _fail(context, f"{key} must be an integer")
            spec[key] = value
    if "churn" in doc:
        churn = _number(doc["churn"], f"{context}: churn")
        if not (0.0 <= churn <= 1.0):
            raise _fail(context, f"churn must be in [0, 1], got {churn}")
        spec["churn"] = churn
    if "prefix" in doc:
        if not isinstance(doc["prefix"], str) or not doc["prefix"]:
            raise _fail(context, "prefix must be a non-empty string")
        spec["prefix"] = doc["prefix"]
    if spec.get("files", 6) < 1 or spec.get("file_kib", 24) < 1:
        raise _fail(context, "files and file_kib must be >= 1")
    return _SourceSpec(kind="synthetic", **spec)


def _parse_schedule(doc, context: str) -> IntervalSchedule:
    if not isinstance(doc, Mapping):
        raise _fail(context, "schedule must be a mapping with interval "
                             "(seconds) and optional offset")
    _check_keys(doc, _SCHEDULE_KEYS, context)
    if "interval" not in doc:
        raise _fail(context, "schedule needs an interval (seconds)")
    interval = _number(doc["interval"], f"{context}: interval")
    offset = _number(doc.get("offset", 0.0), f"{context}: offset")
    return IntervalSchedule(interval=interval, offset=offset)


def _parse_retention(doc, context: str):
    if not isinstance(doc, Mapping):
        raise _fail(context, "retention must be a mapping with a policy")
    _check_keys(doc, _RETENTION_KEYS, context)
    policy = doc.get("policy")
    if policy in ("retain-last", "last"):
        count = doc.get("count")
        if isinstance(count, bool) or not isinstance(count, int):
            raise _fail(context, "retain-last needs an integer count")
        return RetainLastN(count)
    if policy in ("max-age", "age"):
        if "seconds" not in doc:
            raise _fail(context, "max-age needs seconds")
        return RetainMaxAge(_number(doc["seconds"],
                                    f"{context}: seconds"))
    raise _fail(context, f"unknown retention policy {policy!r}; "
                         f"valid: retain-last, max-age")


def _parse_hook(doc, context: str) -> HookSpec:
    if isinstance(doc, str):
        return HookSpec(command=doc)
    if not isinstance(doc, Mapping):
        raise _fail(context, "a hook is a command string or a mapping "
                             "with run:/builtin:")
    _check_keys(doc, _HOOK_KEYS, context)
    return HookSpec(command=doc.get("run"), builtin=doc.get("builtin"),
                    name=doc.get("name", ""))


def _parse_hooks(doc, context: str) -> HookSet:
    if not isinstance(doc, Mapping):
        raise _fail(context, "hooks must be a mapping")
    _check_keys(doc, _HOOKS_KEYS, context)

    def hook_list(key: str) -> tuple:
        entries = doc.get(key, ())
        if isinstance(entries, (str, Mapping)):
            entries = [entries]
        if not isinstance(entries, Sequence):
            raise _fail(context, f"{key} must be a list of hooks")
        return tuple(_parse_hook(entry, f"{context}: {key}[{i}]")
                     for i, entry in enumerate(entries))

    return HookSet(pre=hook_list("pre"), post=hook_list("post"),
                   failure_policy=doc.get("failure_policy", "abort"))


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobSpec:
    """One declarative backup job (parsed and validated).

    ``name`` doubles as the job's tenant namespace on the shared
    backend (``clients/<name>/…``), so it must be namespace-safe.
    """

    name: str
    source: Union[_SourceSpec, JobSource, None] = None
    scheme: str = "AA-Dedupe"
    chunker: Optional[str] = None
    app_chunkers: Mapping[str, str] = field(default_factory=dict)
    container_size: Optional[int] = None
    delta: Optional[bool] = None
    stat_cache: Optional[bool] = None
    pipeline: Optional[bool] = None
    parallel: Optional[int] = None
    options: Mapping[str, object] = field(default_factory=dict)
    schedule: Optional[IntervalSchedule] = None
    retention: Optional[object] = None
    hooks: HookSet = field(default_factory=HookSet)
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        name = self.name
        if (not name or not all(c.isalnum() or c in "-_." for c in name)
                or name in (".", "..")):
            raise ConfigError(
                f"job name {name!r} is not namespace-safe (letters, "
                f"digits, '-', '_', '.' only)")
        # Fail on config mistakes now, not at run time.
        self.scheme_config()

    # ------------------------------------------------------------------
    def scheme_config(self) -> SchemeConfig:
        """Build the job's :class:`SchemeConfig` (raises ConfigError)."""
        config = _scheme_by_name(self.scheme)
        if self.container_size is not None:
            config = config.with_(container_size=self.container_size)
        if self.chunker is not None:
            config = config.with_chunker(self.chunker)
        if self.app_chunkers:
            config = config.with_(app_chunkers=dict(self.app_chunkers))
        if self.delta is not None:
            config = config.with_(delta_compress=self.delta)
        if self.stat_cache is not None:
            config = config.with_(stat_cache=self.stat_cache)
        if self.pipeline is not None:
            config = config.with_(pipeline_uploads=self.pipeline)
        if self.parallel is not None:
            if self.parallel < 1:
                raise ConfigError(
                    f"job {self.name!r}: parallel must be >= 1")
            config = config.with_(parallel_workers=self.parallel)
        if self.options:
            try:
                config = config.with_(**dict(self.options))
            except TypeError as exc:
                raise ConfigError(
                    f"job {self.name!r}: bad options: {exc}") from exc
        return config

    def make_source(self) -> JobSource:
        """Build this job's runtime source (raises ConfigError if none)."""
        if self.source is None:
            raise ConfigError(f"job {self.name!r} has no source")
        if isinstance(self.source, _SourceSpec):
            return self.source.build(self.name)
        if isinstance(self.source, JobSource):
            return self.source
        return CallableJobSource(self.source)

    def describe_source(self) -> str:
        if isinstance(self.source, _SourceSpec):
            return self.source.describe()
        return type(self.source).__name__ if self.source else "-"


def _parse_job(doc, index: int) -> JobSpec:
    context = f"jobs[{index}]"
    if not isinstance(doc, Mapping):
        raise _fail(context, "each job must be a mapping")
    name = doc.get("name")
    if not isinstance(name, str) or not name:
        raise _fail(context, "every job needs a non-empty name")
    context = f"job {name!r}"
    _check_keys(doc, _JOB_KEYS, context)
    if "source" not in doc:
        raise _fail(context, "every job needs a source")
    kwargs: dict = {
        "name": name,
        "source": _parse_source(doc["source"], f"{context}: source"),
    }
    if "scheme" in doc:
        if not isinstance(doc["scheme"], str):
            raise _fail(context, "scheme must be a string")
        kwargs["scheme"] = doc["scheme"]
    if "chunker" in doc:
        if not isinstance(doc["chunker"], str):
            raise _fail(context, "chunker must be a string")
        kwargs["chunker"] = doc["chunker"]
    if "app_chunkers" in doc:
        table = doc["app_chunkers"]
        if not isinstance(table, Mapping) or not all(
                isinstance(k, str) and isinstance(v, str)
                for k, v in table.items()):
            raise _fail(context,
                        "app_chunkers must map app labels to chunkers")
        kwargs["app_chunkers"] = dict(table)
    if "container_size" in doc:
        raw = doc["container_size"]
        try:
            kwargs["container_size"] = (
                raw if isinstance(raw, int) and not isinstance(raw, bool)
                else parse_size(str(raw)))
        except (ValueError, TypeError) as exc:
            raise _fail(context, f"bad container_size: {exc}") from exc
    for key, dest in (("delta", "delta"), ("stat_cache", "stat_cache"),
                      ("pipeline", "pipeline")):
        if key in doc:
            if not isinstance(doc[key], bool):
                raise _fail(context, f"{key} must be true/false")
            kwargs[dest] = doc[key]
    if "parallel" in doc:
        value = doc["parallel"]
        if isinstance(value, bool) or not isinstance(value, int):
            raise _fail(context, "parallel must be an integer")
        kwargs["parallel"] = value
    if "options" in doc:
        if not isinstance(doc["options"], Mapping):
            raise _fail(context, "options must be a mapping")
        kwargs["options"] = dict(doc["options"])
    if "schedule" in doc:
        kwargs["schedule"] = _parse_schedule(doc["schedule"],
                                             f"{context}: schedule")
    if "retention" in doc:
        kwargs["retention"] = _parse_retention(doc["retention"],
                                               f"{context}: retention")
    if "hooks" in doc:
        kwargs["hooks"] = _parse_hooks(doc["hooks"], f"{context}: hooks")
    if "tags" in doc:
        tags = doc["tags"]
        if isinstance(tags, str):
            tags = [tags]
        if not isinstance(tags, Sequence) or not all(
                isinstance(t, str) for t in tags):
            raise _fail(context, "tags must be a list of strings")
        kwargs["tags"] = tuple(tags)
    return JobSpec(**kwargs)


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ServiceSpec:
    """A full service configuration: the job list plus loop defaults."""

    jobs: Tuple[JobSpec, ...]
    #: Default schedule horizon (seconds of virtual time) for
    #: ``BackupService.run()``; ``None`` means one-shot mode unless the
    #: caller passes a horizon.
    until: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ConfigError("config defines no jobs")
        seen = set()
        for job in self.jobs:
            if job.name in seen:
                raise ConfigError(f"duplicate job name {job.name!r}")
            seen.add(job.name)

    def job(self, name: str) -> JobSpec:
        for job in self.jobs:
            if job.name == name:
                return job
        names = ", ".join(j.name for j in self.jobs)
        raise ConfigError(f"no job named {name!r}; defined: {names}")

    def job_names(self) -> Tuple[str, ...]:
        return tuple(job.name for job in self.jobs)


def parse_config(doc) -> ServiceSpec:
    """Validate a parsed YAML/JSON document into a :class:`ServiceSpec`."""
    if not isinstance(doc, Mapping):
        raise ConfigError("config root must be a mapping with a "
                          "'jobs' list")
    _check_keys(doc, _TOP_KEYS, "config")
    jobs_doc = doc.get("jobs")
    if not isinstance(jobs_doc, Sequence) or isinstance(jobs_doc, str):
        raise ConfigError("config needs a 'jobs' list")
    jobs = tuple(_parse_job(job, i) for i, job in enumerate(jobs_doc))
    until = None
    if "until" in doc:
        until = _number(doc["until"], "config: until")
        if until < 0:
            raise ConfigError("config: until must be >= 0")
    return ServiceSpec(jobs=jobs, until=until)


def loads_config(text: str) -> ServiceSpec:
    """Parse a YAML (or JSON) config string."""
    try:
        import yaml
    except ImportError:  # pragma: no cover - yaml is an optional extra
        try:
            doc = json.loads(text)
        except ValueError as exc:
            raise ConfigError(
                f"PyYAML is not installed and the config is not valid "
                f"JSON: {exc}") from exc
        return parse_config(doc)
    try:
        doc = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise ConfigError(f"invalid YAML: {exc}") from exc
    return parse_config(doc)


def load_config(path) -> ServiceSpec:
    """Read and validate a config file (CLI ``--config``)."""
    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise ConfigError(f"cannot read config {path!r}: {exc}") from exc
    return loads_config(text)
