"""The service runner: execute declarative jobs against one backend.

:class:`BackupService` turns a validated
:class:`~repro.service.spec.ServiceSpec` into running state: every job
gets its own :class:`~repro.cloud.NamespacedBackend` view of the one
shared backend (private manifests/indexes/stat caches; shared
container and chunk pools), its own
:class:`~repro.core.backup.BackupClient` configured from the job's
scheme, and a disjoint container-id range by job rank — the fleet
layer's multi-tenancy machinery reused for heterogeneous *jobs* instead
of homogeneous *clients*.

Execution is deterministic: one shared
:class:`~repro.simulate.clock.VirtualClock` stamps manifests, schedules
evaluate exact interval arithmetic on it, and due jobs run
*sequentially* in ``(due_time, declaration rank)`` order — so a whole
multi-job service loop replays bit-identically.  The clock is attached
to each view (``view.clock``) purely so the engine stamps manifests
with virtual time; jobs themselves consume zero virtual seconds, which
keeps schedule arithmetic exact.

Every executed occurrence produces a :class:`JobReport` (state machine
``SCHEDULED → IN_PROGRESS → SUCCEEDED | FAILED``, hook outcomes,
retention outcome, engine stats, log lines); a run of the service
aggregates them into a :class:`ServiceReport` whose ``exit_code``
implements the CLI contract (0 = all jobs succeeded, 1 = at least one
failed — the report is still produced).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from threading import Lock
from typing import Dict, List, Optional, Sequence

from repro.cloud import InMemoryBackend, NamespacedBackend
from repro.core import naming
from repro.core.backup import BackupClient
from repro.core.stats import SessionStats
from repro.errors import ConfigError, ReproError
from repro.metrics.report import Table
from repro.obs.tracer import NOOP_TRACER
from repro.service.hooks import run_hook
from repro.service.retention import RetentionOutcome, apply_retention
from repro.service.schedule import JobClock
from repro.service.spec import JobSpec, ServiceSpec
from repro.simulate.clock import VirtualClock
from repro.util.units import format_bytes

__all__ = ["JobReport", "ServiceReport", "BackupService",
           "SCHEDULED", "IN_PROGRESS", "SUCCEEDED", "FAILED",
           "CONTAINER_ID_STRIDE"]

#: Job occurrence states (a tiny linear state machine).
SCHEDULED = "SCHEDULED"
IN_PROGRESS = "IN_PROGRESS"
SUCCEEDED = "SUCCEEDED"
FAILED = "FAILED"

#: Container-id stride between jobs — same discipline as the fleet
#: layer: job ``rank`` allocates ids in ``[rank·stride, (rank+1)·stride)``
#: so heterogeneous jobs never collide in the shared container pool.
CONTAINER_ID_STRIDE = 1_000_000


@dataclass
class JobReport:
    """Everything one executed job occurrence produced."""

    job: str
    run_index: int
    scheduled_for: float
    state: str = SCHEDULED
    session_id: Optional[int] = None
    started_at: Optional[float] = None
    ended_at: Optional[float] = None
    stats: Optional[SessionStats] = None
    logs: List[dict] = field(default_factory=list)
    #: Labels + details of hooks that failed (warn *and* abort).
    hook_failures: List[str] = field(default_factory=list)
    retention: Optional[RetentionOutcome] = None
    error: Optional[str] = None

    def log(self, ts: float, level: str, message: str) -> None:
        self.logs.append({"ts": ts, "level": level, "message": message})

    @property
    def ok(self) -> bool:
        return self.state == SUCCEEDED

    def to_json(self) -> dict:
        doc = {
            "job": self.job,
            "run": self.run_index,
            "state": self.state,
            "scheduled_for": self.scheduled_for,
            "started_at": self.started_at,
            "ended_at": self.ended_at,
            "session_id": self.session_id,
            "hook_failures": list(self.hook_failures),
            "error": self.error,
            "logs": list(self.logs),
        }
        if self.stats is not None:
            doc["stats"] = {
                "bytes_scanned": self.stats.bytes_scanned,
                "bytes_unique": self.stats.bytes_unique,
                "bytes_uploaded": self.stats.bytes_uploaded,
                "files_total": self.stats.files_total,
                "dedup_ratio": self.stats.dedup_ratio,
            }
        if self.retention is not None:
            doc["retention"] = {
                "policy": self.retention.policy,
                "retained": self.retention.retained,
                "dropped": self.retention.dropped,
                "deleted_containers": self.retention.deleted_containers,
                "deleted_objects": self.retention.deleted_objects,
                "statcache_invalidated":
                    self.retention.statcache_invalidated,
                "problems": self.retention.problems,
            }
        return doc


@dataclass
class ServiceReport:
    """All occurrences one service run executed, in execution order."""

    reports: List[JobReport] = field(default_factory=list)
    started_at: float = 0.0
    ended_at: float = 0.0

    @property
    def exit_code(self) -> int:
        """CLI contract: 0 = every job succeeded, 1 = any failed."""
        return 1 if any(not r.ok for r in self.reports) else 0

    @property
    def failed(self) -> List[JobReport]:
        return [r for r in self.reports if not r.ok]

    def to_json(self) -> dict:
        return {
            "started_at": self.started_at,
            "ended_at": self.ended_at,
            "exit_code": self.exit_code,
            "runs": [r.to_json() for r in self.reports],
        }

    def render(self) -> str:
        table = Table(
            ["job", "run", "t", "state", "session", "scanned",
             "uploaded", "retention", "notes"],
            title="service run")
        for r in self.reports:
            if r.retention is None:
                retention = "-"
            elif r.retention.dropped:
                retention = (f"dropped {len(r.retention.dropped)}, "
                             f"kept {len(r.retention.retained)}")
            else:
                retention = f"kept {len(r.retention.retained)}"
            notes = []
            if r.hook_failures:
                notes.append(f"{len(r.hook_failures)} hook failure(s)")
            if r.error:
                notes.append(r.error)
            table.add_row([
                r.job, r.run_index, r.scheduled_for, r.state,
                r.session_id if r.session_id is not None else "-",
                format_bytes(r.stats.bytes_scanned) if r.stats else "-",
                format_bytes(r.stats.bytes_uploaded) if r.stats else "-",
                retention,
                "; ".join(notes) if notes else "-",
            ])
        lines = [table.render()]
        failed = self.failed
        lines.append(
            f"{len(self.reports)} run(s), {len(failed)} failed"
            + (": " + ", ".join(sorted({r.job for r in failed}))
               if failed else ""))
        return "\n".join(lines)


class _JobRuntime:
    """One job's live state: view, engine, source stream, schedule."""

    def __init__(self, rank: int, spec: JobSpec, view, client,
                 source) -> None:
        self.rank = rank
        self.spec = spec
        self.view = view
        self.client = client
        self.source = source
        self.clock = JobClock(spec.schedule)
        self.run_index = 0


class BackupService:
    """Run a :class:`ServiceSpec`'s jobs over one shared backend.

    ``backend`` persists across instantiations (pass a durable store to
    get stateless re-invocation: each job's client resumes its index,
    stat cache and session counter from the cloud, and container-id
    allocation resumes inside the job's stride).  ``jobs`` restricts the
    service to a named subset (CLI ``--job``).
    """

    def __init__(self, spec: ServiceSpec, backend=None,
                 clock: Optional[VirtualClock] = None, tracer=None,
                 jobs: Optional[Sequence[str]] = None) -> None:
        self.spec = spec
        self.backend = backend if backend is not None else InMemoryBackend()
        self.clock = clock if clock is not None else VirtualClock()
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self._backend_lock = Lock()
        selected: List[JobSpec] = (
            [spec.job(name) for name in jobs] if jobs is not None
            else list(spec.jobs))
        if not selected:
            raise ConfigError("no jobs selected")
        next_ids = self._scan_container_ids()
        self.jobs: List[_JobRuntime] = []
        for job in selected:
            # Rank comes from the *spec* order, not the selection order:
            # running ``--job b`` alone must use the same container
            # stride as running the full config, or re-invocations
            # would interleave id ranges across jobs.
            rank = spec.jobs.index(job)
            view = NamespacedBackend(self.backend, job.name,
                                     lock=self._backend_lock)
            # The engine stamps manifests from ``cloud.clock`` when
            # present — attach the service clock so session ages are
            # virtual-time and retention arithmetic is exact.
            view.clock = self.clock
            client = BackupClient(
                view, job.scheme_config(),
                first_container_id=next_ids.get(
                    rank, rank * CONTAINER_ID_STRIDE),
                tracer=self.tracer)
            client.resume_from_cloud()
            self.jobs.append(
                _JobRuntime(rank, job, view, client, job.make_source()))
        self.reports: List[JobReport] = []

    def _scan_container_ids(self) -> Dict[int, int]:
        """Per-rank next container id, resumed from the shared pool.

        A re-invoked service must keep allocating *above* every
        container its rank ever sealed — container keys are the only
        durable record, so scan them once at startup.
        """
        next_ids: Dict[int, int] = {}
        for key in self.backend.list(naming.CONTAINER_PREFIX):
            try:
                container_id = int(key[len(naming.CONTAINER_PREFIX):])
            except ValueError:
                continue
            rank = container_id // CONTAINER_ID_STRIDE
            next_ids[rank] = max(next_ids.get(rank, 0), container_id + 1)
        return next_ids

    # ------------------------------------------------------------------
    def _runtime(self, name: str) -> _JobRuntime:
        for runtime in self.jobs:
            if runtime.spec.name == name:
                return runtime
        names = ", ".join(r.spec.name for r in self.jobs)
        raise ConfigError(f"no job named {name!r}; active: {names}")

    def _hook_env(self, runtime: _JobRuntime,
                  report: JobReport) -> Dict[str, str]:
        return {
            "REPRO_JOB": runtime.spec.name,
            "REPRO_RUN": str(report.run_index),
            "REPRO_SCHEME": runtime.spec.scheme,
        }

    def _run_hooks(self, runtime: _JobRuntime, report: JobReport,
                   which: str) -> bool:
        """Run the job's pre or post hooks.  Returns False when a hook
        failed *and* the policy is abort."""
        hooks = runtime.spec.hooks
        specs = hooks.pre if which == "pre" else hooks.post
        env = self._hook_env(runtime, report)
        ok = True
        for spec in specs:
            with self.tracer.span("service.hook", job=runtime.spec.name,
                                  which=which, hook=spec.label):
                result = run_hook(spec, env)
            if result.ok:
                continue
            failure = f"{which}-hook {spec.label}: {result.detail}"
            report.hook_failures.append(failure)
            if hooks.failure_policy == "abort":
                ok = False
                report.log(self.clock.now(), "error", failure)
            else:
                report.log(self.clock.now(), "warning",
                           f"{failure} (policy: warn, continuing)")
        return ok

    # ------------------------------------------------------------------
    def _execute(self, runtime: _JobRuntime,
                 scheduled_for: float) -> JobReport:
        spec = runtime.spec
        report = JobReport(job=spec.name, run_index=runtime.run_index,
                           scheduled_for=scheduled_for)
        runtime.run_index += 1
        report.started_at = self.clock.now()
        report.state = IN_PROGRESS
        with self.tracer.span("service.job", job=spec.name,
                              run=report.run_index, scheme=spec.scheme):
            if not self._run_hooks(runtime, report, "pre"):
                # Abort policy: the engine is never invoked.
                report.state = FAILED
                report.error = report.hook_failures[-1]
            else:
                try:
                    source = runtime.source.next_source()
                    stats = runtime.client.backup(source)
                except ReproError as exc:
                    report.state = FAILED
                    report.error = f"{type(exc).__name__}: {exc}"
                    report.log(self.clock.now(), "error", report.error)
                else:
                    report.state = SUCCEEDED
                    report.stats = stats
                    report.session_id = stats.session_id
                    report.log(
                        self.clock.now(), "info",
                        f"session {stats.session_id}: "
                        f"{stats.files_total} files, "
                        f"{format_bytes(stats.bytes_uploaded)} uploaded")
                # Post hooks run after every engine attempt (cleanup
                # semantics); abort only demotes a *successful* run.
                if not self._run_hooks(runtime, report, "post") \
                        and report.state == SUCCEEDED:
                    report.state = FAILED
                    report.error = report.hook_failures[-1]
            if report.state == SUCCEEDED and spec.retention is not None:
                with self.tracer.span("service.retention",
                                      job=spec.name):
                    outcome = apply_retention(
                        self.backend, runtime.view, spec.retention,
                        now=self.clock.now(), tracer=self.tracer)
                report.retention = outcome
                if outcome is not None and outcome.dropped:
                    report.log(
                        self.clock.now(), "info",
                        f"retention dropped sessions "
                        f"{outcome.dropped}, swept "
                        f"{outcome.deleted_containers} containers / "
                        f"{outcome.deleted_objects} objects")
                    if self.tracer.enabled:
                        self.tracer.metrics.counter(
                            "retention_sessions_dropped").inc(
                            len(outcome.dropped))
        report.ended_at = self.clock.now()
        runtime.clock.note_run(scheduled_for, report.ok)
        if self.tracer.enabled:
            self.tracer.metrics.counter("jobs_run").inc()
            if not report.ok:
                self.tracer.metrics.counter("jobs_failed").inc()
        self.reports.append(report)
        return report

    # ------------------------------------------------------------------
    def run_once(self, name: str) -> JobReport:
        """Run one job immediately (outside its schedule)."""
        return self._execute(self._runtime(name), self.clock.now())

    def run_all(self) -> List[JobReport]:
        """Run every active job once, in declaration order."""
        return [self._execute(runtime, self.clock.now())
                for runtime in self.jobs]

    def run_due(self) -> List[JobReport]:
        """Run every job whose schedule is due at the current time."""
        now = self.clock.now()
        return [self._execute(runtime, runtime.clock.next_due)
                for runtime in self.jobs if runtime.clock.due(now)]

    def run(self, until: Optional[float] = None) -> ServiceReport:
        """Drive the schedule loop up to virtual time ``until``.

        Advances the shared clock occurrence by occurrence, executing
        due jobs in ``(due_time, rank)`` order.  ``until`` defaults to
        the config's top-level ``until``; with neither, every job runs
        exactly once (one-shot mode).
        """
        horizon = until if until is not None else self.spec.until
        started = self.clock.now()
        if horizon is None:
            self.run_all()
        else:
            while True:
                pending = [(r.clock.next_due, r.rank, r)
                           for r in self.jobs
                           if r.clock.next_due is not None
                           and r.clock.next_due <= horizon]
                if not pending:
                    break
                due, _rank, runtime = min(pending,
                                          key=lambda p: (p[0], p[1]))
                if due > self.clock.now():
                    self.clock.advance(due - self.clock.now())
                self._execute(runtime, due)
        return ServiceReport(reports=list(self.reports),
                             started_at=started,
                             ended_at=self.clock.now())

    def report(self) -> ServiceReport:
        """All occurrences executed so far, as a report."""
        return ServiceReport(reports=list(self.reports),
                             started_at=0.0, ended_at=self.clock.now())

    def write_report(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.report().to_json(), fh, indent=2,
                      sort_keys=True)
            fh.write("\n")

    def close(self) -> None:
        for runtime in self.jobs:
            runtime.client.close()
