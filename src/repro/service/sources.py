"""Job sources: where each scheduled run's bytes come from.

A backup *job* runs many times; each occurrence needs a fresh snapshot
of its source set.  Three kinds:

* :class:`DirectoryJobSource` — re-walk a real directory per run (the
  deployable path; the filesystem itself provides the churn);
* :class:`SyntheticJobSource` — a deterministic
  :class:`~repro.fleet.workload.Corpus` aged one churn step per run
  (tests, benchmarks, demos — bit-reproducible for a fixed seed);
* :class:`CallableJobSource` — an arbitrary ``fn(run_index) -> source``
  for programmatic embedding.

Synthetic sources accept a ``shared`` corpus prefix so several jobs can
be configured over byte-identical content — the setup that exercises
cross-job liveness under retention-driven GC on a shared backend.
"""

from __future__ import annotations

from typing import Callable

from repro.core.source import DirectorySource
from repro.fleet.workload import Corpus
from repro.util.units import KIB

__all__ = ["JobSource", "DirectoryJobSource", "SyntheticJobSource",
           "CallableJobSource"]


class JobSource:
    """Produces one source snapshot per executed run, in run order."""

    def next_source(self):
        """The source for the next run (advances internal state)."""
        raise NotImplementedError


class DirectoryJobSource(JobSource):
    """Each run backs up the directory as it stands on disk."""

    def __init__(self, path: str) -> None:
        self.path = path

    def next_source(self):
        return DirectorySource(self.path)


class SyntheticJobSource(JobSource):
    """A churned in-memory corpus: run *k* sees ``k`` churn steps.

    ``prefix`` defaults to the job name; giving two jobs the same
    prefix *and* seed makes their run-``k`` snapshots byte- and
    mtime-identical (shared content across jobs).
    """

    def __init__(self, prefix: str, seed: int = 2011, files: int = 6,
                 file_kib: int = 24, churn: float = 0.25) -> None:
        self.churn_fraction = churn
        self._corpus = Corpus(prefix, seed, files, file_kib * KIB)
        self._runs = 0

    def next_source(self):
        if self._runs:
            self._corpus.churn(self.churn_fraction)
        self._runs += 1
        return self._corpus.snapshot()


class CallableJobSource(JobSource):
    """Adapter for ``fn(run_index) -> iterable-of-SourceFile``."""

    def __init__(self, fn: Callable[[int], object]) -> None:
        self._fn = fn
        self._runs = 0

    def next_source(self):
        source = self._fn(self._runs)
        self._runs += 1
        return source
