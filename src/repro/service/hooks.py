"""Pre/post job hooks: shell commands and registered builtins.

A hook either runs a shell command (``run: "pg_dump ..."`` — the
deployable path, with the job's identity exported through ``REPRO_*``
environment variables) or invokes a Python callable registered under a
name (``builtin: noop`` — zero-subprocess hooks for tests and embedded
deployments).  A hook *fails* when the command exits non-zero or the
callable raises; what a failure means is the job's ``failure_policy``
decision (``abort`` vs ``warn``), applied by the runner:

* failing **pre**-hook + ``abort`` — the job is marked FAILED and the
  engine is never invoked;
* failing **pre**-hook + ``warn`` — a warning line, the backup runs;
* failing **post**-hook + ``abort`` — the job is FAILED *after* a
  successful session (the manifest exists; the failure is operational);
* failing **post**-hook + ``warn`` — the job stays SUCCEEDED with a
  warning line.
"""

from __future__ import annotations

import os
import subprocess
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional

from repro.errors import ConfigError

__all__ = ["HookSpec", "HookResult", "HookSet", "run_hook",
           "register_builtin_hook", "builtin_hook_names"]

#: Wall-clock ceiling for one shell hook; a hung hook must not wedge
#: the whole service loop.
HOOK_TIMEOUT_SECONDS = 120.0


def _builtin_noop(env: Mapping[str, str]) -> None:
    return None


def _builtin_fail(env: Mapping[str, str]) -> None:
    raise RuntimeError("builtin hook 'fail' always fails")


#: Registered builtin hooks; extensible via :func:`register_builtin_hook`.
_BUILTINS: Dict[str, Callable[[Mapping[str, str]], None]] = {
    "noop": _builtin_noop,
    "fail": _builtin_fail,
}


def register_builtin_hook(name: str,
                          fn: Callable[[Mapping[str, str]], None]) -> None:
    """Register ``fn`` as builtin hook ``name`` (tests, embedders)."""
    _BUILTINS[name] = fn


def builtin_hook_names() -> tuple:
    """Sorted names of the registered builtin hooks."""
    return tuple(sorted(_BUILTINS))


@dataclass(frozen=True)
class HookSpec:
    """One hook: exactly one of ``command`` (shell) or ``builtin``."""

    command: Optional[str] = None
    builtin: Optional[str] = None
    name: str = ""

    def __post_init__(self) -> None:
        if (self.command is None) == (self.builtin is None):
            raise ConfigError(
                "a hook needs exactly one of run:/builtin:")
        if self.builtin is not None and self.builtin not in _BUILTINS:
            raise ConfigError(
                f"unknown builtin hook {self.builtin!r}; registered: "
                f"{', '.join(builtin_hook_names())}")

    @property
    def label(self) -> str:
        """Display name for logs and reports."""
        if self.name:
            return self.name
        if self.builtin is not None:
            return f"builtin:{self.builtin}"
        return self.command or "<hook>"


@dataclass(frozen=True)
class HookSet:
    """A job's hooks plus the failure policy that governs them."""

    pre: tuple = ()
    post: tuple = ()
    failure_policy: str = "abort"

    def __post_init__(self) -> None:
        if self.failure_policy not in ("abort", "warn"):
            raise ConfigError(
                f"hook failure_policy must be 'abort' or 'warn', "
                f"got {self.failure_policy!r}")


@dataclass
class HookResult:
    """Outcome of one hook execution."""

    ok: bool
    detail: str = ""
    output: str = field(default="", repr=False)


def run_hook(spec: HookSpec, env: Mapping[str, str]) -> HookResult:
    """Execute one hook; never raises — failures come back as results."""
    if spec.builtin is not None:
        try:
            _BUILTINS[spec.builtin](env)
        except Exception as exc:  # noqa: BLE001 - hook code is user code
            return HookResult(False, f"{type(exc).__name__}: {exc}")
        return HookResult(True)
    try:
        proc = subprocess.run(
            spec.command, shell=True, capture_output=True, text=True,
            env={**os.environ, **env}, timeout=HOOK_TIMEOUT_SECONDS)
    except subprocess.TimeoutExpired:
        return HookResult(
            False, f"timed out after {HOOK_TIMEOUT_SECONDS:.0f}s")
    except OSError as exc:
        return HookResult(False, f"could not run: {exc}")
    output = (proc.stdout or "") + (proc.stderr or "")
    if proc.returncode != 0:
        tail = output.strip().splitlines()[-1] if output.strip() else ""
        detail = f"exit {proc.returncode}"
        if tail:
            detail += f": {tail}"
        return HookResult(False, detail, output)
    return HookResult(True, output=output)
