"""Declarative backup service layer (see docs/SERVICE.md).

The paper's engine backs up one source set when invoked; a backup
*service* runs many named jobs on schedules with retention and
operational hooks.  This package is that orchestration shell:
YAML/dict job specs (:mod:`~repro.service.spec`), interval schedules on
the deterministic virtual clock (:mod:`~repro.service.schedule`),
per-job retention driving the real garbage collector
(:mod:`~repro.service.retention`), pre/post hooks
(:mod:`~repro.service.hooks`), and the sequential deterministic runner
(:mod:`~repro.service.runner`) — all over one shared backend using the
fleet layer's namespace machinery.
"""

from repro.service.hooks import (
    HookResult,
    HookSet,
    HookSpec,
    builtin_hook_names,
    register_builtin_hook,
    run_hook,
)
from repro.service.retention import RetentionOutcome, apply_retention
from repro.service.runner import (
    BackupService,
    FAILED,
    IN_PROGRESS,
    JobReport,
    SCHEDULED,
    SUCCEEDED,
    ServiceReport,
)
from repro.service.schedule import IntervalSchedule, JobClock
from repro.service.sources import (
    CallableJobSource,
    DirectoryJobSource,
    JobSource,
    SyntheticJobSource,
)
from repro.service.spec import (
    JobSpec,
    ServiceSpec,
    load_config,
    loads_config,
    parse_config,
)

__all__ = [
    "BackupService",
    "CallableJobSource",
    "DirectoryJobSource",
    "FAILED",
    "HookResult",
    "HookSet",
    "HookSpec",
    "IN_PROGRESS",
    "IntervalSchedule",
    "JobClock",
    "JobReport",
    "JobSource",
    "JobSpec",
    "RetentionOutcome",
    "SCHEDULED",
    "SUCCEEDED",
    "ServiceReport",
    "ServiceSpec",
    "SyntheticJobSource",
    "apply_retention",
    "builtin_hook_names",
    "load_config",
    "loads_config",
    "parse_config",
    "register_builtin_hook",
    "run_hook",
]
