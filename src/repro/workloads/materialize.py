"""Deterministic block → bytes materialisation.

Every block id defines an infinite pseudo-random byte stream (seekable:
a Philox counter RNG keyed by the block id), so any
:class:`~repro.workloads.compose.Extent` can be materialised on demand
and two equal extents always produce equal bytes — the bridge between
the composition model and the real-bytes engine.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict

import numpy as np

from repro.core.source import MemorySource
from repro.workloads.compose import Composition, Snapshot

__all__ = [
    "block_bytes",
    "materialize_composition",
    "materialize_snapshot",
    "snapshot_to_memory_source",
    "write_snapshot_to_directory",
]

_PHILOX_BYTES_PER_STEP = 32  # one Philox counter step yields 4 × u64


def block_bytes(block_id: int, start: int, length: int) -> bytes:
    """Bytes ``[start, start+length)`` of block ``block_id``'s stream.

    Seekable: the Philox counter is advanced to the containing 32-byte
    step, so late ranges of huge blocks cost O(length), not O(start).
    """
    if length <= 0:
        return b""
    step = start // _PHILOX_BYTES_PER_STEP
    skip = start - step * _PHILOX_BYTES_PER_STEP
    bitgen = np.random.Philox(key=block_id)
    if step:
        bitgen.advance(step)
    raw = np.random.Generator(bitgen).bytes(skip + length)
    return raw[skip:skip + length]


def materialize_composition(comp: Composition) -> bytes:
    """Concatenate the bytes of every extent of ``comp``."""
    return b"".join(block_bytes(e.block, e.start, e.length)
                    for e in comp.extents)


def materialize_snapshot(snap: Snapshot) -> Dict[str, bytes]:
    """Materialise every file of a snapshot into a path → bytes dict."""
    return {path: materialize_composition(comp)
            for path, comp in snap.files.items()}


def snapshot_to_memory_source(snap: Snapshot) -> MemorySource:
    """Wrap a snapshot as a lazy :class:`~repro.core.source.MemorySource`.

    Content is materialised per file at read time, so the backup engine
    streams the dataset without holding it all in memory.
    """
    files = {path: comp for path, comp in snap.files.items()}

    class _LazySource(MemorySource):
        def __init__(self) -> None:  # bypass dict-of-bytes init
            self._files = files
            self._mtimes = dict(snap.mtimes)

        def __iter__(self):
            from repro.core.source import SourceFile
            for path in sorted(self._files):
                comp = self._files[path]
                yield SourceFile(
                    path=path, size=comp.size,
                    mtime_ns=self._mtimes.get(path, 0),
                    reader=lambda c=comp: materialize_composition(c))

        def total_bytes(self) -> int:
            return sum(c.size for c in self._files.values())

    return _LazySource()


def write_snapshot_to_directory(snap: Snapshot,
                                root: str | os.PathLike) -> int:
    """Write a snapshot as a real file tree; returns bytes written."""
    root = Path(root)
    total = 0
    for path, comp in snap.files.items():
        target = root / path
        target.parent.mkdir(parents=True, exist_ok=True)
        data = materialize_composition(comp)
        target.write_bytes(data)
        total += len(data)
    return total
