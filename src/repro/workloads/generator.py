"""Snapshot generation and the weekly mutation model.

:class:`WorkloadGenerator` produces a sequence of weekly
:class:`~repro.workloads.compose.Snapshot` objects whose statistics match
the paper's workload description: per-application capacity shares and
mean file sizes from Table 1, sub-file redundancy with the right
chunking sensitivity (see :mod:`repro.workloads.profiles`), a tiny-file
population per Observation 1, and per-category weekly churn:

* compressed media — occasional whole-file replacement, steady arrival
  of new files;
* VM images — most images touched weekly with *aligned* 8 KiB block
  rewrites (SC-friendly, Observation 3);
* documents — frequent *unaligned* inserts/appends (CDC territory) and
  version copies.

``total_bytes`` scales the whole dataset; the paper-scale evaluation
runs a scaled-down dataset with proportionally scaled RAM budget (see
:mod:`repro.trace.driver`), which preserves every ratio the figures
compare.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.util.units import KIB, MB
from repro.workloads.compose import Composition, Extent, Snapshot, make_block_id
from repro.workloads.profiles import (
    AppProfile,
    DENSITY_DENSE,
    PAPER_PROFILES,
    TINY_PROFILE,
)

__all__ = ["WorkloadGenerator"]

_ALIGN = 8 * KIB           # SC grid; VM rewrites land on it
_VM_UNIT = 64 * KIB        # VM-image composition granularity
_TINY_LIMIT = 10 * KIB


class _AppState:
    """Mutable per-application generation state."""

    def __init__(self, profile: AppProfile, capacity: int,
                 max_mean_file_size: int | None = None) -> None:
        self.profile = profile
        self.capacity = capacity
        mean = profile.mean_file_size
        if max_mean_file_size is not None:
            mean = min(mean, max_mean_file_size)
        count = max(1, int(round(capacity / mean)))
        if count < 3 and capacity >= 3 * 128 * KIB:
            count = 3
        self.count = count
        self.mean = max(12 * KIB, capacity // count)
        self.pool: List[int] = []          # shared block ids
        self.versions: List[Composition] = []
        self.recent: List[Composition] = []   # copy-traffic candidates
        self.next_file = 0


class WorkloadGenerator:
    """Deterministic generator of weekly backup snapshots."""

    def __init__(self,
                 total_bytes: int = 350 * MB,
                 profiles: Sequence[AppProfile] = PAPER_PROFILES,
                 tiny_profile: AppProfile = TINY_PROFILE,
                 tiny_count_ratio: float = 1.56,
                 seed: int = 2011,
                 max_mean_file_size: int | None = None,
                 block_namespace: int = 0) -> None:
        if total_bytes < 10 * MB:
            raise WorkloadError("total_bytes too small to honour profiles")
        self.total_bytes = total_bytes
        self.profiles = tuple(profiles)
        self.tiny_profile = tiny_profile
        self.tiny_count_ratio = tiny_count_ratio
        self._rng = np.random.default_rng(seed)
        # Block ids are counter-allocated, so two generators would emit
        # byte-identical content streams regardless of seed.  A fleet of
        # clients that must NOT share data starts each generator in a
        # disjoint block-id namespace; generators meant to model shared
        # data (same seed, same namespace) stay byte-identical.
        self._block_counter = block_namespace
        self._mtime = 0
        main_capacity = int(total_bytes * 0.988)  # ~1.2 % left for tiny
        self._apps: Dict[str, _AppState] = {
            p.label: _AppState(p, int(main_capacity * p.capacity_share),
                               max_mean_file_size)
            for p in self.profiles
        }
        self._tiny_capacity = total_bytes - main_capacity

    # ------------------------------------------------------------------
    def _new_block(self, density: int) -> int:
        self._block_counter += 1
        return make_block_id(self._block_counter, density)

    def _fresh(self, length: int, density: int) -> Extent:
        return Extent(self._new_block(density), 0, length)

    def _stamp(self) -> int:
        self._mtime += 1
        return self._mtime

    def _draw_sizes(self, state: _AppState, count: int) -> np.ndarray:
        p = state.profile
        sigma = p.size_sigma
        median = state.mean * math.exp(-(sigma ** 2) / 2)
        sizes = self._rng.lognormal(math.log(median), sigma, size=count)
        sizes = np.clip(sizes, 12 * KIB, 6 * state.mean)
        # Rescale so the app hits its capacity share.
        sizes *= (state.mean * count) / sizes.sum()
        return np.maximum(sizes.astype(np.int64), 12 * KIB)

    # -- per-mode composition builders ----------------------------------
    def _build_subshare(self, state: _AppState, size: int) -> Composition:
        p = state.profile
        prefix = int(p.sub_dup * size) // (4 * KIB) * (4 * KIB)
        if int(p.sub_dup * size) >= 4 * KIB:
            prefix = max(prefix, 8 * KIB)
        extents: List[Extent] = []
        if prefix >= 4 * KIB:
            if not state.pool or (len(state.pool) < 2
                                  and self._rng.random() < 0.3):
                state.pool.append(self._new_block(p.density_class))
            block = state.pool[self._rng.integers(len(state.pool))]
            extents.append(Extent(block, 0, prefix))
        remainder = size - prefix
        if remainder > 0:
            extents.append(self._fresh(remainder, p.density_class))
        return Composition(extents)

    def _build_block(self, state: _AppState, size: int) -> Composition:
        p = state.profile
        units = max(1, size // _VM_UNIT)
        pool_target = max(8, int(units * 0.02))
        draws = self._rng.random(units)
        extents: List[Extent] = []
        for duplicated in draws < p.sub_dup:
            if duplicated and state.pool:
                block = state.pool[self._rng.integers(len(state.pool))]
            else:
                block = self._new_block(p.density_class)
                if len(state.pool) < pool_target:
                    state.pool.append(block)
            extents.append(Extent(block, 0, _VM_UNIT))
        return Composition(extents)

    def _build_version(self, state: _AppState, size: int) -> Composition:
        p = state.profile
        # E[duplicated share] ~= P(version) x E[keep fraction] where the
        # effective keep fraction (~0.45) accounts for base files smaller
        # than the new file; calibrated against Table 1.
        version_prob = min(0.95, p.sub_dup / 0.45)
        if state.versions and self._rng.random() < version_prob:
            base = state.versions[self._rng.integers(len(state.versions))]
            keep = int(min(base.size, size) * self._rng.uniform(0.5, 0.9))
            extents = base.slice(0, keep) if keep > 0 else []
            tail = size - keep
            comp = Composition(extents)
            if tail > 0:
                comp = comp.append([self._fresh(tail, p.density_class)])
            if keep > 4 * KIB and self._rng.random() < p.version_insert_prob:
                insert_at = int(self._rng.integers(0, keep))
                comp = comp.splice(insert_at, 0,
                                   [self._fresh(2 * KIB, p.density_class)])
        else:
            comp = Composition([self._fresh(size, p.density_class)])
        if len(state.versions) < 400:
            state.versions.append(comp)
        else:
            state.versions[self._rng.integers(400)] = comp
        return comp

    def _build(self, state: _AppState, size: int) -> Composition:
        p = state.profile
        if state.recent and self._rng.random() < p.copy_prob:
            # Whole-file copy: byte-identical to an existing file.
            return state.recent[self._rng.integers(len(state.recent))]
        if p.dup_mode == "subshare":
            comp = self._build_subshare(state, size)
        elif p.dup_mode == "block":
            comp = self._build_block(state, size)
        elif p.dup_mode == "version":
            comp = self._build_version(state, size)
        else:
            raise WorkloadError(f"unknown dup_mode {p.dup_mode!r}")
        if len(state.recent) < 200:
            state.recent.append(comp)
        else:
            state.recent[self._rng.integers(200)] = comp
        return comp

    def _new_path(self, state: _AppState) -> str:
        p = state.profile
        index = state.next_file
        state.next_file += 1
        return f"{p.label}/{p.label}{index:05d}.{p.extension}"

    # ------------------------------------------------------------------
    def initial_snapshot(self) -> Snapshot:
        """Build week 0: the full synthetic home directory."""
        snap = Snapshot(session=0)
        for state in self._apps.values():
            for size in self._draw_sizes(state, state.count):
                snap.set(self._new_path(state),
                         self._build(state, int(size)), self._stamp())
        # Tiny-file population.
        main_count = sum(s.count for s in self._apps.values())
        tiny_count = int(main_count * self.tiny_count_ratio)
        if tiny_count:
            mean_tiny = max(256, self._tiny_capacity // tiny_count)
            sizes = self._rng.lognormal(
                math.log(mean_tiny * 0.7), 0.9, size=tiny_count)
            sizes = np.clip(sizes, 64, _TINY_LIMIT - 1).astype(np.int64)
            exts = ("txt", "log", "md", "json", "html")
            for i, size in enumerate(sizes):
                path = f"tiny/misc{i:06d}.{exts[i % len(exts)]}"
                snap.set(path, Composition(
                    [self._fresh(int(size), DENSITY_DENSE)]), self._stamp())
        return snap

    # ------------------------------------------------------------------
    def _modify(self, state: _AppState, comp: Composition) -> Composition:
        p = state.profile
        if p.dup_mode == "subshare":
            # Re-encoded/replaced media file: new content, same size class.
            return self._build_subshare(state, comp.size)
        if p.dup_mode == "block":
            # Aligned in-place rewrites (a week of VM activity).
            slots = comp.size // _ALIGN
            k = max(1, int(slots * p.rewrite_fraction))
            offsets = self._rng.choice(slots, size=min(k, slots),
                                       replace=False) * _ALIGN
            edits = [(int(off), _ALIGN,
                      [self._fresh(_ALIGN, p.density_class)])
                     for off in sorted(offsets)]
            return comp.splice_many(edits)
        # Documents: unaligned edit traffic.
        roll = self._rng.random()
        if roll < 0.7 and comp.size > 4 * KIB:
            insert_at = int(self._rng.integers(0, comp.size))
            return comp.splice(insert_at, 0,
                               [self._fresh(2 * KIB, p.density_class)])
        if roll < 0.9:
            return comp.append([self._fresh(4 * KIB, p.density_class)])
        keep = int(comp.size * self._rng.uniform(0.6, 0.95))
        return Composition(comp.slice(0, max(1, keep))).append(
            [self._fresh(max(1, comp.size - keep), p.density_class)])

    def next_snapshot(self, snap: Snapshot) -> Snapshot:
        """One week of churn applied to ``snap`` (returns a new snapshot)."""
        out = snap.copy(snap.session + 1)
        for state in self._apps.values():
            p = state.profile
            prefix = f"{p.label}/"
            paths = [path for path in out.files if path.startswith(prefix)]
            if not paths:
                continue
            rolls = self._rng.random(len(paths))
            for path, roll in zip(paths, rolls):
                if roll < p.weekly_delete:
                    out.remove(path)
                elif roll < p.weekly_delete + p.weekly_modify:
                    out.set(path, self._modify(state, out.files[path]),
                            self._stamp())
            new_count = int(round(len(paths) * p.weekly_new))
            if new_count:
                for size in self._draw_sizes(state, new_count):
                    out.set(self._new_path(state),
                            self._build(state, int(size)), self._stamp())
        # Tiny churn: small replace/new traffic.
        tiny_paths = [path for path in out.files if path.startswith("tiny/")]
        if tiny_paths:
            tp = self.tiny_profile
            rolls = self._rng.random(len(tiny_paths))
            for path, roll in zip(tiny_paths, rolls):
                if roll < tp.weekly_modify:
                    size = out.files[path].size
                    out.set(path, Composition(
                        [self._fresh(size, DENSITY_DENSE)]), self._stamp())
        return out

    def sessions(self, count: int) -> Iterator[Snapshot]:
        """Yield ``count`` weekly snapshots (week 0 first)."""
        snap = self.initial_snapshot()
        yield snap
        for _ in range(count - 1):
            snap = self.next_snapshot(snap)
            yield snap
