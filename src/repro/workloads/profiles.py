"""Application profiles calibrated to the paper's Table 1 and Figs. 1–2.

Each :class:`AppProfile` captures, for one of the twelve evaluated
applications: its share of dataset capacity and mean file size (Table 1),
how its sub-file redundancy arises (``dup_mode``), how much of it there
is (``sub_dup``, set to ``1 − 1/DR`` from Table 1), how its content
interacts with CDC (``density_class`` — the Observation-3 forced-cut
effect), and how it evolves week over week (the mutation model behind
the 10-session evaluation).

Redundancy mechanisms (``dup_mode``):

* ``"subshare"`` — compressed media: a small aligned shared prefix
  (common headers/metadata) and otherwise unique high-entropy content;
  yields the tiny, chunking-insensitive DRs of Table 1's top rows.
* ``"block"`` — VM images: files are aligned 64 KiB units drawn from a
  per-app pool with probability ``sub_dup``; SC (8 KiB, aligned) finds
  these duplicates, while sparse CDC boundaries (> max chunk size) force
  position-dependent cuts that miss some — reproducing SC DR > CDC DR.
* ``"version"`` — documents: some files are versions of others (shared
  prefix, divergent tail, optionally with unaligned inserts); inserts
  shift SC's grid but not CDC's content-defined cuts — reproducing
  CDC DR ≥ SC DR for TXT/PPT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.classify.filetype import Category
from repro.util.units import KIB, MIB

__all__ = [
    "AppProfile",
    "PAPER_PROFILES",
    "TINY_PROFILE",
    "TABLE1_REFERENCE",
    "SIZE_BUCKETS",
    "FIG12_SIZE_MODEL",
    "profile_for",
    "DENSITY_DENSE",
    "DENSITY_SPARSE",
    "DENSITY_MEDIUM",
    "DENSITY_SPACING",
]

# CDC boundary-density classes (embedded in block ids, see compose.py).
DENSITY_DENSE = 0    #: text-like content, boundaries every ~8 KiB
DENSITY_SPARSE = 1   #: VM-image-like, boundaries every ~32 KiB (> max!)
DENSITY_MEDIUM = 2   #: pdf/exe-like, boundaries every ~12 KiB

#: Mean simulated spacing between CDC boundary candidates, per class.
DENSITY_SPACING: Dict[int, int] = {
    DENSITY_DENSE: 8 * KIB,
    DENSITY_SPARSE: 32 * KIB,
    DENSITY_MEDIUM: 12 * KIB,
}


@dataclass(frozen=True)
class AppProfile:
    """Generation parameters for one application type."""

    label: str
    extension: str
    category: Category
    #: Fraction of (non-tiny) dataset capacity (normalised Table 1 sizes).
    capacity_share: float
    #: Mean file size in bytes (Table 1).
    mean_file_size: int
    #: Lognormal sigma of file sizes.
    size_sigma: float
    #: How sub-file redundancy arises: "subshare" | "block" | "version".
    dup_mode: str
    #: Target duplicate byte fraction (= 1 − 1/DR from Table 1, SC column).
    sub_dup: float
    #: CDC boundary density class of this app's content.
    density_class: int
    #: For "version" mode: probability a version copy gets an unaligned
    #: insert (makes CDC beat SC, as for TXT/PPT).
    version_insert_prob: float = 0.0
    #: Probability a newly created file is a byte-exact copy of an
    #: existing one (duplicate downloads, "Copy of ..." documents) —
    #: the traffic whole-file dedup (BackupPC) exploits but incremental
    #: backup (Jungle Disk) cannot.
    copy_prob: float = 0.04

    # -- weekly mutation model -----------------------------------------
    #: Fraction of files newly created each week.
    weekly_new: float = 0.02
    #: Fraction of files deleted each week.
    weekly_delete: float = 0.005
    #: Fraction of files modified each week.
    weekly_modify: float = 0.05
    #: For "block" mode: fraction of a modified file rewritten (aligned).
    rewrite_fraction: float = 0.05

    @property
    def target_dr(self) -> float:
        """Sub-file dedup ratio this profile aims for (Table 1)."""
        return 1.0 / (1.0 - self.sub_dup) if self.sub_dup < 1 else float("inf")


#: Capacity shares of the 351 GB *evaluation workload*.  The paper never
#: publishes its composition (Table 1 describes a separate 41 GB study
#: dataset); these shares model a media-heavy home directory with one
#: actively-used VM, keeping every Table-1 redundancy behaviour intact.
EVAL_SHARES = {
    "avi": 0.090, "mp3": 0.055, "iso": 0.050, "dmg": 0.040, "rar": 0.055,
    "jpg": 0.090, "pdf": 0.050, "exe": 0.020, "vmdk": 0.350, "doc": 0.070,
    "txt": 0.100, "ppt": 0.030,
}


def _share(label: str) -> float:
    return EVAL_SHARES[label]


#: The twelve applications, calibrated to Table 1.
PAPER_PROFILES: Tuple[AppProfile, ...] = (
    AppProfile("avi", "avi", Category.COMPRESSED, _share("avi"),
               198 * MIB, 0.5, "subshare", 1 - 1 / 1.0002, DENSITY_DENSE,
               weekly_new=0.02, weekly_modify=0.002),
    AppProfile("mp3", "mp3", Category.COMPRESSED, _share("mp3"),
               5 * MIB, 0.5, "subshare", 1 - 1 / 1.001, DENSITY_DENSE,
               weekly_new=0.02, weekly_modify=0.005),
    AppProfile("iso", "iso", Category.COMPRESSED, _share("iso"),
               646 * MIB, 0.4, "subshare", 1 - 1 / 1.002, DENSITY_DENSE,
               weekly_new=0.01, weekly_modify=0.002),
    AppProfile("dmg", "dmg", Category.COMPRESSED, _share("dmg"),
               86 * MIB, 0.5, "subshare", 1 - 1 / 1.004, DENSITY_DENSE,
               weekly_new=0.02, weekly_modify=0.005),
    AppProfile("rar", "rar", Category.COMPRESSED, _share("rar"),
               12 * MIB, 0.7, "subshare", 1 - 1 / 1.008, DENSITY_DENSE,
               weekly_new=0.03, weekly_modify=0.01),
    AppProfile("jpg", "jpg", Category.COMPRESSED, _share("jpg"),
               2 * MIB, 0.7, "subshare", 1 - 1 / 1.009, DENSITY_DENSE,
               weekly_new=0.04, weekly_modify=0.005),
    AppProfile("pdf", "pdf", Category.STATIC, _share("pdf"),
               403 * KIB, 0.9, "version", 1 - 1 / 1.015, DENSITY_MEDIUM,
               weekly_new=0.03, weekly_modify=0.01),
    AppProfile("exe", "exe", Category.STATIC, _share("exe"),
               298 * KIB, 0.9, "version", 1 - 1 / 1.063, DENSITY_MEDIUM,
               weekly_new=0.01, weekly_modify=0.01),
    AppProfile("vmdk", "vmdk", Category.STATIC, _share("vmdk"),
               312 * MIB, 0.4, "block", 1 - 1 / 1.286, DENSITY_SPARSE,
               weekly_new=0.0, weekly_delete=0.0, weekly_modify=0.9,
               rewrite_fraction=0.05),
    AppProfile("doc", "doc", Category.DYNAMIC, _share("doc"),
               180 * KIB, 0.8, "version", 1 - 1 / 1.231, DENSITY_DENSE,
               version_insert_prob=0.1,
               weekly_new=0.03, weekly_modify=0.15),
    AppProfile("txt", "txt", Category.DYNAMIC, _share("txt"),
               615 * KIB, 1.0, "version", 1 - 1 / 1.232, DENSITY_DENSE,
               version_insert_prob=0.8,
               weekly_new=0.03, weekly_modify=0.15),
    AppProfile("ppt", "ppt", Category.DYNAMIC, _share("ppt"),
               977 * KIB, 0.8, "version", 1 - 1 / 1.275, DENSITY_DENSE,
               version_insert_prob=0.6,
               weekly_new=0.03, weekly_modify=0.12),
)

#: Tiny-file population (Observation 1): ~61 % of file count, ~1.2 % of
#: capacity; modelled as its own pseudo-application.
TINY_PROFILE = AppProfile(
    "tinymisc", "txt", Category.DYNAMIC, 0.012, 2 * KIB, 0.9,
    "version", 0.0, DENSITY_DENSE,
    weekly_new=0.02, weekly_delete=0.01, weekly_modify=0.05)

#: Table 1 verbatim, for benches that print paper-vs-measured:
#: label -> (dataset MB, mean file size B, SC DR, CDC DR).
TABLE1_REFERENCE: Dict[str, Tuple[float, int, float, float]] = {
    "avi": (2243, 198 * MIB, 1.0002, 1.0002),
    "mp3": (1410, 5 * MIB, 1.001, 1.002),
    "iso": (1291, 646 * MIB, 1.002, 1.002),
    "dmg": (1032, 86 * MIB, 1.004, 1.004),
    "rar": (1452, 12 * MIB, 1.008, 1.008),
    "jpg": (1797, 2 * MIB, 1.009, 1.009),
    "pdf": (910, 403 * KIB, 1.015, 1.014),
    "exe": (400, 298 * KIB, 1.063, 1.062),
    "vmdk": (28473, 312 * MIB, 1.286, 1.168),
    "doc": (550, 180 * KIB, 1.231, 1.234),
    "txt": (906, 615 * KIB, 1.232, 1.259),
    "ppt": (320, 977 * KIB, 1.275, 1.3),
}

#: Fig. 1/2 bucket anchors: (upper bound, file-count share, capacity share).
#: The paper states the <10 KB and >1 MB anchors explicitly; the middle
#: bucket is the complement.
SIZE_BUCKETS: Tuple[Tuple[float, float, float], ...] = (
    (10 * KIB, 0.610, 0.012),
    (1 * MIB, 0.376, 0.238),
    (float("inf"), 0.014, 0.750),
)

#: Lognormal mixture reproducing the Fig. 1/2 distribution:
#: (weight, median bytes, sigma) per component (tiny/medium/large).
FIG12_SIZE_MODEL: Tuple[Tuple[float, float, float], ...] = (
    (0.610, 2 * KIB, 0.8),
    (0.376, 60 * KIB, 1.0),
    (0.014, 6 * MIB, 0.9),
)


def profile_for(label: str) -> AppProfile:
    """Profile by application label (raises ``KeyError`` if unknown)."""
    for profile in PAPER_PROFILES + (TINY_PROFILE,):
        if profile.label == label:
            return profile
    raise KeyError(label)
