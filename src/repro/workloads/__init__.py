"""Synthetic PC-backup workload, calibrated to the paper's measurements.

The paper's dataset (351 GB, 10 weekly full backups, 68,972 files across
12 applications from a user's home directory) is private; this package
generates a statistical stand-in:

* :mod:`repro.workloads.profiles` — per-application parameters derived
  from Table 1 (dataset share, mean file size, sub-file redundancy, SC vs
  CDC sensitivity) and the Fig. 1/2 file-size distribution anchors;
* :mod:`repro.workloads.compose` — files as *compositions* of content
  blocks (the substitution that lets one generator drive both the
  real-bytes engine and the paper-scale trace engine);
* :mod:`repro.workloads.generator` — snapshot generation + the weekly
  mutation model (whole-file replacement for compressed media, aligned
  block rewrites for VM images, unaligned edits for documents);
* :mod:`repro.workloads.materialize` — deterministic block → bytes
  materialisation and on-disk tree writing.
"""

from repro.workloads.profiles import (
    AppProfile,
    PAPER_PROFILES,
    TABLE1_REFERENCE,
    SIZE_BUCKETS,
    profile_for,
)
from repro.workloads.compose import Extent, Composition, Snapshot
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.materialize import (
    block_bytes,
    materialize_composition,
    materialize_snapshot,
    snapshot_to_memory_source,
    write_snapshot_to_directory,
)

__all__ = [
    "AppProfile",
    "PAPER_PROFILES",
    "TABLE1_REFERENCE",
    "SIZE_BUCKETS",
    "profile_for",
    "Extent",
    "Composition",
    "Snapshot",
    "WorkloadGenerator",
    "block_bytes",
    "materialize_composition",
    "materialize_snapshot",
    "snapshot_to_memory_source",
    "write_snapshot_to_directory",
]
