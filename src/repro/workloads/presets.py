"""Alternative workload compositions for robustness checks.

The paper's conclusions should not hinge on one particular home-directory
mix.  :func:`profiles_with_shares` rebuilds the twelve application
profiles with a different capacity split; two presets are provided:

* :data:`MEDIA_VM_SHARES` — the default evaluation mix (media-heavy with
  one active VM), identical to ``profiles.EVAL_SHARES``;
* :data:`OFFICE_SHARES` — a document-centric office machine: little
  media, no huge VM images dominating, lots of mutable documents.

The robustness bench (``benchmarks/test_bench_workload_robustness.py``)
asserts the paper's qualitative results hold under both.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Tuple

from repro.workloads.profiles import AppProfile, EVAL_SHARES, PAPER_PROFILES

__all__ = ["MEDIA_VM_SHARES", "OFFICE_SHARES", "profiles_with_shares"]

#: The default evaluation composition (see profiles.EVAL_SHARES).
MEDIA_VM_SHARES: Dict[str, float] = dict(EVAL_SHARES)

#: An office workstation: documents and binaries dominate, small VM.
OFFICE_SHARES: Dict[str, float] = {
    "avi": 0.030, "mp3": 0.040, "iso": 0.030, "dmg": 0.020, "rar": 0.060,
    "jpg": 0.080, "pdf": 0.160, "exe": 0.060, "vmdk": 0.150, "doc": 0.150,
    "txt": 0.160, "ppt": 0.060,
}


def profiles_with_shares(shares: Dict[str, float]
                         ) -> Tuple[AppProfile, ...]:
    """The twelve paper profiles with ``shares`` as capacity split.

    Shares must cover exactly the twelve labels and sum to ~1; every
    other per-application behaviour (redundancy mechanism, densities,
    churn) is kept from the Table-1 calibration.
    """
    if set(shares) != {p.label for p in PAPER_PROFILES}:
        raise ValueError("shares must cover exactly the 12 paper apps")
    total = sum(shares.values())
    if not 0.99 <= total <= 1.01:
        raise ValueError(f"shares must sum to 1 (got {total})")
    return tuple(replace(p, capacity_share=shares[p.label])
                 for p in PAPER_PROFILES)
