"""Files as compositions of content blocks.

A *block* is an immutable pseudo-content unit identified by a 64-bit id;
a file is an ordered list of :class:`Extent` records, each referencing a
byte range of one block.  Two extents with equal ``(block, start,
length)`` denote identical bytes — that single invariant lets:

* the **bytes layer** materialise any extent deterministically
  (:func:`repro.workloads.materialize.block_bytes`), and
* the **trace layer** decide chunk identity symbolically at paper scale
  (:mod:`repro.trace.simchunk`),

so both engines observe the *same* redundancy structure.

Block ids carry their CDC *density class* in the low bits (see
:data:`DENSITY_SHIFT`): boundary positions inside a block must be a pure
function of the block id for the content-defined property to hold, and
the class encodes how boundary-rich the simulated content is (dense for
text-like data, sparse for VM-image-like data — the Observation-3
forced-cut effect).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.errors import WorkloadError

__all__ = ["Extent", "Composition", "Snapshot", "make_block_id",
           "density_class_of", "DENSITY_SHIFT"]

#: Low bits of a block id encode its CDC boundary-density class.
DENSITY_SHIFT = 3
_DENSITY_MASK = (1 << DENSITY_SHIFT) - 1


def make_block_id(counter: int, density_class: int) -> int:
    """Allocate a block id embedding ``density_class`` (0–7)."""
    if not (0 <= density_class <= _DENSITY_MASK):
        raise WorkloadError(f"density class {density_class} out of range")
    return (counter << DENSITY_SHIFT) | density_class


def density_class_of(block_id: int) -> int:
    """Recover the density class from a block id."""
    return block_id & _DENSITY_MASK


@dataclass(frozen=True)
class Extent:
    """``length`` bytes of block ``block`` starting at ``start``."""

    block: int
    start: int
    length: int

    def __post_init__(self) -> None:
        if self.length <= 0 or self.start < 0:
            raise WorkloadError(f"invalid extent {self!r}")


class Composition:
    """Immutable extent list with O(log n) offset addressing.

    Mutation helpers return new compositions; snapshots therefore share
    structure for unchanged files, which keeps 10 weekly paper-scale
    snapshots cheap to hold simultaneously.
    """

    __slots__ = ("extents", "_offsets", "size")

    def __init__(self, extents: Iterable[Extent]) -> None:
        self.extents: Tuple[Extent, ...] = tuple(extents)
        offsets: List[int] = []
        pos = 0
        for ext in self.extents:
            offsets.append(pos)
            pos += ext.length
        #: extent start offsets within the file (parallel to ``extents``).
        self._offsets = offsets
        self.size = pos

    # ------------------------------------------------------------------
    def slice(self, offset: int, length: int) -> List[Extent]:
        """Extents covering ``[offset, offset+length)`` (content-exact).

        The returned extents are normalised to block coordinates, so two
        identical byte ranges anywhere in any file slice to equal lists —
        the property chunk identity rests on.
        """
        if offset < 0 or length < 0 or offset + length > self.size:
            raise WorkloadError(
                f"slice [{offset}, {offset + length}) outside file "
                f"of size {self.size}")
        out: List[Extent] = []
        if length == 0:
            return out
        i = bisect_right(self._offsets, offset) - 1
        remaining = length
        pos = offset
        while remaining > 0:
            ext = self.extents[i]
            ext_off = self._offsets[i]
            skip = pos - ext_off
            take = min(ext.length - skip, remaining)
            out.append(Extent(ext.block, ext.start + skip, take))
            remaining -= take
            pos += take
            i += 1
        return out

    def splice(self, offset: int, remove_length: int,
               insert: Iterable[Extent]) -> "Composition":
        """Replace ``remove_length`` bytes at ``offset`` with ``insert``."""
        if offset < 0 or remove_length < 0 or \
                offset + remove_length > self.size:
            raise WorkloadError("splice range outside file")
        head = self.slice(0, offset)
        tail_start = offset + remove_length
        tail = self.slice(tail_start, self.size - tail_start)
        return Composition([*head, *insert, *tail])

    def append(self, insert: Iterable[Extent]) -> "Composition":
        """Append extents at end of file."""
        return Composition([*self.extents, *insert])

    def splice_many(self, edits: List[Tuple[int, int, List[Extent]]]
                    ) -> "Composition":
        """Apply many non-overlapping ``(offset, remove_len, insert)``
        edits in one pass (offsets refer to the *original* file).

        Used for the VM-image mutation model, where a week rewrites
        hundreds of aligned ranges — applying them one splice at a time
        would be quadratic.
        """
        if not edits:
            return self
        edits = sorted(edits, key=lambda e: e[0])
        out: List[Extent] = []
        pos = 0
        for offset, remove_len, insert in edits:
            if offset < pos:
                raise WorkloadError("splice_many edits overlap")
            if offset + remove_len > self.size:
                raise WorkloadError("splice_many edit outside file")
            out.extend(self.slice(pos, offset - pos))
            out.extend(insert)
            pos = offset + remove_len
        out.extend(self.slice(pos, self.size - pos))
        return Composition(out)

    def blocks(self) -> set[int]:
        """Distinct block ids referenced."""
        return {e.block for e in self.extents}

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Composition)
                and self.extents == other.extents)

    def __hash__(self) -> int:
        return hash(self.extents)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Composition size={self.size} extents={len(self.extents)}>"


class Snapshot:
    """One weekly state of the synthetic file tree."""

    def __init__(self, session: int,
                 files: Dict[str, Composition] | None = None,
                 mtimes: Dict[str, int] | None = None) -> None:
        self.session = session
        self.files: Dict[str, Composition] = dict(files or {})
        #: Logical modification stamps; bumped whenever content changes
        #: (drives metadata-based incremental detection).
        self.mtimes: Dict[str, int] = dict(mtimes or {})

    def set(self, path: str, comp: Composition, mtime: int) -> None:
        """Insert/replace a file."""
        self.files[path] = comp
        self.mtimes[path] = mtime

    def remove(self, path: str) -> None:
        """Delete a file."""
        self.files.pop(path, None)
        self.mtimes.pop(path, None)

    def total_bytes(self) -> int:
        """Dataset size DS of this snapshot."""
        return sum(c.size for c in self.files.values())

    def __len__(self) -> int:
        return len(self.files)

    def copy(self, session: int) -> "Snapshot":
        """Shallow copy for the next week (compositions are shared)."""
        return Snapshot(session, self.files, self.mtimes)
