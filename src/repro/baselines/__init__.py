"""The four baseline cloud-backup schemes the paper compares against.

Each baseline is a :class:`~repro.core.options.SchemeConfig` for the
shared :class:`~repro.core.backup.BackupClient` engine — the evaluation
compares *policies*, exactly as the paper does:

* :func:`jungle_disk_config` — **Jungle Disk**: incremental file backup,
  no deduplication; changed files are uploaded whole.
* :func:`backuppc_config` — **BackupPC**: source *file-level* dedup; one
  global whole-file fingerprint index, per-file upload.
* :func:`avamar_config` — **EMC Avamar**: source *chunk-level* dedup;
  CDC (8 KB expected) with SHA-1 on every file, one global chunk index,
  per-chunk upload, no tiny-file filter.
* :func:`sam_config` — **SAM**: hybrid semantic-aware dedup; whole-file
  tier first, CDC chunk tier for uncompressed data, global per-tier
  indices.
* :func:`aa_dedupe_config` (re-exported) — the paper's scheme.
"""

from repro.baselines.schemes import (
    jungle_disk_config,
    backuppc_config,
    avamar_config,
    sam_config,
    all_scheme_configs,
)
from repro.core.options import aa_dedupe_config

__all__ = [
    "jungle_disk_config",
    "backuppc_config",
    "avamar_config",
    "sam_config",
    "aa_dedupe_config",
    "all_scheme_configs",
]
