"""Baseline scheme configurations (see package docstring).

Interpretation notes (documented per DESIGN.md's substitution policy):

* **Jungle Disk** detects change by file metadata (size+mtime), uploads
  whole changed files, performs no fingerprint indexing.  The paper calls
  it "a file incremental cloud backup scheme".
* **BackupPC** "performs deduplication at the file level": whole-file
  chunking with a cryptographic file hash (historic BackupPC pools files
  by MD5-derived names; we use MD5) in one global index.  File-granular
  uploads — no containers.
* **Avamar** "applies CDC-based chunk-level deduplication": the paper's
  CDC parameters (8 KB expected, 2–16 KB bounds, SHA-1) on *every* file
  regardless of type, one global chunk index, per-chunk upload.  This is
  the fine-grained, high-overhead extreme.
* **SAM** "combin[es] file-level and chunk-level deduplication based on
  file semantics": whole-file SHA-1 tier first; on a file-tier miss,
  compressed media stays at file granularity while uncompressed data is
  CDC-chunked with SHA-1; per-tier global indices; 10 KB small-file
  shortcut like AA-Dedupe (the paper says AA's filter is "an approach
  like SAM") but without container aggregation.
"""

from __future__ import annotations

from repro.classify.filetype import Category
from repro.classify.policy import DedupPolicy
from repro.core.options import SchemeConfig, aa_dedupe_config
from repro.util.units import KIB

__all__ = ["jungle_disk_config", "backuppc_config", "avamar_config",
           "sam_config", "all_scheme_configs"]

_CDC_SHA1 = DedupPolicy(
    "cdc", "sha1",
    {"avg_size": 8 * KIB, "min_size": 2 * KIB, "max_size": 16 * KIB,
     "window": 48})


def jungle_disk_config(**overrides) -> SchemeConfig:
    """Jungle Disk: incremental file backup, no deduplication."""
    base = dict(
        name="JungleDisk",
        incremental_only=True,
        tiny_file_threshold=0,
        use_containers=False,
        index_sync_interval=0,
    )
    base.update(overrides)
    return SchemeConfig(**base)


def backuppc_config(**overrides) -> SchemeConfig:
    """BackupPC: source file-level deduplication, global file index."""
    base = dict(
        name="BackupPC",
        tiny_file_threshold=0,
        use_containers=False,
        fixed_policy=DedupPolicy("wfc", "md5"),
        index_layout="global",
        index_sync_interval=0,
        # BackupPC's pool is a hardlink forest on the filesystem: every
        # whole-file probe and insert is filesystem metadata IO.
        index_media="fs",
    )
    base.update(overrides)
    return SchemeConfig(**base)


def avamar_config(**overrides) -> SchemeConfig:
    """EMC Avamar: source chunk-level CDC dedup, single global index."""
    base = dict(
        name="Avamar",
        tiny_file_threshold=0,
        use_containers=False,
        fixed_policy=_CDC_SHA1,
        index_layout="global",
        index_sync_interval=0,
    )
    base.update(overrides)
    return SchemeConfig(**base)


def sam_config(**overrides) -> SchemeConfig:
    """SAM: hybrid file-level + chunk-level semantic-aware dedup.

    SAM partitions by file semantics: compressed media deduplicates at
    whole-file granularity, everything else at CDC chunk granularity —
    always with SHA-1 and one global index per tier.  Unlike AA-Dedupe
    it neither adapts the hash to the granularity nor partitions the
    chunk index by application.
    """
    base = dict(
        name="SAM",
        tiny_file_threshold=10 * KIB,
        use_containers=False,
        policy_table={
            Category.COMPRESSED: DedupPolicy("wfc", "sha1"),
            Category.STATIC: _CDC_SHA1,
            Category.DYNAMIC: _CDC_SHA1,
        },
        index_layout="tier",
        index_sync_interval=0,
    )
    base.update(overrides)
    return SchemeConfig(**base)


def all_scheme_configs(**common_overrides) -> list[SchemeConfig]:
    """The five evaluated schemes, in the paper's presentation order."""
    return [
        jungle_disk_config(**common_overrides),
        backuppc_config(**common_overrides),
        avamar_config(**common_overrides),
        sam_config(**common_overrides),
        aa_dedupe_config(**common_overrides),
    ]
