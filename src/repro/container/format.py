"""Binary container format: pack, parse, verify.

Layout (all integers big-endian)::

    +--------------------------------------------------------------+
    | header:  magic(8) version(2) container_id(8) flags(2)        |
    |          data_size(8) desc_count(4)                          |
    | data:    chunk bytes, in append order (chunk locality)       |
    | table:   desc_count fixed-width chunk descriptors            |
    | footer:  table_offset(8) crc32(4) magic(8)                   |
    +--------------------------------------------------------------+

The container may be padded with zeros between table and footer so the
blob reaches a fixed nominal size ("if a container is not full but needs
to be written ... it is padded out to its full size", Sec. III-F); the
footer always sits at the very end.  CRC-32 covers everything before the
crc field.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ContainerFormatError

__all__ = ["CONTAINER_MAGIC", "ChunkDescriptor", "ContainerWriter",
           "ContainerReader", "FLAG_TINY_FILE", "FLAG_DELTA"]

CONTAINER_MAGIC = b"AACONT\x01\x00"
_HEADER = struct.Struct(">8sHQHQI")          # magic, ver, cid, flags, dsz, n
_DESC = struct.Struct(">B20sQIB")            # fp_len, fp, offset, length, flags
_FOOTER = struct.Struct(">QI8s")             # table_offset, crc, magic
VERSION = 1

#: Descriptor flag: the extent is a whole tiny file, not a dedup chunk.
FLAG_TINY_FILE = 0x01

#: Descriptor flag: the extent is a delta blob (copy/insert program
#: against a base chunk, see :mod:`repro.delta.encode`), not raw chunk
#: bytes.  The descriptor fingerprint covers the *stored delta bytes*,
#: so extent verification needs no base resolution; the base linkage
#: itself lives in the manifest recipe (:class:`repro.core.recipe.ChunkRef`).
FLAG_DELTA = 0x02


@dataclass(frozen=True)
class ChunkDescriptor:
    """Metadata for one extent stored in a container."""

    fingerprint: bytes
    #: Offset of the extent within the container *data section*.
    offset: int
    length: int
    flags: int = 0

    def pack(self) -> bytes:
        """Fixed-width descriptor record."""
        return _DESC.pack(len(self.fingerprint),
                          self.fingerprint.ljust(20, b"\0"),
                          self.offset, self.length, self.flags)

    @classmethod
    def unpack(cls, blob: bytes) -> "ChunkDescriptor":
        """Inverse of :meth:`pack`."""
        fp_len, fp, offset, length, flags = _DESC.unpack(blob)
        return cls(fp[:fp_len], offset, length, flags)


class ContainerWriter:
    """Accumulates chunks for one container and serialises the blob.

    Not thread-safe; the :class:`~repro.container.manager.ContainerManager`
    owns one writer per backup stream.
    """

    def __init__(self, container_id: int, capacity: int) -> None:
        if capacity < _HEADER.size + _FOOTER.size + _DESC.size:
            raise ContainerFormatError("container capacity too small")
        self.container_id = container_id
        self.capacity = capacity
        self._data = bytearray()
        self._descs: List[ChunkDescriptor] = []

    # ------------------------------------------------------------------
    @property
    def data_size(self) -> int:
        """Bytes of chunk payload accumulated so far."""
        return len(self._data)

    @property
    def chunk_count(self) -> int:
        """Number of extents appended so far."""
        return len(self._descs)

    def occupancy(self) -> int:
        """Serialized size if sealed now (header+data+table+footer)."""
        return (_HEADER.size + len(self._data)
                + len(self._descs) * _DESC.size + _FOOTER.size)

    def fits(self, length: int) -> bool:
        """Would an extent of ``length`` bytes still fit within capacity?"""
        return self.occupancy() + length + _DESC.size <= self.capacity

    def append(self, fingerprint: bytes, data: bytes,
               flags: int = 0) -> int:
        """Append an extent; returns its offset inside the data section."""
        if not self.fits(len(data)):
            raise ContainerFormatError("container overflow")
        offset = len(self._data)
        self._data.extend(data)
        self._descs.append(ChunkDescriptor(fingerprint, offset,
                                           len(data), flags))
        return offset

    # ------------------------------------------------------------------
    def seal(self, pad_to_capacity: bool = True) -> bytes:
        """Serialise to the final blob (optionally padded to capacity)."""
        header = _HEADER.pack(CONTAINER_MAGIC, VERSION, self.container_id,
                              0, len(self._data), len(self._descs))
        table = b"".join(d.pack() for d in self._descs)
        table_offset = _HEADER.size + len(self._data)
        body = header + bytes(self._data) + table
        total = (self.capacity if pad_to_capacity
                 else len(body) + _FOOTER.size)
        pad_len = total - len(body) - _FOOTER.size
        if pad_len < 0:
            raise ContainerFormatError("seal overflow (internal)")
        body += b"\0" * pad_len
        crc = zlib.crc32(body + _FOOTER.pack(table_offset, 0,
                                             CONTAINER_MAGIC)[:8])
        return body + _FOOTER.pack(table_offset, crc, CONTAINER_MAGIC)


class ContainerReader:
    """Parses and verifies a serialised container; random extent access."""

    def __init__(self, blob: bytes) -> None:
        if len(blob) < _HEADER.size + _FOOTER.size:
            raise ContainerFormatError("blob too small to be a container")
        magic, version, cid, _flags, data_size, desc_count = _HEADER.unpack(
            blob[:_HEADER.size])
        if magic != CONTAINER_MAGIC:
            raise ContainerFormatError("bad container magic")
        if version != VERSION:
            raise ContainerFormatError(f"unsupported version {version}")
        table_offset, crc, tail_magic = _FOOTER.unpack(blob[-_FOOTER.size:])
        if tail_magic != CONTAINER_MAGIC:
            raise ContainerFormatError("bad footer magic")
        expected = zlib.crc32(blob[:-_FOOTER.size]
                              + _FOOTER.pack(table_offset, 0,
                                             CONTAINER_MAGIC)[:8])
        if crc != expected:
            raise ContainerFormatError("container CRC mismatch")
        if table_offset != _HEADER.size + data_size:
            raise ContainerFormatError("inconsistent table offset")
        self.container_id = cid
        self.data_size = data_size
        self._blob = blob
        self.descriptors: List[ChunkDescriptor] = []
        pos = table_offset
        for _ in range(desc_count):
            self.descriptors.append(
                ChunkDescriptor.unpack(blob[pos:pos + _DESC.size]))
            pos += _DESC.size
        self._by_fp: Dict[bytes, ChunkDescriptor] = {
            d.fingerprint: d for d in self.descriptors}

    def get(self, fingerprint: bytes) -> Optional[bytes]:
        """Extent bytes for ``fingerprint``, or ``None`` if absent."""
        desc = self._by_fp.get(fingerprint)
        return None if desc is None else self.extent(desc)

    def extent(self, desc: ChunkDescriptor) -> bytes:
        """Extent bytes for a descriptor (bounds-checked)."""
        start = _HEADER.size + desc.offset
        end = start + desc.length
        if desc.offset + desc.length > self.data_size:
            raise ContainerFormatError("descriptor beyond data section")
        return bytes(self._blob[start:end])

    def read_at(self, offset: int, length: int) -> bytes:
        """Extent bytes by raw (offset, length) within the data section."""
        if offset < 0 or offset + length > self.data_size:
            raise ContainerFormatError("read beyond data section")
        start = _HEADER.size + offset
        return bytes(self._blob[start:start + length])
