"""Container substrate: self-describing chunk containers (paper Sec. III-F).

Deduplication turns large sequential writes into many small random ones;
AA-Dedupe (like Cumulus, DDFS and Sparse Indexing) regains transfer and
request efficiency by packing unique chunks and tiny files into fixed-size
(default 1 MiB) *containers* before shipping them over the WAN.  A
container is self-describing: a descriptor table inside the blob lists
every chunk's fingerprint, offset and length, so restore — and disaster
recovery without the local index — needs nothing else.
"""

from repro.container.format import (
    ContainerWriter,
    ContainerReader,
    ChunkDescriptor,
    CONTAINER_MAGIC,
)
from repro.container.manager import ContainerManager, ChunkLocation

__all__ = [
    "ContainerWriter",
    "ContainerReader",
    "ChunkDescriptor",
    "CONTAINER_MAGIC",
    "ContainerManager",
    "ChunkLocation",
]
