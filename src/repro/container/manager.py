"""Open-container management (paper Sec. III-F).

The manager keeps one *open* container per backup stream, appends each
new unique chunk (or tiny file) to its stream's container in arrival
order — preserving *chunk locality* so data likely to be restored
together is stored together — and seals/uploads a container when it
fills.  Sealed containers are padded to the fixed container size.
Chunks larger than the container payload (e.g. WFC fingerprints of big
compressed files) are shipped as dedicated *oversized* containers, kept
self-describing but not padded.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.container.format import (ContainerWriter, FLAG_DELTA,
                                    FLAG_TINY_FILE)
from repro.errors import ContainerError
from repro.obs.metrics import CHUNK_SIZE_BUCKETS
from repro.obs.tracer import NOOP_TRACER
from repro.util.units import MIB

__all__ = ["ChunkLocation", "ContainerManager"]


@dataclass(frozen=True)
class ChunkLocation:
    """Where a chunk lives: container id + (offset, length) in its data
    section.  This is the payload of an index entry."""

    container_id: int
    offset: int
    length: int


@dataclass
class ContainerManagerStats:
    """Aggregate accounting for cost/window models."""

    sealed: int = 0
    oversized: int = 0
    bytes_payload: int = 0
    bytes_uploaded: int = 0
    bytes_padding: int = 0
    tiny_files_packed: int = 0


class ContainerManager:
    """Packs unique chunks into fixed-size containers and uploads them.

    ``upload(container_id, blob)`` is invoked synchronously when a
    container seals — the core engine passes a callback that enqueues to
    the (possibly pipelined) cloud uploader.  ``container_size`` defaults
    to the paper's 1 MB.
    """

    def __init__(self,
                 upload: Callable[[int, bytes], None],
                 container_size: int = 1 * MIB,
                 pad_containers: bool = True,
                 first_container_id: int = 0,
                 tracer=None,
                 pack_async: bool = False) -> None:
        if container_size < 4096:
            raise ContainerError("container_size must be >= 4096")
        self._upload = upload
        self.container_size = container_size
        self.pad_containers = pad_containers
        self._next_id = first_container_id
        self._open: Dict[str, ContainerWriter] = {}
        self.stats = ContainerManagerStats()
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        # Parallel per-application dedup workers append to different
        # streams but share id allocation, stats and the upload path.
        self._lock = threading.RLock()
        # -- async pack stage (pipelined engine only) -------------------
        # Serialize + pad + upload hand-off runs on one dedicated
        # thread so the commit path returns as soon as the chunk is
        # appended.  Offsets and container ids are assigned at append
        # time under the lock, so moving the seal off-thread cannot
        # change manifest bytes.  One thread (not a pool) keeps seal
        # spans and journal records ordered per manager.
        self.pack_busy_seconds = 0.0
        self._pack_error: Optional[BaseException] = None
        self._pack_cond = threading.Condition()
        self._pack_outstanding = 0
        self._pack_queue: Optional["queue.Queue"] = None
        self._pack_thread: Optional[threading.Thread] = None
        if pack_async:
            self._pack_queue = queue.Queue(maxsize=4)
            self._pack_thread = threading.Thread(
                target=self._pack_run, daemon=True, name="aa-pack")
            self._pack_thread.start()

    # ------------------------------------------------------------------
    def _new_writer(self, capacity: int | None = None) -> ContainerWriter:
        writer = ContainerWriter(self._next_id,
                                 capacity or self.container_size)
        self._next_id += 1
        return writer

    def _seal(self, writer: ContainerWriter, *, pad: bool,
              stream: str = "default") -> None:
        if self._pack_queue is not None:
            self._pack_submit(writer, pad, stream)
            return
        self._seal_now(writer, pad, stream)

    def _seal_now(self, writer: ContainerWriter, pad: bool,
                  stream: str) -> None:
        tracer = self.tracer
        if not tracer.enabled:
            self._seal_inner(writer, pad)
            return
        with tracer.span("container.seal", app=stream,
                         container=writer.container_id,
                         bytes=writer.occupancy(), padded=pad):
            self._seal_inner(writer, pad)
        tracer.metrics.histogram(
            "container_payload_bytes",
            CHUNK_SIZE_BUCKETS).observe(writer.data_size)

    # -- pack worker (async seal + upload hand-off) ---------------------
    def _pack_run(self) -> None:
        try:
            while True:
                job = self._pack_queue.get()
                if job is None:
                    return
                writer, pad, stream = job
                start = time.perf_counter()
                try:
                    if self._pack_error is None:  # fail fast: drop rest
                        self._seal_now(writer, pad, stream)
                except BaseException as exc:
                    if self._pack_error is None:
                        self._pack_error = exc
                finally:
                    self.pack_busy_seconds += time.perf_counter() - start
                    self._pack_finish_one()
        finally:
            with self._pack_cond:
                self._pack_cond.notify_all()

    def _pack_finish_one(self) -> None:
        with self._pack_cond:
            self._pack_outstanding -= 1
            self._pack_cond.notify_all()

    def _raise_pack_error(self) -> None:
        if self._pack_error is not None:
            error, self._pack_error = self._pack_error, None
            raise ContainerError("container pack failed") from error

    def _pack_submit(self, writer: ContainerWriter, pad: bool,
                     stream: str) -> None:
        self._raise_pack_error()
        with self._pack_cond:
            self._pack_outstanding += 1
        while True:
            if not self._pack_thread.is_alive():
                self._pack_finish_one()
                raise ContainerError("container pack worker died") \
                    from self._pack_error
            try:
                self._pack_queue.put((writer, pad, stream), timeout=0.1)
                return
            except queue.Full:
                continue

    def _pack_drain(self) -> None:
        """Wait until every queued seal has uploaded (liveness-guarded)."""
        with self._pack_cond:
            while self._pack_outstanding > 0:
                if not self._pack_thread.is_alive():
                    break
                self._pack_cond.wait(0.1)
            stranded = self._pack_outstanding
        self._raise_pack_error()
        if stranded > 0:
            raise ContainerError("container pack worker died")

    def _seal_inner(self, writer: ContainerWriter, pad: bool) -> None:
        blob = writer.seal(pad_to_capacity=pad)
        self.stats.sealed += 1
        self.stats.bytes_payload += writer.data_size
        self.stats.bytes_uploaded += len(blob)
        if pad:
            self.stats.bytes_padding += len(blob) - writer.occupancy()
        self._upload(writer.container_id, blob)

    # ------------------------------------------------------------------
    def add(self, fingerprint: bytes, data: bytes,
            stream: str = "default", *, tiny_file: bool = False,
            delta: bool = False) -> ChunkLocation:
        """Append a unique chunk/tiny file/delta blob; returns its final
        location.

        The location is known immediately (offsets are fixed at append
        time) even though the container uploads later — this is what lets
        the deduplicator insert the index entry before the seal.
        ``delta`` marks the extent as a delta blob (scrub then validates
        its encoding instead of expecting chunk plaintext).
        Thread-safe (parallel per-application workers share the manager).
        """
        if self._pack_queue is not None:
            self._raise_pack_error()  # surface async seal failures early
        with self._lock:
            return self._add_locked(fingerprint, data, stream,
                                    tiny_file=tiny_file, delta=delta)

    def _add_locked(self, fingerprint: bytes, data: bytes,
                    stream: str, *, tiny_file: bool,
                    delta: bool) -> ChunkLocation:
        flags = FLAG_TINY_FILE if tiny_file else 0
        if delta:
            flags |= FLAG_DELTA
        probe = ContainerWriter(0, self.container_size)
        if not probe.fits(len(data)):
            # Oversized: dedicated self-describing container, unpadded.
            writer = self._new_writer(capacity=len(data) + 64 * 1024)
            offset = writer.append(fingerprint, data, flags)
            location = ChunkLocation(writer.container_id, offset, len(data))
            self.stats.oversized += 1
            self._seal(writer, pad=False, stream=stream)
            return location

        writer = self._open.get(stream)
        if writer is not None and not writer.fits(len(data)):
            self._seal(writer, pad=self.pad_containers, stream=stream)
            writer = None
        if writer is None:
            writer = self._open[stream] = self._new_writer()
        offset = writer.append(fingerprint, data, flags)
        if tiny_file:
            self.stats.tiny_files_packed += 1
        return ChunkLocation(writer.container_id, offset, len(data))

    def flush(self, stream: str | None = None) -> None:
        """Seal and upload any open container(s).

        End-of-session flush pads the final container to full size, per
        the paper ("if a container is not full but needs to be written to
        disk, it is padded out to its full size").  With the async pack
        stage, returns only after every queued seal has been handed to
        the uploader — callers rely on flush as the "all containers
        submitted" barrier before the manifest upload.
        """
        with self._lock:
            streams = ([stream] if stream is not None
                       else list(self._open))
            for name in streams:
                writer = self._open.pop(name, None)
                if writer is not None and writer.chunk_count:
                    self._seal(writer, pad=self.pad_containers,
                               stream=name)
        if self._pack_queue is not None:
            self._pack_drain()

    def close(self) -> None:
        """Flush open containers and stop the pack worker (if any)."""
        self.flush()
        thread = self._pack_thread
        if thread is not None and thread.is_alive():
            self._pack_queue.put(None)
            thread.join(timeout=10.0)

    @property
    def next_container_id(self) -> int:
        """Id that the next opened container will receive."""
        return self._next_id

    def set_next_id(self, container_id: int) -> None:
        """Restart id allocation at ``container_id``.

        Used by journal-based session resume, which must replay the
        interrupted run's numbering so re-generated containers land on
        their original keys.  Refuses while containers are open (their
        ids are already assigned).
        """
        with self._lock:
            if self._open:
                raise ContainerError(
                    "cannot renumber with open containers")
            self._next_id = container_id

    def open_streams(self) -> list[str]:
        """Names of streams with a currently open container."""
        return sorted(self._open)
