"""Secure deduplication (the paper's future-work direction, Sec. VI).

"As a direction of future work, we plan to investigate the secure
deduplication issue in cloud backup services" — this package implements
the classic answer, **convergent encryption**: each chunk is encrypted
under a key derived from its own content, so identical plaintexts yield
identical ciphertexts and deduplication keeps working on encrypted
data, while the cloud provider never sees plaintext.  Per-chunk keys
are wrapped under the client's master key inside the file recipes.

The primitives are built on :mod:`hashlib` (BLAKE2b keystream / SHA-256
KDF) so the library stays dependency-free; swap
:class:`~repro.secure.convergent.ConvergentCipher` for an AES-based one
in production.
"""

from repro.secure.convergent import (
    ConvergentCipher,
    chunk_key,
    wrap_key,
    unwrap_key,
    WRAPPED_KEY_LEN,
)

__all__ = [
    "ConvergentCipher",
    "chunk_key",
    "wrap_key",
    "unwrap_key",
    "WRAPPED_KEY_LEN",
]
