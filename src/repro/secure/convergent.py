"""Convergent encryption primitives.

Scheme (the standard construction, e.g. Farsite / Anderson-Zhang
[LISA'10], which the paper cites as related work):

* **chunk key**   ``K = SHA-256(plaintext)`` — content-derived, so equal
  chunks get equal keys everywhere;
* **ciphertext**  ``C = P XOR keystream(K)`` — a deterministic stream
  cipher (BLAKE2b in counter mode keyed by ``K``); equal plaintexts ⇒
  equal ciphertexts ⇒ dedup still works on encrypted data;
* **key wrap**    each chunk's ``K`` is stored in the file recipe,
  encrypted under the client's master secret and bound to the chunk's
  storage fingerprint, with a short authentication tag so a wrong
  master key is detected rather than yielding garbage plaintext.

The XOR-keystream cipher is a faithful stand-in with the right
*dedup-relevant* properties (deterministic, key-recoverable, ciphertext
indistinguishable from random without ``K``); production deployments
would substitute AES-CTR/AES-KW without touching the engine.
"""

from __future__ import annotations

import hashlib

from repro.errors import IntegrityError

__all__ = ["ConvergentCipher", "chunk_key", "wrap_key", "unwrap_key",
           "WRAPPED_KEY_LEN"]

#: Chunk-key length (SHA-256).
KEY_LEN = 32
#: Authentication tag appended to a wrapped key.
TAG_LEN = 8
#: Serialized wrapped-key length carried in recipes.
WRAPPED_KEY_LEN = KEY_LEN + TAG_LEN

_BLOCK = 64  # BLAKE2b output size used as the keystream block


def chunk_key(plaintext: bytes) -> bytes:
    """Content-derived chunk key ``K = SHA-256(P)``."""
    return hashlib.sha256(plaintext).digest()


class ConvergentCipher:
    """Deterministic symmetric cipher keyed per chunk."""

    @staticmethod
    def _keystream(key: bytes, length: int) -> bytes:
        blocks = []
        for counter in range((length + _BLOCK - 1) // _BLOCK):
            blocks.append(hashlib.blake2b(
                counter.to_bytes(8, "big"), key=key,
                digest_size=_BLOCK).digest())
        return b"".join(blocks)[:length]

    @classmethod
    def encrypt(cls, plaintext: bytes, key: bytes) -> bytes:
        """``C = P XOR keystream(K)`` (length-preserving)."""
        stream = cls._keystream(key, len(plaintext))
        return bytes(p ^ s for p, s in zip(plaintext, stream))

    @classmethod
    def decrypt(cls, ciphertext: bytes, key: bytes) -> bytes:
        """Inverse of :meth:`encrypt` (XOR is an involution)."""
        return cls.encrypt(ciphertext, key)

    @classmethod
    def seal(cls, plaintext: bytes) -> tuple[bytes, bytes]:
        """Convergent-encrypt: returns ``(ciphertext, chunk_key)``."""
        key = chunk_key(plaintext)
        return cls.encrypt(plaintext, key), key


def _wrap_pad(master_key: bytes, fingerprint: bytes) -> bytes:
    return hashlib.blake2b(fingerprint, key=master_key[:64],
                           digest_size=KEY_LEN).digest()


def _wrap_tag(master_key: bytes, fingerprint: bytes, key: bytes) -> bytes:
    return hashlib.blake2b(fingerprint + key, key=master_key[:64],
                           digest_size=TAG_LEN).digest()


def wrap_key(key: bytes, master_key: bytes, fingerprint: bytes) -> bytes:
    """Encrypt a chunk key under the master secret, bound to the chunk's
    storage fingerprint; appends an authentication tag."""
    if len(key) != KEY_LEN:
        raise ValueError(f"chunk key must be {KEY_LEN} bytes")
    pad = _wrap_pad(master_key, fingerprint)
    sealed = bytes(k ^ p for k, p in zip(key, pad))
    return sealed + _wrap_tag(master_key, fingerprint, key)


def unwrap_key(wrapped: bytes, master_key: bytes,
               fingerprint: bytes) -> bytes:
    """Inverse of :func:`wrap_key`; raises
    :class:`~repro.errors.IntegrityError` on a wrong master key or a
    tampered recipe."""
    if len(wrapped) != WRAPPED_KEY_LEN:
        raise IntegrityError("wrapped chunk key has wrong length")
    sealed, tag = wrapped[:KEY_LEN], wrapped[KEY_LEN:]
    pad = _wrap_pad(master_key, fingerprint)
    key = bytes(s ^ p for s, p in zip(sealed, pad))
    if _wrap_tag(master_key, fingerprint, key) != tag:
        raise IntegrityError("chunk key unwrap failed "
                             "(wrong master key or corrupt recipe)")
    return key
