"""Client-side fleet index: local subindex plus global-directory probe.

:class:`FleetIndex` is the per-``(client, app)`` subindex a fleet
client's :class:`~repro.core.backup.BackupClient` routes through its
application-aware index.  It behaves exactly like the paper's in-RAM
per-app index for everything the client has seen itself, and falls
through to the service's :class:`~repro.fleet.directory.GlobalDedupDirectory`
on a local miss:

* **local hit** — pure memory hit, no directory traffic;
* **directory hit** — another client already uploaded the chunk into
  the shared container pool; the entry is *adopted* into the local
  index (so repeats are local from then on) and the engine skips the
  upload — that is cross-client deduplication;
* **directory miss** — memoised for the rest of the directory epoch
  (the committed snapshot is frozen between commits, so a miss cannot
  turn into a hit mid-round) — repeated probes for hot new chunks cost
  one shard batch, not one per occurrence.  The memo is
  **filter-aware**: a miss the directory answered from a shard's Bloom
  front (or an unallocated shard) is *not* memoised — re-probing it is
  already a RAM bit test with no seek, so the memo set stays bounded by
  the handful of misses that actually reached a backing index instead
  of growing with every cold fingerprint a million-client fleet
  streams through.

New local inserts are published to the directory through a write-behind
**outbox**, flushed in batches (amortising shard locks and, on a
disk-backed directory, seeks).  The service flushes outboxes at session
end so every round's chunks are offered before the epoch commits.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from repro.index.base import ChunkIndex, IndexEntry

__all__ = ["FleetIndex"]


class FleetIndex(ChunkIndex):
    """Per-application index with global-directory fallthrough.

    ``rank`` is the owning client's fleet rank — the tiebreaker when two
    clients publish the same fingerprint in one epoch (lowest wins, so
    commit results are independent of thread scheduling).
    """

    def __init__(self, directory, app: str, rank: int,
                 publish_batch: int = 64) -> None:
        super().__init__()
        if publish_batch < 1:
            raise ValueError("publish_batch must be >= 1")
        self.directory = directory
        self.app = app
        self.rank = rank
        self._publish_batch = publish_batch
        self._local: Dict[bytes, IndexEntry] = {}
        self._outbox: List[IndexEntry] = []
        self._memo_epoch = directory.epoch
        self._misses: Set[bytes] = set()
        #: Fingerprints probed against the directory (local misses).
        self.remote_probes = 0
        #: Directory hits — chunks first uploaded by some other client.
        self.remote_hits = 0
        #: Directory misses absorbed by a shard filter front (or an
        #: unallocated shard) — cheap enough that they skip the memo.
        self.filter_absorbed = 0
        #: Bytes saved by adopting remote entries (cross-client dedup,
        #: counted once at adoption; repeats afterwards are local hits).
        self.adopted_bytes = 0

    # ------------------------------------------------------------------
    def lookup(self, fingerprint: bytes) -> Optional[IndexEntry]:
        stats = self.stats
        stats.lookups += 1
        entry = self._local.get(fingerprint)
        if entry is not None:
            stats.hits += 1
            stats.memory_hits += 1
            return entry
        if self.directory.epoch != self._memo_epoch:
            self._memo_epoch = self.directory.epoch
            self._misses.clear()
        elif fingerprint in self._misses:
            return None
        self.remote_probes += 1
        found, absorbed = self.directory.probe_batch(
            self.app, (fingerprint,), stream=self.rank)
        remote = found[0]
        if remote is None:
            if absorbed[0]:
                self.filter_absorbed += 1
            else:
                self._misses.add(fingerprint)
            return None
        self.remote_hits += 1
        self.adopted_bytes += remote.length
        # Adopt: the chunk lives in the shared container pool, so the
        # local entry points straight at the publisher's container.
        self._local[fingerprint] = remote
        stats.hits += 1
        return remote

    def insert(self, entry: IndexEntry) -> None:
        self.stats.inserts += 1
        self.generation += 1
        fresh = entry.fingerprint not in self._local
        self._local[entry.fingerprint] = entry
        if fresh:
            # Brand-new chunk this client just stored: offer it to the
            # fleet.  Refcount re-inserts and adopted entries are local
            # bookkeeping the directory does not need.
            self._outbox.append(entry)
            if len(self._outbox) >= self._publish_batch:
                self.flush_publishes()

    def flush_publishes(self) -> None:
        """Push the outbox to the directory's pending buffer."""
        if self._outbox:
            self.directory.publish_batch(self.app, self._outbox, self.rank)
            self._outbox = []

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._local)

    def entries(self) -> Iterator[IndexEntry]:
        return iter(list(self._local.values()))

    def flush(self) -> None:
        self.flush_publishes()

    def close(self) -> None:
        self.flush_publishes()
        self._local.clear()
        self._misses.clear()
