"""Server-side global deduplication directory for a backup fleet.

One AA-Dedupe client deduplicates against its *own* per-application
subindices (paper Sec. III-D).  A cloud provider serving a fleet of
clients can do better: a chunk uploaded by any client is addressable by
every other, so the service keeps a **global directory** of fingerprints
on the server side.  To keep any single lookup structure small and the
load spread, the directory is sharded by ``(app_label, consistent-hash
bucket)`` — the application label first (preserving the paper's
observation that cross-application chunk collisions are negligible, so
shards never need cross-app probes), then a
:class:`~repro.fleet.ring.ConsistentHashRing` arc of the fingerprint.

Each :class:`DirectoryShard` owns an independent
:class:`~repro.index.base.ChunkIndex` and its own lock, so probes
against different shards never contend.  Probes are **batched**:
:meth:`GlobalDedupDirectory.lookup_batch` groups fingerprints by shard
and probes each shard once per batch, which is what lets a disk-backed
shard amortise seeks (the per-shard ``batches`` counter versus ``probes``
makes the amortisation visible to the cost model).

At million-client scale three more tiers stack onto each shard
(see docs/FLEET.md):

* a **Bloom filter front** (``filter_capacity``) — the DDFS [Zhu08]
  summary vector: a negative probe the filter answers touches neither
  the backing index nor the ``batches`` seek counter, so cold-miss
  floods cost RAM bit tests, not disk;
* a **locality-prioritized cache** (``locality_capacity``) — the
  HPDedup (arxiv 1702.08153) front replacing a plain LRU: per-stream
  temporal locality is estimated from hit run lengths and
  low-locality streams are evicted first;
* an optional **sparse backing**
  (:class:`~repro.index.sparse.SparseShardIndex` via
  ``index_factory``) — FAST'09 sampling for the long tail, trading a
  bounded dedup loss for a tiny RAM index.

Visibility is **epoch-based** so fleet runs are deterministic under any
thread interleaving: lookups only see entries committed by a previous
:meth:`~GlobalDedupDirectory.commit_epoch`; publishes land in a pending
buffer where the lowest client rank wins ties.  The *shard topology*
itself is epoch-based too: publishes to a bucket whose shard does not
exist yet buffer directory-side and the shard materialises at the next
commit, so the set of live shards is frozen between barriers — a probe
racing a publish in the same wave observes the same topology no matter
how threads interleave, which keeps every per-shard counter
``max_workers``-independent.  Shard **rebalancing**
(``shard_split_entries``) likewise happens only inside the epoch
commit: a shard that outgrew the split threshold gets a new ring node
and the arcs the node claims migrate over, so routing changes are a
pure function of committed state and never race a probe.
"""

from __future__ import annotations

import threading
from typing import (Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

from repro.index.base import ChunkIndex, IndexEntry, IndexStats
from repro.index.bloom import BloomFilter
from repro.index.cache import LRUCache
from repro.index.locality import LocalityCache
from repro.index.memory import MemoryIndex
from repro.fleet.ring import ConsistentHashRing
from repro.obs.tracer import NOOP_TRACER

__all__ = ["DirectoryShard", "GlobalDedupDirectory"]


class DirectoryShard:
    """One ``(app, bucket)`` shard: filter front, committed index,
    pending buffer.

    The committed index answers probes; the pending dict holds entries
    published during the current epoch, invisible until
    :meth:`commit`.  ``_known`` maps every committed fingerprint to its
    entry, shadowing the committed index so commits never issue lookups
    against it — shard probe statistics stay a pure measure of
    client-driven load — and so rebalancing can extract entries without
    touching probe counters either.
    """

    def __init__(self, app: str, bucket: int, index: ChunkIndex,
                 bloom: Optional[BloomFilter] = None) -> None:
        self.app = app
        self.bucket = bucket
        self.index = index
        self.bloom = bloom
        self.lock = threading.Lock()
        self._pending: Dict[bytes, Tuple[int, IndexEntry]] = {}
        self._known: Dict[bytes, IndexEntry] = {}
        #: Batched probe rounds that reached the backing index (each is
        #: one potential seek on a disk-backed shard; ``probes /
        #: batches`` is the amortisation).  Batches the filter front
        #: fully absorbed are not counted — they cost no seek.
        self.batches = 0
        #: Fingerprints probed in total.
        self.probes = 0
        #: Probes answered from the committed index.
        self.hits = 0
        #: Negative probes answered by the Bloom front without touching
        #: the backing index.
        self.filter_rejects = 0
        #: Entries offered by publishers (including duplicates).
        self.publishes = 0
        #: Entries actually committed (first publisher by rank wins).
        self.accepted = 0

    @property
    def key(self) -> Tuple[str, int]:
        return (self.app, self.bucket)

    @property
    def name(self) -> str:
        return f"{self.app}/{self.bucket}"

    def _chain(self) -> Iterable[ChunkIndex]:
        """The index wrapper chain, top level first."""
        node = self.index
        while node is not None:
            yield node
            node = getattr(node, "backing", None)

    @property
    def _bottom(self) -> ChunkIndex:
        """The chain's base index — where bulk loads land.

        Epoch commits and migration absorbs write here, not through
        the cache fronts: they are batch loads of entries nobody has
        probed yet, and pushing hundreds of them through a bounded
        cache per epoch would evict the probe path's hot working set
        (cache fronts populate from *probe* traffic only).
        """
        for node in self._chain():
            bottom = node
        return bottom

    @property
    def stats(self) -> IndexStats:
        """Probe accounting with the memory/disk split for this shard.

        Cache fronts keep their own counters and only fall through to
        their backing on a miss, so deeper counters live further down
        the wrapper chain; this walks and merges the **whole** chain
        (a filter→cache→disk stack is three levels deep).  Lookup/hit
        totals come from the top level (each fall-through would
        double-count), while memory hits and disk IO add up across
        levels — each level only counts the work it did itself.
        """
        top = self.index.stats
        merged = IndexStats(lookups=top.lookups, hits=top.hits)
        for node in self._chain():
            level = node.stats
            merged.memory_hits += level.memory_hits
            merged.disk_probes += level.disk_probes
            merged.disk_bytes += level.disk_bytes
            # Commits bulk-load the bottom level directly while client
            # write-through fronts count their own inserts; the largest
            # level count is the number of entries actually written.
            merged.inserts = max(merged.inserts, level.inserts)
        return merged

    def locality_scores(self) -> Dict[str, float]:
        """Per-stream locality estimates, if a
        :class:`~repro.index.locality.LocalityCache` fronts this shard
        (empty dict otherwise)."""
        for node in self._chain():
            if isinstance(node, LocalityCache):
                return node.locality_scores()
        return {}

    def __len__(self) -> int:
        return len(self._known)

    def committed_entries(self) -> List[IndexEntry]:
        """Committed entries in fingerprint order (no stats impact)."""
        with self.lock:
            return [self._known[fp] for fp in sorted(self._known)]

    # -- filter front --------------------------------------------------
    def _filter_add(self, fingerprint: bytes) -> None:
        if self.bloom is not None:
            self.bloom.add(fingerprint)

    def _filter_maintain(self) -> None:
        """Grow or rebuild the Bloom front from the committed set.

        Called after commits (count may exceed capacity — doubling
        keeps the false-positive rate near target) and after extracts
        (a Bloom filter cannot remove, so migration rebuilds it).
        """
        if self.bloom is None:
            return
        capacity = self.bloom.capacity
        while capacity < len(self._known):
            capacity *= 2
        fresh = BloomFilter(capacity=capacity, fp_rate=self.bloom.fp_rate)
        for fp in self._known:
            fresh.add(fp)
        self.bloom = fresh

    # ------------------------------------------------------------------
    def probe(self, fingerprints: Sequence[bytes], stream=None
              ) -> Tuple[List[Optional[IndexEntry]], List[bool]]:
        """One batched probe against the committed tier.

        Returns results aligned with the input plus an ``absorbed``
        flag per position: ``True`` means the miss was answered by the
        Bloom front alone — no index lookup, no seek, and (because the
        filter has no false negatives over the committed set) no lost
        hit.  ``stream`` tags the probing ``(client, app)`` stream for
        locality estimation.
        """
        with self.lock:
            self.probes += len(fingerprints)
            out: List[Optional[IndexEntry]] = [None] * len(fingerprints)
            absorbed = [False] * len(fingerprints)
            todo: List[int] = []
            for i, fp in enumerate(fingerprints):
                if self.bloom is not None \
                        and not self.bloom.might_contain(fp):
                    self.filter_rejects += 1
                    absorbed[i] = True
                else:
                    todo.append(i)
            if todo:
                self.batches += 1
                passing = [fingerprints[i] for i in todo]
                for node in self._chain():
                    if stream is not None and hasattr(node, "begin_stream"):
                        node.begin_stream(stream)
                    if hasattr(node, "begin_batch"):
                        node.begin_batch(passing)
                for i in todo:
                    entry = self.index.lookup(fingerprints[i])
                    if entry is not None:
                        self.hits += 1
                    out[i] = entry
            return out, absorbed

    def offer(self, entries: Iterable[IndexEntry], rank: int) -> None:
        """Buffer entries for the next epoch; lowest rank wins ties."""
        with self.lock:
            for entry in entries:
                self.publishes += 1
                fp = entry.fingerprint
                if fp in self._known:
                    continue  # already committed; location is settled
                current = self._pending.get(fp)
                if current is None or rank < current[0]:
                    self._pending[fp] = (rank, entry)

    def adopt_offers(self, offers: Dict[bytes, Tuple[int, IndexEntry]],
                     publishes: int) -> None:
        """Merge offers buffered directory-side before this shard
        existed (same rank tie-break as :meth:`offer`)."""
        with self.lock:
            self.publishes += publishes
            for fp, (rank, entry) in offers.items():
                if fp in self._known:
                    continue
                current = self._pending.get(fp)
                if current is None or rank < current[0]:
                    self._pending[fp] = (rank, entry)

    def commit(self) -> int:
        """Fold the pending buffer into the committed index.

        Pending fingerprints are committed in sorted order so the
        backing index's physical layout (memtable spills, run contents)
        is identical no matter which thread published first.  Freshly
        committed fingerprints enter the Bloom front here — the filter
        always reflects exactly the committed set.
        """
        with self.lock:
            fresh = 0
            base = self._bottom
            for fp in sorted(self._pending):
                if fp in self._known:
                    continue
                _rank, entry = self._pending[fp]
                base.insert(entry)
                self._known[fp] = entry
                self._filter_add(fp)
                fresh += 1
            self._pending.clear()
            self.accepted += fresh
            if self.bloom is not None \
                    and self.bloom.count > self.bloom.capacity:
                self._filter_maintain()
            return fresh

    # -- rebalancing ---------------------------------------------------
    def extract(self, keep: Callable[[bytes], bool]) -> List[IndexEntry]:
        """Remove and return committed entries failing ``keep(fp)``.

        Used by ring splits: entries whose arc a new shard claimed move
        out.  The backing index physically drops them when it supports
        ``discard`` (MemoryIndex); otherwise stale records linger
        unreachably — routing never sends their fingerprint here again.
        The Bloom front is rebuilt from the surviving committed set.
        """
        with self.lock:
            moving = sorted(fp for fp in self._known if not keep(fp))
            if not moving:
                return []
            discard = getattr(self._bottom, "discard", None)
            out = []
            for fp in moving:
                out.append(self._known.pop(fp))
                if discard is not None:
                    discard(fp)
            self._filter_maintain()
            return out

    def absorb(self, entries: Sequence[IndexEntry]) -> int:
        """Adopt migrated committed entries (sorted insert order)."""
        with self.lock:
            fresh = 0
            base = self._bottom
            for entry in sorted(entries, key=lambda e: e.fingerprint):
                fp = entry.fingerprint
                if fp in self._known:
                    continue
                base.insert(entry)
                self._known[fp] = entry
                self._filter_add(fp)
                fresh += 1
            if self.bloom is not None \
                    and self.bloom.count > self.bloom.capacity:
                self._filter_maintain()
            return fresh


class GlobalDedupDirectory:
    """Fingerprint directory sharded by ``(app, consistent-hash arc)``.

    ``index_factory(app, bucket)`` builds each shard's backing index
    (default: :class:`~repro.index.memory.MemoryIndex`; pass a
    :class:`~repro.index.sparse.SparseShardIndex` factory for the
    sampling-based long-tail tier).  Fronts are mutually exclusive: a
    positive ``cache_capacity`` wraps every shard in a plain
    :class:`~repro.index.cache.LRUCache`, a positive
    ``locality_capacity`` in the HPDedup-style
    :class:`~repro.index.locality.LocalityCache`.  A positive
    ``filter_capacity`` puts a Bloom filter in front of every shard's
    committed set.  ``shard_split_entries > 0`` enables epoch-barrier
    rebalancing: when a shard's committed population exceeds the
    threshold, its app's ring gains a node and the claimed arcs
    migrate.

    Note that cache-front hit *statistics* depend on probe arrival
    order, so determinism assertions over shard stats should use the
    default memory backing; committed *content* is order-independent
    either way (and stays so under rebalancing, which only runs at
    barriers over already-deterministic committed state).
    """

    def __init__(self,
                 shards_per_app: int = 4,
                 index_factory: Optional[
                     Callable[[str, int], ChunkIndex]] = None,
                 cache_capacity: int = 0,
                 locality_capacity: int = 0,
                 filter_capacity: int = 0,
                 filter_fp_rate: float = 0.01,
                 shard_split_entries: int = 0,
                 ring_vnodes: int = 128,
                 tracer=None) -> None:
        if shards_per_app < 1:
            raise ValueError("shards_per_app must be >= 1")
        if cache_capacity > 0 and locality_capacity > 0:
            raise ValueError(
                "cache_capacity and locality_capacity are alternative "
                "fronts; configure at most one")
        self.shards_per_app = shards_per_app
        self._factory = index_factory or (lambda app, bucket: MemoryIndex())
        self._cache_capacity = cache_capacity
        self._locality_capacity = locality_capacity
        self._filter_capacity = filter_capacity
        self._filter_fp_rate = filter_fp_rate
        self.shard_split_entries = shard_split_entries
        self._ring_vnodes = ring_vnodes
        self._rings: Dict[str, ConsistentHashRing] = {}
        self._shards: Dict[Tuple[str, int], DirectoryShard] = {}
        self._create_lock = threading.Lock()
        # Offers addressed to shards that do not exist yet, buffered
        # until the next epoch barrier materialises the shard — the
        # live-shard set must only change at barriers (see module
        # docstring).  key -> (offers dict, publish count).
        self._unallocated: Dict[
            Tuple[str, int],
            Tuple[Dict[bytes, Tuple[int, IndexEntry]], int]] = {}
        self._pending_lock = threading.Lock()
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        #: Commit epoch counter; bumped by :meth:`commit_epoch`.  Client
        #: caches key their negative memos on it (a miss stays a miss
        #: until the next commit).
        self.epoch = 0
        #: Ring splits performed by epoch-barrier rebalancing.
        self.rebalances = 0
        #: Committed entries migrated between shards by rebalancing.
        self.migrated_entries = 0
        #: Read-path probes against shards that were never allocated
        #: (answered as misses without creating the shard).
        self.absent_probes = 0
        self._rejects_reported = 0

    # ------------------------------------------------------------------
    def _ring(self, app: str) -> ConsistentHashRing:
        ring = self._rings.get(app)
        if ring is None:
            with self._create_lock:
                ring = self._rings.get(app)
                if ring is None:
                    ring = ConsistentHashRing(range(self.shards_per_app),
                                              vnodes=self._ring_vnodes)
                    self._rings[app] = ring
        return ring

    def _bucket(self, app: str, fingerprint: bytes) -> int:
        return self._ring(app).node_for(fingerprint)

    def shard_for(self, app: str, fingerprint: bytes) -> DirectoryShard:
        return self._shard(app, self._bucket(app, fingerprint))

    def _shard(self, app: str, bucket: int) -> DirectoryShard:
        key = (app, bucket)
        shard = self._shards.get(key)
        if shard is None:
            with self._create_lock:
                shard = self._shards.get(key)
                if shard is None:
                    index = self._factory(app, bucket)
                    if self._locality_capacity > 0:
                        index = LocalityCache(index,
                                              self._locality_capacity)
                    elif self._cache_capacity > 0:
                        index = LRUCache(index, self._cache_capacity)
                    bloom = None
                    if self._filter_capacity > 0:
                        bloom = BloomFilter(
                            capacity=self._filter_capacity,
                            fp_rate=self._filter_fp_rate)
                    shard = DirectoryShard(app, bucket, index, bloom=bloom)
                    self._shards[key] = shard
        return shard

    def shards(self) -> List[DirectoryShard]:
        """All shards, ordered by ``(app, bucket)``."""
        return [self._shards[key] for key in sorted(self._shards)]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards.values())

    # ------------------------------------------------------------------
    def probe_batch(self, app: str, fingerprints: Sequence[bytes],
                    stream=None
                    ) -> Tuple[List[Optional[IndexEntry]], List[bool]]:
        """Probe a batch, returning entries plus per-position
        ``absorbed`` flags.

        ``absorbed[i]`` means the miss was answered without touching
        any backing index — by a shard's Bloom front, or because the
        shard was never allocated at all.  Clients use the flag to keep
        their negative memos bounded: an absorbed miss is already as
        cheap as a memo hit.  Lookups against apps or arcs that never
        saw a publish **do not allocate shards** — at fleet scale a
        probe-only app would otherwise permanently leak empty shards
        into memory and ``stats_rows()``.
        """
        if not fingerprints:
            return [], []
        groups: Dict[int, List[int]] = {}
        for pos, fp in enumerate(fingerprints):
            groups.setdefault(self._bucket(app, fp), []).append(pos)
        out: List[Optional[IndexEntry]] = [None] * len(fingerprints)
        absorbed = [False] * len(fingerprints)
        for bucket in sorted(groups):
            positions = groups[bucket]
            shard = self._shards.get((app, bucket))
            if shard is None:
                with self._pending_lock:
                    self.absent_probes += len(positions)
                for pos in positions:
                    absorbed[pos] = True
                continue
            found, shard_absorbed = shard.probe(
                [fingerprints[pos] for pos in positions], stream=stream)
            for pos, entry, flag in zip(positions, found, shard_absorbed):
                out[pos] = entry
                absorbed[pos] = flag
        return out, absorbed

    def lookup_batch(self, app: str, fingerprints: Sequence[bytes]
                     ) -> List[Optional[IndexEntry]]:
        """Probe a batch of fingerprints, grouped by shard.

        Each shard involved is probed at most once (one ``batches``
        tick unless its filter absorbs the whole group), and results
        come back aligned with the input order.
        """
        return self.probe_batch(app, fingerprints)[0]

    def lookup(self, app: str, fingerprint: bytes) -> Optional[IndexEntry]:
        """Single-fingerprint convenience wrapper over the batch path."""
        return self.lookup_batch(app, (fingerprint,))[0]

    def publish_batch(self, app: str, entries: Sequence[IndexEntry],
                      rank: int) -> None:
        """Offer entries for the next epoch, grouped by shard.

        Offers to a bucket whose shard does not exist yet buffer
        directory-side; the shard materialises at the next epoch
        barrier.  Creating it here instead would let a publish change
        the live-shard topology mid-wave, making concurrent probes'
        counters depend on thread timing.
        """
        if not entries:
            return
        groups: Dict[int, List[IndexEntry]] = {}
        for entry in entries:
            groups.setdefault(self._bucket(app, entry.fingerprint),
                              []).append(entry)
        for bucket in sorted(groups):
            shard = self._shards.get((app, bucket))
            if shard is not None:
                shard.offer(groups[bucket], rank)
                continue
            with self._pending_lock:
                offers, publishes = self._unallocated.get(
                    (app, bucket), ({}, 0))
                for entry in groups[bucket]:
                    publishes += 1
                    fp = entry.fingerprint
                    current = offers.get(fp)
                    if current is None or rank < current[0]:
                        offers[fp] = (rank, entry)
                self._unallocated[(app, bucket)] = (offers, publishes)

    # ------------------------------------------------------------------
    def _rebalance(self) -> int:
        """Split overloaded shards at the epoch barrier.

        For each app whose heaviest shard exceeds
        ``shard_split_entries``, add one ring node and migrate the arcs
        it claims (at most one split per app per epoch; persistent skew
        resolves over successive commits).  Decisions depend only on
        committed sizes — identical across thread interleavings — and
        migration inserts in sorted fingerprint order, so committed
        content stays byte-identical for any ``max_workers``.
        """
        moved_total = 0
        for app in sorted({a for (a, _b) in self._shards}):
            ring = self._ring(app)
            shards = [self._shards[key] for key in sorted(self._shards)
                      if key[0] == app]
            heavy = max(shards, key=lambda s: (len(s), -s.bucket))
            if len(heavy) <= self.shard_split_entries:
                continue
            new_bucket = max(ring.nodes) + 1
            with self.tracer.span("fleet.rebalance", app=app,
                                  split=heavy.name,
                                  new_shard=new_bucket) as span:
                ring.add_node(new_bucket)
                dest = self._shard(app, new_bucket)
                moved = 0
                for shard in shards:
                    bucket = shard.bucket
                    extracted = shard.extract(
                        lambda fp: ring.node_for(fp) == bucket)
                    if extracted:
                        moved += dest.absorb(extracted)
                self.rebalances += 1
                moved_total += moved
                if self.tracer.enabled:
                    span.set("moved", moved)
        return moved_total

    def commit_epoch(self) -> int:
        """Make every pending publish visible; returns entries committed.

        Rebalancing (if enabled) runs inside the same barrier, after
        the commits: splits observe the new committed sizes and routing
        changes before any client can probe the next epoch.
        """
        tracer = self.tracer
        with tracer.span("fleet.commit_epoch", epoch=self.epoch) as span:
            with self._pending_lock:
                unallocated = self._unallocated
                self._unallocated = {}
            for key in sorted(unallocated):
                offers, publishes = unallocated[key]
                self._shard(*key).adopt_offers(offers, publishes)
            committed = 0
            for shard in self.shards():
                committed += shard.commit()
            migrated = 0
            if self.shard_split_entries > 0:
                migrated = self._rebalance()
                self.migrated_entries += migrated
            self.epoch += 1
            if tracer.enabled:
                span.set("committed", committed)
                metrics = tracer.metrics
                metrics.counter(
                    "fleet_directory_committed_total").inc(committed)
                if migrated:
                    metrics.counter(
                        "fleet_directory_migrated_total").inc(migrated)
                rejects = self.filter_rejects
                if rejects > self._rejects_reported:
                    metrics.counter("fleet_filter_rejects_total").inc(
                        rejects - self._rejects_reported)
                    self._rejects_reported = rejects
        return committed

    # ------------------------------------------------------------------
    @property
    def filter_rejects(self) -> int:
        """Cold probes absorbed by shard Bloom fronts, fleet-wide."""
        return sum(s.filter_rejects for s in self._shards.values())

    def combined_stats(self) -> IndexStats:
        """Index stats summed over every shard."""
        total = IndexStats()
        for shard in self.shards():
            total.merge(shard.stats)
        return total

    def stats_rows(self) -> List[dict]:
        """Per-shard accounting for reports and the server cost model.

        ``batches`` is the seek-relevant count for a disk-backed shard
        (one batched probe that reached the index = one descent);
        ``filter_rejects`` is the load the Bloom front absorbed before
        it could become a seek; ``disk_probes`` and ``memory_hits``
        come from the backing chain and split the load between RAM and
        the server's disks; ``locality`` carries the per-stream scores
        when a :class:`~repro.index.locality.LocalityCache` fronts the
        shard.
        """
        rows = []
        for shard in self.shards():
            stats = shard.stats
            rows.append({
                "shard": shard.name,
                "entries": len(shard),
                "batches": shard.batches,
                "probes": shard.probes,
                "hits": shard.hits,
                "filter_rejects": shard.filter_rejects,
                "publishes": shard.publishes,
                "accepted": shard.accepted,
                "memory_hits": stats.memory_hits,
                "disk_probes": stats.disk_probes,
                "locality": shard.locality_scores(),
            })
        return rows

    def close(self) -> None:
        """Close every shard's backing index (noop for memory shards)."""
        for shard in self.shards():
            shard.index.close()
