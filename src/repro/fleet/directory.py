"""Server-side global deduplication directory for a backup fleet.

One AA-Dedupe client deduplicates against its *own* per-application
subindices (paper Sec. III-D).  A cloud provider serving a fleet of
clients can do better: a chunk uploaded by any client is addressable by
every other, so the service keeps a **global directory** of fingerprints
on the server side.  To keep any single lookup structure small and the
load spread, the directory is sharded by ``(app_label,
fingerprint-prefix)`` — the application label first (preserving the
paper's observation that cross-application chunk collisions are
negligible, so shards never need cross-app probes), then a bucket of the
fingerprint's leading byte.

Each :class:`DirectoryShard` owns an independent
:class:`~repro.index.base.ChunkIndex` (memory, disk, or an
:class:`~repro.index.cache.LRUCache` front over disk) and its own lock,
so probes against different shards never contend.  Probes are **batched**:
:meth:`GlobalDedupDirectory.lookup_batch` groups fingerprints by shard
and probes each shard once per batch, which is what lets a disk-backed
shard amortise seeks (the per-shard ``batches`` counter versus ``probes``
makes the amortisation visible to the cost model).

Visibility is **epoch-based** so fleet runs are deterministic under any
thread interleaving: lookups only see entries committed by a previous
:meth:`~GlobalDedupDirectory.commit_epoch`; publishes land in a pending
buffer where the lowest client rank wins ties.  The fleet service
commits at wave barriers (see :mod:`repro.fleet.service`), which models
the real-world behaviour of a directory service that batches ingest —
and makes ``max_workers`` a pure performance knob, never a results knob.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.index.base import ChunkIndex, IndexEntry, IndexStats
from repro.index.cache import LRUCache
from repro.index.memory import MemoryIndex
from repro.obs.tracer import NOOP_TRACER

__all__ = ["DirectoryShard", "GlobalDedupDirectory"]


class DirectoryShard:
    """One ``(app, bucket)`` shard: a committed index plus a pending buffer.

    The committed index answers probes; the pending dict holds entries
    published during the current epoch, invisible until
    :meth:`commit`.  A ``_known`` fingerprint set shadows the committed
    index so commits never issue lookups against it — shard probe
    statistics stay a pure measure of client-driven load.
    """

    def __init__(self, app: str, bucket: int, index: ChunkIndex) -> None:
        self.app = app
        self.bucket = bucket
        self.index = index
        self.lock = threading.Lock()
        self._pending: Dict[bytes, Tuple[int, IndexEntry]] = {}
        self._known: set = set()
        #: Batched probe rounds served (each is one potential seek on a
        #: disk-backed shard; ``probes / batches`` is the amortisation).
        self.batches = 0
        #: Fingerprints probed in total.
        self.probes = 0
        #: Probes answered from the committed index.
        self.hits = 0
        #: Entries offered by publishers (including duplicates).
        self.publishes = 0
        #: Entries actually committed (first publisher by rank wins).
        self.accepted = 0

    @property
    def key(self) -> Tuple[str, int]:
        return (self.app, self.bucket)

    @property
    def name(self) -> str:
        return f"{self.app}/{self.bucket}"

    @property
    def stats(self) -> IndexStats:
        """Probe accounting with the memory/disk split for this shard.

        An :class:`~repro.index.cache.LRUCache` front keeps its own
        counters and only falls through to the backing index on a cache
        miss, so the disk-side counters live one level down; this merges
        the chain.  Lookup/hit totals come from the top level (each
        fall-through would double-count), while memory hits add up
        across levels — a backing memtable hit served a top-level
        lookup without disk I/O just as a cache hit did.
        """
        top = self.index.stats
        backing = getattr(self.index, "backing", None)
        if backing is None:
            return top
        deep = backing.stats
        return IndexStats(
            lookups=top.lookups, hits=top.hits, inserts=top.inserts,
            memory_hits=top.memory_hits + deep.memory_hits,
            disk_probes=deep.disk_probes, disk_bytes=deep.disk_bytes)

    def __len__(self) -> int:
        return len(self._known)

    # ------------------------------------------------------------------
    def probe(self, fingerprints: Sequence[bytes]
              ) -> List[Optional[IndexEntry]]:
        """One batched probe: look up every fingerprint, count one batch."""
        with self.lock:
            self.batches += 1
            self.probes += len(fingerprints)
            out: List[Optional[IndexEntry]] = []
            for fp in fingerprints:
                entry = self.index.lookup(fp)
                if entry is not None:
                    self.hits += 1
                out.append(entry)
            return out

    def offer(self, entries: Iterable[IndexEntry], rank: int) -> None:
        """Buffer entries for the next epoch; lowest rank wins ties."""
        with self.lock:
            for entry in entries:
                self.publishes += 1
                fp = entry.fingerprint
                if fp in self._known:
                    continue  # already committed; location is settled
                current = self._pending.get(fp)
                if current is None or rank < current[0]:
                    self._pending[fp] = (rank, entry)

    def commit(self) -> int:
        """Fold the pending buffer into the committed index.

        Pending fingerprints are committed in sorted order so the
        backing index's physical layout (memtable spills, run contents)
        is identical no matter which thread published first.
        """
        with self.lock:
            fresh = 0
            for fp in sorted(self._pending):
                if fp in self._known:
                    continue
                _rank, entry = self._pending[fp]
                self.index.insert(entry)
                self._known.add(fp)
                fresh += 1
            self._pending.clear()
            self.accepted += fresh
            return fresh


class GlobalDedupDirectory:
    """Fingerprint directory sharded by ``(app, fingerprint-prefix)``.

    ``index_factory(app, bucket)`` builds each shard's backing index
    (default: :class:`~repro.index.memory.MemoryIndex`).  A positive
    ``cache_capacity`` fronts every shard with an
    :class:`~repro.index.cache.LRUCache` of that many entries — the
    standard deployment for disk-backed shards.  Note that the LRU
    front's hit *statistics* depend on probe arrival order, so
    determinism assertions over shard stats should use the default
    memory backing; committed *content* is order-independent either way.
    """

    def __init__(self,
                 shards_per_app: int = 4,
                 index_factory: Optional[
                     Callable[[str, int], ChunkIndex]] = None,
                 cache_capacity: int = 0,
                 tracer=None) -> None:
        if shards_per_app < 1:
            raise ValueError("shards_per_app must be >= 1")
        self.shards_per_app = shards_per_app
        self._factory = index_factory or (lambda app, bucket: MemoryIndex())
        self._cache_capacity = cache_capacity
        self._shards: Dict[Tuple[str, int], DirectoryShard] = {}
        self._create_lock = threading.Lock()
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        #: Commit epoch counter; bumped by :meth:`commit_epoch`.  Client
        #: caches key their negative memos on it (a miss stays a miss
        #: until the next commit).
        self.epoch = 0

    # ------------------------------------------------------------------
    def _bucket(self, fingerprint: bytes) -> int:
        return fingerprint[0] % self.shards_per_app

    def shard_for(self, app: str, fingerprint: bytes) -> DirectoryShard:
        return self._shard(app, self._bucket(fingerprint))

    def _shard(self, app: str, bucket: int) -> DirectoryShard:
        key = (app, bucket)
        shard = self._shards.get(key)
        if shard is None:
            with self._create_lock:
                shard = self._shards.get(key)
                if shard is None:
                    index = self._factory(app, bucket)
                    if self._cache_capacity > 0:
                        index = LRUCache(index, self._cache_capacity)
                    shard = DirectoryShard(app, bucket, index)
                    self._shards[key] = shard
        return shard

    def shards(self) -> List[DirectoryShard]:
        """All shards, ordered by ``(app, bucket)``."""
        return [self._shards[key] for key in sorted(self._shards)]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards.values())

    # ------------------------------------------------------------------
    def lookup_batch(self, app: str, fingerprints: Sequence[bytes]
                     ) -> List[Optional[IndexEntry]]:
        """Probe a batch of fingerprints, grouped by shard.

        Each shard involved is probed exactly once (one ``batches``
        tick), and results come back aligned with the input order.
        """
        if not fingerprints:
            return []
        groups: Dict[int, List[int]] = {}
        for pos, fp in enumerate(fingerprints):
            groups.setdefault(self._bucket(fp), []).append(pos)
        out: List[Optional[IndexEntry]] = [None] * len(fingerprints)
        for bucket in sorted(groups):
            positions = groups[bucket]
            shard = self._shard(app, bucket)
            found = shard.probe([fingerprints[pos] for pos in positions])
            for pos, entry in zip(positions, found):
                out[pos] = entry
        return out

    def lookup(self, app: str, fingerprint: bytes) -> Optional[IndexEntry]:
        """Single-fingerprint convenience wrapper over the batch path."""
        return self.lookup_batch(app, (fingerprint,))[0]

    def publish_batch(self, app: str, entries: Sequence[IndexEntry],
                      rank: int) -> None:
        """Offer entries for the next epoch, grouped by shard."""
        if not entries:
            return
        groups: Dict[int, List[IndexEntry]] = {}
        for entry in entries:
            groups.setdefault(self._bucket(entry.fingerprint),
                              []).append(entry)
        for bucket in sorted(groups):
            self._shard(app, bucket).offer(groups[bucket], rank)

    def commit_epoch(self) -> int:
        """Make every pending publish visible; returns entries committed."""
        tracer = self.tracer
        with tracer.span("fleet.commit_epoch", epoch=self.epoch) as span:
            committed = 0
            for shard in self.shards():
                committed += shard.commit()
            self.epoch += 1
            if tracer.enabled:
                span.set("committed", committed)
                tracer.metrics.counter(
                    "fleet_directory_committed_total").inc(committed)
        return committed

    # ------------------------------------------------------------------
    def combined_stats(self) -> IndexStats:
        """Index stats summed over every shard."""
        total = IndexStats()
        for shard in self.shards():
            total.merge(shard.stats)
        return total

    def stats_rows(self) -> List[dict]:
        """Per-shard accounting for reports and the server cost model.

        ``batches`` is the seek-relevant count for a disk-backed shard
        (one batched probe = one index descent); ``disk_probes`` and
        ``memory_hits`` come from the backing index and split the load
        between RAM and the server's disks.
        """
        rows = []
        for shard in self.shards():
            stats = shard.stats
            rows.append({
                "shard": shard.name,
                "entries": len(shard),
                "batches": shard.batches,
                "probes": shard.probes,
                "hits": shard.hits,
                "publishes": shard.publishes,
                "accepted": shard.accepted,
                "memory_hits": stats.memory_hits,
                "disk_probes": stats.disk_probes,
            })
        return rows

    def close(self) -> None:
        """Close every shard's backing index (noop for memory shards)."""
        for shard in self.shards():
            shard.index.close()
