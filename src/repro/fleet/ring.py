"""Consistent-hash ring for directory shard routing.

The first-generation :class:`~repro.fleet.directory.GlobalDedupDirectory`
bucketed fingerprints by ``fingerprint[0] % shards_per_app`` — a
single-byte prefix that silently caps a fleet at 256 distinct buckets
(``shards_per_app > 256`` leaves shards permanently empty) and skews
load for non-divisors of 256.  The ring replaces that map with classic
consistent hashing: every shard owns ``vnodes`` pseudo-random points on
a 64-bit circle, a fingerprint routes to the owner of the first point
at or after its own hash, and **adding one shard moves only the arcs
the new shard claims** (~``1/(n+1)`` of the keyspace), which is what
makes split/migrate rebalancing cheap enough to run at epoch barriers.

Everything is derived from BLAKE2b digests of stable strings, so the
assignment is a pure function of ``(node ids, vnodes)`` — identical
across processes, platforms and thread interleavings, which the fleet's
determinism guarantee requires.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable, List, Tuple

__all__ = ["ConsistentHashRing"]


def _hash64(data: bytes) -> int:
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big")


class ConsistentHashRing:
    """Deterministic consistent-hash ring over integer node ids.

    >>> ring = ConsistentHashRing(range(4))
    >>> ring.node_for(b"some-fingerprint") in ring.nodes
    True
    """

    def __init__(self, nodes: Iterable[int], vnodes: int = 128) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._nodes: set = set()
        self._points: List[int] = []
        self._owners: List[int] = []
        for node in nodes:
            self.add_node(node)
        if not self._nodes:
            raise ValueError("ring needs at least one node")

    # ------------------------------------------------------------------
    def _node_points(self, node: int) -> List[int]:
        return [_hash64(f"shard-{node}/{replica}".encode())
                for replica in range(self.vnodes)]

    def _rebuild(self) -> None:
        pairs: List[Tuple[int, int]] = []
        for node in self._nodes:
            pairs.extend((point, node) for point in self._node_points(node))
        # Sorting by (point, node) resolves the astronomically-unlikely
        # point collision deterministically (lower node id wins).
        pairs.sort()
        self._points = [p for p, _n in pairs]
        self._owners = [n for _p, n in pairs]

    def add_node(self, node: int) -> None:
        """Add a shard to the ring (idempotent)."""
        if node < 0:
            raise ValueError("node ids must be >= 0")
        if node in self._nodes:
            return
        self._nodes.add(node)
        self._rebuild()

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[int, ...]:
        """Current node ids, ascending."""
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: int) -> bool:
        return node in self._nodes

    def node_for(self, key: bytes) -> int:
        """Owner of ``key``: first ring point at or after its hash."""
        point = _hash64(key)
        idx = bisect_right(self._points, point) % len(self._points)
        return self._owners[idx]

    def spread(self, keys: Iterable[bytes]) -> dict:
        """Occupancy histogram ``{node: count}`` for a key sample."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts
