"""Fleet-scale multi-client backup simulation (see docs/FLEET.md).

The paper evaluates one personal-computing client; a cloud backup
*service* runs thousands.  This package scales the reproduced engine to
a fleet: N concurrent :class:`~repro.core.backup.BackupClient` sessions
over one shared backend, with a server-side sharded global dedup
directory providing cross-client deduplication on top of the paper's
per-client application-aware dedup.
"""

from repro.fleet.client import FleetIndex
from repro.fleet.directory import DirectoryShard, GlobalDedupDirectory
from repro.fleet.ring import ConsistentHashRing
from repro.fleet.service import (
    FleetClient,
    FleetClientResult,
    FleetReport,
    FleetService,
)
from repro.fleet.workload import (
    Corpus,
    generated_fleet_sources,
    synthetic_fleet_sources,
)

__all__ = [
    "ConsistentHashRing",
    "Corpus",
    "DirectoryShard",
    "FleetClient",
    "FleetClientResult",
    "FleetIndex",
    "FleetReport",
    "FleetService",
    "GlobalDedupDirectory",
    "generated_fleet_sources",
    "synthetic_fleet_sources",
]
