"""Fleet workloads: per-client session sources with a shared corpus.

Cross-client deduplication only exists if clients actually hold common
data (the same OS images, shared project documents, media libraries).
Both builders here model that with a **shared corpus** every client
backs up alongside its **private** home directory:

* :func:`synthetic_fleet_sources` — a compact deterministic workload of
  in-memory files spanning several application types.  Fast enough for
  unit tests and CI smoke runs of the fleet benchmark.
* :func:`generated_fleet_sources` — paper-scale material from
  :class:`~repro.workloads.generator.WorkloadGenerator`: one generator
  (fixed seed) produces the shared corpus, and each client gets a
  private generator with its own seed *and* a disjoint block-id
  namespace, so private data never collides across clients while shared
  data stays byte-identical for everyone.

Both return ``sources[client][session]`` — ready for
:meth:`repro.fleet.service.FleetService.run`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.source import MemorySource, SourceFile
from repro.errors import WorkloadError
from repro.util.units import KIB, MB
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.materialize import materialize_composition

__all__ = ["Corpus", "synthetic_fleet_sources",
           "generated_fleet_sources"]

#: Extension cycle for the synthetic corpus — spans dynamic (doc),
#: static (pdf, vmdk) and compressed (mp3) categories plus the
#: unknown-extension fallback, so the directory grows several app shards.
_EXTENSIONS = ("doc", "pdf", "mp3", "vmdk", "txt")


def _file_bytes(rng: np.random.Generator, size: int) -> bytes:
    return rng.integers(0, 256, size, dtype=np.uint8).tobytes()


class Corpus:
    """A mutable set of files with churn and monotonically-bumped mtimes.

    Shared between the fleet workload builders and the declarative
    service layer's synthetic job sources: both need a deterministic
    corpus that ages one churn step per backup session.
    """

    def __init__(self, prefix: str, seed: int, count: int,
                 base_size: int) -> None:
        self._rng = np.random.default_rng(seed)
        self._prefix = prefix
        self._base_size = base_size
        self._mtime = 1
        self.files: Dict[str, bytes] = {}
        self.mtimes: Dict[str, int] = {}
        self._next_file = 0
        for _ in range(count):
            self._add_file()

    def _add_file(self) -> None:
        ext = _EXTENSIONS[self._next_file % len(_EXTENSIONS)]
        path = f"{self._prefix}/file{self._next_file:04d}.{ext}"
        self._next_file += 1
        # Sizes vary per file but stay above the 10 KiB tiny-file
        # threshold so every file goes through chunking + dedup.
        size = self._base_size + (self._next_file % 7) * KIB
        self._set(path, _file_bytes(self._rng, size))

    def _set(self, path: str, data: bytes) -> None:
        self.files[path] = data
        self.mtimes[path] = self._mtime
        self._mtime += 1

    def churn(self, fraction: float) -> None:
        """One session of change: rewrite ``fraction`` of files, add one."""
        paths = sorted(self.files)
        rolls = self._rng.random(len(paths))
        for path, roll in zip(paths, rolls):
            if roll < fraction:
                self._set(path, _file_bytes(self._rng,
                                            len(self.files[path])))
        self._add_file()

    def snapshot(self) -> MemorySource:
        """An immutable source of the corpus as it stands right now."""
        return MemorySource(dict(self.files), dict(self.mtimes))


def synthetic_fleet_sources(clients: int, sessions: int, *,
                            seed: int = 2011,
                            shared_files: int = 8,
                            private_files: int = 6,
                            file_kib: int = 16,
                            churn: float = 0.25
                            ) -> List[List[MemorySource]]:
    """Compact fleet workload: identical shared corpus + private files.

    Every client sees the *same* shared corpus snapshot per session
    (byte- and mtime-identical — this is what cross-client dedup
    exploits) plus a per-client private corpus churned on the same
    schedule.  Fully deterministic in ``seed``.
    """
    if clients < 1 or sessions < 1:
        raise WorkloadError("clients and sessions must be >= 1")
    shared = Corpus("shared", seed, shared_files, file_kib * KIB)
    privates = [Corpus("private", seed + 100_003 * (rank + 1),
                        private_files, file_kib * KIB)
                for rank in range(clients)]
    sources: List[List[MemorySource]] = [[] for _ in range(clients)]
    for session in range(sessions):
        if session:
            shared.churn(churn)
        shared_files_now = dict(shared.files)
        shared_mtimes_now = dict(shared.mtimes)
        for rank in range(clients):
            if session:
                privates[rank].churn(churn)
            files = dict(shared_files_now)
            files.update(privates[rank].files)
            mtimes = dict(shared_mtimes_now)
            mtimes.update(privates[rank].mtimes)
            sources[rank].append(MemorySource(files, mtimes))
    return sources


class _UnionSource:
    """Lazy source over prefixed workload snapshots (shared + private)."""

    def __init__(self, parts: Sequence[Tuple[str, object]]) -> None:
        self._parts = tuple(parts)

    def __iter__(self):
        for prefix, snap in self._parts:
            for path in sorted(snap.files):
                comp = snap.files[path]
                yield SourceFile(
                    path=prefix + path, size=comp.size,
                    mtime_ns=snap.mtimes.get(path, 0),
                    reader=lambda c=comp: materialize_composition(c),
                )

    def total_bytes(self) -> int:
        return sum(comp.size for _prefix, snap in self._parts
                   for comp in snap.files.values())


def generated_fleet_sources(clients: int, sessions: int, *,
                            bytes_per_client: int = 64 * MB,
                            shared_fraction: float = 0.4,
                            seed: int = 2011
                            ) -> List[List[_UnionSource]]:
    """Paper-scale fleet workload from :class:`WorkloadGenerator`.

    The shared corpus comes from one generator (fixed seed, block
    namespace 0); each client's private data from a generator seeded by
    rank and started in a disjoint block-id namespace, so private
    content never accidentally collides across clients.
    """
    shared_bytes = int(bytes_per_client * shared_fraction)
    private_bytes = bytes_per_client - shared_bytes
    if min(shared_bytes, private_bytes) < 10 * MB:
        raise WorkloadError(
            "bytes_per_client too small: shared and private portions "
            "must each be >= 10 MB (WorkloadGenerator floor)")
    shared_gen = WorkloadGenerator(total_bytes=shared_bytes, seed=seed)
    shared_snaps = list(shared_gen.sessions(sessions))
    sources: List[List[_UnionSource]] = []
    for rank in range(clients):
        gen = WorkloadGenerator(total_bytes=private_bytes,
                                seed=seed + 7_919 * (rank + 1),
                                block_namespace=(rank + 1) << 40)
        snaps = list(gen.sessions(sessions))
        sources.append([
            _UnionSource((("shared/", shared_snaps[s]),
                          ("private/", snaps[s])))
            for s in range(sessions)
        ])
    return sources
