"""Fleet-scale backup service: N clients, one cloud, one directory.

:class:`FleetService` stands up a fleet of AA-Dedupe
:class:`~repro.core.backup.BackupClient` instances against **one shared
backend**: each client gets its own
:class:`~repro.cloud.NamespacedBackend` view (private manifests,
journals and index replicas; shared container/chunk pools), its own
:class:`~repro.simulate.clock.VirtualClock` +
:class:`~repro.cloud.SimulatedCloud` WAN accounting, a disjoint
container-id range, and per-app :class:`~repro.fleet.client.FleetIndex`
subindices probing the service's
:class:`~repro.fleet.directory.GlobalDedupDirectory`.

**Execution model.**  Sessions run in *rounds* (session ``s`` of every
client), each round split into *waves* by client rank (``rank % waves``)
with a directory epoch commit at every wave barrier.  Waves model the
staggered backup windows real fleets schedule to smooth load — and they
are what makes cross-client dedup visible *within* a round: a late-wave
client deduplicates against chunks early-wave clients published minutes
earlier.  Because wave membership is fixed by rank and directory
visibility only changes at commits, results are bit-identical for a
fixed seed no matter how many worker threads execute a wave.

The returned :class:`FleetReport` aggregates per-client
:class:`~repro.core.stats.SessionStats`, splits dedup savings into
intra-client versus cross-client, computes aggregate goodput over the
fleet makespan, and carries the directory's per-shard probe statistics
so the server-side cost model can price directory seeks.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from threading import Lock
from typing import Callable, List, Optional, Sequence

from repro.cloud import (
    InMemoryBackend,
    NamespacedBackend,
    PriceBook,
    S3_APRIL_2011,
    SimulatedCloud,
    WANLink,
)
from repro.cloud.wan import PAPER_WAN
from repro.core.backup import BackupClient
from repro.core.options import SchemeConfig, aa_dedupe_config
from repro.core.stats import SessionStats
from repro.errors import SimulationError
from repro.fleet.client import FleetIndex
from repro.fleet.directory import GlobalDedupDirectory
from repro.metrics.report import Table
from repro.obs.tracer import NOOP_TRACER
from repro.simulate.clock import VirtualClock
from repro.simulate.diskmodel import PAPER_DISK
from repro.util.units import format_bytes

__all__ = ["FleetClient", "FleetClientResult", "FleetReport",
           "FleetService"]

#: Container-id stride between clients: each client allocates ids in
#: ``[rank * stride, (rank + 1) * stride)`` so the shared pool never
#: sees an id collision.
CONTAINER_ID_STRIDE = 1_000_000


def _wan_for(rank: int, base: WANLink, spread: float) -> WANLink:
    """A deterministic per-client WAN link around ``base``.

    Ranks hash to a factor in ``[1 - spread/2, 1 + spread/2]`` — a fleet
    of consumer uplinks is never uniform, and the spread is what makes
    makespan (slowest client) diverge from mean transfer time.
    """
    if spread <= 0:
        return base
    factor = 1.0 - spread / 2 + spread * (((rank * 2654435761) % 97) / 96)
    return WANLink(up_bandwidth=base.up_bandwidth * factor,
                   down_bandwidth=base.down_bandwidth * factor,
                   request_latency=base.request_latency,
                   concurrent_requests=base.concurrent_requests)


class FleetClient:
    """One fleet member: backup client + its simulated environment."""

    def __init__(self, rank: int, name: str, clock: VirtualClock,
                 cloud: SimulatedCloud, backup: BackupClient) -> None:
        self.rank = rank
        self.name = name
        self.clock = clock
        self.cloud = cloud
        self.backup = backup
        self.sessions: List[SessionStats] = []
        #: FleetIndex instances created for this client, by app label.
        self.indexes: List[FleetIndex] = []

    def flush_publishes(self) -> None:
        for index in self.indexes:
            index.flush_publishes()

    @property
    def remote_probes(self) -> int:
        return sum(ix.remote_probes for ix in self.indexes)

    @property
    def remote_hits(self) -> int:
        return sum(ix.remote_hits for ix in self.indexes)

    @property
    def cross_bytes(self) -> int:
        return sum(ix.adopted_bytes for ix in self.indexes)


@dataclass
class FleetClientResult:
    """Aggregate outcome for one client over the whole run."""

    name: str
    rank: int
    sessions: List[SessionStats]
    transfer_seconds: float
    bill: float
    remote_probes: int
    remote_hits: int
    #: Bytes saved by cross-client dedup (adopted directory entries).
    cross_bytes: int

    @property
    def bytes_scanned(self) -> int:
        return sum(s.bytes_scanned for s in self.sessions)

    @property
    def bytes_unique(self) -> int:
        return sum(s.bytes_unique for s in self.sessions)

    @property
    def bytes_uploaded(self) -> int:
        return sum(s.bytes_uploaded for s in self.sessions)

    @property
    def bytes_saved(self) -> int:
        return self.bytes_scanned - self.bytes_unique

    @property
    def intra_bytes(self) -> int:
        """Dedup savings against the client's own history."""
        return max(0, self.bytes_saved - self.cross_bytes)

    @property
    def goodput(self) -> float:
        """Logical bytes protected per modelled WAN second."""
        return self.bytes_scanned / max(self.transfer_seconds, 1e-9)


@dataclass
class FleetReport:
    """Fleet-wide aggregates plus the directory's shard accounting."""

    clients: List[FleetClientResult]
    shard_rows: List[dict] = field(default_factory=list)
    epochs: int = 0
    directory_entries: int = 0
    committed_entries: int = 0
    #: Cold probes absorbed by shard Bloom fronts (no seek, no batch).
    filter_rejects: int = 0
    #: Ring splits performed by epoch-barrier rebalancing.
    rebalances: int = 0
    #: Committed entries migrated between shards by rebalancing.
    migrated_entries: int = 0

    # -- fleet aggregates ----------------------------------------------
    @property
    def bytes_scanned(self) -> int:
        return sum(c.bytes_scanned for c in self.clients)

    @property
    def bytes_unique(self) -> int:
        return sum(c.bytes_unique for c in self.clients)

    @property
    def bytes_uploaded(self) -> int:
        return sum(c.bytes_uploaded for c in self.clients)

    @property
    def cross_bytes(self) -> int:
        return sum(c.cross_bytes for c in self.clients)

    @property
    def intra_bytes(self) -> int:
        return sum(c.intra_bytes for c in self.clients)

    @property
    def dedup_ratio(self) -> float:
        """Fleet dedup ratio: logical bytes over stored bytes."""
        unique = self.bytes_unique
        if unique <= 0:
            return float("inf") if self.bytes_scanned else 1.0
        return self.bytes_scanned / unique

    @property
    def cross_client_fraction(self) -> float:
        """Share of dedup savings owed to *other* clients' uploads."""
        saved = self.cross_bytes + self.intra_bytes
        return self.cross_bytes / saved if saved else 0.0

    @property
    def makespan_seconds(self) -> float:
        """Modelled wall time of the fleet backup (slowest client)."""
        return max((c.transfer_seconds for c in self.clients), default=0.0)

    @property
    def aggregate_goodput(self) -> float:
        """Fleet logical bytes protected per second of makespan."""
        return self.bytes_scanned / max(self.makespan_seconds, 1e-9)

    @property
    def total_bill(self) -> float:
        return sum(c.bill for c in self.clients)

    def server_seek_seconds(self, disk=PAPER_DISK) -> float:
        """Directory disk time if every disk probe were a seek on
        ``disk`` — how the cost model prices a disk-backed directory.
        Batched probing keeps this sub-linear in fingerprints probed."""
        probes = sum(row["disk_probes"] for row in self.shard_rows)
        return disk.random_io_seconds(probes)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable report: per-client table + shard table."""
        out = []
        per_client = Table(
            ["client", "scanned", "stored", "uploaded", "cross-dedup",
             "goodput B/s", "wan s", "bill $"],
            title="fleet clients")
        for c in self.clients:
            per_client.add_row([
                c.name, format_bytes(c.bytes_scanned),
                format_bytes(c.bytes_unique),
                format_bytes(c.bytes_uploaded),
                format_bytes(c.cross_bytes),
                c.goodput, c.transfer_seconds, c.bill,
            ])
        out.append(per_client.render())
        summary = Table(["metric", "value"], title="fleet summary")
        summary.add_row(["clients", len(self.clients)])
        summary.add_row(["scanned", format_bytes(self.bytes_scanned)])
        summary.add_row(["stored", format_bytes(self.bytes_unique)])
        summary.add_row(["dedup ratio", self.dedup_ratio])
        summary.add_row(["cross-client savings",
                         format_bytes(self.cross_bytes)])
        summary.add_row(["intra-client savings",
                         format_bytes(self.intra_bytes)])
        summary.add_row(["cross-client fraction",
                         self.cross_client_fraction])
        summary.add_row(["makespan (s)", self.makespan_seconds])
        summary.add_row(["aggregate goodput (B/s)",
                         self.aggregate_goodput])
        summary.add_row(["directory entries", self.directory_entries])
        summary.add_row(["directory epochs", self.epochs])
        summary.add_row(["filter rejects", self.filter_rejects])
        summary.add_row(["shard splits", self.rebalances])
        summary.add_row(["entries migrated", self.migrated_entries])
        summary.add_row(["server seek seconds",
                         self.server_seek_seconds()])
        out.append(summary.render())
        shards = Table(
            ["shard", "entries", "batches", "probes", "hits",
             "filtered", "publishes", "accepted"],
            title="directory shards")
        for row in self.shard_rows:
            shards.add_row([row["shard"], row["entries"], row["batches"],
                            row["probes"], row["hits"],
                            row.get("filter_rejects", 0),
                            row["publishes"], row["accepted"]])
        out.append(shards.render())
        return "\n\n".join(out)


class FleetService:
    """Drive ``clients`` concurrent backup clients over one backend.

    ``config_factory(rank)`` customises each client's scheme (default:
    paper AA-Dedupe for everyone); ``waves`` controls intra-round
    staggering (>= 1; 1 means a single barrier per round — no
    cross-client dedup within a round, only across rounds).
    """

    def __init__(self,
                 clients: int = 8,
                 backend=None,
                 config_factory: Optional[
                     Callable[[int], SchemeConfig]] = None,
                 directory: Optional[GlobalDedupDirectory] = None,
                 shards_per_app: int = 4,
                 cache_capacity: int = 0,
                 locality_capacity: int = 0,
                 filter_capacity: int = 0,
                 shard_split_entries: int = 0,
                 waves: int = 2,
                 wan: WANLink = PAPER_WAN,
                 wan_spread: float = 0.5,
                 prices: PriceBook = S3_APRIL_2011,
                 publish_batch: int = 64,
                 tracer=None) -> None:
        if clients < 1:
            raise SimulationError("fleet needs at least one client")
        if waves < 1:
            raise SimulationError("waves must be >= 1")
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.backend = backend if backend is not None else InMemoryBackend()
        self.directory = directory if directory is not None else \
            GlobalDedupDirectory(shards_per_app=shards_per_app,
                                 cache_capacity=cache_capacity,
                                 locality_capacity=locality_capacity,
                                 filter_capacity=filter_capacity,
                                 shard_split_entries=shard_split_entries,
                                 tracer=self.tracer)
        self.waves = waves
        self._epochs_committed = 0
        self._entries_committed = 0
        self._backend_lock = Lock()
        self.clients: List[FleetClient] = []
        for rank in range(clients):
            name = f"c{rank:03d}"
            view = NamespacedBackend(self.backend, name,
                                     lock=self._backend_lock)
            clock = VirtualClock()
            cloud = SimulatedCloud(view, wan=_wan_for(rank, wan, wan_spread),
                                   prices=prices, clock=clock,
                                   tracer=self.tracer)
            client = FleetClient(rank, name, clock, cloud, backup=None)
            config = (config_factory(rank) if config_factory is not None
                      else aa_dedupe_config())

            def factory(app: str, _rank=rank, _client=client) -> FleetIndex:
                index = FleetIndex(self.directory, app, _rank,
                                   publish_batch=publish_batch)
                _client.indexes.append(index)
                return index

            client.backup = BackupClient(
                cloud, config, index_factory=factory,
                first_container_id=rank * CONTAINER_ID_STRIDE,
                tracer=self.tracer)
            self.clients.append(client)

    # ------------------------------------------------------------------
    def _run_session(self, client: FleetClient, source) -> None:
        stats = client.backup.backup(source)
        # Offer this session's new chunks before the wave's epoch commit.
        client.flush_publishes()
        client.sessions.append(stats)

    def run(self, sources: Sequence[Sequence],
            max_workers: int = 4) -> FleetReport:
        """Execute ``sources[client][session]`` across the fleet.

        Every client must bring the same number of sessions; rounds are
        global barriers, waves stagger clients within a round.
        """
        if len(sources) != len(self.clients):
            raise SimulationError(
                f"got sources for {len(sources)} clients, "
                f"fleet has {len(self.clients)}")
        rounds = {len(s) for s in sources}
        if len(rounds) > 1:
            raise SimulationError(
                "all clients must run the same number of sessions")
        n_rounds = rounds.pop() if rounds else 0
        # One pool for the whole run: spinning a fresh executor up and
        # down per wave serialised thread start/join into every barrier,
        # so rounds stopped scaling with ``max_workers``.  The wave
        # barrier itself (result() then epoch commit) is unchanged.
        with self.tracer.span("fleet.run", clients=len(self.clients),
                              rounds=n_rounds), \
                ThreadPoolExecutor(max_workers=max(1, max_workers),
                                   thread_name_prefix="fleet") as pool:
            for round_no in range(n_rounds):
                for wave in range(self.waves):
                    members = [c for c in self.clients
                               if c.rank % self.waves == wave]
                    if not members:
                        continue
                    futures = [
                        pool.submit(self._run_session, client,
                                    sources[client.rank][round_no])
                        for client in members
                    ]
                    for future in futures:
                        future.result()
                    self._entries_committed += self.directory.commit_epoch()
                    self._epochs_committed += 1
        if self.tracer.enabled:
            metrics = self.tracer.metrics
            metrics.counter("fleet_sessions_total").inc(
                sum(len(c.sessions) for c in self.clients))
            metrics.gauge("fleet_directory_entries").set(
                len(self.directory))
        return self.report()

    # ------------------------------------------------------------------
    def replicate(self, policy=None, domains=None):
        """Run a durability replication pass over the shared backend.

        Criticality is fleet-wide (every client's manifests count, so a
        shared container referenced by many clients tiers up) and the
        replicas land in the shared pool every tenant view can fail
        over to.  Returns the
        :class:`~repro.durability.replicate.ReplicationReport`.
        """
        from repro.durability import replicate_cloud
        with self._backend_lock:
            return replicate_cloud(self.backend, policy=policy,
                                   domains=domains, tracer=self.tracer)

    # ------------------------------------------------------------------
    def report(self) -> FleetReport:
        results = [
            FleetClientResult(
                name=c.name, rank=c.rank, sessions=list(c.sessions),
                transfer_seconds=c.cloud.transfer_seconds(),
                bill=c.cloud.bill(),
                remote_probes=c.remote_probes,
                remote_hits=c.remote_hits,
                cross_bytes=c.cross_bytes,
            )
            for c in self.clients
        ]
        return FleetReport(
            clients=results,
            shard_rows=self.directory.stats_rows(),
            epochs=self._epochs_committed,
            directory_entries=len(self.directory),
            committed_entries=self._entries_committed,
            filter_rejects=self.directory.filter_rejects,
            rebalances=self.directory.rebalances,
            migrated_entries=self.directory.migrated_entries,
        )

    def close(self) -> None:
        for client in self.clients:
            client.backup.close()
        self.directory.close()
