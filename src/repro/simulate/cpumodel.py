"""CPU cost model of the paper's client (2.53 GHz Intel Core 2 Duo).

The model charges cycles per byte for each hash function and for the
rolling-hash CDC boundary scan, plus fixed per-chunk and per-file
overheads.  Constants are chosen to reproduce the paper's Fig. 3/4
*shape* on that 2009-era CPU:

* Rabin (table-driven, used as a block hash) ≈ 15 cycles/B — the cheap
  "weak" hash, ~170 MB/s on the paper's laptop; Fig. 3 shows Rabin
  clearly cheapest;
* MD5 ≈ 40 cycles/B (~63 MB/s) and SHA-1 ≈ 55 cycles/B (~46 MB/s) —
  prototype-grade single-thread figures consistent with Fig. 3's
  seconds-scale execution times for a 60 MB dataset (an unoptimised 2011
  C++ prototype runs well below tuned OpenSSL speeds);
* CDC boundary detection ≈ 90 cycles/B (~28 MB/s) — a 1-byte-step
  rolling fingerprint with per-position mask test dominates CDC cost,
  which is why the paper keeps SHA-1 for CDC ("most of its computational
  overhead is on identifying the chunk boundaries instead of chunk
  fingerprinting");
* per-chunk bookkeeping ≈ 30 k cycles and per-file overhead ≈ 150 k
  cycles — metadata, allocation, dispatch; these make WFC and SC total
  times nearly equal for a fixed dataset (Fig. 3's observation that time
  is dominated by data capacity, not granularity).

:func:`dedup_cpu_seconds` prices an :class:`~repro.core.stats.OpCounters`
— produced identically by the real engine and the trace engine — into
seconds of virtual CPU time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.stats import OpCounters

__all__ = ["CPUModel", "PAPER_CPU", "dedup_cpu_seconds"]


@dataclass(frozen=True)
class CPUModel:
    """Cycle-accurate-ish cost book for one CPU."""

    #: Clock frequency in Hz (paper platform: 2.53 GHz Core 2 Duo).
    frequency_hz: float = 2.53e9

    #: Fingerprinting cost, cycles per byte, per hash name.
    hash_cycles_per_byte: Mapping[str, float] = field(default_factory=lambda: {
        "rabin12": 15.0,
        "rabin64": 12.0,
        "md5": 40.0,
        "sha1": 55.0,
    })

    #: Rolling-hash boundary identification (CDC only), cycles per byte.
    cdc_scan_cycles_per_byte: float = 90.0

    #: Fixed overhead per produced chunk (metadata, index record).
    cycles_per_chunk: float = 30_000.0

    #: Fixed overhead per file (open/stat/classify/dispatch).
    cycles_per_file: float = 150_000.0

    #: RAM index probe cost (hash-table lookup).
    cycles_per_memory_lookup: float = 3_000.0

    # ------------------------------------------------------------------
    def hash_seconds(self, hash_name: str, nbytes: float) -> float:
        """Seconds to fingerprint ``nbytes`` with ``hash_name``."""
        cpb = self.hash_cycles_per_byte.get(hash_name)
        if cpb is None:
            raise KeyError(f"no cycle cost for hash {hash_name!r}")
        return nbytes * cpb / self.frequency_hz

    def hash_throughput(self, hash_name: str) -> float:
        """Modelled hash throughput in bytes/second."""
        return self.frequency_hz / self.hash_cycles_per_byte[hash_name]

    def cdc_scan_seconds(self, nbytes: float) -> float:
        """Seconds of rolling-hash boundary scanning over ``nbytes``."""
        return nbytes * self.cdc_scan_cycles_per_byte / self.frequency_hz


#: The paper's experiment platform.
PAPER_CPU = CPUModel()


def dedup_cpu_seconds(ops: OpCounters, cpu: CPUModel = PAPER_CPU,
                      files: int = 0) -> float:
    """Price an operation ledger into virtual CPU seconds.

    Covers hashing, CDC scanning, per-chunk and per-file overheads, and
    RAM index probes.  Disk costs (data read, on-disk index seeks) are
    priced separately by :class:`~repro.simulate.diskmodel.DiskModel`
    because they overlap differently.
    """
    seconds = 0.0
    for hash_name, nbytes in ops.hashed_bytes.items():
        seconds += cpu.hash_seconds(hash_name, nbytes)
    seconds += cpu.cdc_scan_seconds(ops.cdc_scanned_bytes)
    seconds += ops.chunks_produced * cpu.cycles_per_chunk / cpu.frequency_hz
    seconds += files * cpu.cycles_per_file / cpu.frequency_hz
    memory_lookups = ops.index_lookups - ops.index_disk_probes
    seconds += (max(0, memory_lookups)
                * cpu.cycles_per_memory_lookup / cpu.frequency_hz)
    return seconds
