"""The paper's pipelined backup-window model (Sec. IV-D).

"Because of our pipelined design for the deduplication processes and the
data transfer operations, the backup window size of each backup session
can be calculated based on::

    BWS = DS · max(1/DT, 1/(DR·NT))

i.e. the slower of the dedup stage and the WAN transfer stage governs.
:func:`backup_window` evaluates the same expression from first-class
quantities (seconds, bytes) rather than rates, avoiding division-order
pitfalls; :func:`dedup_throughput` recovers DT for reporting.
"""

from __future__ import annotations

__all__ = ["backup_window", "dedup_throughput",
           "simulate_two_stage_pipeline"]


def dedup_throughput(dataset_bytes: float, dedup_seconds: float) -> float:
    """DT: logical bytes deduplicated per second of dedup-stage time."""
    if dedup_seconds <= 0:
        return float("inf")
    return dataset_bytes / dedup_seconds


def backup_window(dedup_seconds: float, transfer_seconds: float,
                  pipelined: bool = True) -> float:
    """Session backup window.

    ``pipelined=True`` is the paper's model: the stages overlap, so the
    window is their maximum.  ``pipelined=False`` gives the serial
    (sum) window for schemes without overlap — used in ablations.
    """
    if pipelined:
        return max(dedup_seconds, transfer_seconds)
    return dedup_seconds + transfer_seconds


def simulate_two_stage_pipeline(stage1_times, stage2_times,
                                queue_depth: int = 4) -> float:
    """Discrete-event makespan of a two-stage pipeline over work items.

    Validates the paper's closed-form BWS: with a bounded hand-off queue
    (the engine uses a depth-4 upload queue), item ``i`` cannot enter
    stage 1 until item ``i − queue_depth`` has left stage 2, and stage 2
    processes in order.  The returned makespan always lies between
    ``max(sum(stage1), sum(stage2))`` (the paper's expression, evaluated
    per stage) and their sum; with many small items it converges to the
    max — which is why the paper's formula is the right model for
    container-granular upload pipelining.
    """
    if len(stage1_times) != len(stage2_times):
        raise ValueError("stage time lists must have equal length")
    stage1_free = 0.0
    stage2_free = 0.0
    finish2 = []  # completion times in stage 2
    for i, (t1, t2) in enumerate(zip(stage1_times, stage2_times)):
        start1 = stage1_free
        if i >= queue_depth:
            start1 = max(start1, finish2[i - queue_depth])
        done1 = start1 + t1
        stage1_free = done1
        start2 = max(done1, stage2_free)
        done2 = start2 + t2
        stage2_free = done2
        finish2.append(done2)
    return finish2[-1] if finish2 else 0.0
