"""Deterministic virtual clock for simulation runs."""

from __future__ import annotations

from repro.errors import SimulationError

__all__ = ["VirtualClock"]


class VirtualClock:
    """A clock that only moves when told to.

    Satisfies :class:`repro.util.timer.ClockProtocol`, so stopwatches and
    the simulated cloud can run on virtual time.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; negative advances are a logic error."""
        if seconds < 0:
            raise SimulationError(f"cannot advance clock by {seconds}")
        self._now += seconds
        return self._now

    def reset(self, to: float = 0.0) -> None:
        """Rewind to ``to`` (between independent experiments only)."""
        self._now = float(to)
