"""Disk model: sequential bandwidth, seeks, and index residency.

Two roles:

1. **Data path** — reading the backup source from the laptop's 250 GB
   SATA disk at ~70 MB/s sequential.
2. **Index path** — the on-disk index lookup bottleneck (the DDFS
   problem, paper Secs. II/III-E): when a fingerprint index outgrows the
   RAM it may cache in, a fraction of probes *and inserts* become random
   disk IOs.  :class:`IndexResidencyModel` computes that fraction from
   the index's entry count; the application-aware index wins precisely
   because each per-application subindex stays under the budget while a
   global index does not.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import MB, MIB

__all__ = ["DiskModel", "PAPER_DISK", "IndexResidencyModel",
           "PAPER_RESIDENCY"]


@dataclass(frozen=True)
class DiskModel:
    """Mechanical-disk cost book (2009 laptop 5400 rpm SATA)."""

    #: Sequential read bandwidth, bytes/second.
    sequential_read_bw: float = 70 * MB
    #: Sequential write bandwidth, bytes/second.
    sequential_write_bw: float = 60 * MB
    #: Average random access (seek + rotation), seconds.
    seek_seconds: float = 0.009

    def read_seconds(self, nbytes: float) -> float:
        """Time to stream-read ``nbytes``."""
        return nbytes / self.sequential_read_bw

    def write_seconds(self, nbytes: float) -> float:
        """Time to stream-write ``nbytes``."""
        return nbytes / self.sequential_write_bw

    def random_io_seconds(self, count: float) -> float:
        """Time for ``count`` independent random IOs."""
        return count * self.seek_seconds


#: The paper's client disk.
PAPER_DISK = DiskModel()


@dataclass(frozen=True)
class IndexResidencyModel:
    """RAM residency of a fingerprint index and the IO cost of spilling.

    ``ram_budget`` is the memory the client can devote to *one* active
    index (the paper's 4 GB laptop, minus OS/apps/chunk buffers, leaves
    on the order of 200 MB for the hot index).  ``entry_bytes`` is the
    in-memory footprint per entry including hash-table overhead.
    """

    ram_budget: int = 112 * MIB
    entry_bytes: int = 48
    #: Random IOs paid per spilled probe (bucket read; updates write back).
    ios_per_miss: float = 1.5
    #: Locality exponent: weekly backups re-probe fingerprints in nearly
    #: the same order, so an LRU cache serves a *hot* subset better than
    #: uniform-random probing would — miss probability is modelled as
    #: ``(1 - resident_fraction) ** locality_exponent``.
    locality_exponent: float = 2.0

    def index_bytes(self, entries: int) -> int:
        """In-memory size of an index with ``entries`` fingerprints."""
        return entries * self.entry_bytes

    def resident_fraction(self, entries: int) -> float:
        """Fraction of the index that fits in the RAM budget."""
        size = self.index_bytes(entries)
        if size <= 0:
            return 1.0
        return min(1.0, self.ram_budget / size)

    def miss_ratio(self, entries: int) -> float:
        """Probability that a probe leaves RAM (locality-adjusted)."""
        spill = 1.0 - self.resident_fraction(entries)
        return spill ** self.locality_exponent

    def lookup_io_count(self, lookups: int, entries: int) -> float:
        """Expected number of random IOs for ``lookups`` probes."""
        return lookups * self.miss_ratio(entries) * self.ios_per_miss

    def insert_io_count(self, inserts: int, entries: int) -> float:
        """Expected random IOs for ``inserts`` new entries.

        When the index has spilled, an insert must update the on-disk
        structure (the random-write half of the DDFS bottleneck); while
        fully resident, inserts are free (flushed sequentially later).
        """
        return inserts * self.miss_ratio(entries) * self.ios_per_miss


#: Residency assumptions used for the paper-scale evaluation.
PAPER_RESIDENCY = IndexResidencyModel()
