"""Power/energy model for the Fig. 11 reproduction.

The paper measures whole-PC wall power with an electricity usage monitor
while each scheme deduplicates.  We model the 2009 MacBook Pro as an
idle floor plus a CPU-activity premium plus a small network/disk
premium; energy for a session is then power × modelled time for each
phase.  The scheme ranking in Fig. 11 follows directly from dedup CPU
time, which is what the model preserves.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PowerModel", "PAPER_POWER"]


@dataclass(frozen=True)
class PowerModel:
    """Wall-power states of the client machine (watts)."""

    #: Idle system draw (screen on, CPU idle).
    idle_watts: float = 16.0
    #: Additional draw while the CPU crunches (hashing/chunking).
    cpu_active_watts: float = 26.0
    #: Additional draw while the WiFi/disk move data.
    io_active_watts: float = 6.0

    def dedup_energy_joules(self, dedup_seconds: float) -> float:
        """Energy consumed by the deduplication phase (what Fig. 11
        compares): busy CPU + baseline for its duration."""
        return dedup_seconds * (self.idle_watts + self.cpu_active_watts)

    def transfer_energy_joules(self, transfer_seconds: float) -> float:
        """Energy of the WAN upload phase."""
        return transfer_seconds * (self.idle_watts + self.io_active_watts)

    def session_energy_joules(self, dedup_seconds: float,
                              transfer_seconds: float,
                              pipelined: bool = True) -> float:
        """Whole-session energy.

        With pipelining the phases overlap: the window is their max and
        both premiums apply during the overlap.
        """
        if pipelined:
            window = max(dedup_seconds, transfer_seconds)
            return (window * self.idle_watts
                    + dedup_seconds * self.cpu_active_watts
                    + transfer_seconds * self.io_active_watts)
        return (self.dedup_energy_joules(dedup_seconds)
                + self.transfer_energy_joules(transfer_seconds))


#: The paper's client machine.
PAPER_POWER = PowerModel()
