"""Virtual experiment platform: the paper's MacBook Pro, as a model.

Our Python prototype cannot reproduce the paper's absolute timings
(different hardware, different language); what it *can* reproduce is the
work each scheme performs — bytes hashed per algorithm, bytes scanned for
chunk boundaries, chunks produced, index probes and their RAM residency,
bytes and requests shipped over the WAN.  This package prices that work
on a model of the paper's platform:

* :class:`~repro.simulate.clock.VirtualClock` — deterministic time;
* :class:`~repro.simulate.cpumodel.CPUModel` — cycles/byte per hash and
  per chunking method on the 2.53 GHz Core 2 Duo;
* :class:`~repro.simulate.diskmodel.DiskModel` — sequential bandwidth and
  seek cost of the laptop SATA disk, plus the index-residency model that
  produces (or avoids) the on-disk index lookup bottleneck;
* :class:`~repro.simulate.powermodel.PowerModel` — active/idle power for
  the energy figures;
* :class:`~repro.simulate.pipeline.backup_window` — the paper's
  ``BWS = DS · max(1/DT, 1/(DR·NT))`` pipelined window model.

Calibration constants live in one place (`cpumodel.PAPER_PLATFORM` et
al.) and are documented against the paper's Figs. 3–4.
"""

from repro.simulate.clock import VirtualClock
from repro.simulate.cpumodel import CPUModel, PAPER_CPU, dedup_cpu_seconds
from repro.simulate.diskmodel import DiskModel, PAPER_DISK, IndexResidencyModel
from repro.simulate.powermodel import PowerModel, PAPER_POWER
from repro.simulate.pipeline import backup_window, dedup_throughput

__all__ = [
    "VirtualClock",
    "CPUModel",
    "PAPER_CPU",
    "dedup_cpu_seconds",
    "DiskModel",
    "PAPER_DISK",
    "IndexResidencyModel",
    "PowerModel",
    "PAPER_POWER",
    "backup_window",
    "dedup_throughput",
]
