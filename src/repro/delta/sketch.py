"""Resemblance sketches: N-feature / super-feature similarity detection.

Exact fingerprint matching (the AA-Dedupe pipeline) only eliminates
chunks that are *byte-identical*.  PC backup streams are dominated by
near-duplicates — edited DOC/TXT/PPT versions whose CDC chunks differ by
a handful of bytes — and those re-upload in full.  The classic remedy
(Broder resemblance, as deployed by REBL/DERD and the delta tier of
stream-informed dedup systems) is a *sketch*:

1. slide the same rolling Rabin window the CDC chunker already uses over
   the chunk (:func:`repro.hashing.rolling.window_fingerprints` — one
   vectorised pass, no new hash machinery);
2. derive ``n_features`` permuted views ``pi_i(fp) = a_i * fp + b_i
   (mod 2^64)`` and keep the *maximum* of each across all windows.  By
   min/max-wise sampling, two chunks sharing a fraction ``r`` of their
   windows agree on each feature with probability ``r``;
3. group features into ``n_super`` *super-features* (the hash of a
   feature group).  A super-feature matches only when **every** feature
   in its group matches, so a single super-feature hit already implies
   strong resemblance, while ``n_super`` groups give the detector
   ``n_super`` independent chances.

Sketching is deterministic: equal chunks always produce equal sketches,
so the similarity index needs no coordination with the chunker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import DeltaError
from repro.hashing.base import get_hash
from repro.hashing.rolling import RollingRabin, window_fingerprints

__all__ = ["Sketch", "compute_sketch", "DEFAULT_FEATURES", "DEFAULT_SUPER"]

#: Paper-typical sketch shape: 12 features folded into 3 super-features.
DEFAULT_FEATURES = 12
DEFAULT_SUPER = 3

_MASK64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def _feature_params(n_features: int) -> Tuple[np.ndarray, np.ndarray]:
    """Deterministic per-feature permutation constants ``(a_i, b_i)``.

    ``a_i`` is forced odd so ``x -> a_i*x + b_i (mod 2^64)`` is a
    bijection on 64-bit values (an odd multiplier is invertible mod a
    power of two) — every feature ranks the window population in a
    genuinely different order.
    """
    rng = np.random.default_rng(0xAADE17A)
    a = rng.integers(1, 2**63, size=n_features, dtype=np.uint64) * 2 + 1
    b = rng.integers(0, 2**63, size=n_features, dtype=np.uint64)
    return a, b


#: (n_features) -> cached permutation constants.
_PARAM_CACHE: dict[int, Tuple[np.ndarray, np.ndarray]] = {}


@dataclass(frozen=True)
class Sketch:
    """Resemblance sketch of one chunk.

    ``super_features`` are 8-byte digests; two chunks that share any
    super-feature are considered resembling.  ``matches`` counts the
    agreement between two sketches (the similarity index uses it to rank
    candidate bases).
    """

    super_features: Tuple[bytes, ...]

    def matches(self, other: "Sketch") -> int:
        """Number of positions where the two sketches agree."""
        return sum(1 for a, b in zip(self.super_features,
                                     other.super_features) if a == b)


def compute_sketch(data: bytes,
                   n_features: int = DEFAULT_FEATURES,
                   n_super: int = DEFAULT_SUPER,
                   window: int = 48) -> Sketch:
    """Compute the ``n_super``-super-feature sketch of ``data``.

    Chunks shorter than the rolling window fall back to a single
    whole-buffer Rabin fingerprint as the only "window" — degenerate but
    still deterministic, so equal short chunks keep equal sketches.
    """
    if n_super < 1 or n_features < n_super or n_features % n_super:
        raise DeltaError(
            f"bad sketch shape: {n_features} features / {n_super} groups")
    params = _PARAM_CACHE.get(n_features)
    if params is None:
        params = _PARAM_CACHE[n_features] = _feature_params(n_features)
    a, b = params

    fps = window_fingerprints(data, window=window)
    if fps.shape[0] == 0:
        fps = np.array([RollingRabin.of(data, window=window)],
                       dtype=np.uint64)
    with np.errstate(over="ignore"):
        # (n_features, n_windows) permuted views; max-wise sampling.
        permuted = (fps[np.newaxis, :] * a[:, np.newaxis]
                    + b[:, np.newaxis]) & _MASK64
    features = permuted.max(axis=1)

    md5 = get_hash("md5")
    group = n_features // n_super
    supers = []
    for g in range(n_super):
        blob = features[g * group:(g + 1) * group].tobytes()
        supers.append(md5.hash(blob)[:8])
    return Sketch(super_features=tuple(supers))
