"""Similarity detection and delta compression (post-dedup stage).

Exact dedup stops at byte-identical chunks; this package captures the
*near*-duplicates that dominate PC document churn:

* :mod:`repro.delta.sketch` — super-feature resemblance sketches built
  on the existing rolling-Rabin machinery;
* :mod:`repro.delta.simindex` — bounded per-application similarity
  index (super-feature -> base fingerprint, LRU);
* :mod:`repro.delta.encode` — greedy copy/insert delta codec with a
  "not worth it" cutoff.

:class:`repro.core.backup.BackupClient` threads these together when
``SchemeConfig(delta_compress=True)``: a unique CDC/SC chunk probes the
similarity index and, when a resembling base is resident, stores a
delta extent instead of its full bytes.  WFC/compressed categories
bypass the stage — application-awareness again: re-deltaing compressed
media buys nothing.  See ``docs/DELTA.md``.
"""

from repro.errors import DeltaError

from repro.delta.encode import (
    DEFAULT_CUTOFF,
    apply_delta,
    delta_target_length,
    encode_delta,
    encode_if_worthwhile,
    validate_delta,
)
from repro.delta.simindex import SimIndexStats, SimilarityIndex
from repro.delta.sketch import Sketch, compute_sketch

__all__ = [
    "DEFAULT_CUTOFF",
    "DeltaError",
    "apply_delta",
    "delta_target_length",
    "encode_delta",
    "encode_if_worthwhile",
    "validate_delta",
    "SimIndexStats",
    "SimilarityIndex",
    "Sketch",
    "compute_sketch",
]
