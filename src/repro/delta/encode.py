"""Greedy copy/insert byte-level delta codec (xdelta-style).

A delta is a compact program that rebuilds ``target`` from ``base``::

    +------------------------------------------------+
    | header: magic "AAD1"(4)  target_len(u32)       |
    | ops:    'C' offset(u32) length(u32)   — copy   |
    |         'I' length(u32) raw bytes     — insert |
    +------------------------------------------------+

Encoding is single-pass greedy: the base is indexed by every
``block_size``-byte gram (first occurrence wins); the target is scanned
left to right, extending each gram hit forward as far as the bytes
agree and emitting literal inserts between matches.  This is the
classic REBL/DERD-style codec — not optimal like a suffix-automaton
matcher, but linear, allocation-light, and more than enough to collapse
an edited document version to its few changed bytes.

``encode_if_worthwhile`` applies the "delta not worth it" cutoff: when
a delta is not materially smaller than the target (ratio above
``DEFAULT_CUTOFF``), storing the full chunk is better — the chain-depth
and decode costs of a barely-smaller delta buy nothing.
"""

from __future__ import annotations

import struct
from typing import List, Optional

from repro.errors import DeltaError

__all__ = ["DELTA_MAGIC", "DEFAULT_CUTOFF", "DEFAULT_BLOCK_SIZE",
           "encode_delta", "apply_delta", "encode_if_worthwhile",
           "validate_delta", "delta_target_length"]

DELTA_MAGIC = b"AAD1"
_HEADER = struct.Struct(">4sI")       # magic, target_len
_COPY = struct.Struct(">BII")         # 'C', offset, length
_INSERT_HDR = struct.Struct(">BI")    # 'I', length

_OP_COPY = 0x43   # 'C'
_OP_INSERT = 0x49  # 'I'

#: A delta bigger than this fraction of its target is "not worth it".
DEFAULT_CUTOFF = 0.5

#: Gram width used to seed matches in the base.
DEFAULT_BLOCK_SIZE = 16


def encode_delta(base: bytes, target: bytes,
                 block_size: int = DEFAULT_BLOCK_SIZE) -> bytes:
    """Encode ``target`` as a delta against ``base``.

    Always succeeds: with nothing to copy the delta degenerates to one
    big insert (header + 5 bytes of overhead).  Worthwhileness is the
    caller's decision (see :func:`encode_if_worthwhile`).
    """
    if block_size < 4:
        raise DeltaError("block_size must be >= 4")
    out: List[bytes] = [_HEADER.pack(DELTA_MAGIC, len(target))]

    grams: dict = {}
    for i in range(len(base) - block_size + 1):
        gram = base[i:i + block_size]
        if gram not in grams:
            grams[gram] = i

    pending_start = 0  # start of the literal run not yet emitted

    def flush_insert(end: int) -> None:
        if end > pending_start:
            run = target[pending_start:end]
            out.append(_INSERT_HDR.pack(_OP_INSERT, len(run)))
            out.append(run)

    i = 0
    n = len(target)
    while i + block_size <= n:
        j = grams.get(target[i:i + block_size])
        if j is None:
            i += 1
            continue
        # Extend the seed match forward as far as the bytes agree.
        length = block_size
        while (i + length < n and j + length < len(base)
               and target[i + length] == base[j + length]):
            length += 1
        flush_insert(i)
        out.append(_COPY.pack(_OP_COPY, j, length))
        i += length
        pending_start = i
    flush_insert(n)
    return b"".join(out)


def apply_delta(base: bytes, delta: bytes) -> bytes:
    """Rebuild the target from ``base`` and ``delta`` (inverse of
    :func:`encode_delta`); validates structure and bounds throughout."""
    target_len, pos = _parse_header(delta)
    out = bytearray()
    n = len(delta)
    while pos < n:
        op = delta[pos]
        if op == _OP_COPY:
            if pos + _COPY.size > n:
                raise DeltaError("truncated copy op")
            _, offset, length = _COPY.unpack_from(delta, pos)
            pos += _COPY.size
            if offset + length > len(base):
                raise DeltaError(
                    f"copy [{offset}, {offset + length}) beyond base "
                    f"({len(base)} bytes)")
            out += base[offset:offset + length]
        elif op == _OP_INSERT:
            if pos + _INSERT_HDR.size > n:
                raise DeltaError("truncated insert op")
            _, length = _INSERT_HDR.unpack_from(delta, pos)
            pos += _INSERT_HDR.size
            if pos + length > n:
                raise DeltaError("insert data beyond delta end")
            out += delta[pos:pos + length]
            pos += length
        else:
            raise DeltaError(f"unknown delta op 0x{op:02x}")
    if len(out) != target_len:
        raise DeltaError(
            f"delta rebuilt {len(out)} bytes, header declares {target_len}")
    return bytes(out)


def encode_if_worthwhile(base: bytes, target: bytes,
                         cutoff: float = DEFAULT_CUTOFF,
                         block_size: int = DEFAULT_BLOCK_SIZE
                         ) -> Optional[bytes]:
    """Encode, but return ``None`` when the delta is not worth storing.

    ``cutoff`` is the maximum acceptable ``len(delta) / len(target)``
    ratio; empty targets are never worth a delta.
    """
    if not target:
        return None
    delta = encode_delta(base, target, block_size=block_size)
    if len(delta) > cutoff * len(target):
        return None
    return delta


def _parse_header(delta: bytes) -> tuple[int, int]:
    if len(delta) < _HEADER.size:
        raise DeltaError("delta too small for header")
    magic, target_len = _HEADER.unpack_from(delta, 0)
    if magic != DELTA_MAGIC:
        raise DeltaError("bad delta magic")
    return target_len, _HEADER.size


def delta_target_length(delta: bytes) -> int:
    """Declared target length of a delta blob (header only)."""
    return _parse_header(delta)[0]


def validate_delta(delta: bytes) -> int:
    """Structurally validate a delta blob without a base.

    Walks the op stream, checks framing and that the declared target
    length matches the ops' total output.  Returns the target length;
    raises :class:`~repro.errors.DeltaError` on any inconsistency.
    This is the scrub path: a stored delta extent can be vetted in
    isolation, before its base chain is even resolved.
    """
    target_len, pos = _parse_header(delta)
    produced = 0
    n = len(delta)
    while pos < n:
        op = delta[pos]
        if op == _OP_COPY:
            if pos + _COPY.size > n:
                raise DeltaError("truncated copy op")
            _, _offset, length = _COPY.unpack_from(delta, pos)
            pos += _COPY.size
        elif op == _OP_INSERT:
            if pos + _INSERT_HDR.size > n:
                raise DeltaError("truncated insert op")
            _, length = _INSERT_HDR.unpack_from(delta, pos)
            pos += _INSERT_HDR.size + length
            if pos > n:
                raise DeltaError("insert data beyond delta end")
        else:
            raise DeltaError(f"unknown delta op 0x{op:02x}")
        produced += length
    if produced != target_len:
        raise DeltaError(
            f"ops produce {produced} bytes, header declares {target_len}")
    return target_len
