"""Bounded per-application similarity index: super-feature -> base chunk.

The delta stage needs an answer to "have I recently stored a chunk that
*resembles* this one?".  Mirroring the application-aware exact index
(:mod:`repro.index.appaware`), resemblance state is partitioned per
application label — Observation 2 (cross-application duplicate data is
negligible) applies to near-duplicates just as it does to exact ones, so
each namespace stays small and the parallel per-app dedup workers touch
disjoint namespaces without locking.

Each namespace maps super-features to base-chunk fingerprints with LRU
eviction (a bounded memory footprint is non-negotiable on a PC client;
stale resemblance only costs a missed delta, never correctness).
Probes return the candidate base with the most super-feature votes.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from repro.delta.sketch import Sketch
from repro.errors import DeltaError

__all__ = ["SimIndexStats", "SimilarityIndex"]


@dataclass
class SimIndexStats:
    """Probe/insert accounting, IndexStats-style (see
    :class:`repro.index.base.IndexStats`)."""

    probes: int = 0
    #: Probes that returned a candidate base.
    hits: int = 0
    inserts: int = 0
    #: Super-feature slots dropped by the LRU bound.
    evictions: int = 0

    def merge(self, other: "SimIndexStats") -> None:
        """Accumulate ``other`` into ``self``."""
        self.probes += other.probes
        self.hits += other.hits
        self.inserts += other.inserts
        self.evictions += other.evictions


class SimilarityIndex:
    """A family of bounded per-application super-feature maps."""

    def __init__(self, capacity: int = 8192) -> None:
        if capacity < 1:
            raise DeltaError("similarity index capacity must be >= 1")
        #: Max super-feature slots kept per namespace.
        self.capacity = capacity
        self._maps: Dict[str, "OrderedDict[bytes, bytes]"] = {}
        self._stats: Dict[str, SimIndexStats] = {}
        self._create_lock = threading.Lock()

    def _namespace(self, namespace: str) -> "OrderedDict[bytes, bytes]":
        ns = self._maps.get(namespace)
        if ns is None:
            with self._create_lock:
                ns = self._maps.get(namespace)
                if ns is None:
                    ns = self._maps[namespace] = OrderedDict()
                    self._stats[namespace] = SimIndexStats()
        return ns

    # ------------------------------------------------------------------
    def probe(self, namespace: str, sketch: Sketch) -> Optional[bytes]:
        """Most-resembling base fingerprint for ``sketch``, or ``None``.

        Candidates are ranked by super-feature votes; ties break toward
        the super-feature seen first in the sketch (deterministic).  A
        hit refreshes the matched slots' LRU position — an actively
        useful base stays resident.
        """
        ns = self._namespace(namespace)
        stats = self._stats[namespace]
        stats.probes += 1
        votes: Dict[bytes, int] = {}
        for sf in sketch.super_features:
            fp = ns.get(sf)
            if fp is not None:
                votes[fp] = votes.get(fp, 0) + 1
        if not votes:
            return None
        best = max(votes, key=votes.__getitem__)
        for sf in sketch.super_features:
            if ns.get(sf) == best:
                ns.move_to_end(sf)
        stats.hits += 1
        return best

    def insert(self, namespace: str, sketch: Sketch,
               fingerprint: bytes) -> None:
        """Register ``fingerprint`` as the base behind every
        super-feature of ``sketch`` (last-writer-wins per slot)."""
        ns = self._namespace(namespace)
        stats = self._stats[namespace]
        stats.inserts += 1
        for sf in sketch.super_features:
            if sf in ns:
                ns.move_to_end(sf)
            ns[sf] = fingerprint
        while len(ns) > self.capacity:
            ns.popitem(last=False)
            stats.evictions += 1

    def discard(self, namespace: str, fingerprint: bytes) -> int:
        """Drop every slot pointing at ``fingerprint``; returns count.

        Used when a base leaves the client's payload cache — a probe
        must never return a base whose bytes are no longer available.
        """
        ns = self._maps.get(namespace)
        if ns is None:
            return 0
        dead = [sf for sf, fp in ns.items() if fp == fingerprint]
        for sf in dead:
            del ns[sf]
        return len(dead)

    # ------------------------------------------------------------------
    @property
    def namespaces(self) -> list[str]:
        """Labels of all materialised namespaces (sorted)."""
        return sorted(self._maps)

    def __len__(self) -> int:
        """Total super-feature slots across all namespaces."""
        return sum(len(ns) for ns in self._maps.values())

    def stats_for(self, namespace: str) -> SimIndexStats:
        """Per-namespace counters (created on first use)."""
        self._namespace(namespace)
        return self._stats[namespace]

    def combined_stats(self) -> SimIndexStats:
        """Merged counters across namespaces."""
        total = SimIndexStats()
        for stats in self._stats.values():
            total.merge(stats)
        return total

    def approximate_bytes(self) -> int:
        """Rough footprint: 8 B super-feature + <=20 B fingerprint."""
        return len(self) * 28
