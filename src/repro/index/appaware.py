"""The application-aware index structure (paper Sec. III-E, Fig. 6).

Observation 2 — cross-application duplicate data is negligible — lets the
full fingerprint index be partitioned into one *small, independent* index
per application label without losing dedup effectiveness.  Benefits the
paper claims, all realised here:

* each subindex stays small enough to be RAM-resident (no disk-bottleneck
  seeks — measurable via each subindex's :class:`IndexStats`);
* lookups for different applications are independent, enabling parallel
  probing (:meth:`lookup_batch` with a thread pool — the paper's stated
  future-work direction for multi-core clients);
* the partition also yields natural sharding for the periodic cloud
  synchronisation of the index (:mod:`repro.core.sync`).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.index.base import ChunkIndex, IndexEntry, IndexStats
from repro.index.memory import MemoryIndex
from repro.obs.metrics import LATENCY_BUCKETS
from repro.obs.tracer import NOOP_TRACER

__all__ = ["AppAwareIndex"]


class AppAwareIndex:
    """A family of per-application chunk indices.

    ``factory(app_label)`` builds the subindex for a new application label
    (default: :class:`MemoryIndex`, reflecting that per-app indices fit in
    RAM; tests also exercise :class:`~repro.index.disk.DiskIndex`
    factories).  The composite is *not* itself a :class:`ChunkIndex`
    because every operation requires the application label — that routing
    is the whole point.
    """

    def __init__(self,
                 factory: Callable[[str], ChunkIndex] | None = None,
                 max_workers: int = 4,
                 tracer=None) -> None:
        self._factory = factory or (lambda app: MemoryIndex())
        self._subindices: Dict[str, ChunkIndex] = {}
        self._max_workers = max(1, max_workers)
        self._pool: ThreadPoolExecutor | None = None
        self._create_lock = threading.Lock()
        self.tracer = tracer if tracer is not None else NOOP_TRACER

    # ------------------------------------------------------------------
    def subindex(self, app: str) -> ChunkIndex:
        """Return (creating on first use) the index for application ``app``.

        Creation is locked so concurrent per-application workers (the
        parallel dedup mode) cannot race; operations *within* one
        subindex are only ever issued by its own application's worker.
        """
        idx = self._subindices.get(app)
        if idx is None:
            with self._create_lock:
                idx = self._subindices.get(app)
                if idx is None:
                    idx = self._subindices[app] = self._factory(app)
        return idx

    def lookup(self, app: str, fingerprint: bytes) -> Optional[IndexEntry]:
        """Route a lookup to ``app``'s subindex only."""
        tracer = self.tracer
        if not tracer.enabled:
            return self.subindex(app).lookup(fingerprint)
        with tracer.span("index.lookup", app=app) as sp:
            entry = self.subindex(app).lookup(fingerprint)
            sp.set("hit", entry is not None)
        tracer.metrics.histogram(
            "index_lookup_seconds", LATENCY_BUCKETS).observe(sp.duration)
        tracer.metrics.counter("index_lookups_total").inc()
        return entry

    def insert(self, app: str, entry: IndexEntry) -> None:
        """Insert into ``app``'s subindex."""
        tracer = self.tracer
        if not tracer.enabled:
            self.subindex(app).insert(entry)
            return
        with tracer.span("index.insert", app=app):
            self.subindex(app).insert(entry)

    def contains(self, app: str, fingerprint: bytes) -> bool:
        """Membership test within one application's namespace."""
        return self.lookup(app, fingerprint) is not None

    # ------------------------------------------------------------------
    def lookup_batch(self, queries: Sequence[Tuple[str, bytes]],
                     parallel: bool = False
                     ) -> List[Optional[IndexEntry]]:
        """Resolve many ``(app, fingerprint)`` queries.

        With ``parallel=True`` queries are grouped by application and each
        group probed on its own worker thread — profitable when subindices
        perform real IO (DiskIndex) since file reads release the GIL.
        """
        if not parallel or len(queries) < 2:
            return [self.lookup(app, fp) for app, fp in queries]
        groups: Dict[str, List[int]] = {}
        for i, (app, _fp) in enumerate(queries):
            groups.setdefault(app, []).append(i)
        results: List[Optional[IndexEntry]] = [None] * len(queries)

        def probe_group(app: str, positions: List[int]) -> None:
            idx = self.subindex(app)
            for pos in positions:
                results[pos] = idx.lookup(queries[pos][1])

        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self._max_workers,
                                            thread_name_prefix="aaidx")
        futures = [self._pool.submit(probe_group, app, positions)
                   for app, positions in groups.items()]
        for fut in futures:
            fut.result()
        return results

    # ------------------------------------------------------------------
    @property
    def apps(self) -> List[str]:
        """Labels of all materialised subindices (sorted)."""
        return sorted(self._subindices)

    def __len__(self) -> int:
        """Total distinct fingerprints across all subindices."""
        return sum(len(idx) for idx in self._subindices.values())

    def entries(self) -> Iterator[Tuple[str, IndexEntry]]:
        """Iterate ``(app, entry)`` over the whole family."""
        for app in self.apps:
            for entry in self._subindices[app].entries():
                yield app, entry

    def sizes(self) -> Dict[str, int]:
        """Entry count per application — Fig.-6-style index sizing data."""
        return {app: len(idx) for app, idx in self._subindices.items()}

    def combined_stats(self) -> IndexStats:
        """Merged :class:`IndexStats` across subindices."""
        total = IndexStats()
        for idx in self._subindices.values():
            total.merge(idx.stats)
        return total

    def reset_stats(self) -> None:
        """Zero all subindex counters (between backup sessions)."""
        for idx in self._subindices.values():
            idx.stats = IndexStats()

    def flush(self) -> None:
        """Flush every subindex."""
        for idx in self._subindices.values():
            idx.flush()

    def close(self) -> None:
        """Close subindices and stop the lookup pool."""
        for idx in self._subindices.values():
            idx.close()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def approximate_bytes(self) -> int:
        """Total footprint (sum of subindex footprints)."""
        return sum(idx.approximate_bytes()
                   for idx in self._subindices.values())
