"""Locality-prioritized fingerprint cache (HPDedup-style).

A plain LRU front over a directory shard treats every probing stream
the same, so one client churning through cold, never-repeating
fingerprints evicts the working set of a client whose stream has high
temporal locality.  HPDedup (arxiv 1702.08153) fixes this by
*estimating each stream's temporal locality* and giving cache space to
the streams that will actually reuse it.

:class:`LocalityCache` implements that idea as a drop-in
:class:`~repro.index.base.ChunkIndex` front:

* callers tag the probing stream via :meth:`begin_stream` (the fleet
  directory passes the client rank, making the estimate per
  ``(client, app)`` since shards are already per-app);
* locality is estimated from **hit run lengths** — consecutive cache
  hits extend the stream's current run, a miss folds the run into an
  exponentially-weighted moving average;
* cached entries belong to the stream that most recently touched them,
  and eviction removes the oldest entry of the **lowest-locality**
  stream first (ties broken by stream id, so eviction order is a pure
  function of the probe sequence).

Scores are exposed through :meth:`locality_scores` so the fleet
directory can surface them in ``stats_rows()``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Optional

from repro.index.base import ChunkIndex, IndexEntry

__all__ = ["LocalityCache"]

#: Stream id used before any :meth:`LocalityCache.begin_stream` call.
DEFAULT_STREAM = "?"


class LocalityCache(ChunkIndex):
    """Bounded cache front that evicts low-locality streams first.

    ``alpha`` is the EWMA weight of the most recent run length; higher
    values adapt faster to a stream changing phase.  Negative lookups
    are not cached (same insert-follows-miss rationale as
    :class:`~repro.index.cache.LRUCache`).
    """

    def __init__(self, backing: ChunkIndex, capacity: int,
                 alpha: float = 0.25) -> None:
        super().__init__()
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not (0.0 < alpha <= 1.0):
            raise ValueError("alpha must be in (0, 1]")
        self.backing = backing
        self.capacity = capacity
        self.alpha = alpha
        self._entries: Dict[bytes, IndexEntry] = {}
        #: fingerprint -> owning stream (the stream that last touched it).
        self._owner: Dict[bytes, str] = {}
        #: stream -> recency order of its cached fingerprints.
        self._lru: Dict[str, OrderedDict] = {}
        #: stream -> EWMA of completed hit run lengths.
        self._ewma: Dict[str, float] = {}
        #: stream -> length of the hit run currently in progress.
        self._run: Dict[str, int] = {}
        self._stream = DEFAULT_STREAM
        self.cache_hits = 0
        self.cache_misses = 0
        self.evictions = 0

    # -- stream accounting ---------------------------------------------
    def begin_stream(self, stream) -> None:
        """Attribute subsequent probes to ``stream``."""
        self._stream = str(stream)

    def _score(self, stream: str) -> float:
        """Effective locality: historical EWMA or the live run, whichever
        is higher — a stream mid-burst must not be evicted for having a
        cold history."""
        return max(self._ewma.get(stream, 0.0),
                   float(self._run.get(stream, 0)))

    def locality_scores(self) -> Dict[str, float]:
        """Current per-stream locality estimates (for ``stats_rows``)."""
        streams = set(self._ewma) | set(self._run) | set(self._lru)
        return {s: round(self._score(s), 3) for s in sorted(streams)}

    # -- cache mechanics -----------------------------------------------
    def _touch(self, fingerprint: bytes) -> None:
        stream = self._stream
        owner = self._owner[fingerprint]
        if owner != stream:
            del self._lru[owner][fingerprint]
            self._owner[fingerprint] = stream
        self._lru.setdefault(stream, OrderedDict())[fingerprint] = None
        self._lru[stream].move_to_end(fingerprint)

    def _remember(self, entry: IndexEntry) -> None:
        fingerprint = entry.fingerprint
        self._entries[fingerprint] = entry
        if fingerprint in self._owner:
            self._touch(fingerprint)
        else:
            self._owner[fingerprint] = self._stream
            self._lru.setdefault(self._stream,
                                 OrderedDict())[fingerprint] = None
        while len(self._entries) > self.capacity:
            self._evict_one()

    def _evict_one(self) -> None:
        victim_stream = min(
            (s for s, lru in self._lru.items() if lru),
            key=lambda s: (self._score(s), s))
        fingerprint, _ = self._lru[victim_stream].popitem(last=False)
        del self._entries[fingerprint]
        del self._owner[fingerprint]
        self.evictions += 1

    # -- ChunkIndex interface ------------------------------------------
    def lookup(self, fingerprint: bytes) -> Optional[IndexEntry]:
        """Cache first; a miss closes the stream's hit run and falls
        through to the backing index."""
        self.stats.lookups += 1
        stream = self._stream
        entry = self._entries.get(fingerprint)
        if entry is not None:
            self.cache_hits += 1
            self.stats.hits += 1
            self.stats.memory_hits += 1
            self._run[stream] = self._run.get(stream, 0) + 1
            self._touch(fingerprint)
            return entry
        # Fold the finished run (possibly 0) into the stream's EWMA: a
        # miss streak decays the score toward zero.
        self._ewma[stream] = ((1.0 - self.alpha)
                              * self._ewma.get(stream, 0.0)
                              + self.alpha * self._run.get(stream, 0))
        self._run[stream] = 0
        self.cache_misses += 1
        entry = self.backing.lookup(fingerprint)
        if entry is not None:
            self.stats.hits += 1
            self._remember(entry)
        return entry

    def insert(self, entry: IndexEntry) -> None:
        """Write-through insert (backing index stays authoritative)."""
        self.stats.inserts += 1
        self.generation += 1
        self.backing.insert(entry)
        self._remember(entry)

    def __len__(self) -> int:
        return len(self.backing)

    def entries(self) -> Iterator[IndexEntry]:
        """Delegate to the backing index."""
        return self.backing.entries()

    def flush(self) -> None:
        self.backing.flush()

    def close(self) -> None:
        self.backing.close()
        self._entries.clear()
        self._owner.clear()
        self._lru.clear()

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0
