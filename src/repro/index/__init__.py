"""Chunk-index substrate.

A chunk index maps fingerprints to chunk locations (container id, offset,
length).  The paper's performance argument revolves around index
*residency*: a single global index for a TB-scale dataset spills to disk
and every lookup risks a seek (the DDFS "disk bottleneck"), while
AA-Dedupe's per-application small indices stay RAM-resident.

Implementations:

* :class:`~repro.index.memory.MemoryIndex` — plain dict, RAM only;
* :class:`~repro.index.disk.DiskIndex` — persistent memtable + sorted-run
  (mini-LSM) index with per-run Bloom filters and IO accounting;
* :class:`~repro.index.appaware.AppAwareIndex` — the paper's structure:
  one subindex per application label, with optional parallel batch lookup;
* :class:`~repro.index.locality.LocalityCache` — HPDedup-style cache
  front that evicts low-temporal-locality streams first;
* :class:`~repro.index.sparse.SparseShardIndex` — FAST'09
  sampling-based approximate index for a fleet directory's long tail.
"""

from repro.index.base import ChunkIndex, IndexEntry, IndexStats
from repro.index.memory import MemoryIndex
from repro.index.bloom import BloomFilter
from repro.index.disk import DiskIndex
from repro.index.cache import LRUCache
from repro.index.locality import LocalityCache
from repro.index.appaware import AppAwareIndex
from repro.index.sparse import SparseIndexDeduper, SparseShardIndex

__all__ = [
    "ChunkIndex",
    "IndexEntry",
    "IndexStats",
    "MemoryIndex",
    "BloomFilter",
    "DiskIndex",
    "LRUCache",
    "LocalityCache",
    "AppAwareIndex",
    "SparseIndexDeduper",
    "SparseShardIndex",
]
