"""Sparse Indexing — the competing answer to the index bottleneck.

The paper's related work contrasts AA-Dedupe's small exact per-app
indices with *Sparse Indexing* (Lillibridge et al., FAST'09 — the
paper's reference [20]), which bounds RAM by **sampling**: only every
``1/2^sample_bits``-th fingerprint (a *hook*) is indexed, mapping to the
segments it appeared in.  An incoming segment is deduplicated only
against a few *champion* segments sharing its hooks; duplicates outside
the champions are missed (approximate dedup), but the RAM footprint is
tiny and each segment costs at most ``max_champions`` sequential
manifest loads instead of per-chunk random IOs.

:class:`SparseIndexDeduper` implements the algorithm over ``(chunk_id,
length)`` streams so the trace layer can compare it head-to-head with
exact indexing (see ``benchmarks/test_bench_sparse_index.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

__all__ = ["SparseIndexDeduper", "SparseStats"]


@dataclass
class SparseStats:
    """Accounting for one sparse-index run."""

    chunks_total: int = 0
    bytes_total: int = 0
    chunks_deduped: int = 0
    bytes_deduped: int = 0
    bytes_unique: int = 0
    segments_processed: int = 0
    champions_loaded: int = 0

    @property
    def dedup_ratio(self) -> float:
        """Achieved DR (≥ 1; lower than exact dedup's by the miss rate)."""
        if self.bytes_unique <= 0:
            return 1.0 if self.bytes_total == 0 else float("inf")
        return self.bytes_total / self.bytes_unique


class SparseIndexDeduper:
    """Segment-based approximate deduplication with a sampled RAM index.

    ``segment_chunks`` chunks form one segment (FAST'09 uses ~10 MB
    segments); fingerprints whose low ``sample_bits`` bits are zero are
    hooks; at most ``max_champions`` champion segments are consulted per
    incoming segment, ranked by hook overlap.
    """

    def __init__(self, segment_chunks: int = 1024, sample_bits: int = 6,
                 max_champions: int = 4,
                 max_segments_per_hook: int = 8) -> None:
        if segment_chunks < 1 or sample_bits < 0 or max_champions < 1:
            raise ValueError("invalid sparse-index parameters")
        self.segment_chunks = segment_chunks
        self.sample_mask = (1 << sample_bits) - 1
        self.max_champions = max_champions
        self.max_segments_per_hook = max_segments_per_hook
        #: hook fingerprint -> segment ids containing it (RAM).
        self._sparse: Dict[int, List[int]] = {}
        #: segment id -> chunk id set ("on-disk" segment manifests).
        self._manifests: Dict[int, Set[int]] = {}
        self._next_segment = 0
        self._buffer: List[Tuple[int, int]] = []
        self.stats = SparseStats()

    # ------------------------------------------------------------------
    def _is_hook(self, chunk_id: int) -> bool:
        return (chunk_id & self.sample_mask) == 0

    def _champions(self, hooks: List[int]) -> List[int]:
        votes: Dict[int, int] = {}
        for hook in hooks:
            for segment in self._sparse.get(hook, ()):
                votes[segment] = votes.get(segment, 0) + 1
        ranked = sorted(votes, key=lambda s: (-votes[s], -s))
        return ranked[: self.max_champions]

    def _flush_segment(self) -> None:
        if not self._buffer:
            return
        segment = self._buffer
        self._buffer = []
        self.stats.segments_processed += 1
        hooks = [cid for cid, _l in segment if self._is_hook(cid)]
        champions = self._champions(hooks)
        self.stats.champions_loaded += len(champions)
        known: Set[int] = set()
        for champ in champions:
            known |= self._manifests[champ]

        segment_id = self._next_segment
        self._next_segment += 1
        manifest: Set[int] = set()
        for chunk_id, length in segment:
            if chunk_id in known or chunk_id in manifest:
                self.stats.chunks_deduped += 1
                self.stats.bytes_deduped += length
            else:
                self.stats.bytes_unique += length
            manifest.add(chunk_id)
        self._manifests[segment_id] = manifest
        for hook in hooks:
            entries = self._sparse.setdefault(hook, [])
            if len(entries) < self.max_segments_per_hook:
                entries.append(segment_id)
            else:  # evict oldest mapping (FIFO, as in the paper)
                entries.pop(0)
                entries.append(segment_id)

    # ------------------------------------------------------------------
    def push(self, chunk_id: int, length: int) -> None:
        """Feed one chunk of the backup stream."""
        self.stats.chunks_total += 1
        self.stats.bytes_total += length
        self._buffer.append((chunk_id, length))
        if len(self._buffer) >= self.segment_chunks:
            self._flush_segment()

    def push_stream(self, chunks: Iterable[Tuple[int, int]]) -> None:
        """Feed a whole stream of ``(chunk_id, length)``."""
        for chunk_id, length in chunks:
            self.push(chunk_id, length)

    def finish(self) -> SparseStats:
        """Flush the partial trailing segment and return the stats."""
        self._flush_segment()
        return self.stats

    # ------------------------------------------------------------------
    def ram_entries(self) -> int:
        """Sampled (hook) entries held in RAM — the footprint argument."""
        return sum(len(v) for v in self._sparse.values())

    def manifest_entries(self) -> int:
        """Total chunk ids across on-disk segment manifests."""
        return sum(len(m) for m in self._manifests.values())
