"""Sparse Indexing — the competing answer to the index bottleneck.

The paper's related work contrasts AA-Dedupe's small exact per-app
indices with *Sparse Indexing* (Lillibridge et al., FAST'09 — the
paper's reference [20]), which bounds RAM by **sampling**: only every
``1/2^sample_bits``-th fingerprint (a *hook*) is indexed, mapping to the
segments it appeared in.  An incoming segment is deduplicated only
against a few *champion* segments sharing its hooks; duplicates outside
the champions are missed (approximate dedup), but the RAM footprint is
tiny and each segment costs at most ``max_champions`` sequential
manifest loads instead of per-chunk random IOs.

:class:`SparseIndexDeduper` implements the algorithm over ``(chunk_id,
length)`` streams so the trace layer can compare it head-to-head with
exact indexing (see ``benchmarks/test_bench_sparse_index.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.index.base import ChunkIndex, IndexEntry

__all__ = ["SparseIndexDeduper", "SparseShardIndex", "SparseStats"]


@dataclass
class SparseStats:
    """Accounting for one sparse-index run."""

    chunks_total: int = 0
    bytes_total: int = 0
    chunks_deduped: int = 0
    bytes_deduped: int = 0
    bytes_unique: int = 0
    segments_processed: int = 0
    champions_loaded: int = 0

    @property
    def dedup_ratio(self) -> float:
        """Achieved DR (≥ 1; lower than exact dedup's by the miss rate)."""
        if self.bytes_unique <= 0:
            return 1.0 if self.bytes_total == 0 else float("inf")
        return self.bytes_total / self.bytes_unique


class SparseIndexDeduper:
    """Segment-based approximate deduplication with a sampled RAM index.

    ``segment_chunks`` chunks form one segment (FAST'09 uses ~10 MB
    segments); fingerprints whose low ``sample_bits`` bits are zero are
    hooks; at most ``max_champions`` champion segments are consulted per
    incoming segment, ranked by hook overlap.
    """

    def __init__(self, segment_chunks: int = 1024, sample_bits: int = 6,
                 max_champions: int = 4,
                 max_segments_per_hook: int = 8) -> None:
        if segment_chunks < 1 or sample_bits < 0 or max_champions < 1:
            raise ValueError("invalid sparse-index parameters")
        self.segment_chunks = segment_chunks
        self.sample_mask = (1 << sample_bits) - 1
        self.max_champions = max_champions
        self.max_segments_per_hook = max_segments_per_hook
        #: hook fingerprint -> segment ids containing it (RAM).
        self._sparse: Dict[int, List[int]] = {}
        #: segment id -> chunk id set ("on-disk" segment manifests).
        self._manifests: Dict[int, Set[int]] = {}
        self._next_segment = 0
        self._buffer: List[Tuple[int, int]] = []
        self.stats = SparseStats()

    # ------------------------------------------------------------------
    def _is_hook(self, chunk_id: int) -> bool:
        return (chunk_id & self.sample_mask) == 0

    def _champions(self, hooks: List[int]) -> List[int]:
        votes: Dict[int, int] = {}
        for hook in hooks:
            for segment in self._sparse.get(hook, ()):
                votes[segment] = votes.get(segment, 0) + 1
        ranked = sorted(votes, key=lambda s: (-votes[s], -s))
        return ranked[: self.max_champions]

    def _flush_segment(self) -> None:
        if not self._buffer:
            return
        segment = self._buffer
        self._buffer = []
        self.stats.segments_processed += 1
        hooks = [cid for cid, _l in segment if self._is_hook(cid)]
        champions = self._champions(hooks)
        self.stats.champions_loaded += len(champions)
        known: Set[int] = set()
        for champ in champions:
            known |= self._manifests[champ]

        segment_id = self._next_segment
        self._next_segment += 1
        manifest: Set[int] = set()
        for chunk_id, length in segment:
            if chunk_id in known or chunk_id in manifest:
                self.stats.chunks_deduped += 1
                self.stats.bytes_deduped += length
            else:
                self.stats.bytes_unique += length
            manifest.add(chunk_id)
        self._manifests[segment_id] = manifest
        for hook in hooks:
            entries = self._sparse.setdefault(hook, [])
            if len(entries) < self.max_segments_per_hook:
                entries.append(segment_id)
            else:  # evict oldest mapping (FIFO, as in the paper)
                entries.pop(0)
                entries.append(segment_id)

    # ------------------------------------------------------------------
    def push(self, chunk_id: int, length: int) -> None:
        """Feed one chunk of the backup stream."""
        self.stats.chunks_total += 1
        self.stats.bytes_total += length
        self._buffer.append((chunk_id, length))
        if len(self._buffer) >= self.segment_chunks:
            self._flush_segment()

    def push_stream(self, chunks: Iterable[Tuple[int, int]]) -> None:
        """Feed a whole stream of ``(chunk_id, length)``."""
        for chunk_id, length in chunks:
            self.push(chunk_id, length)

    def finish(self) -> SparseStats:
        """Flush the partial trailing segment and return the stats."""
        self._flush_segment()
        return self.stats

    # ------------------------------------------------------------------
    def ram_entries(self) -> int:
        """Sampled (hook) entries held in RAM — the footprint argument."""
        return sum(len(v) for v in self._sparse.values())

    def manifest_entries(self) -> int:
        """Total chunk ids across on-disk segment manifests."""
        return sum(len(m) for m in self._manifests.values())


class SparseShardIndex(ChunkIndex):
    """Sampling-based :class:`~repro.index.base.ChunkIndex` for the
    long-tail tier of a fleet directory shard.

    The RAM-resident part is the FAST'09 *sparse index*: exact entries
    only for **hook** fingerprints (those whose leading 64 bits have
    ``sample_bits`` trailing zeros) plus a hook → segment map.  Full
    entries live in fixed-size **segment manifests** — modelled on-disk
    structures whose loads are charged to ``stats.disk_probes`` /
    ``disk_bytes``.

    Lookups are approximate: before a probe batch the caller (the
    directory shard) announces the batch via :meth:`begin_batch`, which
    elects at most ``max_champions`` champion segments by hook overlap
    and loads their manifests; a non-hook fingerprint is only found if
    a champion (or the open, still-in-RAM segment) holds it.  A
    duplicate outside the champions is reported as a miss — the client
    re-uploads it, trading a bounded dedup loss for a RAM footprint
    that is ``~1/2^sample_bits`` of the exact index and at most
    ``max_champions`` sequential manifest loads per batch instead of
    per-fingerprint random IO.
    """

    def __init__(self, segment_chunks: int = 512, sample_bits: int = 4,
                 max_champions: int = 4,
                 max_segments_per_hook: int = 8) -> None:
        super().__init__()
        if segment_chunks < 1 or sample_bits < 0 or max_champions < 1 \
                or max_segments_per_hook < 1:
            raise ValueError("invalid sparse-shard parameters")
        self.segment_chunks = segment_chunks
        self.sample_mask = (1 << sample_bits) - 1
        self.max_champions = max_champions
        self.max_segments_per_hook = max_segments_per_hook
        self._hooks: Dict[bytes, IndexEntry] = {}
        self._hook_segments: Dict[bytes, List[int]] = {}
        self._segments: Dict[int, Dict[bytes, IndexEntry]] = {}
        self._open: Dict[bytes, IndexEntry] = {}
        self._loaded: Dict[bytes, IndexEntry] = {}
        self._next_segment = 0
        self._count = 0
        self.champions_loaded = 0

    # ------------------------------------------------------------------
    def _is_hook(self, fingerprint: bytes) -> bool:
        return (int.from_bytes(fingerprint[:8], "big")
                & self.sample_mask) == 0

    def begin_batch(self, fingerprints: Iterable[bytes]) -> None:
        """Elect and load champion segments for one probe batch."""
        votes: Dict[int, int] = {}
        for fp in fingerprints:
            for segment in self._hook_segments.get(fp, ()):
                votes[segment] = votes.get(segment, 0) + 1
        champions = sorted(votes, key=lambda s: (-votes[s], -s))
        self._loaded = {}
        for segment in champions[: self.max_champions]:
            manifest = self._segments[segment]
            self._loaded.update(manifest)
            self.champions_loaded += 1
            self.stats.disk_probes += 1
            self.stats.disk_bytes += len(manifest) * IndexEntry.RECORD_SIZE

    def _seal(self) -> None:
        if not self._open:
            return
        segment_id = self._next_segment
        self._next_segment += 1
        manifest = self._open
        self._open = {}
        self._segments[segment_id] = manifest
        for fp in manifest:
            if self._is_hook(fp):
                entries = self._hook_segments.setdefault(fp, [])
                if len(entries) >= self.max_segments_per_hook:
                    entries.pop(0)  # FIFO, as in the paper
                entries.append(segment_id)

    # -- ChunkIndex interface ------------------------------------------
    def lookup(self, fingerprint: bytes) -> Optional[IndexEntry]:
        """Hooks and the open segment from RAM; everything else only
        through the champions loaded for the current batch."""
        self.stats.lookups += 1
        entry = self._hooks.get(fingerprint)
        if entry is None:
            entry = self._open.get(fingerprint)
        if entry is not None:
            self.stats.hits += 1
            self.stats.memory_hits += 1
            return entry
        entry = self._loaded.get(fingerprint)
        if entry is not None:
            self.stats.hits += 1  # IO already charged by begin_batch
        return entry

    def insert(self, entry: IndexEntry) -> None:
        self.stats.inserts += 1
        self.generation += 1
        fingerprint = entry.fingerprint
        if fingerprint not in self._open:
            self._count += 1
        self._open[fingerprint] = entry
        if self._is_hook(fingerprint):
            self._hooks[fingerprint] = entry
        if len(self._open) >= self.segment_chunks:
            self._seal()

    def __len__(self) -> int:
        return self._count

    def entries(self) -> Iterator[IndexEntry]:
        """Every stored entry (open segment, then sealed manifests)."""
        for entry in list(self._open.values()):
            yield entry
        for segment_id in sorted(self._segments):
            yield from self._segments[segment_id].values()

    # ------------------------------------------------------------------
    def ram_entries(self) -> int:
        """RAM-resident entries: hooks + the open segment buffer."""
        return len(self._hooks) + len(self._open)

    def approximate_bytes(self) -> int:
        """RAM footprint — the sampled-index selling point."""
        return self.ram_entries() * IndexEntry.RECORD_SIZE
