"""Bloom filter over fingerprints.

Used by :class:`repro.index.disk.DiskIndex` to skip on-disk runs that
cannot contain a fingerprint — the summary-vector technique DDFS [Zhu08]
introduced to fight the disk index bottleneck the paper discusses.  The
bit array is a NumPy vector; the *k* probe positions are sliced from a
BLAKE2b digest of the fingerprint so no extra hashing infrastructure is
needed.
"""

from __future__ import annotations

import hashlib
import math
import struct

import numpy as np

__all__ = ["BloomFilter"]


class BloomFilter:
    """Fixed-capacity Bloom filter with a target false-positive rate.

    >>> bf = BloomFilter(capacity=1000, fp_rate=0.01)
    >>> bf.add(b"abc"); bf.might_contain(b"abc")
    True
    """

    def __init__(self, capacity: int, fp_rate: float = 0.01) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not (0.0 < fp_rate < 1.0):
            raise ValueError("fp_rate must be in (0, 1)")
        self.capacity = capacity
        self.fp_rate = fp_rate
        # Standard sizing: m = -n ln p / (ln 2)^2,  k = (m/n) ln 2.
        m = max(8, int(math.ceil(-capacity * math.log(fp_rate)
                                 / (math.log(2) ** 2))))
        self.num_bits = m
        self.num_hashes = max(1, int(round((m / capacity) * math.log(2))))
        self._bits = np.zeros((m + 7) // 8, dtype=np.uint8)
        self.count = 0

    def _positions(self, item: bytes) -> np.ndarray:
        """Derive ``num_hashes`` bit positions from a BLAKE2b digest."""
        need = self.num_hashes * 8
        digest = hashlib.blake2b(item, digest_size=min(64, need)).digest()
        while len(digest) < need:  # only for very large k
            digest += hashlib.blake2b(digest, digest_size=64).digest()
        words = np.frombuffer(digest[:need], dtype=">u8").astype(np.uint64)
        return (words % np.uint64(self.num_bits)).astype(np.int64)

    def add(self, item: bytes) -> None:
        """Insert ``item``."""
        pos = self._positions(item)
        np.bitwise_or.at(self._bits, pos >> 3,
                         (1 << (pos & 7)).astype(np.uint8))
        self.count += 1

    def might_contain(self, item: bytes) -> bool:
        """False ⇒ definitely absent; True ⇒ present or false positive."""
        pos = self._positions(item)
        bits = self._bits[pos >> 3] >> (pos & 7).astype(np.uint8)
        return bool(np.all(bits & 1))

    def expected_fp_rate(self) -> float:
        """Current theoretical false-positive rate given fill level."""
        if self.count == 0:
            return 0.0
        fill = 1.0 - math.exp(-self.num_hashes * self.count / self.num_bits)
        return fill ** self.num_hashes

    # -- serialisation (stored alongside each on-disk run) -------------
    #: Serialised header: magic, capacity, num_bits, num_hashes, count,
    #: fp_rate.  The fp_rate travels with the filter so a round-trip
    #: restores the constructor's ``(0, 1)`` invariant — resized clones
    #: (e.g. a shard front growing past capacity) need the original
    #: target rate, not a sentinel.
    _MAGIC = b"BLM2"
    _HEADER = struct.Struct(">4sQQHQd")

    def to_bytes(self) -> bytes:
        """Serialise (self-describing header + bit array)."""
        header = self._HEADER.pack(self._MAGIC, self.capacity,
                                   int(self.num_bits), self.num_hashes,
                                   self.count, self.fp_rate)
        return header + self._bits.tobytes()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "BloomFilter":
        """Inverse of :meth:`to_bytes`.

        Raises :class:`ValueError` on anything that is not a complete
        blob produced by :meth:`to_bytes` — a short read, a foreign
        file, or a header whose fields violate the constructor's
        invariants must never come back as a silently-broken filter.
        """
        if len(blob) < cls._HEADER.size:
            raise ValueError(
                f"bloom blob truncated: {len(blob)} bytes < "
                f"{cls._HEADER.size}-byte header")
        magic, capacity, num_bits, num_hashes, count, fp_rate = \
            cls._HEADER.unpack_from(blob)
        if magic != cls._MAGIC:
            raise ValueError(f"bad bloom magic {magic!r}")
        if capacity < 1 or num_bits < 8 or num_hashes < 1:
            raise ValueError("bloom header violates sizing invariants")
        if not (0.0 < fp_rate < 1.0):
            raise ValueError(f"bloom header fp_rate {fp_rate} not in (0, 1)")
        body = blob[cls._HEADER.size:]
        if len(body) != (num_bits + 7) // 8:
            raise ValueError(
                f"bloom bit array truncated: {len(body)} bytes for "
                f"{num_bits} bits")
        bf = cls.__new__(cls)
        bf.capacity = capacity
        bf.fp_rate = fp_rate
        bf.num_bits = num_bits
        bf.num_hashes = num_hashes
        bf.count = count
        bf._bits = np.frombuffer(body, dtype=np.uint8).copy()
        return bf
