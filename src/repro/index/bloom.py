"""Bloom filter over fingerprints.

Used by :class:`repro.index.disk.DiskIndex` to skip on-disk runs that
cannot contain a fingerprint — the summary-vector technique DDFS [Zhu08]
introduced to fight the disk index bottleneck the paper discusses.  The
bit array is a NumPy vector; the *k* probe positions are sliced from a
BLAKE2b digest of the fingerprint so no extra hashing infrastructure is
needed.
"""

from __future__ import annotations

import hashlib
import math

import numpy as np

__all__ = ["BloomFilter"]


class BloomFilter:
    """Fixed-capacity Bloom filter with a target false-positive rate.

    >>> bf = BloomFilter(capacity=1000, fp_rate=0.01)
    >>> bf.add(b"abc"); bf.might_contain(b"abc")
    True
    """

    def __init__(self, capacity: int, fp_rate: float = 0.01) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not (0.0 < fp_rate < 1.0):
            raise ValueError("fp_rate must be in (0, 1)")
        self.capacity = capacity
        self.fp_rate = fp_rate
        # Standard sizing: m = -n ln p / (ln 2)^2,  k = (m/n) ln 2.
        m = max(8, int(math.ceil(-capacity * math.log(fp_rate)
                                 / (math.log(2) ** 2))))
        self.num_bits = m
        self.num_hashes = max(1, int(round((m / capacity) * math.log(2))))
        self._bits = np.zeros((m + 7) // 8, dtype=np.uint8)
        self.count = 0

    def _positions(self, item: bytes) -> np.ndarray:
        """Derive ``num_hashes`` bit positions from a BLAKE2b digest."""
        need = self.num_hashes * 8
        digest = hashlib.blake2b(item, digest_size=min(64, need)).digest()
        while len(digest) < need:  # only for very large k
            digest += hashlib.blake2b(digest, digest_size=64).digest()
        words = np.frombuffer(digest[:need], dtype=">u8").astype(np.uint64)
        return (words % np.uint64(self.num_bits)).astype(np.int64)

    def add(self, item: bytes) -> None:
        """Insert ``item``."""
        pos = self._positions(item)
        np.bitwise_or.at(self._bits, pos >> 3,
                         (1 << (pos & 7)).astype(np.uint8))
        self.count += 1

    def might_contain(self, item: bytes) -> bool:
        """False ⇒ definitely absent; True ⇒ present or false positive."""
        pos = self._positions(item)
        bits = self._bits[pos >> 3] >> (pos & 7).astype(np.uint8)
        return bool(np.all(bits & 1))

    def expected_fp_rate(self) -> float:
        """Current theoretical false-positive rate given fill level."""
        if self.count == 0:
            return 0.0
        fill = 1.0 - math.exp(-self.num_hashes * self.count / self.num_bits)
        return fill ** self.num_hashes

    # -- serialisation (stored alongside each on-disk run) -------------
    def to_bytes(self) -> bytes:
        """Serialise (header + bit array)."""
        header = (self.capacity.to_bytes(8, "big")
                  + int(self.num_bits).to_bytes(8, "big")
                  + self.num_hashes.to_bytes(2, "big")
                  + self.count.to_bytes(8, "big"))
        return header + self._bits.tobytes()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "BloomFilter":
        """Inverse of :meth:`to_bytes`."""
        capacity = int.from_bytes(blob[0:8], "big")
        num_bits = int.from_bytes(blob[8:16], "big")
        num_hashes = int.from_bytes(blob[16:18], "big")
        count = int.from_bytes(blob[18:26], "big")
        bf = cls.__new__(cls)
        bf.capacity = capacity
        bf.fp_rate = 0.0  # unknown after round-trip; sizing already fixed
        bf.num_bits = num_bits
        bf.num_hashes = num_hashes
        bf.count = count
        bf._bits = np.frombuffer(blob[26:], dtype=np.uint8).copy()
        return bf
