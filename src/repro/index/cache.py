"""LRU fingerprint cache wrapper.

Models — and implements — the RAM cache that sits in front of a large
on-disk index.  Wrapping a :class:`~repro.index.disk.DiskIndex` in an
:class:`LRUCache` reproduces the classic dedup behaviour: hot
fingerprints hit RAM, cold ones pay a disk probe.  Hit/miss counts feed
the throughput model; the ablation benchmark sweeps ``capacity`` to show
the cliff the application-aware index avoids.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Optional

from repro.index.base import ChunkIndex, IndexEntry

__all__ = ["LRUCache"]


class LRUCache(ChunkIndex):
    """Bounded LRU cache in front of a backing :class:`ChunkIndex`.

    Negative lookups are *not* cached (a dedup workload is insert-heavy:
    a miss is immediately followed by an insert of the same key, which
    populates the cache).
    """

    def __init__(self, backing: ChunkIndex, capacity: int) -> None:
        super().__init__()
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.backing = backing
        self.capacity = capacity
        self._lru: OrderedDict[bytes, IndexEntry] = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0

    def _remember(self, entry: IndexEntry) -> None:
        self._lru[entry.fingerprint] = entry
        self._lru.move_to_end(entry.fingerprint)
        while len(self._lru) > self.capacity:
            self._lru.popitem(last=False)

    def lookup(self, fingerprint: bytes) -> Optional[IndexEntry]:
        """Cache first; fall through to the backing index on miss."""
        self.stats.lookups += 1
        entry = self._lru.get(fingerprint)
        if entry is not None:
            self._lru.move_to_end(fingerprint)
            self.cache_hits += 1
            self.stats.memory_hits += 1
            self.stats.hits += 1
            return entry
        self.cache_misses += 1
        entry = self.backing.lookup(fingerprint)
        if entry is not None:
            self.stats.hits += 1
            self._remember(entry)
        return entry

    def insert(self, entry: IndexEntry) -> None:
        """Write-through insert (backing index stays authoritative)."""
        self.stats.inserts += 1
        self.generation += 1
        self.backing.insert(entry)
        self._remember(entry)

    def __len__(self) -> int:
        return len(self.backing)

    def entries(self) -> Iterator[IndexEntry]:
        """Delegate to the backing index."""
        return self.backing.entries()

    def flush(self) -> None:
        """Flush the backing index."""
        self.backing.flush()

    def close(self) -> None:
        """Close the backing index and drop the cache."""
        self.backing.close()
        self._lru.clear()

    @property
    def hit_ratio(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0
