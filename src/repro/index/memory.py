"""Plain in-memory chunk index (a dict).

This is what a *small* application-specific index effectively is once it
fits in RAM; it is also the building block the trace layer uses when it
wants index semantics without IO modelling.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.index.base import ChunkIndex, IndexEntry

__all__ = ["MemoryIndex"]


class MemoryIndex(ChunkIndex):
    """Dict-backed :class:`~repro.index.base.ChunkIndex`."""

    def __init__(self) -> None:
        super().__init__()
        self._map: Dict[bytes, IndexEntry] = {}

    def lookup(self, fingerprint: bytes) -> Optional[IndexEntry]:
        """O(1) hash lookup; every hit is a memory hit."""
        self.stats.lookups += 1
        entry = self._map.get(fingerprint)
        if entry is not None:
            self.stats.hits += 1
            self.stats.memory_hits += 1
        return entry

    def insert(self, entry: IndexEntry) -> None:
        """O(1) insert/replace."""
        self.stats.inserts += 1
        self.generation += 1
        self._map[entry.fingerprint] = entry

    def discard(self, fingerprint: bytes) -> None:
        """Drop ``fingerprint`` if present (shard-migration support).

        Optional protocol: callers that rebalance entries between
        indices probe for this method with ``getattr`` — backings
        without it simply keep unreachable stale records.
        """
        if self._map.pop(fingerprint, None) is not None:
            self.generation += 1

    def __len__(self) -> int:
        return len(self._map)

    def entries(self) -> Iterator[IndexEntry]:
        """Iterate entries (insertion order)."""
        return iter(list(self._map.values()))
