"""Persistent chunk index: memtable + sorted on-disk runs (mini-LSM).

This models — and actually implements — the *full, unclassified index*
of traditional source dedup (Avamar in the paper's comparison): once the
fingerprint population outgrows RAM, lookups touch disk.  Structure:

* a RAM **memtable** (dict) absorbing inserts;
* when the memtable exceeds ``memtable_limit`` entries it is flushed to a
  **sorted run** file of fixed-width records with a side-car **Bloom
  filter**;
* lookups check memtable → runs newest-first, skipping runs whose Bloom
  filter rejects the fingerprint; a run probe is a binary search over the
  record file (each file access is counted in :class:`IndexStats` so the
  simulator can charge seeks);
* when ``max_runs`` accumulate, runs are compacted into one.

The paper's bottleneck argument falls straight out of the accounting:
a big single index ⇒ many run probes ⇒ many seeks; small per-application
indices (see :mod:`repro.index.appaware`) keep everything in memtable.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.errors import IndexError_
from repro.index.base import ChunkIndex, IndexEntry
from repro.index.bloom import BloomFilter
from repro.util.io import atomic_write_bytes

__all__ = ["DiskIndex"]

_RECORD = IndexEntry.RECORD_SIZE


class _Run:
    """One immutable sorted run on disk plus its Bloom filter."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self.size = path.stat().st_size
        if self.size % _RECORD:
            raise IndexError_(f"corrupt run file {path}")
        self.count = self.size // _RECORD
        bloom_path = path.with_suffix(".bloom")
        self.bloom = (BloomFilter.from_bytes(bloom_path.read_bytes())
                      if bloom_path.exists() else None)
        #: Lazily-opened persistent read handle.  Runs are immutable, so
        #: one handle serves every probe; reopening per lookup costs an
        #: ``open(2)``/``close(2)`` pair per query, which dominates at
        #: fleet-scale probe volume.
        self._fh = None

    def _handle(self):
        if self._fh is None:
            self._fh = open(self.path, "rb")
        return self._fh

    def close(self) -> None:
        """Close the cached read handle (reopened on next probe)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def probe(self, fingerprint: bytes, stats) -> Optional[IndexEntry]:
        """Binary-search the run; charges disk reads to ``stats``."""
        key = fingerprint.ljust(20, b"\0")
        lo, hi = 0, self.count - 1
        fh = self._handle()
        while lo <= hi:
            mid = (lo + hi) // 2
            fh.seek(mid * _RECORD)
            rec = fh.read(_RECORD)
            stats.disk_probes += 1
            stats.disk_bytes += _RECORD
            entry = IndexEntry.unpack(rec)
            mid_key = entry.fingerprint.ljust(20, b"\0")
            if mid_key == key:
                return entry
            if mid_key < key:
                lo = mid + 1
            else:
                hi = mid - 1
        return None

    def entries(self) -> Iterator[IndexEntry]:
        """Stream all records in key order."""
        with open(self.path, "rb") as fh:
            while True:
                rec = fh.read(_RECORD)
                if not rec:
                    return
                yield IndexEntry.unpack(rec)


class DiskIndex(ChunkIndex):
    """LSM-style persistent :class:`~repro.index.base.ChunkIndex`.

    ``directory`` holds run files ``run-NNNN.idx`` (+ ``.bloom``); the
    memtable is rebuilt empty on open, so callers should :meth:`flush`
    before closing to make all entries durable.  ``bloom_fp_rate=None``
    disables the per-run Bloom side-cars entirely — the *unfiltered*
    disk index of the paper's bottleneck argument, where every probe
    (hit or miss) binary-searches the runs.  The fleet-scale benchmark
    uses it as the baseline arm the shard-level filter front is
    measured against.
    """

    def __init__(self, directory: str | os.PathLike,
                 memtable_limit: int = 65536,
                 max_runs: int = 8,
                 bloom_fp_rate: Optional[float] = 0.01) -> None:
        super().__init__()
        if memtable_limit < 1:
            raise IndexError_("memtable_limit must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.memtable_limit = memtable_limit
        self.max_runs = max_runs
        self.bloom_fp_rate = bloom_fp_rate
        self._memtable: Dict[bytes, IndexEntry] = {}
        self._runs: List[_Run] = [
            _Run(p) for p in sorted(self.directory.glob("run-*.idx"))]
        self._next_run = (
            max((int(r.path.stem.split("-")[1]) for r in self._runs),
                default=-1) + 1)
        # Fingerprints deleted/overwritten since the last flush would need
        # tombstones in a general LSM; dedup indices are insert-mostly and
        # replace-on-refcount, so the memtable simply shadows older runs.

    # ------------------------------------------------------------------
    def lookup(self, fingerprint: bytes) -> Optional[IndexEntry]:
        """Memtable first, then runs newest-first behind Bloom filters."""
        self.stats.lookups += 1
        entry = self._memtable.get(fingerprint)
        if entry is not None:
            self.stats.memory_hits += 1
            self.stats.hits += 1
            return entry
        for run in reversed(self._runs):
            if run.bloom is not None and not run.bloom.might_contain(
                    fingerprint):
                continue
            entry = run.probe(fingerprint, self.stats)
            if entry is not None:
                self.stats.hits += 1
                return entry
        return None

    def insert(self, entry: IndexEntry) -> None:
        """Insert into the memtable; flush to a new run when full."""
        self.stats.inserts += 1
        self.generation += 1
        self._memtable[entry.fingerprint] = entry
        if len(self._memtable) >= self.memtable_limit:
            self.flush()

    def __len__(self) -> int:
        seen = {e.fingerprint for e in self._memtable.values()}
        total = len(seen)
        for run in self._runs:
            for entry in run.entries():
                if entry.fingerprint not in seen:
                    seen.add(entry.fingerprint)
                    total += 1
        return total

    def entries(self) -> Iterator[IndexEntry]:
        """All live entries, memtable shadowing older runs."""
        seen = set()
        for entry in list(self._memtable.values()):
            seen.add(entry.fingerprint)
            yield entry
        for run in reversed(self._runs):
            for entry in run.entries():
                if entry.fingerprint not in seen:
                    seen.add(entry.fingerprint)
                    yield entry

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Write the memtable as a new sorted run (+Bloom); maybe compact."""
        if not self._memtable:
            return
        entries = sorted(self._memtable.values(),
                         key=lambda e: e.fingerprint.ljust(20, b"\0"))
        self._write_run(entries)
        self._memtable.clear()
        if len(self._runs) > self.max_runs:
            self.compact()

    def _write_run(self, entries: List[IndexEntry]) -> None:
        path = self.directory / f"run-{self._next_run:06d}.idx"
        self._next_run += 1
        blob = b"".join(e.pack() for e in entries)
        atomic_write_bytes(path, blob)
        if self.bloom_fp_rate is not None:
            bloom = BloomFilter(capacity=max(1, len(entries)),
                                fp_rate=self.bloom_fp_rate)
            for e in entries:
                bloom.add(e.fingerprint)
            atomic_write_bytes(path.with_suffix(".bloom"), bloom.to_bytes())
        self._runs.append(_Run(path))

    def compact(self) -> None:
        """Merge all runs into one (newest version of each key wins)."""
        merged: Dict[bytes, IndexEntry] = {}
        for run in self._runs:  # oldest first; later runs overwrite
            for entry in run.entries():
                merged[entry.fingerprint] = entry
        old = self._runs
        self._runs = []
        self._write_run(sorted(
            merged.values(), key=lambda e: e.fingerprint.ljust(20, b"\0")))
        for run in old:
            run.close()
            try:
                run.path.unlink()
                run.path.with_suffix(".bloom").unlink(missing_ok=True)
            except OSError:
                pass

    def close(self) -> None:
        """Flush and drop references (files remain for reopening)."""
        self.flush()
        for run in self._runs:
            run.close()
        self._runs = []
        self._memtable = {}

    def approximate_bytes(self) -> int:
        """Footprint including on-disk runs (for residency modelling)."""
        return (len(self._memtable) * _RECORD
                + sum(r.size for r in self._runs))
