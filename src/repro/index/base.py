"""Chunk-index interface and entry/statistics records."""

from __future__ import annotations

import abc
import struct
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import IndexError_

__all__ = ["IndexEntry", "IndexStats", "ChunkIndex"]

#: Maximum fingerprint width we store (SHA-1 = 20 bytes).
MAX_FP_LEN = 20

_ENTRY_STRUCT = struct.Struct(">B20sQQII")  # fp_len, fp(padded), cid, off, len, refs


@dataclass(frozen=True)
class IndexEntry:
    """Location record for one stored chunk.

    ``container_id``/``offset`` locate the chunk inside the container
    store (paper Sec. III-F); ``refcount`` supports deletion/GC.
    """

    fingerprint: bytes
    container_id: int
    offset: int
    length: int
    refcount: int = 1

    def __post_init__(self) -> None:
        if not (1 <= len(self.fingerprint) <= MAX_FP_LEN):
            raise IndexError_(
                f"fingerprint length {len(self.fingerprint)} out of range")
        if self.length < 0 or self.offset < 0 or self.container_id < 0:
            raise IndexError_("negative field in index entry")

    # -- fixed-width binary codec (used by the on-disk index runs) -----
    RECORD_SIZE = _ENTRY_STRUCT.size

    def pack(self) -> bytes:
        """Serialise to the fixed :attr:`RECORD_SIZE`-byte record."""
        fp = self.fingerprint.ljust(MAX_FP_LEN, b"\0")
        return _ENTRY_STRUCT.pack(len(self.fingerprint), fp,
                                  self.container_id, self.offset,
                                  self.length, self.refcount)

    @classmethod
    def unpack(cls, record: bytes) -> "IndexEntry":
        """Inverse of :meth:`pack`."""
        fp_len, fp, cid, off, length, refs = _ENTRY_STRUCT.unpack(record)
        return cls(fingerprint=fp[:fp_len], container_id=cid, offset=off,
                   length=length, refcount=refs)

    def bumped(self, delta: int = 1) -> "IndexEntry":
        """Copy with ``refcount`` adjusted by ``delta``."""
        return IndexEntry(self.fingerprint, self.container_id, self.offset,
                          self.length, self.refcount + delta)


@dataclass
class IndexStats:
    """Lookup/insert accounting, consumed by the throughput cost model."""

    lookups: int = 0
    hits: int = 0
    inserts: int = 0
    #: *Hits* served without touching disk (memtable/cache).  Invariant:
    #: ``memory_hits <= hits <= lookups`` — a negative lookup is never a
    #: hit, memory or otherwise, so the RAM-residency ratio the
    #: throughput model consumes stays a pure hit-locality measure.
    memory_hits: int = 0
    #: Disk probes issued (each is a potential seek in the disk model).
    disk_probes: int = 0
    #: Bytes read from disk runs.
    disk_bytes: int = 0

    def merge(self, other: "IndexStats") -> None:
        """Accumulate ``other`` into ``self`` (used by composite indices)."""
        self.lookups += other.lookups
        self.hits += other.hits
        self.inserts += other.inserts
        self.memory_hits += other.memory_hits
        self.disk_probes += other.disk_probes
        self.disk_bytes += other.disk_bytes


class ChunkIndex(abc.ABC):
    """Abstract fingerprint → :class:`IndexEntry` map."""

    def __init__(self) -> None:
        #: Running counters; reset by the caller between sessions.
        self.stats = IndexStats()
        #: Monotonic mutation counter, bumped by every :meth:`insert`
        #: (including last-writer-wins refcount re-inserts).  Unlike
        #: ``stats.inserts`` it is never reset, so replication code can
        #: use it as a dirty marker: equal generations mean no mutation
        #: happened in between — a pure entry-count comparison cannot
        #: see refcount-only updates.
        self.generation = 0

    @abc.abstractmethod
    def lookup(self, fingerprint: bytes) -> Optional[IndexEntry]:
        """Return the entry for ``fingerprint`` or ``None``."""

    @abc.abstractmethod
    def insert(self, entry: IndexEntry) -> None:
        """Insert ``entry``; replaces any previous entry for the same
        fingerprint (last-writer-wins, used by refcount updates)."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of distinct fingerprints indexed."""

    @abc.abstractmethod
    def entries(self) -> Iterator[IndexEntry]:
        """Iterate all current entries (order unspecified)."""

    def contains(self, fingerprint: bytes) -> bool:
        """Membership test (counts as a lookup for statistics)."""
        return self.lookup(fingerprint) is not None

    def flush(self) -> None:
        """Persist buffered state (no-op for pure-memory indices)."""

    def close(self) -> None:
        """Release resources; the index must not be used afterwards."""

    def approximate_bytes(self) -> int:
        """Rough in-memory footprint — drives the RAM-residency model."""
        return len(self) * IndexEntry.RECORD_SIZE
