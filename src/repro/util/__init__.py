"""Shared low-level utilities: size units, clocks, atomic IO, logging."""

from repro.util.units import (
    KB,
    MB,
    GB,
    TB,
    KIB,
    MIB,
    GIB,
    format_bytes,
    format_rate,
    format_seconds,
    parse_size,
)
from repro.util.timer import Stopwatch, WallClock, ClockProtocol

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "KIB",
    "MIB",
    "GIB",
    "format_bytes",
    "format_rate",
    "format_seconds",
    "parse_size",
    "Stopwatch",
    "WallClock",
    "ClockProtocol",
]
