"""Clock abstractions shared by the real engine and the simulator.

The backup engines charge elapsed time to a *clock*; in production-style
runs that is :class:`WallClock`, while the evaluation harness substitutes
:class:`repro.simulate.clock.VirtualClock` so that 351 GB of trace can be
"timed" deterministically in milliseconds of real time.
"""

from __future__ import annotations

import threading
import time
from typing import Protocol, runtime_checkable

__all__ = ["ClockProtocol", "WallClock", "Stopwatch",
           "ConcurrentStopwatch"]


@runtime_checkable
class ClockProtocol(Protocol):
    """Minimal clock interface: a monotonically non-decreasing ``now()``."""

    def now(self) -> float:
        """Return the current time in seconds."""
        ...


class WallClock:
    """Real monotonic wall clock (:func:`time.perf_counter`)."""

    def now(self) -> float:
        """Return monotonic wall time in seconds."""
        return time.perf_counter()


class Stopwatch:
    """Accumulating stopwatch over any :class:`ClockProtocol`.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self, clock: ClockProtocol | None = None) -> None:
        self._clock = clock if clock is not None else WallClock()
        self._start: float | None = None
        #: Total accumulated seconds across all start/stop intervals.
        self.elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        """Start (or restart) timing; returns ``self`` for chaining."""
        self._start = self._clock.now()
        return self

    def stop(self) -> float:
        """Stop timing, accumulate into :attr:`elapsed`, return the total."""
        if self._start is None:
            raise RuntimeError("Stopwatch.stop() called while not running")
        self.elapsed += self._clock.now() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        """Zero the accumulator and stop the watch if running."""
        self._start = None
        self.elapsed = 0.0

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently between start() and stop()."""
        return self._start is not None

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class ConcurrentStopwatch:
    """Thread-safe stopwatch accumulating the *union* of intervals.

    :class:`Stopwatch` is single-owner: a second concurrent ``start()``
    overwrites the first start mark, and the matching ``stop()`` pair
    then either double-counts the overlap or raises.  This variant
    admits any number of concurrent ``with`` blocks and accumulates the
    wall-clock union of all of them — two fully-overlapping one-second
    uploads cost one second of :attr:`elapsed`, not two — which is the
    correct reading for "how long was the upload path busy".
    """

    def __init__(self, clock: ClockProtocol | None = None) -> None:
        self._clock = clock if clock is not None else WallClock()
        self._lock = threading.Lock()
        self._active = 0
        self._start = 0.0
        #: Union of all entered intervals so far, in seconds.
        self.elapsed: float = 0.0

    @property
    def running(self) -> bool:
        """Whether at least one interval is currently open."""
        return self._active > 0

    def __enter__(self) -> "ConcurrentStopwatch":
        with self._lock:
            if self._active == 0:
                self._start = self._clock.now()
            self._active += 1
        return self

    def __exit__(self, *exc) -> None:
        with self._lock:
            if self._active <= 0:
                raise RuntimeError(
                    "ConcurrentStopwatch exited more times than entered")
            self._active -= 1
            if self._active == 0:
                self.elapsed += self._clock.now() - self._start
