"""Byte-size units, parsing and human-readable formatting.

The paper mixes decimal marketing units (``250 GB SATA disk``) with binary
chunk sizes (``8KB chunk size`` meaning 8192 bytes, as in every dedup
system).  To stay unambiguous this module exposes *both* families and the
rest of the code base always uses the binary constants for chunk/container
sizes and the decimal constants for dataset/pricing arithmetic (Amazon
prices per decimal GB).
"""

from __future__ import annotations

import re

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "KIB",
    "MIB",
    "GIB",
    "TIB",
    "parse_size",
    "format_bytes",
    "format_rate",
    "format_seconds",
]

#: Decimal units (powers of 1000) — used for dataset sizes and cloud pricing.
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

#: Binary units (powers of 1024) — used for chunk and container sizes.
KIB = 1 << 10
MIB = 1 << 20
GIB = 1 << 30
TIB = 1 << 40

_SUFFIXES = {
    "": 1,
    "b": 1,
    "k": KIB,
    "kb": KIB,
    "kib": KIB,
    "m": MIB,
    "mb": MIB,
    "mib": MIB,
    "g": GIB,
    "gb": GIB,
    "gib": GIB,
    "t": TIB,
    "tb": TIB,
    "tib": TIB,
}

_SIZE_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z]*)\s*$")


def parse_size(text: str | int | float) -> int:
    """Parse a human size string such as ``"8KB"`` or ``"1.5 MiB"`` to bytes.

    Integers/floats pass through (rounded).  Suffixes are interpreted as
    binary units (``KB`` == ``KiB`` == 1024) because that is the convention
    of the dedup literature this code reproduces.

    >>> parse_size("8KB")
    8192
    >>> parse_size(4096)
    4096
    """
    if isinstance(text, (int, float)):
        return int(round(text))
    m = _SIZE_RE.match(text)
    if not m:
        raise ValueError(f"unparseable size: {text!r}")
    value, suffix = m.group(1), m.group(2).lower()
    if suffix not in _SUFFIXES:
        raise ValueError(f"unknown size suffix {suffix!r} in {text!r}")
    return int(round(float(value) * _SUFFIXES[suffix]))


def format_bytes(n: float, *, decimal: bool = False) -> str:
    """Render a byte count human-readably (``format_bytes(8192) == '8.0KiB'``).

    With ``decimal=True`` powers of 1000 and SI suffixes are used instead,
    matching how the paper quotes dataset sizes.
    """
    step = 1000.0 if decimal else 1024.0
    suffixes = ("B", "KB", "MB", "GB", "TB", "PB") if decimal else (
        "B", "KiB", "MiB", "GiB", "TiB", "PiB")
    value = float(n)
    for suffix in suffixes:
        if abs(value) < step or suffix == suffixes[-1]:
            if suffix == "B":
                return f"{int(value)}B"
            return f"{value:.1f}{suffix}"
        value /= step
    raise AssertionError("unreachable")


def format_rate(bytes_per_second: float) -> str:
    """Render a throughput, e.g. ``format_rate(500_000) == '500.0KB/s'``."""
    return format_bytes(bytes_per_second, decimal=True) + "/s"


def format_seconds(seconds: float) -> str:
    """Render a duration compactly: ``90 -> '1m30s'``, ``7200 -> '2h0m'``."""
    if seconds < 0:
        return "-" + format_seconds(-seconds)
    if seconds < 1:
        return f"{seconds * 1000:.1f}ms"
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes}m"
