"""Filesystem helpers: atomic writes, directory walking, safe paths.

The backup client persists indices, manifests and containers; all on-disk
state is written atomically (write to a temp file in the same directory,
then :func:`os.replace`) so a crash can never leave a torn file — the same
discipline real backup tools use.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

__all__ = ["atomic_write_bytes", "atomic_write_text", "walk_files", "FileStat"]


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> None:
    """Atomically replace ``path`` with ``data``.

    The temp file is created in the destination directory so the final
    :func:`os.replace` is a same-filesystem rename (atomic on POSIX).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(prefix=path.name + ".", suffix=".tmp",
                               dir=str(path.parent))
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_text(path: str | os.PathLike, text: str,
                      encoding: str = "utf-8") -> None:
    """Atomically replace ``path`` with ``text`` (see
    :func:`atomic_write_bytes`)."""
    atomic_write_bytes(path, text.encode(encoding))


@dataclass(frozen=True)
class FileStat:
    """Lightweight stat record for a regular file discovered by
    :func:`walk_files`."""

    path: Path
    #: Path relative to the walk root, with ``/`` separators.
    relpath: str
    size: int
    mtime_ns: int


def walk_files(root: str | os.PathLike, *,
               follow_symlinks: bool = False) -> Iterator[FileStat]:
    """Yield :class:`FileStat` for every regular file under ``root``.

    Files are yielded in sorted order (deterministic across runs, which
    keeps backup manifests and dedup statistics reproducible).  Symbolic
    links are skipped unless ``follow_symlinks`` is set; unreadable entries
    are silently skipped, as a backup client must tolerate them.
    """
    root = Path(root)
    stack = [root]
    while stack:
        directory = stack.pop()
        try:
            entries = sorted(os.scandir(directory), key=lambda e: e.name)
        except OSError:
            continue
        # Push directories in reverse so pop() preserves sorted DFS order.
        for entry in reversed(entries):
            if entry.is_dir(follow_symlinks=follow_symlinks):
                stack.append(Path(entry.path))
        for entry in entries:
            try:
                if not entry.is_file(follow_symlinks=follow_symlinks):
                    continue
                st = entry.stat(follow_symlinks=follow_symlinks)
            except OSError:
                continue
            rel = Path(entry.path).relative_to(root).as_posix()
            yield FileStat(path=Path(entry.path), relpath=rel,
                           size=st.st_size, mtime_ns=st.st_mtime_ns)
