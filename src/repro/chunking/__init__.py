"""Chunking substrate: the paper's three methods plus the fast family.

The paper's intelligent chunker picks between three methods:

* :class:`~repro.chunking.wfc.WholeFileChunker` — WFC, one chunk per file
  (used for compressed application data);
* :class:`~repro.chunking.static.StaticChunker` — SC, fixed 8 KiB chunks
  (static uncompressed data / VM images);
* :class:`~repro.chunking.cdc.RabinCDC` — content-defined chunking with a
  48-byte Rabin window, 8 KiB expected / 2 KiB min / 16 KiB max
  (dynamic uncompressed data).

Rabin stays the paper-faithful CDC default, but the CDC slot is a
*family* (see docs/CHUNKING.md): :class:`~repro.chunking.gear.GearCDC`
(add-shift-gather gear hash), :class:`~repro.chunking.gear.FastCDC`
(gear + normalized chunking) and :class:`~repro.chunking.seqcdc.SeqCDC`
(hash-less ascending-run detection) are drop-in boundary engines with
the same 2/8/16 KiB geometry, each with a vectorised slab scan and a
pure-Python differential oracle.

All implement :class:`~repro.chunking.base.Chunker` and are registered by
name so scheme policies can reference them declaratively.
"""

from repro.chunking.base import Chunk, Chunker, get_chunker, register_chunker
from repro.chunking.wfc import WholeFileChunker
from repro.chunking.static import StaticChunker
from repro.chunking.cdc import ContentDefinedChunker, RabinCDC
from repro.chunking.gear import FastCDC, GearCDC
from repro.chunking.seqcdc import SeqCDC

#: Policy names of the content-defined family — every member accepts the
#: ``avg_size``/``min_size``/``max_size`` geometry and may stand in for
#: Rabin wherever a policy says "CDC" (delta stage, trace model, CLI
#: ``--chunker``).  Rabin ("cdc") is the paper-faithful default.
CDC_FAMILY = ("cdc", "gear", "fastcdc", "seqcdc")

__all__ = [
    "Chunk",
    "Chunker",
    "ContentDefinedChunker",
    "get_chunker",
    "register_chunker",
    "WholeFileChunker",
    "StaticChunker",
    "RabinCDC",
    "GearCDC",
    "FastCDC",
    "SeqCDC",
    "CDC_FAMILY",
]
