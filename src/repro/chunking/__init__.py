"""Chunking substrate: the three chunking methods of the paper.

* :class:`~repro.chunking.wfc.WholeFileChunker` — WFC, one chunk per file
  (used for compressed application data);
* :class:`~repro.chunking.static.StaticChunker` — SC, fixed 8 KiB chunks
  (static uncompressed data / VM images);
* :class:`~repro.chunking.cdc.RabinCDC` — content-defined chunking with a
  48-byte Rabin window, 8 KiB expected / 2 KiB min / 16 KiB max
  (dynamic uncompressed data).

All implement :class:`~repro.chunking.base.Chunker` and are registered by
name so scheme policies can reference them declaratively.
"""

from repro.chunking.base import Chunk, Chunker, get_chunker, register_chunker
from repro.chunking.wfc import WholeFileChunker
from repro.chunking.static import StaticChunker
from repro.chunking.cdc import RabinCDC

__all__ = [
    "Chunk",
    "Chunker",
    "get_chunker",
    "register_chunker",
    "WholeFileChunker",
    "StaticChunker",
    "RabinCDC",
]
