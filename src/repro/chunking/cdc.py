"""Content-Defined Chunking (CDC) with Rabin fingerprinting.

Used for *dynamic uncompressed* data (DOC, TXT, PPT).  A 48-byte Rabin
window slides over the stream with 1-byte step (the paper's parameters);
a chunk boundary is declared after any position whose window fingerprint
satisfies ``fp & mask == magic``, subject to a 2 KiB minimum and 16 KiB
maximum chunk size with an 8 KiB expected size.  Cutting on content
rather than position makes boundaries survive byte insertions/deletions
(no boundary-shifting problem), at the price of a full rolling-hash scan.

Performance: the boundary scan is the hot loop of every CDC system.  Per
the GF(2) linearity argument (see :mod:`repro.hashing.rolling`), all
window fingerprints of a buffer are computed with ``window`` vectorised
NumPy table-gathers instead of a per-byte interpreter loop; min/max
enforcement then walks only the (sparse) candidate cut list.  A pure
Python :class:`~repro.hashing.rolling.RollingRabin` path is kept as a
cross-checked oracle (``use_numpy=False``).
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.chunking.base import Chunker, register_chunker
from repro.errors import ChunkingError
from repro.hashing.rabin import POLY64
from repro.hashing.rolling import RollingRabin, window_fingerprints
from repro.util.units import KIB

__all__ = ["ContentDefinedChunker", "RabinCDC", "default_mask_bits"]


def default_mask_bits(avg_size: int, min_size: int) -> int:
    """Mask width giving expected chunk size ≈ ``avg_size``.

    With a minimum-size skip, the expected chunk length is
    ``min_size + 2**mask_bits`` (geometric boundary arrival), so we pick
    ``mask_bits = round(log2(avg_size - min_size))`` when possible.
    """
    span = avg_size - min_size
    if span <= 1:
        span = avg_size
    bits = int(round(math.log2(span)))
    return max(1, bits)


class ContentDefinedChunker(Chunker):
    """Shared min/max candidate-walk base for the CDC family.

    Every content-defined chunker in this package (Rabin, Gear, FastCDC,
    SeqCDC) reduces to the same two-phase structure:

    1. a *candidate scan* — a content-local rule marks boundary
       candidates over the whole buffer in one pass (vectorisable); and
    2. a *candidate walk* — starting from each accepted cut, the first
       candidate in ``[cut + min_size, cut + max_size]`` is taken, else
       a forced maximum-size cut is made.

    Subclasses implement :meth:`_candidates_numpy` (the vectorised slab
    scan) and :meth:`_candidates_python` (the per-byte oracle, kept as a
    cross-checked reference — the two must be bit-identical, which the
    differential tests enforce) and set ``use_numpy`` to pick between
    them.  :class:`~repro.chunking.gear.FastCDC` overrides
    :meth:`cut_points` for its two-mask normalized walk but keeps the
    same candidate-scan contract.
    """

    def __init__(self, avg_size: int, min_size: int, max_size: int) -> None:
        if not (0 < min_size <= avg_size <= max_size):
            raise ChunkingError(
                f"require 0 < min ({min_size}) <= avg ({avg_size})"
                f" <= max ({max_size})")
        self.avg_size = avg_size
        self.min_size = min_size
        self.max_size = max_size
        self.use_numpy = True

    # ------------------------------------------------------------------
    def expected_chunk_size(self) -> int:
        """Expected chunk length before max-size clamping."""
        return self.avg_size

    def average_chunk_size(self) -> float:
        """Nominal average chunk size used by cost models."""
        return float(min(self.expected_chunk_size(), self.max_size))

    # ------------------------------------------------------------------
    def _candidates_numpy(self, data: bytes) -> np.ndarray:
        """Vectorised sorted array of candidate cut offsets."""
        raise NotImplementedError

    def _candidates_python(self, data: bytes) -> np.ndarray:
        """Per-byte oracle scan; must equal :meth:`_candidates_numpy`."""
        raise NotImplementedError

    def _candidates(self, data: bytes) -> np.ndarray:
        return (self._candidates_numpy(data) if self.use_numpy
                else self._candidates_python(data))

    def cut_points(self, data: bytes) -> List[int]:
        """Apply the candidate rule with min/max clamping over the buffer.

        After each accepted cut at ``c`` the next boundary is the first
        candidate in ``[c + min_size, c + max_size)``; if none exists a
        *forced cut* is made at ``c + max_size`` — the effect that makes
        CDC lose to SC on low-entropy static data (Observation 3).
        """
        n = len(data)
        if n == 0:
            return []
        cand = self._candidates(data)
        cuts: List[int] = []
        start = 0
        while start < n:
            remaining = n - start
            if remaining <= self.min_size:
                cuts.append(n)
                break
            lo = start + self.min_size
            hi = min(start + self.max_size, n)
            j = int(np.searchsorted(cand, lo, side="left"))
            if j < cand.shape[0] and cand[j] <= hi:
                cut = int(cand[j])
            else:
                cut = hi  # forced maximum-size cut (or end of file)
            cuts.append(cut)
            start = cut
        return cuts


class RabinCDC(ContentDefinedChunker):
    """Rabin content-defined chunker.

    Parameters mirror the paper's evaluation setup: ``avg_size=8 KiB``
    (expected), ``min_size=2 KiB``, ``max_size=16 KiB``, ``window=48``
    bytes, 1-byte step.  ``magic`` defaults to the all-ones pattern under
    ``mask`` so that all-zero regions (fingerprint 0) never match — the
    standard guard against pathological boundary storms in sparse files.
    """

    name = "cdc"

    def __init__(self,
                 avg_size: int = 8 * KIB,
                 min_size: int = 2 * KIB,
                 max_size: int = 16 * KIB,
                 window: int = 48,
                 poly: int = POLY64,
                 mask_bits: int | None = None,
                 magic: int | None = None,
                 use_numpy: bool = True) -> None:
        super().__init__(avg_size, min_size, max_size)
        if window < 1:
            raise ChunkingError("window must be >= 1")
        self.window = window
        self.poly = poly
        self.mask_bits = (default_mask_bits(avg_size, min_size)
                          if mask_bits is None else mask_bits)
        if self.mask_bits < 1 or self.mask_bits > 63:
            raise ChunkingError("mask_bits must be in [1, 63]")
        self.mask = (1 << self.mask_bits) - 1
        self.magic = self.mask if magic is None else (magic & self.mask)
        self.use_numpy = use_numpy

    # ------------------------------------------------------------------
    def expected_chunk_size(self) -> int:
        """Expected chunk length ``min_size + 2**mask_bits`` (pre-clamp)."""
        return self.min_size + (1 << self.mask_bits)

    # ------------------------------------------------------------------
    def _candidates_numpy(self, data: bytes) -> np.ndarray:
        """Sorted array of candidate cut offsets (end-exclusive positions).

        A window ending at byte ``i+window-1`` that satisfies the magic
        condition yields a cut *after* that byte, i.e. at offset
        ``i + window``.
        """
        fps = window_fingerprints(data, window=self.window, poly=self.poly)
        hits = np.flatnonzero((fps & np.uint64(self.mask))
                              == np.uint64(self.magic))
        return hits.astype(np.int64) + self.window

    def _candidates_python(self, data: bytes) -> np.ndarray:
        """Oracle candidate scan via the streaming rolling hash."""
        roller = RollingRabin(window=self.window, poly=self.poly)
        hits: List[int] = []
        mask, magic, window = self.mask, self.magic, self.window
        for pos, byte in enumerate(data):
            fp = roller.push(byte)
            if pos + 1 >= window and (fp & mask) == magic:
                hits.append(pos + 1)
        return np.asarray(hits, dtype=np.int64)


register_chunker("cdc", RabinCDC)
