"""Chunker interface, chunk record, and chunker registry.

A chunker partitions a byte buffer into contiguous, non-overlapping,
exhaustive :class:`Chunk` records.  Invariants (property-tested):

* ``chunks[0].offset == 0``;
* ``chunks[i].offset + chunks[i].length == chunks[i+1].offset``;
* lengths sum to ``len(data)``;
* concatenating ``chunk.data`` reproduces the input bit-exactly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.errors import ChunkingError
from repro.obs.tracer import NOOP_TRACER

__all__ = ["Chunk", "Chunker", "register_chunker", "get_chunker",
           "available_chunkers"]


@dataclass(frozen=True)
class Chunk:
    """One contiguous piece of a file produced by a chunker.

    ``data`` holds the chunk bytes; it is carried alongside offset/length
    because the dedup pipeline fingerprints and (for unique chunks) packs
    the bytes immediately after chunking.
    """

    offset: int
    length: int
    data: bytes

    def __post_init__(self) -> None:
        if self.length != len(self.data):
            raise ChunkingError(
                f"chunk length {self.length} != len(data) {len(self.data)}")

    @property
    def end(self) -> int:
        """Offset one past the last byte of this chunk."""
        return self.offset + self.length


class Chunker(abc.ABC):
    """Abstract file chunker.

    Subclasses implement :meth:`cut_points`; the shared :meth:`chunk`
    materialises :class:`Chunk` records from the cut offsets, so every
    implementation automatically satisfies the partition invariants.
    """

    #: Registry name (``"wfc"``, ``"sc"``, ``"cdc"``, ``"gear"``,
    #: ``"fastcdc"``, ``"seqcdc"``).
    name: str = ""

    #: Profiling tracer; the engine swaps in a live one under
    #: ``--profile``.  The boundary scan is the chunker hot loop, so it
    #: gets its own span (``chunk.cut``) distinct from chunk
    #: materialisation.
    tracer = NOOP_TRACER

    @abc.abstractmethod
    def cut_points(self, data: bytes) -> List[int]:
        """Return the sorted *end* offsets of each chunk of ``data``.

        The final entry must equal ``len(data)``; an empty input yields
        an empty list.
        """

    def chunk(self, data: bytes) -> List[Chunk]:
        """Partition ``data`` into chunks (see class invariants)."""
        if len(data) == 0:
            return []
        if self.tracer.enabled:
            with self.tracer.span("chunk.cut", chunker=self.name,
                                  bytes=len(data)):
                cuts = self.cut_points(data)
        else:
            cuts = self.cut_points(data)
        if not cuts or cuts[-1] != len(data):
            raise ChunkingError(
                f"{type(self).__name__}.cut_points must end at len(data)")
        chunks: List[Chunk] = []
        start = 0
        for cut in cuts:
            if cut <= start:
                raise ChunkingError("cut points must be strictly increasing")
            chunks.append(Chunk(offset=start, length=cut - start,
                                data=bytes(data[start:cut])))
            start = cut
        return chunks

    def average_chunk_size(self) -> float:
        """Nominal average chunk size in bytes (for metadata-cost models);
        ``float('inf')`` for whole-file chunking."""
        return float("inf")


_REGISTRY: Dict[str, Callable[[], Chunker]] = {}


def register_chunker(name: str, factory: Callable[[], Chunker]) -> None:
    """Register a default-configured chunker factory under ``name``."""
    if name in _REGISTRY:
        raise ChunkingError(f"chunker {name!r} already registered")
    _REGISTRY[name] = factory


def get_chunker(name: str) -> Chunker:
    """Instantiate the default-configured chunker registered as ``name``."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ChunkingError(
            f"unknown chunker {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_chunkers() -> list[str]:
    """Names of registered chunkers, sorted."""
    return sorted(_REGISTRY)
