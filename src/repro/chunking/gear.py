"""Gear-hash fast chunkers: :class:`GearCDC` and :class:`FastCDC`.

The classic Rabin scan (:mod:`repro.chunking.cdc`) costs 48 table
gathers + XORs per buffer pass.  The Gear hash replaces the polynomial
window with one add-shift-gather per byte::

    h = ((h << 1) + GEAR[b])  mod 2**32

Because the contribution of a byte ``k`` positions back is
``GEAR[b] << k`` and shifts past the hash width vanish, ``h`` after any
byte is *exactly* a function of the last 32 bytes — a sliding 32-byte
window in disguise.  That windowed identity is what this module
exploits twice:

* **Slab scan** (``use_numpy=True``): all window hashes of a buffer are
  computed at once as 32 vectorised table-gathers + wrapping uint32
  adds (:func:`gear_window_hashes`) — mirroring the SeqCDC-style
  "process the buffer in slabs, not bytes" design and the existing
  vectorised Rabin scan, but with 32 passes instead of 48 and cheaper
  uint32 arithmetic.
* **Prefix stability**: boundaries depend only on a 32-byte window, so
  a prefix insertion re-chunks at most one window + one chunk before
  candidates realign — the same content-defined property the Rabin
  chunker is property-tested for.

Deviation from the FastCDC paper: the canonical formulation re-seeds
``h = 0`` at every chunk start, which makes early-chunk boundaries
depend on the previous cut.  We keep the hash rolling continuously
(the "rolling two-byte-shifted Gear" used by ddelta/2409.06066), which
makes every candidate purely content-local — the property that permits
the one-pass slab scan and the exact pure-Python differential oracle
(``use_numpy=False``), and strengthens boundary-shift resistance.

:class:`FastCDC` adds normalized chunking on top of the same candidate
scan: a harder mask (more bits) before the normal point discourages
small chunks, an easier mask (fewer bits) after it rescues chunks that
would otherwise hit the forced maximum cut — concentrating the length
distribution around ``avg_size`` without hurting dedup.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.chunking.base import register_chunker
from repro.chunking.cdc import ContentDefinedChunker, default_mask_bits
from repro.errors import ChunkingError
from repro.util.units import KIB

__all__ = ["GearCDC", "FastCDC", "GEAR_BITS", "GEAR_WINDOW",
           "gear_table", "gear_window_hashes"]

#: Gear hash width in bits; also the effective window in bytes (a byte
#: ``k`` back contributes ``GEAR[b] << k``, gone once ``k`` reaches the
#: width).
GEAR_BITS = 32
GEAR_WINDOW = 32

#: Seed for the 256-entry random gear table.  Fixed so that chunk
#: boundaries — and therefore fingerprints and dedup state — are stable
#: across processes and releases.
_GEAR_SEED = 0x41414445  # "AADE"


def gear_table(seed: int = _GEAR_SEED) -> np.ndarray:
    """The 256-entry random uint32 gear table (one entry per byte value)."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1 << GEAR_BITS, size=256,
                        dtype=np.uint64).astype(np.uint32)


# Lazily-built shared state: the (window, 256) shifted-table stack for
# the slab scan, and the table as Python ints for the oracle loop.
_TABLES: np.ndarray | None = None
_GEAR_INTS: List[int] | None = None


def _shifted_tables() -> np.ndarray:
    """``T_k[b] = (GEAR[b] << k) mod 2**32`` for ``k`` in ``[0, 32)``.

    32·256·4 B = 32 KiB — L1-resident, smaller than the Rabin scan's
    96 KiB uint64 stack.
    """
    global _TABLES
    if _TABLES is None:
        gear = gear_table().astype(np.uint64)
        tables = np.empty((GEAR_WINDOW, 256), dtype=np.uint32)
        for k in range(GEAR_WINDOW):
            tables[k] = (gear << k).astype(np.uint32)
        _TABLES = tables
    return _TABLES


def _gear_ints() -> List[int]:
    global _GEAR_INTS
    if _GEAR_INTS is None:
        _GEAR_INTS = [int(v) for v in gear_table()]
    return _GEAR_INTS


def gear_window_hashes(data: bytes | np.ndarray) -> np.ndarray:
    """Gear hash of every complete 32-byte window of ``data``.

    Entry ``i`` equals the streaming hash after pushing byte
    ``i + 31``::

        h_e = sum_{k=0}^{31} GEAR[data[e-k]] << k   (mod 2**32)

    — bit-exact with the per-byte recurrence (differential-tested),
    computed as 32 table gathers + wrapping uint32 adds over the whole
    buffer.
    """
    arr = np.frombuffer(data, dtype=np.uint8) if not isinstance(
        data, np.ndarray) else data.astype(np.uint8, copy=False)
    n = arr.shape[0]
    if n < GEAR_WINDOW:
        return np.empty(0, dtype=np.uint32)
    tables = _shifted_tables()
    out = tables[0][arr[GEAR_WINDOW - 1:]]
    for k in range(1, GEAR_WINDOW):
        # Gather reads a strided view (no copy); uint32 adds wrap.
        out += tables[k][arr[GEAR_WINDOW - 1 - k: n - k]]
    return out


def _high_mask(bits: int) -> int:
    """``bits`` ones in the top of the 32-bit hash.

    Gear's shift-add pushes each byte's entropy upward through the
    word, so the high bits mix the most window bytes — masks therefore
    select from the top (the standard Gear/FastCDC convention).
    """
    if bits < 1 or bits > GEAR_BITS - 1:
        raise ChunkingError(
            f"mask bits must be in [1, {GEAR_BITS - 1}]")
    return ((1 << bits) - 1) << (GEAR_BITS - bits)


class GearCDC(ContentDefinedChunker):
    """Plain Gear chunker: one add-shift-gather per byte, one mask.

    Same boundary-walk semantics and default 2/8/16 KiB geometry as
    :class:`~repro.chunking.cdc.RabinCDC`; only the candidate rule —
    and its cost — differs.  ``magic`` defaults to all-ones under the
    mask, the same sparse-file boundary-storm guard as Rabin.
    """

    name = "gear"

    def __init__(self,
                 avg_size: int = 8 * KIB,
                 min_size: int = 2 * KIB,
                 max_size: int = 16 * KIB,
                 mask_bits: int | None = None,
                 magic: int | None = None,
                 use_numpy: bool = True) -> None:
        super().__init__(avg_size, min_size, max_size)
        self.window = GEAR_WINDOW
        self.mask_bits = (default_mask_bits(avg_size, min_size)
                          if mask_bits is None else mask_bits)
        self.mask = _high_mask(self.mask_bits)
        self.magic = self.mask if magic is None else (magic & self.mask)
        self.use_numpy = use_numpy

    def expected_chunk_size(self) -> int:
        """Expected chunk length ``min_size + 2**mask_bits`` (pre-clamp)."""
        return self.min_size + (1 << self.mask_bits)

    # ------------------------------------------------------------------
    def _candidates_numpy(self, data: bytes) -> np.ndarray:
        hashes = gear_window_hashes(data)
        hits = np.flatnonzero((hashes & np.uint32(self.mask))
                              == np.uint32(self.magic))
        return hits.astype(np.int64) + self.window

    def _candidates_python(self, data: bytes) -> np.ndarray:
        gear = _gear_ints()
        mask, magic, window = self.mask, self.magic, self.window
        h = 0
        hits: List[int] = []
        for pos, byte in enumerate(data):
            h = ((h << 1) + gear[byte]) & 0xFFFFFFFF
            if pos + 1 >= window and (h & mask) == magic:
                hits.append(pos + 1)
        return np.asarray(hits, dtype=np.int64)


class FastCDC(ContentDefinedChunker):
    """Gear chunker with FastCDC's normalized chunking.

    Two masks around a *normal point* (default ``avg_size`` past the
    chunk start):

    * cuts before the normal point must satisfy the **small-region
      mask** (``mask_bits + norm_level`` bits — harder, suppressing
      short chunks beyond what the plain min-size skip achieves);
    * cuts after it only need the **large-region mask**
      (``mask_bits - norm_level`` bits — easier, so fewer chunks run
      into the forced maximum-size cut that costs dedup).

    Masks nest (both select from the hash's top bits with all-ones
    magic), so every small-region candidate is also a large-region
    candidate and the walk never skips a legal boundary.
    """

    name = "fastcdc"

    def __init__(self,
                 avg_size: int = 8 * KIB,
                 min_size: int = 2 * KIB,
                 max_size: int = 16 * KIB,
                 normal_size: int | None = None,
                 norm_level: int = 2,
                 mask_bits: int | None = None,
                 use_numpy: bool = True) -> None:
        super().__init__(avg_size, min_size, max_size)
        self.window = GEAR_WINDOW
        self.normal_size = avg_size if normal_size is None else normal_size
        if not (min_size <= self.normal_size <= max_size):
            raise ChunkingError(
                f"require min ({min_size}) <= normal_size "
                f"({self.normal_size}) <= max ({max_size})")
        if norm_level < 0:
            raise ChunkingError("norm_level must be >= 0")
        self.norm_level = norm_level
        bits = (default_mask_bits(avg_size, min_size)
                if mask_bits is None else mask_bits)
        self.mask_bits = bits
        self.small_bits = min(bits + norm_level, GEAR_BITS - 1)
        self.large_bits = max(bits - norm_level, 1)
        self.mask_small = _high_mask(self.small_bits)
        self.mask_large = _high_mask(self.large_bits)
        self.use_numpy = use_numpy

    def expected_chunk_size(self) -> int:
        """Normalization centres the distribution on ``avg_size``."""
        return self.avg_size

    # ------------------------------------------------------------------
    # Candidate scans return *two* sorted cut-offset arrays: positions
    # matching the small-region (hard) mask and the large-region (easy)
    # mask.  The small array is a subset of the large one by mask
    # nesting — asserted by the differential tests.
    def _candidate_pair_numpy(
            self, data: bytes) -> Tuple[np.ndarray, np.ndarray]:
        hashes = gear_window_hashes(data)
        small = np.flatnonzero((hashes & np.uint32(self.mask_small))
                               == np.uint32(self.mask_small))
        large = np.flatnonzero((hashes & np.uint32(self.mask_large))
                               == np.uint32(self.mask_large))
        return (small.astype(np.int64) + self.window,
                large.astype(np.int64) + self.window)

    def _candidate_pair_python(
            self, data: bytes) -> Tuple[np.ndarray, np.ndarray]:
        gear = _gear_ints()
        window = self.window
        mask_s, mask_l = self.mask_small, self.mask_large
        h = 0
        small: List[int] = []
        large: List[int] = []
        for pos, byte in enumerate(data):
            h = ((h << 1) + gear[byte]) & 0xFFFFFFFF
            if pos + 1 < window:
                continue
            if (h & mask_l) == mask_l:
                large.append(pos + 1)
                if (h & mask_s) == mask_s:
                    small.append(pos + 1)
        return (np.asarray(small, dtype=np.int64),
                np.asarray(large, dtype=np.int64))

    def _candidate_pair(self, data: bytes) -> Tuple[np.ndarray, np.ndarray]:
        return (self._candidate_pair_numpy(data) if self.use_numpy
                else self._candidate_pair_python(data))

    # The single-array hooks are still honoured (the shared invariants
    # exercise them): the effective candidate set for bound purposes is
    # the easy-mask one.
    def _candidates_numpy(self, data: bytes) -> np.ndarray:
        return self._candidate_pair_numpy(data)[1]

    def _candidates_python(self, data: bytes) -> np.ndarray:
        return self._candidate_pair_python(data)[1]

    def cut_points(self, data: bytes) -> List[int]:
        """Two-mask normalized walk.

        From each accepted cut ``c``: take the first hard-mask
        candidate in ``[c + min_size, c + normal_size]``; failing that
        the first easy-mask candidate in ``(c + normal_size,
        c + max_size]``; failing that the forced cut at
        ``c + max_size``.
        """
        n = len(data)
        if n == 0:
            return []
        cand_s, cand_l = self._candidate_pair(data)
        cuts: List[int] = []
        start = 0
        while start < n:
            remaining = n - start
            if remaining <= self.min_size:
                cuts.append(n)
                break
            lo = start + self.min_size
            hi = min(start + self.max_size, n)
            normal = min(start + self.normal_size, hi)
            j = int(np.searchsorted(cand_s, lo, side="left"))
            if j < cand_s.shape[0] and cand_s[j] <= normal:
                cut = int(cand_s[j])
            else:
                j = int(np.searchsorted(cand_l, normal + 1, side="left"))
                if j < cand_l.shape[0] and cand_l[j] <= hi:
                    cut = int(cand_l[j])
                else:
                    cut = hi  # forced maximum-size cut (or end of file)
            cuts.append(cut)
            start = cut
        return cuts


register_chunker("gear", GearCDC)
register_chunker("fastcdc", FastCDC)
