"""Whole-File Chunking (WFC).

The degenerate chunking used for *compressed* application data (AVI, MP3,
RAR, JPG, DMG, ISO): Observation 1 shows such files have almost no
sub-file redundancy (Table 1 DR ≈ 1.000–1.009), so the entire file is the
duplicate-detection unit and a cheap 12-byte extended Rabin hash suffices
as its fingerprint.
"""

from __future__ import annotations

from typing import List

from repro.chunking.base import Chunker, register_chunker

__all__ = ["WholeFileChunker"]


class WholeFileChunker(Chunker):
    """Emit the whole buffer as a single chunk."""

    name = "wfc"

    def cut_points(self, data: bytes) -> List[int]:
        """One cut at end-of-file."""
        return [len(data)] if data else []


register_chunker("wfc", WholeFileChunker)
