"""Static Chunking (SC): fixed-size chunks at fixed file offsets.

Used for *static uncompressed* data (PDF, EXE, VMDK).  Observation 3:
when data updates are rare or block-aligned (VM disk images), SC matches
or beats CDC in dedup effectiveness — CDC loses duplicates to forced
maximum-size cuts — while being dramatically cheaper (no boundary scan).
SC's known weakness, boundary shifting under insertions, is exactly what
the trace-layer mutation model and the property tests exercise.
"""

from __future__ import annotations

from typing import List

from repro.chunking.base import Chunker, register_chunker
from repro.errors import ChunkingError
from repro.util.units import KIB

__all__ = ["StaticChunker"]


class StaticChunker(Chunker):
    """Cut every ``chunk_size`` bytes (default 8 KiB, the paper's setting)."""

    name = "sc"

    def __init__(self, chunk_size: int = 8 * KIB) -> None:
        if chunk_size < 1:
            raise ChunkingError("chunk_size must be positive")
        self.chunk_size = chunk_size

    def cut_points(self, data: bytes) -> List[int]:
        """Cuts at multiples of ``chunk_size`` plus a final tail cut."""
        n = len(data)
        cuts = list(range(self.chunk_size, n, self.chunk_size))
        if n:
            cuts.append(n)
        return cuts

    def average_chunk_size(self) -> float:
        """Exactly ``chunk_size`` (ignoring the file tail)."""
        return float(self.chunk_size)


register_chunker("sc", StaticChunker)
