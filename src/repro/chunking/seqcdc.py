"""SeqCDC: hash-less sequence-based chunking (arxiv 2505.21194).

SeqCDC declares a boundary wherever the last ``seq_length`` bytes form a
strictly increasing run — no rolling hash at all, just byte compares.
On the paper's observation that monotonic runs are (a) rare enough to
give target-sized chunks and (b) content-local, boundaries survive
insertions exactly like hash-based CDC.

The vectorised scan is the module's point: one ``uint8`` compare
produces the ascent bitmap, ``seq_length - 2`` slab ANDs reduce it to
"window all ascending", and ``flatnonzero`` yields the candidate list —
no per-byte Python at all, and no table gathers either, making this the
cheapest scan in the family.  The per-byte run-length loop is kept as
the differential oracle (``use_numpy=False``).

Default ``seq_length=7``: a strictly increasing 7-byte run occurs with
probability ``C(256,7)/256**7 ≈ 1/5478`` per position on uniform bytes,
so candidates arrive every ~5.3 KiB and the expected chunk is
``min_size + 5.3 KiB ≈ 7.3 KiB`` — closest to the family's 8 KiB
target.  Low-entropy buffers (all-zero, repeated bytes) contain no
ascending runs and degrade to forced maximum-size cuts, the same
Observation-3 behaviour as the hash-based chunkers.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.chunking.base import register_chunker
from repro.chunking.cdc import ContentDefinedChunker
from repro.errors import ChunkingError
from repro.util.units import KIB

__all__ = ["SeqCDC"]


class SeqCDC(ContentDefinedChunker):
    """Chunk after every strictly increasing ``seq_length``-byte run."""

    name = "seqcdc"

    def __init__(self,
                 avg_size: int = 8 * KIB,
                 min_size: int = 2 * KIB,
                 max_size: int = 16 * KIB,
                 seq_length: int = 7,
                 use_numpy: bool = True) -> None:
        super().__init__(avg_size, min_size, max_size)
        if not 2 <= seq_length <= 256:
            raise ChunkingError("seq_length must be in [2, 256]")
        self.seq_length = seq_length
        self.window = seq_length
        self.use_numpy = use_numpy

    # ------------------------------------------------------------------
    def _candidates_numpy(self, data: bytes) -> np.ndarray:
        arr = np.frombuffer(data, dtype=np.uint8) if not isinstance(
            data, np.ndarray) else data.astype(np.uint8, copy=False)
        n = arr.shape[0]
        w = self.seq_length
        if n < w:
            return np.empty(0, dtype=np.int64)
        # up[j] — byte j+1 ascends over byte j.  A run starting at i is
        # strictly increasing over w bytes iff up[i .. i+w-2] all hold.
        up = arr[1:] > arr[:-1]
        ok = up[: n - w + 1].copy()
        for k in range(1, w - 1):
            ok &= up[k: n - w + 1 + k]
        return np.flatnonzero(ok).astype(np.int64) + w

    def _candidates_python(self, data: bytes) -> np.ndarray:
        w = self.seq_length
        hits: List[int] = []
        run = 1
        for pos in range(1, len(data)):
            run = run + 1 if data[pos] > data[pos - 1] else 1
            if run >= w:
                hits.append(pos + 1)
        return np.asarray(hits, dtype=np.int64)


register_chunker("seqcdc", SeqCDC)
