"""AA-Dedupe reproduction: application-aware source deduplication for
cloud backup in the personal computing environment (IEEE CLUSTER 2011).

Quick start — back up a directory to a local "cloud" and restore it::

    from repro import BackupClient, DirectorySource, restore_session
    from repro.cloud import LocalDirectoryBackend

    client = BackupClient(LocalDirectoryBackend("/tmp/cloud"))
    stats = client.backup(DirectorySource("~/Documents"))
    print(stats.summary())
    restore_session(client.cloud, stats.session_id, "/tmp/restored")

Package map (see DESIGN.md for the full inventory):

==================  ====================================================
``repro.core``      the AA-Dedupe pipeline (filter -> intelligent
                    chunker -> app-aware dedup -> containers -> cloud)
``repro.baselines`` Jungle Disk / BackupPC / Avamar / SAM configurations
``repro.chunking``  WFC, SC, Rabin CDC
``repro.hashing``   extended Rabin, MD5, SHA-1, collision math
``repro.classify``  file-type registry + Fig. 6 policy table
``repro.index``     memory/disk/Bloom/app-aware chunk indices
``repro.container`` self-describing 1 MB containers
``repro.cloud``     backends, WAN model, S3 pricing
``repro.durability`` criticality-tiered replication, repair, placement
``repro.workloads`` Table-1-calibrated synthetic PC workload
``repro.trace``     paper-scale trace evaluation (Figs. 7-11)
``repro.simulate``  virtual platform (CPU/disk/power models)
``repro.metrics``   DR, bytes-saved-per-second, BWS, CC, energy
``repro.analysis``  one function per paper table/figure
==================  ====================================================
"""

from repro._version import __version__
from repro.core import (
    BackupClient,
    DirectorySource,
    MemorySource,
    RestoreClient,
    SchemeConfig,
    SessionStats,
    aa_dedupe_config,
    collect_garbage,
    restore_session,
)
from repro.baselines import (
    all_scheme_configs,
    avamar_config,
    backuppc_config,
    jungle_disk_config,
    sam_config,
)
from repro.durability import (
    DurabilityPolicy,
    repair_cloud,
    replicate_cloud,
)

__all__ = [
    "__version__",
    "BackupClient",
    "DirectorySource",
    "MemorySource",
    "RestoreClient",
    "SchemeConfig",
    "SessionStats",
    "aa_dedupe_config",
    "collect_garbage",
    "restore_session",
    "all_scheme_configs",
    "avamar_config",
    "backuppc_config",
    "jungle_disk_config",
    "sam_config",
    "DurabilityPolicy",
    "repair_cloud",
    "replicate_cloud",
]
