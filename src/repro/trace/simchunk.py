"""Simulated chunking over compositions.

The three chunking methods, re-expressed over the block/extent content
model so that their *dedup-relevant* behaviour is preserved exactly:

* **WFC** — chunk identity is the whole extent list;
* **SC** — cuts at fixed file offsets; identity is the covered extents,
  so an unaligned insert changes every later chunk (boundary shifting),
  while aligned block rewrites leave other chunks intact;
* **CDC** — boundary candidates are a deterministic function of *block
  content* (block id + offset within the block), so they move with the
  data: inserts only disturb chunks near the edit.  Candidate spacing is
  drawn per block from its density class; when content is boundary-poor
  (VM images — spacing beyond the max chunk size) the min/max clamp
  forces position-dependent cuts, reproducing Observation 3's SC ≥ CDC
  effect.

Chunk ids are 64-bit BLAKE2b digests of the normalised extent list;
equal content ⇒ equal extents ⇒ equal id, and 64 bits keeps accidental
collisions negligible at simulation scale (≪ hardware error rates).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

import hashlib

import numpy as np

from repro.errors import WorkloadError
from repro.util.units import KIB
from repro.workloads.compose import Composition, Extent, density_class_of
from repro.workloads.profiles import DENSITY_SPACING

__all__ = ["BoundaryModel", "sim_chunks", "wfc_id", "extents_id"]

_EXT_PACK = struct.Struct("<QQQ")


def extents_id(extents: List[Extent]) -> int:
    """64-bit identity of a normalised extent list (chunk fingerprint)."""
    h = hashlib.blake2b(digest_size=8)
    for e in extents:
        h.update(_EXT_PACK.pack(e.block, e.start, e.length))
    return int.from_bytes(h.digest(), "big")


def wfc_id(comp: Composition) -> int:
    """Whole-file fingerprint of a composition."""
    return extents_id(list(comp.extents))


class BoundaryModel:
    """Deterministic CDC boundary candidates per block.

    For block ``b`` the candidate offsets are a fixed pseudo-random
    sequence seeded by ``b`` with exponential gaps whose mean is the
    block's density-class spacing — a pure function of content identity,
    which is exactly what makes simulated CDC content-defined.
    """

    def __init__(self) -> None:
        self._cache: Dict[int, Tuple[np.ndarray, int]] = {}

    def positions(self, block: int, upto: int) -> np.ndarray:
        """Sorted candidate offsets within ``[0, upto)`` of ``block``."""
        cached = self._cache.get(block)
        if cached is not None and cached[1] >= upto:
            positions, _limit = cached
            return positions[positions < upto]
        spacing = DENSITY_SPACING.get(density_class_of(block), 8 * KIB)
        rng = np.random.default_rng(block)
        # Generate in batches until we cover `upto` (with headroom so the
        # cache usually satisfies later, larger requests).
        target = max(upto, 4 * spacing) * 2
        est = max(16, int(target / spacing * 1.5))
        gaps = rng.exponential(spacing, size=est)
        positions = np.cumsum(gaps)
        while positions.size and positions[-1] < target:
            more = rng.exponential(spacing, size=est)
            positions = np.concatenate(
                [positions, positions[-1] + np.cumsum(more)])
        positions = positions.astype(np.int64)
        positions = positions[positions > 0]
        self._cache[block] = (positions, int(target))
        return positions[positions < upto]

    def candidates(self, comp: Composition) -> np.ndarray:
        """All candidate cut offsets of a file, in file coordinates."""
        out: List[np.ndarray] = []
        offset = 0
        for ext in comp.extents:
            inside = self.positions(ext.block, ext.start + ext.length)
            inside = inside[inside > ext.start]
            if inside.size:
                out.append(inside - ext.start + offset)
            offset += ext.length
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(out)


def sim_chunks(comp: Composition,
               method: str,
               boundary_model: BoundaryModel | None = None,
               chunk_size: int = 8 * KIB,
               min_size: int = 2 * KIB,
               max_size: int = 16 * KIB) -> List[Tuple[int, int]]:
    """Chunk a composition; returns ``[(chunk_id, length), ...]``.

    ``method`` is a policy chunker name: ``"wfc"``, ``"sc"`` or
    ``"cdc"``.  The cut rules mirror the real chunkers bit-for-bit in
    structure: SC cuts every ``chunk_size`` file bytes; CDC takes the
    first content candidate in ``[cut+min, cut+max]``, else forces a cut
    at ``cut+max``.
    """
    n = comp.size
    if n == 0:
        return []
    if method == "wfc":
        return [(wfc_id(comp), n)]
    if method == "sc":
        chunks: List[Tuple[int, int]] = []
        for start in range(0, n, chunk_size):
            length = min(chunk_size, n - start)
            chunks.append((extents_id(comp.slice(start, length)), length))
        return chunks
    if method == "cdc":
        model = boundary_model or BoundaryModel()
        cand = np.sort(model.candidates(comp))
        chunks = []
        start = 0
        while start < n:
            remaining = n - start
            if remaining <= min_size:
                cut = n
            else:
                lo, hi = start + min_size, min(start + max_size, n)
                j = int(np.searchsorted(cand, lo, side="left"))
                cut = int(cand[j]) if (j < cand.shape[0]
                                       and cand[j] <= hi) else hi
            length = cut - start
            chunks.append((extents_id(comp.slice(start, length)), length))
            start = cut
        return chunks
    raise WorkloadError(f"unknown simulated chunking method {method!r}")
