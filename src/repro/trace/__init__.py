"""Trace layer: paper-scale evaluation without materialising bytes.

Chunk identity over the composition model is decidable symbolically —
two chunks are equal iff they cover the same block extents — so the five
schemes can be evaluated on the full multi-gigabyte weekly workload in
seconds.  The op ledger produced here is the same
:class:`~repro.core.stats.OpCounters` the real engine fills, and the
platform models in :mod:`repro.simulate` price it identically.

* :mod:`repro.trace.simchunk` — simulated WFC/SC/CDC over compositions
  (position-defined vs content-defined boundaries, forced max-size cuts);
* :mod:`repro.trace.engine` — the policy-driven trace backup client;
* :mod:`repro.trace.driver` — the 10-session, 5-scheme paper evaluation.
"""

from repro.trace.simchunk import BoundaryModel, sim_chunks, wfc_id
from repro.trace.engine import TraceBackupClient
from repro.trace.driver import (
    EvaluationResult,
    SchemeRun,
    SessionRecord,
    run_paper_evaluation,
)

__all__ = [
    "BoundaryModel",
    "sim_chunks",
    "wfc_id",
    "TraceBackupClient",
    "EvaluationResult",
    "SchemeRun",
    "SessionRecord",
    "run_paper_evaluation",
]
