"""Policy-driven trace backup client.

Executes one :class:`~repro.core.options.SchemeConfig` over composition
snapshots, mirroring :class:`~repro.core.backup.BackupClient` decision
for decision — tiny-file filter, per-category chunk/hash policy, optional
file-level tier, namespaced index, container aggregation — while only
*accounting* for the bytes instead of moving them.  Additionally it
models index RAM residency: each lookup/insert against a namespace whose
entry population exceeds the residency budget accrues expected random
disk IOs — the on-disk index bottleneck of the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Set

from repro.chunking import CDC_FAMILY
from repro.classify.filetype import classify_name
from repro.core.options import SchemeConfig
from repro.core.stats import SessionStats
from repro.simulate.cpumodel import CPUModel, PAPER_CPU
from repro.simulate.diskmodel import (DiskModel, IndexResidencyModel,
                                      PAPER_DISK, PAPER_RESIDENCY)
from repro.trace.simchunk import BoundaryModel, sim_chunks, wfc_id
from repro.workloads.compose import Snapshot

__all__ = ["TraceBackupClient", "modelled_stage_seconds"]

#: Serialized container framing overhead and per-chunk descriptor bytes.
_CONTAINER_OVERHEAD = 64
_DESCRIPTOR_BYTES = 34
#: Modelled manifest bytes per file entry / per chunk reference.
_MANIFEST_FILE_BYTES = 96
_MANIFEST_REF_BYTES = 56
#: Serialized index entry bytes (sync traffic).
_SYNC_ENTRY_BYTES = 48
#: Filesystem-pool index (BackupPC): metadata IOs per probe/insert.
_FS_IOS_PER_OP = 1.0


def modelled_stage_seconds(stats: SessionStats,
                           cpu: CPUModel = PAPER_CPU,
                           disk: DiskModel = PAPER_DISK,
                           disk_ios: float | None = None) -> Dict[str, float]:
    """Decompose a session's modelled dedup time into pipeline stages.

    Returns ``{"read", "chunk", "hash", "index", "commit"}`` seconds whose
    sum equals the trace driver's ``dedup_seconds`` exactly::

        dedup_cpu_seconds(stats.ops, cpu, files=stats.files_total)
        + disk.read_seconds(stats.ops.read_bytes)
        + disk.random_io_seconds(disk_ios)

    ``disk_ios`` is the expected random index IO count for the session
    (``TraceBackupClient.disk_ios_last_session``); it defaults to the
    integer probe count recorded in the op ledger.  The decomposition
    mirrors the real engine's stage graph: file read (sequential disk),
    CDC boundary scan + per-chunk bookkeeping (chunk stage),
    fingerprinting (hash stage), index probes RAM + disk (probe stage),
    and per-file overhead (serial commit stage).
    """
    ops = stats.ops
    if disk_ios is None:
        disk_ios = float(ops.index_disk_probes)
    f = cpu.frequency_hz
    hash_s = sum(cpu.hash_seconds(name, nbytes)
                 for name, nbytes in ops.hashed_bytes.items())
    chunk_s = (cpu.cdc_scan_seconds(ops.cdc_scanned_bytes)
               + ops.chunks_produced * cpu.cycles_per_chunk / f)
    memory_lookups = max(0, ops.index_lookups - ops.index_disk_probes)
    index_s = (memory_lookups * cpu.cycles_per_memory_lookup / f
               + disk.random_io_seconds(disk_ios))
    return {
        "read": disk.read_seconds(ops.read_bytes),
        "chunk": chunk_s,
        "hash": hash_s,
        "index": index_s,
        "commit": stats.files_total * cpu.cycles_per_file / f,
    }


@dataclass
class _StreamState:
    """Open-container fill level for one backup stream."""

    fill: int = 0
    chunks: int = 0


class TraceBackupClient:
    """Stateful trace client for one scheme (10-session capable)."""

    def __init__(self, config: SchemeConfig,
                 residency: IndexResidencyModel = PAPER_RESIDENCY) -> None:
        self.config = config
        self.residency = residency
        #: namespace -> set of chunk ids (the index population).
        self.indices: Dict[str, Set[int]] = {}
        self._file_tier: Dict[int, int] = {}
        self._boundaries = BoundaryModel()
        self._prev_meta: Dict[str, tuple] = {}
        self._streams: Dict[str, _StreamState] = {}
        self._synced_entries = 0
        self._session = 0
        #: Cumulative cloud bytes / puts across all sessions (Fig. 7/10).
        self.cumulative_uploaded = 0
        self.cumulative_puts = 0
        #: Expected random disk IOs accrued in the current session.
        self._disk_ios = 0.0

    # ------------------------------------------------------------------
    def _namespace(self, app_label: str, policy) -> str:
        return self.config.index_namespace(app_label, policy)

    def _index(self, namespace: str) -> Set[int]:
        idx = self.indices.get(namespace)
        if idx is None:
            idx = self.indices[namespace] = set()
        return idx

    def _lookup(self, namespace: str, chunk_id: int,
                stats: SessionStats) -> bool:
        idx = self._index(namespace)
        stats.ops.index_lookups += 1
        if self.config.index_media == "fs":
            self._disk_ios += _FS_IOS_PER_OP
        else:
            self._disk_ios += self.residency.lookup_io_count(1, len(idx))
        hit = chunk_id in idx
        if hit:
            stats.ops.index_hits += 1
        return hit

    def _insert(self, namespace: str, chunk_id: int) -> None:
        idx = self._index(namespace)
        if self.config.index_media == "fs":
            self._disk_ios += _FS_IOS_PER_OP
        else:
            self._disk_ios += self.residency.insert_io_count(1, len(idx))
        idx.add(chunk_id)

    # ------------------------------------------------------------------
    def _container_payload_capacity(self) -> int:
        return (self.config.container_size - _CONTAINER_OVERHEAD
                - _DESCRIPTOR_BYTES)

    def _store_unique(self, length: int, stream: str,
                      stats: SessionStats) -> None:
        """Model placing a unique extent (container fill or direct PUT)."""
        stats.bytes_unique += length
        if not self.config.use_containers:
            stats.put_requests += 1
            stats.bytes_uploaded += length
            return
        capacity = self._container_payload_capacity()
        if length > capacity:
            # Oversized chunk: dedicated, unpadded container.
            stats.put_requests += 1
            stats.bytes_uploaded += (length + _CONTAINER_OVERHEAD
                                     + _DESCRIPTOR_BYTES)
            return
        state = self._streams.setdefault(stream, _StreamState())
        needed = length + _DESCRIPTOR_BYTES
        if state.fill + needed > capacity:
            self._seal(state, stats)
        state.fill += needed
        state.chunks += 1

    def _seal(self, state: _StreamState, stats: SessionStats,
              final: bool = False) -> None:
        if state.chunks == 0:
            return
        stats.put_requests += 1
        if self.config.pad_containers and not final:
            stats.bytes_uploaded += self.config.container_size
        else:
            # Final per-stream containers are charged at their fill: the
            # real engine pads them, but that padding is a fixed ~half
            # container per stream per session — negligible at paper
            # scale and grossly over-weighted in scaled-down runs, so
            # the scale-invariant model omits it.
            stats.bytes_uploaded += state.fill + _CONTAINER_OVERHEAD
        state.fill = 0
        state.chunks = 0

    def _flush_streams(self, stats: SessionStats) -> None:
        for state in self._streams.values():
            self._seal(state, stats, final=True)

    # ------------------------------------------------------------------
    def _process(self, path: str, comp, app, snapshot: Snapshot,
                 stats: SessionStats) -> int:
        """Handle one file; returns the number of recipe references."""
        cfg = self.config

        if cfg.incremental_only:
            meta = (comp.size, snapshot.mtimes.get(path, 0))
            if self._prev_meta.get(path) == meta:
                stats.files_unchanged += 1
                return 1
            stats.ops.read_bytes += comp.size
            stats.ops.add_hashed("sha1", comp.size)
            stats.bytes_unique += comp.size
            stats.bytes_uploaded += comp.size
            stats.put_requests += 1
            return 1

        stats.ops.read_bytes += comp.size
        if comp.size < cfg.tiny_file_threshold:
            stats.files_tiny += 1
            if comp.size:
                stats.ops.add_hashed("sha1", comp.size)
                self._store_unique(comp.size, "tiny", stats)
            return 1

        policy = cfg.policy_for(app.category)
        if cfg.file_level_first and policy.chunker != "wfc" and comp.size:
            fid = wfc_id(comp)
            stats.ops.add_hashed("sha1", comp.size)
            stats.ops.index_lookups += 1
            if fid in self._file_tier:
                stats.ops.index_hits += 1
                return self._file_tier[fid]
        else:
            fid = None

        namespace = self._namespace(app.label, policy)
        params = dict(policy.chunker_params)
        if policy.chunker in CDC_FAMILY:
            # The trace layer models cut *placement* abstractly (block-
            # keyed pseudo-random candidates), so every CDC-family
            # engine shares the one content-defined boundary model; the
            # engines differ in scan cost, not in the statistics the
            # trace evaluation measures.
            stats.ops.cdc_scanned_bytes += comp.size
            chunks = sim_chunks(comp, "cdc", self._boundaries,
                                min_size=params.get("min_size", 2048),
                                max_size=params.get("max_size", 16384))
        elif policy.chunker == "sc":
            chunks = sim_chunks(comp, "sc",
                                chunk_size=params.get("chunk_size", 8192))
        else:
            chunks = sim_chunks(comp, "wfc")
        for chunk_id, length in chunks:
            stats.ops.chunks_produced += 1
            stats.ops.add_hashed(policy.hash_name, length)
            if not self._lookup(namespace, chunk_id, stats):
                self._insert(namespace, chunk_id)
                stats.chunks_unique += 1
                self._store_unique(length, namespace, stats)
        if fid is not None:
            self._file_tier[fid] = len(chunks)
        return len(chunks)

    def backup(self, snapshot: Snapshot) -> SessionStats:
        """Run one trace backup session; returns the paper-ready stats."""
        cfg = self.config
        stats = SessionStats(session_id=self._session, scheme=cfg.name)
        self._disk_ios = 0.0
        refs = 0

        for path in sorted(snapshot.files):
            comp = snapshot.files[path]
            app = classify_name(path)
            stats.files_total += 1
            stats.bytes_scanned += comp.size
            unique_before = stats.bytes_unique
            refs += self._process(path, comp, app, snapshot, stats)
            stats.note_app(app.label, comp.size,
                           stats.bytes_unique - unique_before)

        self._flush_streams(stats)

        # Manifest upload.
        manifest_bytes = (stats.files_total * _MANIFEST_FILE_BYTES
                          + refs * _MANIFEST_REF_BYTES)
        stats.bytes_uploaded += manifest_bytes
        stats.put_requests += 1

        # Incremental index sync (new entries since last sync).
        if cfg.index_sync_interval and (
                (self._session + 1) % cfg.index_sync_interval == 0):
            total_entries = sum(len(s) for s in self.indices.values())
            delta = total_entries - self._synced_entries
            if delta > 0:
                stats.bytes_uploaded += delta * _SYNC_ENTRY_BYTES
                stats.put_requests += max(1, len(self.indices))
                self._synced_entries = total_entries

        stats.ops.index_disk_probes = int(math.ceil(self._disk_ios))
        self._prev_meta = {path: (c.size, snapshot.mtimes.get(path, 0))
                           for path, c in snapshot.files.items()}
        self.cumulative_uploaded += stats.bytes_uploaded
        self.cumulative_puts += stats.put_requests
        self._session += 1
        return stats

    # ------------------------------------------------------------------
    def namespace_sizes(self) -> Dict[str, int]:
        """Current index population per namespace (residency evidence)."""
        return {ns: len(ids) for ns, ids in self.indices.items()}

    @property
    def disk_ios_last_session(self) -> float:
        """Expected random index IOs accrued by the latest session."""
        return self._disk_ios
