"""The paper's evaluation, end to end (Sec. IV / Figs. 7–11).

:func:`run_paper_evaluation` generates the 10-weekly-full-backup
workload, runs all five schemes over it with the trace engine, and
prices every session on the virtual platform models, yielding for each
(scheme, session):

* dedup-stage time and throughput DT (CPU + data read + index disk IO),
* WAN transfer time and the pipelined backup window
  ``max(dedup, transfer)``,
* dedup efficiency DE = bytes saved per second (the paper's metric),
* energy of the dedup phase,
* cumulative cloud storage and the monthly bill.

**Scaling.**  The default run uses a scaled-down dataset
(``scale × 35.1 GB`` per session) with the index RAM budget scaled by
the same factor; every quantity the figures compare is a ratio of
per-byte and per-entry costs, so the ranking and relative magnitudes are
scale-invariant, while absolute byte/cost outputs are reported scaled
back up to paper size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.baselines import all_scheme_configs
from repro.cloud.pricing import PriceBook, S3_APRIL_2011
from repro.cloud.wan import PAPER_WAN, WANLink
from repro.core.options import SchemeConfig
from repro.core.stats import SessionStats
from repro.simulate.cpumodel import CPUModel, PAPER_CPU, dedup_cpu_seconds
from repro.simulate.diskmodel import DiskModel, IndexResidencyModel, PAPER_DISK
from repro.simulate.pipeline import backup_window, dedup_throughput
from repro.simulate.powermodel import PAPER_POWER, PowerModel
from repro.trace.engine import TraceBackupClient
from repro.util.units import GB
from repro.workloads.compose import Snapshot
from repro.workloads.generator import WorkloadGenerator

__all__ = ["SessionRecord", "SchemeRun", "EvaluationResult",
           "run_paper_evaluation", "PAPER_SESSION_BYTES"]

#: The paper's workload: 351 GB over 10 weekly full backups.
PAPER_SESSION_BYTES = 35.1 * GB


@dataclass
class SessionRecord:
    """All derived quantities for one (scheme, session) cell."""

    stats: SessionStats
    dedup_seconds: float
    transfer_seconds: float
    window_seconds: float
    dedup_throughput: float
    #: DE — bytes saved per second (the paper's efficiency metric).
    efficiency: float
    energy_joules: float
    cumulative_uploaded: int
    index_disk_ios: float


@dataclass
class SchemeRun:
    """One scheme's 10-session trajectory."""

    config: SchemeConfig
    sessions: List[SessionRecord] = field(default_factory=list)

    @property
    def name(self) -> str:
        """Scheme display name."""
        return self.config.name

    def total_uploaded(self) -> int:
        """Cumulative cloud bytes after the last session (Fig. 7 end)."""
        return self.sessions[-1].cumulative_uploaded if self.sessions else 0

    def total_put_requests(self) -> int:
        """Total PUT requests across all sessions."""
        return sum(r.stats.put_requests for r in self.sessions)

    def mean_efficiency(self) -> float:
        """Average DE across sessions."""
        if not self.sessions:
            return 0.0
        return sum(r.efficiency for r in self.sessions) / len(self.sessions)

    def monthly_cost(self, prices: PriceBook = S3_APRIL_2011,
                     scale_to_paper: float = 1.0) -> float:
        """Fig. 10: one month's bill after the whole backup series."""
        stored = self.total_uploaded() * scale_to_paper
        uploaded = self.total_uploaded() * scale_to_paper
        puts = int(self.total_put_requests() * scale_to_paper)
        return prices.monthly_cost(stored, uploaded, puts)


@dataclass
class EvaluationResult:
    """Everything the figures need, for every scheme."""

    runs: Dict[str, SchemeRun]
    session_bytes: List[int]
    scale: float

    @property
    def scheme_names(self) -> List[str]:
        """Scheme names in presentation order."""
        return list(self.runs)

    def scale_to_paper(self) -> float:
        """Multiplier taking scaled bytes back to paper-scale bytes."""
        return 1.0 / self.scale if self.scale > 0 else 1.0


def run_paper_evaluation(
        scale: float = 0.01,
        sessions: int = 10,
        schemes: Optional[Sequence[SchemeConfig]] = None,
        seed: int = 2011,
        cpu: CPUModel = PAPER_CPU,
        disk: DiskModel = PAPER_DISK,
        wan: WANLink = PAPER_WAN,
        power: PowerModel = PAPER_POWER,
        residency: Optional[IndexResidencyModel] = None,
        snapshots: Optional[List[Snapshot]] = None,
) -> EvaluationResult:
    """Run the full comparison; see module docstring.

    ``scale`` shrinks the workload *and* the index RAM budget together.
    Pass ``snapshots`` to evaluate a pre-generated workload (used by the
    ablation benches so every variant sees identical data).
    """
    if schemes is None:
        schemes = all_scheme_configs()
    if residency is None:
        base = IndexResidencyModel()
        residency = IndexResidencyModel(
            ram_budget=max(1, int(base.ram_budget * scale)),
            entry_bytes=base.entry_bytes,
            ios_per_miss=base.ios_per_miss)
    if snapshots is None:
        total = int(PAPER_SESSION_BYTES * scale)
        generator = WorkloadGenerator(
            total_bytes=total, seed=seed,
            max_mean_file_size=max(64 * 1024, total // 40))
        snapshots = list(generator.sessions(sessions))

    runs: Dict[str, SchemeRun] = {}
    for config in schemes:
        client = TraceBackupClient(config, residency=residency)
        run = SchemeRun(config=config)
        for snapshot in snapshots:
            stats = client.backup(snapshot)
            disk_ios = client.disk_ios_last_session
            dedup_seconds = (
                dedup_cpu_seconds(stats.ops, cpu, files=stats.files_total)
                + disk.read_seconds(stats.ops.read_bytes)
                + disk.random_io_seconds(disk_ios))
            transfer_seconds = wan.upload_time(stats.bytes_uploaded,
                                               stats.put_requests)
            window = backup_window(dedup_seconds, transfer_seconds,
                                   pipelined=True)
            run.sessions.append(SessionRecord(
                stats=stats,
                dedup_seconds=dedup_seconds,
                transfer_seconds=transfer_seconds,
                window_seconds=window,
                dedup_throughput=dedup_throughput(stats.bytes_scanned,
                                                  dedup_seconds),
                efficiency=(stats.bytes_saved / dedup_seconds
                            if dedup_seconds > 0 else 0.0),
                energy_joules=power.dedup_energy_joules(dedup_seconds),
                cumulative_uploaded=client.cumulative_uploaded,
                index_disk_ios=disk_ios,
            ))
        runs[config.name] = run
    return EvaluationResult(runs=runs, scale=scale,
                            session_bytes=[s.total_bytes()
                                           for s in snapshots])
