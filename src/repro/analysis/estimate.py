"""Sampling-based dedup estimation for real directories.

Before committing to a multi-hour first backup over a slow WAN, a user
wants to know what deduplication will buy.  :func:`estimate_directory`
scans a directory (optionally sampling large files), applies the
AA-Dedupe policy table, and reports the predicted per-category dedup
ratio, upload volume and — through the platform-independent paper
models — the expected backup window and monthly bill.

This is an estimator, not a backup: nothing is stored, the chunk index
lives only for the scan.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict

from repro.chunking import CDC_FAMILY
from repro.classify.filetype import classify_path
from repro.classify.policy import AA_POLICY_TABLE, DedupPolicy
from repro.cloud.pricing import PriceBook, S3_APRIL_2011
from repro.cloud.wan import PAPER_WAN, WANLink
from repro.core.options import aa_dedupe_config
from repro.util.io import walk_files
from repro.util.units import KIB

__all__ = ["DedupEstimate", "estimate_directory"]


@dataclass
class DedupEstimate:
    """Outcome of one estimation scan."""

    files: int = 0
    tiny_files: int = 0
    bytes_scanned: int = 0
    bytes_unique: int = 0
    #: Chunks the (optional) delta stage would store as deltas, and the
    #: upload bytes it would save beyond exact dedup.
    delta_chunks: int = 0
    delta_bytes_saved: int = 0
    #: category value -> (scanned, unique) bytes.
    by_category: Dict[str, tuple] = field(default_factory=dict)

    @property
    def dedup_ratio(self) -> float:
        """Predicted overall DR for a first full backup."""
        if self.bytes_unique <= 0:
            return 1.0
        return self.bytes_scanned / self.bytes_unique

    def upload_seconds(self, wan: WANLink = PAPER_WAN,
                       container_size: int = 1024 * KIB) -> float:
        """Predicted first-backup transfer time over ``wan``."""
        requests = max(1, self.bytes_unique // container_size)
        return wan.upload_time(self.bytes_unique, requests)

    def monthly_cost(self, prices: PriceBook = S3_APRIL_2011,
                     container_size: int = 1024 * KIB) -> float:
        """Predicted first-month bill."""
        requests = max(1, self.bytes_unique // container_size)
        return prices.monthly_cost(self.bytes_unique, self.bytes_unique,
                                   requests)


def estimate_directory(root: str | os.PathLike,
                       max_file_bytes: int = 64 * 1024 * 1024,
                       tiny_threshold: int | None = None,
                       delta: bool = False) -> DedupEstimate:
    """Estimate AA-Dedupe's effect on a real directory.

    Files larger than ``max_file_bytes`` are truncated for chunking (a
    prefix sample); the estimate extrapolates unique bytes linearly for
    the sampled remainder, which is conservative for media files (no
    sub-file redundancy) and slightly pessimistic for VM images.

    With ``delta=True`` unique CDC/SC chunks additionally pass through
    the similarity + delta stage (see :mod:`repro.delta`), predicting
    what ``SchemeConfig(delta_compress=True)`` would save.
    """
    config = aa_dedupe_config(delta_compress=delta)
    threshold = (config.tiny_file_threshold if tiny_threshold is None
                 else tiny_threshold)
    estimate = DedupEstimate()
    indices: Dict[str, set] = {}
    chunkers: Dict[str, object] = {}
    sim = bases = None
    if delta:
        from collections import OrderedDict

        from repro.delta import (SimilarityIndex, compute_sketch,
                                 encode_if_worthwhile)
        sim = SimilarityIndex(capacity=config.delta_sim_capacity)
        bases: Dict[str, "OrderedDict[bytes, bytes]"] = {}

    def delta_stored_size(app_label: str, chunker_name: str,
                          fingerprint: bytes, payload: bytes) -> int:
        """Bytes this unique chunk would occupy with the delta stage."""
        if (sim is None or chunker_name not in CDC_FAMILY + ("sc",)
                or len(payload) < config.delta_min_chunk):
            return len(payload)
        sketch = compute_sketch(payload)
        base_fp = sim.probe(app_label, sketch)
        app_bases = bases.setdefault(app_label, OrderedDict())
        base = app_bases.get(base_fp) if base_fp is not None else None
        blob = (encode_if_worthwhile(base, payload,
                                     cutoff=config.delta_cutoff)
                if base is not None else None)
        if blob is not None:
            estimate.delta_chunks += 1
            estimate.delta_bytes_saved += len(payload) - len(blob)
            return len(blob)
        app_bases[fingerprint] = payload
        while len(app_bases) > config.delta_base_cache:
            old_fp, _ = app_bases.popitem(last=False)
            sim.discard(app_label, old_fp)
        sim.insert(app_label, sketch, fingerprint)
        return len(payload)

    for stat in walk_files(root):
        estimate.files += 1
        estimate.bytes_scanned += stat.size
        app = classify_path(stat.relpath)
        category = app.category.value
        scanned, unique = estimate.by_category.get(category, (0, 0))

        if stat.size < threshold:
            estimate.tiny_files += 1
            estimate.bytes_unique += stat.size
            estimate.by_category[category] = (scanned + stat.size,
                                              unique + stat.size)
            continue

        policy: DedupPolicy = AA_POLICY_TABLE[app.category]
        chunker = chunkers.get(policy.chunker)
        if chunker is None:
            chunker = chunkers[policy.chunker] = policy.make_chunker()
        hasher = policy.fingerprinter()
        index = indices.setdefault(app.label, set())

        sampled = min(stat.size, max_file_bytes)
        try:
            with open(stat.path, "rb") as fh:
                data = fh.read(sampled)
        except OSError:
            continue
        unique_sampled = 0
        for chunk in chunker.chunk(data):
            fingerprint = hasher.hash(chunk.data)
            if fingerprint not in index:
                index.add(fingerprint)
                unique_sampled += delta_stored_size(
                    app.label, policy.chunker, fingerprint, chunk.data)
        # Extrapolate the unsampled tail at the sampled unique density.
        if sampled and stat.size > sampled:
            density = unique_sampled / sampled
            unique_file = unique_sampled + int(
                (stat.size - sampled) * density)
        else:
            unique_file = unique_sampled
        estimate.bytes_unique += unique_file
        estimate.by_category[category] = (scanned + stat.size,
                                          unique + unique_file)
    return estimate
