"""Figure/table regeneration: one function per paper exhibit."""

from repro.analysis.figures import (
    fig1_fig2_size_distribution,
    table1_redundancy,
    cross_application_sharing,
    fig3_hash_overhead,
    fig4_throughputs,
    paper_figures_7_to_11,
)
from repro.analysis.estimate import DedupEstimate, estimate_directory

__all__ = [
    "fig1_fig2_size_distribution",
    "table1_redundancy",
    "cross_application_sharing",
    "fig3_hash_overhead",
    "fig4_throughputs",
    "paper_figures_7_to_11",
    "DedupEstimate",
    "estimate_directory",
]
