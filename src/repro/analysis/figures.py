"""Data series for every table and figure in the paper's evaluation.

Each function returns plain data structures (dicts/lists/dataclasses)
that the benchmark harness renders as text tables next to the paper's
reference values.  Nothing here plots; the benches print.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.metrics.cost import CostBreakdown, cloud_cost
from repro.simulate.cpumodel import CPUModel, PAPER_CPU
from repro.simulate.diskmodel import PAPER_DISK
from repro.trace.driver import EvaluationResult, run_paper_evaluation
from repro.trace.simchunk import BoundaryModel, sim_chunks, wfc_id
from repro.util.units import KIB, MB
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.profiles import (
    FIG12_SIZE_MODEL,
    SIZE_BUCKETS,
    TABLE1_REFERENCE,
)

__all__ = [
    "SizeBucketRow",
    "fig1_fig2_size_distribution",
    "Table1Row",
    "table1_redundancy",
    "cross_application_sharing",
    "fig3_hash_overhead",
    "fig4_throughputs",
    "paper_figures_7_to_11",
    "PaperFigures",
]


# ----------------------------------------------------------------------
# Figs. 1 & 2 — file count / storage capacity by size bucket
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SizeBucketRow:
    """One size bucket with measured vs paper shares."""

    upper_bound: float
    count_share: float
    capacity_share: float
    paper_count_share: float
    paper_capacity_share: float


def fig1_fig2_size_distribution(n_files: int = 200_000,
                                seed: int = 12) -> List[SizeBucketRow]:
    """Sample the Fig. 1/2 lognormal-mixture model and bucket it.

    The paper's anchors: 61 % of files < 10 KB hold 1.2 % of bytes;
    1.4 % of files > 1 MB hold 75 % of bytes.
    """
    rng = np.random.default_rng(seed)
    weights = np.array([w for w, _m, _s in FIG12_SIZE_MODEL])
    weights = weights / weights.sum()
    component = rng.choice(len(weights), size=n_files, p=weights)
    sizes = np.empty(n_files)
    for i, (_w, median, sigma) in enumerate(FIG12_SIZE_MODEL):
        mask = component == i
        sizes[mask] = rng.lognormal(np.log(median), sigma, mask.sum())
    total_count = n_files
    total_bytes = sizes.sum()
    rows: List[SizeBucketRow] = []
    lower = 0.0
    for upper, paper_count, paper_cap in SIZE_BUCKETS:
        mask = (sizes >= lower) & (sizes < upper)
        rows.append(SizeBucketRow(
            upper_bound=upper,
            count_share=mask.sum() / total_count,
            capacity_share=sizes[mask].sum() / total_bytes,
            paper_count_share=paper_count,
            paper_capacity_share=paper_cap,
        ))
        lower = upper
    return rows


# ----------------------------------------------------------------------
# Table 1 — per-application SC/CDC dedup ratios after file-level dedup
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table1Row:
    """Measured vs paper per-application sub-file redundancy."""

    app: str
    dataset_bytes: int
    mean_file_size: float
    sc_dr: float
    cdc_dr: float
    paper_sc_dr: float
    paper_cdc_dr: float


def _app_dr(files, method: str, model: BoundaryModel) -> float:
    """Chunk-level DR over *file-level-unique* compositions."""
    unique_files = {}
    for comp in files:
        unique_files.setdefault(wfc_id(comp), comp)
    total = 0
    unique_chunk_bytes = 0
    seen: set = set()
    for comp in unique_files.values():
        for chunk_id, length in sim_chunks(comp, method, model):
            total += length
            if chunk_id not in seen:
                seen.add(chunk_id)
                unique_chunk_bytes += length
    return total / unique_chunk_bytes if unique_chunk_bytes else 1.0


def table1_redundancy(total_bytes: int = 400 * MB,
                      seed: int = 2011) -> List[Table1Row]:
    """Regenerate Table 1 on a synthetic snapshot.

    Per application: intra-snapshot SC and CDC dedup ratios measured
    after removing whole-file duplicates, exactly as the paper's
    methodology describes.
    """
    generator = WorkloadGenerator(total_bytes=total_bytes, seed=seed,
                                  max_mean_file_size=total_bytes // 100)
    snapshot = generator.initial_snapshot()
    by_app: Dict[str, list] = defaultdict(list)
    for path, comp in snapshot.files.items():
        app = path.split("/", 1)[0]
        if app == "tiny":
            continue
        by_app[app].append(comp)
    model = BoundaryModel()
    rows: List[Table1Row] = []
    for app in TABLE1_REFERENCE:
        comps = by_app.get(app, [])
        if not comps:
            continue
        nbytes = sum(c.size for c in comps)
        _mb, _mean, paper_sc, paper_cdc = TABLE1_REFERENCE[app]
        rows.append(Table1Row(
            app=app,
            dataset_bytes=nbytes,
            mean_file_size=nbytes / len(comps),
            sc_dr=_app_dr(comps, "sc", model),
            cdc_dr=_app_dr(comps, "cdc", model),
            paper_sc_dr=paper_sc,
            paper_cdc_dr=paper_cdc,
        ))
    return rows


def cross_application_sharing(total_bytes: int = 200 * MB,
                              seed: int = 7) -> Tuple[int, int]:
    """Observation 4: chunks shared *across* applications.

    Returns ``(shared_chunks, total_unique_chunks)``; the paper found a
    single 16 KB duplicate across all twelve applications.
    """
    generator = WorkloadGenerator(total_bytes=total_bytes, seed=seed,
                                  max_mean_file_size=total_bytes // 60)
    snapshot = generator.initial_snapshot()
    model = BoundaryModel()
    app_chunks: Dict[str, set] = defaultdict(set)
    for path, comp in snapshot.files.items():
        app = path.split("/", 1)[0]
        if app == "tiny":
            continue
        for chunk_id, _length in sim_chunks(comp, "sc", model):
            app_chunks[app].add(chunk_id)
    apps = list(app_chunks)
    shared = set()
    for i, a in enumerate(apps):
        for b in apps[i + 1:]:
            shared |= app_chunks[a] & app_chunks[b]
    total_unique = len(set().union(*app_chunks.values()))
    return len(shared), total_unique


# ----------------------------------------------------------------------
# Fig. 3 — hash computational overhead; Fig. 4 — dedup throughput
# ----------------------------------------------------------------------
def fig3_hash_overhead(dataset_bytes: int = 60 * MB,
                       cpu: CPUModel = PAPER_CPU,
                       chunk_size: int = 8 * KIB
                       ) -> Dict[Tuple[str, str], float]:
    """Execution time (s) of each hash under WFC and SC on 60 MB.

    Keys are ``(chunking, hash)``; mirrors the paper's finding that the
    time is dominated by data capacity (WFC ≈ SC for a given hash) and
    ordered Rabin < MD5 < SHA-1.
    """
    out: Dict[Tuple[str, str], float] = {}
    for chunking, n_chunks in (("wfc", 1),
                               ("sc", dataset_bytes // chunk_size)):
        for hash_name in ("rabin12", "md5", "sha1"):
            seconds = cpu.hash_seconds(hash_name, dataset_bytes)
            seconds += n_chunks * cpu.cycles_per_chunk / cpu.frequency_hz
            out[(chunking, hash_name)] = seconds
    return out


def fig4_throughputs(cpu: CPUModel = PAPER_CPU,
                     chunk_size: int = 8 * KIB,
                     include_disk: bool = False
                     ) -> Dict[Tuple[str, str], float]:
    """Modelled dedup throughput (bytes/s) for WFC/SC/CDC × each hash.

    CDC adds the rolling-window boundary scan; optionally the source
    disk read is serialised in (the paper's 60 MB set is page-cached, so
    the default excludes it).
    """
    out: Dict[Tuple[str, str], float] = {}
    for chunking in ("wfc", "sc", "cdc"):
        for hash_name in ("rabin12", "md5", "sha1"):
            cycles_pb = cpu.hash_cycles_per_byte[hash_name]
            if chunking == "cdc":
                cycles_pb += cpu.cdc_scan_cycles_per_byte
            per_chunk = (0 if chunking == "wfc"
                         else cpu.cycles_per_chunk / chunk_size)
            seconds_per_byte = (cycles_pb + per_chunk) / cpu.frequency_hz
            if include_disk:
                seconds_per_byte += 1.0 / PAPER_DISK.sequential_read_bw
            out[(chunking, hash_name)] = 1.0 / seconds_per_byte
    return out


# ----------------------------------------------------------------------
# Figs. 7–11 — the five-scheme evaluation
# ----------------------------------------------------------------------
@dataclass
class PaperFigures:
    """All series for Figs. 7–11 from one evaluation run."""

    result: EvaluationResult
    #: Fig. 7: scheme -> cumulative cloud bytes after each session.
    fig7_cumulative_storage: Dict[str, List[int]] = field(
        default_factory=dict)
    #: Fig. 8: scheme -> DE (bytes saved/s) per session.
    fig8_efficiency: Dict[str, List[float]] = field(default_factory=dict)
    #: Fig. 9: scheme -> backup window seconds per session.
    fig9_window: Dict[str, List[float]] = field(default_factory=dict)
    #: Fig. 10: scheme -> monthly cost breakdown (paper-scale USD).
    fig10_cost: Dict[str, CostBreakdown] = field(default_factory=dict)
    #: Fig. 11: scheme -> dedup-phase energy (J) per session.
    fig11_energy: Dict[str, List[float]] = field(default_factory=dict)


def paper_figures_7_to_11(scale: float = 0.004, sessions: int = 10,
                          seed: int = 2011,
                          result: Optional[EvaluationResult] = None
                          ) -> PaperFigures:
    """Run (or reuse) the evaluation and extract every figure series.

    Byte and cost outputs are scaled back up to the paper's 351 GB
    workload; time/energy outputs are likewise multiplied by 1/scale so
    they read as paper-scale estimates.
    """
    if result is None:
        result = run_paper_evaluation(scale=scale, sessions=sessions,
                                      seed=seed)
    up = result.scale_to_paper()
    figures = PaperFigures(result=result)
    for name, run in result.runs.items():
        figures.fig7_cumulative_storage[name] = [
            int(r.cumulative_uploaded * up) for r in run.sessions]
        figures.fig8_efficiency[name] = [
            r.efficiency for r in run.sessions]
        figures.fig9_window[name] = [
            r.window_seconds * up for r in run.sessions]
        figures.fig11_energy[name] = [
            r.energy_joules * up for r in run.sessions]
        figures.fig10_cost[name] = cloud_cost(
            stored_bytes=run.total_uploaded() * up,
            uploaded_bytes=run.total_uploaded() * up,
            put_requests=int(run.total_put_requests() * up))
    return figures
