"""Export regenerated figure data for external plotting.

The bench harness prints text tables; this module dumps the same series
as machine-readable JSON (one document for everything) and per-figure
CSV files, so the figures can be re-plotted with any tool without
re-running the evaluation.
"""

from __future__ import annotations

import csv
import io
import json
import os
from pathlib import Path
from typing import Dict

from repro.analysis.figures import PaperFigures

__all__ = ["figures_to_json", "write_figures", "figure_csv"]


def figures_to_json(figures: PaperFigures) -> Dict:
    """All Fig. 7–11 series as one JSON-serialisable document."""
    return {
        "scale": figures.result.scale,
        "session_bytes": figures.result.session_bytes,
        "schemes": figures.result.scheme_names,
        "fig7_cumulative_storage_bytes": figures.fig7_cumulative_storage,
        "fig8_efficiency_bytes_saved_per_second": figures.fig8_efficiency,
        "fig9_backup_window_seconds": figures.fig9_window,
        "fig10_monthly_cost_usd": {
            scheme: {"storage": b.storage, "transfer": b.transfer,
                     "requests": b.requests, "total": b.total}
            for scheme, b in figures.fig10_cost.items()},
        "fig11_dedup_energy_joules": figures.fig11_energy,
    }


def figure_csv(series: Dict[str, list]) -> str:
    """Render a per-session scheme series dict as CSV text."""
    schemes = list(series)
    sessions = len(next(iter(series.values()))) if schemes else 0
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["session"] + schemes)
    for i in range(sessions):
        writer.writerow([i + 1] + [series[s][i] for s in schemes])
    return buffer.getvalue()


def write_figures(figures: PaperFigures,
                  out_dir: str | os.PathLike) -> list[str]:
    """Write ``figures.json`` plus one CSV per figure; returns paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written = []

    json_path = out / "figures.json"
    json_path.write_text(json.dumps(figures_to_json(figures), indent=2))
    written.append(str(json_path))

    for name, series in (
            ("fig7_cumulative_storage", figures.fig7_cumulative_storage),
            ("fig8_efficiency", figures.fig8_efficiency),
            ("fig9_backup_window", figures.fig9_window),
            ("fig11_energy", figures.fig11_energy)):
        path = out / f"{name}.csv"
        path.write_text(figure_csv(series))
        written.append(str(path))

    cost_path = out / "fig10_cost.csv"
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["scheme", "storage_usd", "transfer_usd",
                     "requests_usd", "total_usd"])
    for scheme, b in figures.fig10_cost.items():
        writer.writerow([scheme, b.storage, b.transfer, b.requests,
                         b.total])
    cost_path.write_text(buffer.getvalue())
    written.append(str(cost_path))
    return written
