"""Exception hierarchy for the AA-Dedupe reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing subsystems.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "ChunkingError",
    "HashError",
    "IndexError_",
    "ContainerError",
    "ContainerFormatError",
    "CloudError",
    "TransientCloudError",
    "PermanentCloudError",
    "ObjectNotFound",
    "BackupError",
    "RestoreError",
    "IntegrityError",
    "WorkloadError",
    "SimulationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigError(ReproError):
    """Raised when a configuration object contains invalid values."""


class ChunkingError(ReproError):
    """Raised when a chunker is misconfigured or fed invalid input."""


class HashError(ReproError):
    """Raised for unknown hash names or invalid hash parameters."""


class IndexError_(ReproError):
    """Raised by chunk-index implementations (name avoids the builtin)."""


class ContainerError(ReproError):
    """Raised by the container manager for invalid operations."""


class ContainerFormatError(ContainerError):
    """Raised when container bytes fail to parse or fail CRC validation."""


class CloudError(ReproError):
    """Raised by cloud storage backends."""


class TransientCloudError(CloudError):
    """A cloud failure expected to clear on retry (timeouts, 5xx, lost
    acks).  :class:`repro.cloud.retry.RetryPolicy` always retries these."""


class PermanentCloudError(CloudError):
    """A cloud failure that retrying cannot fix (auth, invalid request,
    a key the fault injector has condemned).  Never retried."""


class ObjectNotFound(PermanentCloudError, KeyError):
    """Raised when a requested cloud object key does not exist.

    The missing key is available as :attr:`key`; ``str()`` renders a
    readable message rather than ``KeyError``'s quoted-key form.
    """

    def __init__(self, key: str) -> None:
        super().__init__(f"cloud object not found: {key!r}")
        self.key = key

    def __str__(self) -> str:  # KeyError.__str__ would repr() args[0]
        return self.args[0]


class BackupError(ReproError):
    """Raised when a backup session cannot be completed."""


class RestoreError(ReproError):
    """Raised when a restore cannot be completed."""


class IntegrityError(RestoreError):
    """Raised when restored data fails fingerprint/CRC verification."""


class DeltaError(ReproError):
    """Raised by the delta codec on malformed or inconsistent deltas."""


class WorkloadError(ReproError):
    """Raised by the synthetic workload generators."""


class SimulationError(ReproError):
    """Raised by the virtual-time simulation substrate."""
