"""Exception hierarchy for the AA-Dedupe reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing subsystems.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "ChunkingError",
    "HashError",
    "IndexError_",
    "ContainerError",
    "ContainerFormatError",
    "CloudError",
    "ObjectNotFound",
    "BackupError",
    "RestoreError",
    "IntegrityError",
    "WorkloadError",
    "SimulationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigError(ReproError):
    """Raised when a configuration object contains invalid values."""


class ChunkingError(ReproError):
    """Raised when a chunker is misconfigured or fed invalid input."""


class HashError(ReproError):
    """Raised for unknown hash names or invalid hash parameters."""


class IndexError_(ReproError):
    """Raised by chunk-index implementations (name avoids the builtin)."""


class ContainerError(ReproError):
    """Raised by the container manager for invalid operations."""


class ContainerFormatError(ContainerError):
    """Raised when container bytes fail to parse or fail CRC validation."""


class CloudError(ReproError):
    """Raised by cloud storage backends."""


class ObjectNotFound(CloudError, KeyError):
    """Raised when a requested cloud object key does not exist."""


class BackupError(ReproError):
    """Raised when a backup session cannot be completed."""


class RestoreError(ReproError):
    """Raised when a restore cannot be completed."""


class IntegrityError(RestoreError):
    """Raised when restored data fails fingerprint/CRC verification."""


class WorkloadError(ReproError):
    """Raised by the synthetic workload generators."""


class SimulationError(ReproError):
    """Raised by the virtual-time simulation substrate."""
