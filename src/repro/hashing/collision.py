"""Fingerprint collision-probability analysis.

The paper's hash-selection argument (Sec. III-D): a *weak* (short) hash is
acceptable whenever the birthday-bound collision probability over the
dataset's chunk population is far below the rate of undetected hardware
errors.  This module provides the arithmetic used both in documentation
and in tests that sanity-check the policy table.
"""

from __future__ import annotations

import math

__all__ = [
    "collision_probability",
    "required_bits",
    "safe_for_dataset",
    "HARDWARE_ERROR_RATE",
]

#: Commonly cited undetected-bit-error probability for commodity hardware
#: per backup-scale operation (conservative: disk UBER ~1e-15/bit read gives
#: far higher whole-job error probability than this for TB jobs).
HARDWARE_ERROR_RATE = 1e-15


def collision_probability(n_items: int, bits: int) -> float:
    """Birthday-bound probability of ≥1 fingerprint collision.

    ``P ≈ 1 - exp(-n(n-1) / 2^(bits+1))``, computed stably for tiny
    exponents.  ``n_items`` is the number of *distinct* chunks or files
    fingerprinted under the same hash.
    """
    if n_items < 2:
        return 0.0
    exponent = -(n_items * (n_items - 1)) / float(2 ** (bits + 1))
    return -math.expm1(exponent)


def required_bits(n_items: int, target_probability: float) -> int:
    """Smallest digest width (bits) keeping collision odds ≤ target.

    Inverts the birthday bound: ``2^(b+1) ≥ n(n-1)/(-ln(1-p))``.
    """
    if n_items < 2:
        return 1
    if not (0.0 < target_probability < 1.0):
        raise ValueError("target_probability must be in (0, 1)")
    need = (n_items * (n_items - 1)) / (-math.log1p(-target_probability))
    return max(1, math.ceil(math.log2(need)) - 1)


def safe_for_dataset(n_items: int, bits: int,
                     hardware_error_rate: float = HARDWARE_ERROR_RATE) -> bool:
    """Paper Sec. III-D criterion: collisions rarer than hardware errors.

    Example: a TB-scale PC dataset has ~10^6 compressed files; a 96-bit
    extended Rabin hash gives P ≈ 6e-18 < 1e-15, so WFC may safely use it.
    """
    return collision_probability(n_items, bits) < hardware_error_rate
