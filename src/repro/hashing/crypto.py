"""Cryptographic fingerprinters: MD5 (16 B) and SHA-1 (20 B).

AA-Dedupe uses MD5 for SC chunks of static files and SHA-1 for CDC chunks
of dynamic files (paper Sec. III-D); the baselines Avamar and SAM use
SHA-1 throughout.  Wrappers delegate to :mod:`hashlib` (OpenSSL), so the
real engine is fast; the *modelled* cost of each hash on the paper's
2.53 GHz laptop lives in :mod:`repro.simulate.cpumodel`.
"""

from __future__ import annotations

import hashlib

from repro.hashing.base import Fingerprinter, register_hash

__all__ = ["MD5Fingerprinter", "SHA1Fingerprinter"]


class MD5Fingerprinter(Fingerprinter):
    """16-byte MD5 digest — the SC fingerprint for static uncompressed files."""

    name = "md5"
    digest_size = 16

    def hash(self, data: bytes) -> bytes:
        """Return ``md5(data)`` (16 bytes)."""
        return hashlib.md5(data).digest()


class SHA1Fingerprinter(Fingerprinter):
    """20-byte SHA-1 digest — the CDC fingerprint for dynamic files."""

    name = "sha1"
    digest_size = 20

    def hash(self, data: bytes) -> bytes:
        """Return ``sha1(data)`` (20 bytes)."""
        return hashlib.sha1(data).digest()


register_hash("md5", MD5Fingerprinter)
register_hash("sha1", SHA1Fingerprinter)
