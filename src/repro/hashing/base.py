"""Fingerprinter interface and name registry.

A *fingerprinter* maps a chunk's bytes to a short digest used as its
identity in the chunk index.  The registry lets scheme policies refer to
hashes by name (``"rabin12"``, ``"md5"``, ``"sha1"``), which is how the
application-aware policy table (paper Fig. 6) is expressed in
:mod:`repro.classify.policy`.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict

from repro.errors import HashError

__all__ = ["Fingerprinter", "register_hash", "get_hash",
           "available_hashes", "hash_for_digest_len"]


class Fingerprinter(abc.ABC):
    """Abstract chunk fingerprint function.

    Subclasses must set :attr:`name` and :attr:`digest_size` (bytes) and
    implement :meth:`hash`.  Instances are stateless and safe to share
    across threads.
    """

    #: Registry name, e.g. ``"md5"``.
    name: str = ""
    #: Digest length in bytes (12 for extended Rabin, 16 MD5, 20 SHA-1).
    digest_size: int = 0

    @abc.abstractmethod
    def hash(self, data: bytes) -> bytes:
        """Return the ``digest_size``-byte fingerprint of ``data``."""

    @property
    def bits(self) -> int:
        """Digest width in bits."""
        return self.digest_size * 8

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r} bits={self.bits}>"


_REGISTRY: Dict[str, Callable[[], Fingerprinter]] = {}
_INSTANCES: Dict[str, Fingerprinter] = {}


def register_hash(name: str, factory: Callable[[], Fingerprinter]) -> None:
    """Register a fingerprinter factory under ``name``.

    Used by the concrete modules at import time; downstream users may also
    register custom hashes (e.g. a BLAKE wrapper) to extend the policy
    table without touching library code.
    """
    if name in _REGISTRY:
        raise HashError(f"hash {name!r} already registered")
    _REGISTRY[name] = factory


def get_hash(name: str) -> Fingerprinter:
    """Return the (cached, shared) fingerprinter registered as ``name``."""
    try:
        inst = _INSTANCES.get(name)
        if inst is None:
            inst = _INSTANCES[name] = _REGISTRY[name]()
        return inst
    except KeyError:
        raise HashError(
            f"unknown hash {name!r}; available: {sorted(_REGISTRY)}") from None


def available_hashes() -> list[str]:
    """Names of all registered fingerprinters, sorted."""
    return sorted(_REGISTRY)


def hash_for_digest_len(digest_len: int):
    """Fingerprinter whose digest is ``digest_len`` bytes, or ``None``.

    Stored fingerprints are self-describing by width (12 B extended
    Rabin / 16 B MD5 / 20 B SHA-1), which is how restore and scrub pick
    the verification hash with no side channel.  Resolution is driven
    by the registry itself — a downstream-registered hash with a new
    digest width is picked up automatically — instead of per-caller
    literal tables that drift apart.  Ambiguity (two registered hashes
    of equal width) resolves to the alphabetically first name, keeping
    the answer deterministic.
    """
    for name in available_hashes():
        fingerprinter = get_hash(name)
        if fingerprinter.digest_size == digest_len:
            return fingerprinter
    return None
