"""Rolling Rabin window over a fixed-width byte window.

Content-defined chunking slides a ``window``-byte Rabin fingerprint over
the stream one byte at a time (the paper uses a 48-byte window with 1-byte
step) and declares a chunk boundary wherever ``fp & mask == magic``.

Two implementations are provided:

* :class:`RollingRabin` — streaming push/roll API, pure Python, exact and
  suitable for incremental use and as a test oracle;
* :func:`window_fingerprints` — batch NumPy evaluation of *all* window
  positions of a buffer at once.  Because reduction mod ``P`` is linear
  over GF(2), the fingerprint of the window starting at ``i`` equals::

      XOR_{k=0}^{W-1}  T_k[data[i + k]],   T_k[b] = (b << 8(W-1-k)) mod P

  i.e. 48 table gathers + XORs over the whole buffer — the vectorisation
  the HPC guides prescribe for serial-looking hot loops.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ChunkingError
from repro.hashing.rabin import POLY64, _RabinCore, make_shift_table

__all__ = ["RollingRabin", "window_fingerprints", "window_tables"]


class RollingRabin:
    """Streaming Rabin fingerprint of the last ``window`` bytes pushed.

    >>> r = RollingRabin(window=48)
    >>> for b in bytes(range(48)):
    ...     _ = r.push(b)
    >>> r.value == RollingRabin.of(bytes(range(48)), window=48)
    True
    """

    def __init__(self, window: int = 48, poly: int = POLY64) -> None:
        if window < 1:
            raise ChunkingError("window must be >= 1")
        self.window = window
        self._core = _RabinCore(poly)
        # Popping the byte that leaves the window removes its contribution
        # b * x^(8*window) (it has been shifted once more by the push).
        self._pop = make_shift_table(poly, 8 * window)
        self._buf = bytearray()
        self._pos = 0
        #: Current fingerprint of the most recent ``window`` bytes.
        self.value = 0

    @classmethod
    def of(cls, data: bytes, window: int = 48, poly: int = POLY64) -> int:
        """Fingerprint of exactly the last ``window`` bytes of ``data``."""
        r = cls(window=window, poly=poly)
        for b in data[-window:] if len(data) >= window else data:
            r.push(b)
        return r.value

    def push(self, byte: int) -> int:
        """Slide the window forward by one byte; return the new fingerprint.

        Until ``window`` bytes have been pushed the fingerprint covers the
        partial window (matching the conventional CDC warm-up behaviour).
        """
        fp = self._core.append_byte(self.value, byte)
        if len(self._buf) < self.window:
            self._buf.append(byte)
        else:
            old = self._buf[self._pos]
            self._buf[self._pos] = byte
            self._pos = (self._pos + 1) % self.window
            fp ^= self._pop[old]
        self.value = fp
        return fp

    def reset(self) -> None:
        """Clear the window (used when a chunk boundary is emitted)."""
        self._buf.clear()
        self._pos = 0
        self.value = 0


def window_tables(window: int, poly: int = POLY64) -> np.ndarray:
    """Return the ``(window, 256)`` uint64 table ``T_k[b]`` for the scan.

    ``T_k[b] = (b << 8*(window-1-k)) mod poly`` — byte ``k`` of the window
    contributes this value to the window fingerprint.  The table for the
    paper's 48-byte window is 48·256·8 B = 96 KiB, i.e. L2-resident.
    """
    tables = np.empty((window, 256), dtype=np.uint64)
    for k in range(window):
        tables[k, :] = make_shift_table(poly, 8 * (window - 1 - k))
    return tables


# Cache: (window, poly) -> table array (tables are immutable once built).
_TABLE_CACHE: dict[tuple[int, int], np.ndarray] = {}


def window_fingerprints(data: bytes | np.ndarray, window: int = 48,
                        poly: int = POLY64) -> np.ndarray:
    """Fingerprints of every complete ``window``-byte window of ``data``.

    Returns a uint64 array of length ``len(data) - window + 1`` where entry
    ``i`` is the Rabin fingerprint of ``data[i : i + window]`` — bit-exact
    with :class:`RollingRabin` (property-tested).  Runs in
    ``O(window)`` vectorised passes over the buffer.
    """
    arr = np.frombuffer(data, dtype=np.uint8) if not isinstance(
        data, np.ndarray) else data.astype(np.uint8, copy=False)
    n = arr.shape[0]
    if n < window:
        return np.empty(0, dtype=np.uint64)
    key = (window, poly)
    tables = _TABLE_CACHE.get(key)
    if tables is None:
        tables = _TABLE_CACHE[key] = window_tables(window, poly)
    out = tables[0][arr[: n - window + 1]]
    for k in range(1, window):
        # In-place XOR accumulate; the gather reads a strided view (no copy).
        out ^= tables[k][arr[k : n - window + 1 + k]]
    return out
