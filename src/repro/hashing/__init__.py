"""Fingerprinting substrate: Rabin (GF(2)) fingerprints, MD5/SHA-1, and
collision-probability analysis.

AA-Dedupe's hash-selection policy (paper Sec. III-D) pairs each chunking
granularity with the cheapest hash whose collision probability is still
negligible at PC scale:

* **WFC** (whole compressed files) → 12-byte *extended Rabin* fingerprint,
* **SC** (8 KiB static chunks)     → 16-byte MD5,
* **CDC** (dynamic content chunks) → 20-byte SHA-1.

All fingerprinters implement :class:`repro.hashing.base.Fingerprinter` and
are discoverable by name through :func:`repro.hashing.base.get_hash`.
"""

from repro.hashing.base import (
    Fingerprinter,
    get_hash,
    register_hash,
    available_hashes,
    hash_for_digest_len,
)
from repro.hashing.rabin import (
    RabinFingerprinter,
    ExtendedRabinFingerprinter,
    POLY64,
    POLY32,
    is_irreducible,
)
from repro.hashing.rolling import RollingRabin, window_fingerprints
from repro.hashing.crypto import MD5Fingerprinter, SHA1Fingerprinter
from repro.hashing.collision import (
    collision_probability,
    required_bits,
    safe_for_dataset,
)

__all__ = [
    "Fingerprinter",
    "get_hash",
    "register_hash",
    "available_hashes",
    "hash_for_digest_len",
    "RabinFingerprinter",
    "ExtendedRabinFingerprinter",
    "POLY64",
    "POLY32",
    "is_irreducible",
    "RollingRabin",
    "window_fingerprints",
    "MD5Fingerprinter",
    "SHA1Fingerprinter",
    "collision_probability",
    "required_bits",
    "safe_for_dataset",
]
