"""Rabin fingerprints: polynomial hashing over GF(2).

A Rabin fingerprint treats a byte string ``b_0 b_1 ... b_{n-1}`` as the
polynomial ``m(x) = sum_i b_i(x) * x^{8(n-1-i)}`` over GF(2) and defines
``fp(m) = m(x) mod P(x)`` for a fixed irreducible polynomial ``P`` of
degree ``d``; the fingerprint fits in ``d`` bits.  Because reduction mod
``P`` is *linear over GF(2)*, fingerprints compose with XOR — the property
both the rolling window (:mod:`repro.hashing.rolling`) and the vectorised
CDC boundary scan (:mod:`repro.chunking.cdc`) exploit.

The paper uses a *96-bit extended Rabin hash* (12 bytes) as the whole-file
fingerprint for compressed files: cheap to compute, and at PC dataset
scale (≲ millions of files) its collision probability is orders of
magnitude below hardware error rates (see
:mod:`repro.hashing.collision`).  We realise the 96-bit digest as the
concatenation of two independent fingerprints over distinct irreducible
polynomials of degree 64 and 32.
"""

from __future__ import annotations

from functools import lru_cache
from repro.errors import HashError
from repro.hashing.base import Fingerprinter, register_hash

__all__ = [
    "POLY64",
    "POLY32",
    "poly_mod",
    "poly_mulmod",
    "is_irreducible",
    "make_shift_table",
    "RabinFingerprinter",
    "ExtendedRabinFingerprinter",
]

#: Irreducible degree-64 polynomial x^64 + x^4 + x^3 + x + 1 (standard
#: GF(2^64) pentanomial).  Verified by ``is_irreducible`` in the test suite.
POLY64 = (1 << 64) | 0b11011

#: Irreducible degree-32 polynomial x^32 + x^7 + x^3 + x^2 + 1 (standard
#: GF(2^32) pentanomial), used for the low 4 bytes of the extended hash.
POLY32 = (1 << 32) | 0x8D


def _degree(p: int) -> int:
    """Degree of the GF(2) polynomial encoded in integer ``p``."""
    return p.bit_length() - 1


def poly_mod(a: int, p: int) -> int:
    """Reduce polynomial ``a`` modulo ``p`` over GF(2) (bitwise long division)."""
    dp = _degree(p)
    da = a.bit_length() - 1
    while da >= dp:
        a ^= p << (da - dp)
        da = a.bit_length() - 1
    return a


def poly_mulmod(a: int, b: int, p: int) -> int:
    """Carry-less multiply ``a * b`` then reduce modulo ``p`` over GF(2)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
    return poly_mod(result, p)


def _poly_gcd(a: int, b: int) -> int:
    """GCD of two GF(2) polynomials (Euclid with poly_mod)."""
    while b:
        a, b = b, poly_mod(a, b)
    return a


def is_irreducible(p: int) -> bool:
    """Rabin's irreducibility test for a GF(2) polynomial ``p``.

    ``p`` of degree ``n`` is irreducible iff ``x^(2^n) == x (mod p)`` and,
    for every prime divisor ``q`` of ``n``,
    ``gcd(x^(2^(n/q)) - x, p) == 1``.
    """
    n = _degree(p)
    if n <= 0:
        return False

    def x_pow_pow2(k: int) -> int:
        # Compute x^(2^k) mod p by repeated squaring of x.
        r = 0b10  # the polynomial "x"
        for _ in range(k):
            r = poly_mulmod(r, r, p)
        return r

    if x_pow_pow2(n) != 0b10:
        return False
    # Prime divisors of n.
    primes, m, d = [], n, 2
    while d * d <= m:
        if m % d == 0:
            primes.append(d)
            while m % d == 0:
                m //= d
        d += 1
    if m > 1:
        primes.append(m)
    for q in primes:
        h = x_pow_pow2(n // q) ^ 0b10  # x^(2^(n/q)) - x  (== XOR over GF(2))
        if _poly_gcd(h, p) != 1:
            return False
    return True


@lru_cache(maxsize=None)
def make_shift_table(poly: int, shift_bits: int) -> tuple:
    """Precompute ``T[b] = (b << shift_bits) mod poly`` for all bytes ``b``.

    These 256-entry tables are the workhorse of every table-driven Rabin
    operation: appending a byte, popping the oldest window byte, and the
    vectorised window scan all reduce to XORs of table entries.
    """
    return tuple(poly_mod(b << shift_bits, poly) for b in range(256))


class _RabinCore:
    """Shared table-driven state for one polynomial: byte-append tables."""

    def __init__(self, poly: int) -> None:
        if _degree(poly) < 8:
            raise HashError("Rabin polynomial degree must be >= 8")
        self.poly = poly
        self.degree = _degree(poly)
        self.mask = (1 << self.degree) - 1
        # Appending byte b to fingerprint f:
        #   f' = ((f << 8) | b) mod P
        #      = ((f_low << 8) | b) ^ T_app[f_top8]
        # where f_top8 are the 8 bits shifted past the degree.
        self._app = make_shift_table(poly, self.degree)
        self._top_shift = self.degree - 8

    def append_byte(self, fp: int, byte: int) -> int:
        """Fingerprint of ``message + bytes([byte])`` given ``fp`` of message."""
        top = fp >> self._top_shift
        return (((fp << 8) & self.mask) | byte) ^ self._app[top]

    def digest_bytes(self, data: bytes, fp: int = 0) -> int:
        """Fingerprint of ``data`` starting from state ``fp``.

        Small inputs use the byte-at-a-time loop; large ones switch to
        the vectorised block path (:meth:`digest_bytes_fast`), which is
        bit-identical (property-tested).
        """
        if len(data) >= 4096:
            return self.digest_bytes_fast(data, fp)
        append = self.append_byte
        for b in data:
            fp = append(fp, b)
        return fp

    # -- vectorised block digest ----------------------------------------
    #: Bytes per vectorised block (tables: (_BLOCK+8) x 256 entries).
    _BLOCK = 512

    def _fast_tables(self):
        """Lazily build ``S_m[b] = (b << 8m) mod P`` for m < BLOCK+8.

        Built iteratively (``S_{m+1}[b] = shift8(S_m[b])``), so each of
        the ~133k entries costs O(1) small-int work instead of a long
        polynomial division.
        """
        tables = getattr(self, "_fast", None)
        if tables is not None:
            return tables
        import numpy as np
        shift8 = self.append_byte  # appending 0x00 == multiply by x^8
        rows = [list(range(256))]
        for _ in range(self._BLOCK + 7):
            rows.append([shift8(v, 0) for v in rows[-1]])
        # T[k] = S_{BLOCK-1-k}: contribution of block byte k.
        block_tables = np.array(rows[self._BLOCK - 1::-1], dtype=np.uint64)
        # C[j] = S_{BLOCK+j}: folds byte j of the running fingerprint.
        carry_tables = rows[self._BLOCK: self._BLOCK + 8]
        self._fast = (block_tables, carry_tables)
        return self._fast

    def digest_bytes_fast(self, data: bytes, fp: int = 0) -> int:
        """Vectorised fingerprint: per-block NumPy gathers + serial fold.

        GF(2) linearity makes each ``BLOCK``-byte block's fingerprint the
        XOR of per-position table entries — computed for *all* blocks at
        once with ``BLOCK`` vectorised gathers; blocks then fold serially
        via ``fp' = fp·x^{8·BLOCK} ⊕ block_fp`` using 8 byte tables.
        """
        import numpy as np
        n = len(data)
        block = self._BLOCK
        head = n % block
        for b in data[:head]:
            fp = self.append_byte(fp, b)
        if n == head:
            return fp
        block_tables, carry = self._fast_tables()
        arr = np.frombuffer(data, dtype=np.uint8, offset=head).reshape(
            -1, block)
        acc = block_tables[0][arr[:, 0]]
        for k in range(1, block):
            acc ^= block_tables[k][arr[:, k]]
        c0, c1, c2, c3, c4, c5, c6, c7 = carry
        for block_fp in acc.tolist():
            fp = (c0[fp & 255] ^ c1[(fp >> 8) & 255]
                  ^ c2[(fp >> 16) & 255] ^ c3[(fp >> 24) & 255]
                  ^ c4[(fp >> 32) & 255] ^ c5[(fp >> 40) & 255]
                  ^ c6[(fp >> 48) & 255] ^ c7[fp >> 56]
                  ^ block_fp)
        return fp


class RabinFingerprinter(Fingerprinter):
    """Plain Rabin fingerprinter over one irreducible polynomial.

    ``digest_size`` is ``degree/8`` bytes (8 for :data:`POLY64`).  Suitable
    as a *weak* fingerprint where the dataset is small enough for the
    birthday bound to be negligible.
    """

    def __init__(self, poly: int = POLY64, name: str = "rabin64") -> None:
        self._core = _RabinCore(poly)
        if self._core.degree % 8:
            raise HashError("polynomial degree must be a multiple of 8")
        self.name = name
        self.digest_size = self._core.degree // 8

    def hash(self, data: bytes) -> bytes:
        """Return the big-endian fingerprint bytes of ``data``."""
        fp = self._core.digest_bytes(data)
        return fp.to_bytes(self.digest_size, "big")

    def hash_int(self, data: bytes) -> int:
        """Return the fingerprint as an integer (used by tests/tools)."""
        return self._core.digest_bytes(data)


class ExtendedRabinFingerprinter(Fingerprinter):
    """96-bit (12-byte) *extended* Rabin hash: 64-bit ⊕ independent 32-bit.

    This is the fingerprint AA-Dedupe assigns to whole compressed files
    (WFC); the extension to 96 bits keeps the collision probability for
    TB-scale personal datasets "smaller than the probability of hardware
    error by many orders of magnitude" (paper Sec. III-D).
    """

    name = "rabin12"
    digest_size = 12

    def __init__(self, poly_hi: int = POLY64, poly_lo: int = POLY32) -> None:
        self._hi = _RabinCore(poly_hi)
        self._lo = _RabinCore(poly_lo)
        if self._hi.degree + self._lo.degree != 96:
            raise HashError("extended Rabin polynomials must total 96 bits")

    def hash(self, data: bytes) -> bytes:
        """Concatenate the 64-bit and 32-bit fingerprints of ``data``."""
        hi = self._hi.digest_bytes(data)
        lo = self._lo.digest_bytes(data)
        return hi.to_bytes(8, "big") + lo.to_bytes(4, "big")


register_hash("rabin64", lambda: RabinFingerprinter(POLY64, "rabin64"))
register_hash("rabin12", ExtendedRabinFingerprinter)
