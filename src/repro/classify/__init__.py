"""Application awareness: file-type classification and per-type policy.

This package encodes the paper's central idea — treating applications
differently — as data:

* :mod:`repro.classify.filetype` — the registry of application types
  (the 12 evaluated apps plus common extras) and their category:
  *compressed*, *static uncompressed*, or *dynamic uncompressed*;
* :mod:`repro.classify.magic` — content sniffing for extensionless files;
* :mod:`repro.classify.policy` — the Fig. 6 policy table mapping category
  → (chunking method, fingerprint hash).
"""

from repro.classify.filetype import (
    Category,
    AppType,
    classify_path,
    classify_name,
    app_for_extension,
    register_app_type,
    known_app_types,
    UNKNOWN,
)
from repro.classify.magic import sniff_bytes, classify_file
from repro.classify.policy import (
    DedupPolicy,
    policy_for_category,
    policy_for_path,
    AA_POLICY_TABLE,
)

__all__ = [
    "Category",
    "AppType",
    "classify_path",
    "classify_name",
    "app_for_extension",
    "register_app_type",
    "known_app_types",
    "UNKNOWN",
    "sniff_bytes",
    "classify_file",
    "DedupPolicy",
    "policy_for_category",
    "policy_for_path",
    "AA_POLICY_TABLE",
]
