"""Application-type registry and extension-based classification.

The paper divides files into three categories by whether the format is
compressed and whether it is frequently edited (Sec. III-C):

* **compressed** (AVI, MP3, ISO, DMG, RAR, JPG): near-zero sub-file
  redundancy → WFC + 12 B Rabin;
* **static uncompressed** (PDF, EXE, VMDK): rarely edited / block-aligned
  updates → SC + MD5;
* **dynamic uncompressed** (DOC, TXT, PPT): frequently edited → CDC + SHA-1.

The registry is extensible (``register_app_type``) so deployments can add
formats; unknown extensions fall back to :data:`UNKNOWN`, which the policy
table treats as dynamic uncompressed — the conservative choice (maximum
redundancy detection, strongest hash).
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = [
    "Category",
    "AppType",
    "UNKNOWN",
    "PAPER_APPS",
    "register_app_type",
    "app_for_extension",
    "classify_name",
    "classify_path",
    "known_app_types",
]


class Category(enum.Enum):
    """The three deduplication categories of the paper (plus tiny files,
    which are filtered before classification ever matters)."""

    COMPRESSED = "compressed"
    STATIC = "static_uncompressed"
    DYNAMIC = "dynamic_uncompressed"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class AppType:
    """One application/file type: its label, extensions and category.

    ``label`` doubles as the subindex key in the application-aware index
    (paper Fig. 6: one small chunk index per file type).
    """

    label: str
    category: Category
    extensions: Tuple[str, ...] = field(default_factory=tuple)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label


#: Catch-all type for unknown extensions; treated as dynamic uncompressed.
UNKNOWN = AppType("unknown", Category.DYNAMIC, ())

#: The twelve application types of the paper's evaluation (Table 1/Fig. 6).
PAPER_APPS: Tuple[AppType, ...] = (
    AppType("avi", Category.COMPRESSED, ("avi",)),
    AppType("mp3", Category.COMPRESSED, ("mp3",)),
    AppType("iso", Category.COMPRESSED, ("iso",)),
    AppType("dmg", Category.COMPRESSED, ("dmg",)),
    AppType("rar", Category.COMPRESSED, ("rar",)),
    AppType("jpg", Category.COMPRESSED, ("jpg", "jpeg")),
    AppType("pdf", Category.STATIC, ("pdf",)),
    AppType("exe", Category.STATIC, ("exe", "dll", "so")),
    AppType("vmdk", Category.STATIC, ("vmdk", "vdi", "qcow2", "img")),
    AppType("doc", Category.DYNAMIC, ("doc", "rtf", "odt")),
    AppType("txt", Category.DYNAMIC, ("txt", "md", "log", "csv", "html",
                                      "xml", "json", "py", "c", "h", "java",
                                      "tex")),
    AppType("ppt", Category.DYNAMIC, ("ppt", "xls", "vsd")),
)

#: Additional common formats so the tool is useful on real directories.
_EXTRA_APPS: Tuple[AppType, ...] = (
    AppType("zip", Category.COMPRESSED, ("zip", "gz", "bz2", "xz", "7z",
                                         "tgz", "jar", "docx", "xlsx",
                                         "pptx", "apk", "epub")),
    AppType("png", Category.COMPRESSED, ("png", "gif", "webp", "heic")),
    AppType("video", Category.COMPRESSED, ("mp4", "mkv", "mov", "wmv",
                                           "flv", "m4v")),
    AppType("audio", Category.COMPRESSED, ("aac", "ogg", "flac", "m4a",
                                           "wma", "wav")),
)

_BY_EXT: Dict[str, AppType] = {}
_BY_LABEL: Dict[str, AppType] = {}


def register_app_type(app: AppType, *, override: bool = False) -> None:
    """Add ``app`` to the registry, mapping each of its extensions.

    With ``override=False`` (default) an extension collision raises
    ``ValueError`` so library and user registrations cannot silently
    shadow each other.
    """
    for ext in app.extensions:
        ext = ext.lower().lstrip(".")
        if ext in _BY_EXT and not override:
            raise ValueError(f"extension {ext!r} already registered "
                             f"to {_BY_EXT[ext].label!r}")
        _BY_EXT[ext] = app
    _BY_LABEL[app.label] = app


for _app in PAPER_APPS + _EXTRA_APPS:
    register_app_type(_app)
_BY_LABEL[UNKNOWN.label] = UNKNOWN


def app_for_extension(ext: str) -> AppType:
    """AppType for a bare extension (``"mp3"`` or ``".MP3"``)."""
    return _BY_EXT.get(ext.lower().lstrip("."), UNKNOWN)


def classify_name(name: str) -> AppType:
    """Classify by file *name* (extension only, no content access)."""
    _, dot, ext = name.rpartition(".")
    if not dot:
        return UNKNOWN
    return app_for_extension(ext)


def classify_path(path: str | os.PathLike) -> AppType:
    """Classify a filesystem path by its extension."""
    return classify_name(os.fspath(path))


def known_app_types() -> Tuple[AppType, ...]:
    """All registered application types (stable order by label)."""
    return tuple(sorted(set(_BY_LABEL.values()), key=lambda a: a.label))
