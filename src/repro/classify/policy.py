"""The intelligent-chunking policy table (paper Fig. 6).

Maps each :class:`~repro.classify.filetype.Category` to its chunking
method and fingerprint hash:

===================  =======  ==================  ===========
Category             Chunker  Hash                Digest size
===================  =======  ==================  ===========
compressed           WFC      extended Rabin      12 B
static uncompressed  SC 8KiB  MD5                 16 B
dynamic uncompressed CDC 8KiB SHA-1               20 B
===================  =======  ==================  ===========

A :class:`DedupPolicy` is a *description* (names + parameters); the real
engine instantiates chunkers/hashes from it, and the trace engine reads
the very same description to charge modelled CPU costs — one source of
truth for both layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.chunking import Chunker, RabinCDC, StaticChunker, WholeFileChunker
from repro.classify.filetype import AppType, Category, classify_path
from repro.errors import ConfigError
from repro.hashing import Fingerprinter, get_hash
from repro.util.units import KIB

__all__ = ["DedupPolicy", "AA_POLICY_TABLE", "policy_for_category",
           "policy_for_path", "make_chunker"]


@dataclass(frozen=True)
class DedupPolicy:
    """Declarative (chunking, hashing) choice for one file category."""

    #: ``"wfc"``, ``"sc"`` or ``"cdc"``.
    chunker: str
    #: Registered hash name (``"rabin12"``, ``"md5"``, ``"sha1"``).
    hash_name: str
    #: Chunker keyword parameters (sizes in bytes).
    chunker_params: Mapping[str, int] = field(default_factory=dict)

    def make_chunker(self) -> Chunker:
        """Instantiate the configured chunker."""
        return make_chunker(self.chunker, dict(self.chunker_params))

    def fingerprinter(self) -> Fingerprinter:
        """Resolve the configured fingerprint hash (shared instance)."""
        return get_hash(self.hash_name)

    @property
    def average_chunk_size(self) -> float:
        """Nominal average chunk size (``inf`` for WFC), for cost models."""
        return self.make_chunker().average_chunk_size()


def make_chunker(name: str, params: Dict[str, int]) -> Chunker:
    """Construct a chunker by policy name with explicit parameters."""
    if name == "wfc":
        return WholeFileChunker()
    if name == "sc":
        return StaticChunker(**params) if params else StaticChunker()
    if name == "cdc":
        return RabinCDC(**params) if params else RabinCDC()
    raise ConfigError(f"unknown chunker name in policy: {name!r}")


#: The AA-Dedupe policy table — the paper's Fig. 6, as data.
AA_POLICY_TABLE: Dict[Category, DedupPolicy] = {
    Category.COMPRESSED: DedupPolicy("wfc", "rabin12"),
    Category.STATIC: DedupPolicy("sc", "md5", {"chunk_size": 8 * KIB}),
    Category.DYNAMIC: DedupPolicy(
        "cdc", "sha1",
        {"avg_size": 8 * KIB, "min_size": 2 * KIB, "max_size": 16 * KIB,
         "window": 48}),
}


def policy_for_category(category: Category,
                        table: Mapping[Category, DedupPolicy] | None = None
                        ) -> DedupPolicy:
    """Look up the policy for ``category`` (default: AA-Dedupe's table)."""
    table = AA_POLICY_TABLE if table is None else table
    try:
        return table[category]
    except KeyError:
        raise ConfigError(f"policy table lacks category {category}") from None


def policy_for_path(path: str,
                    table: Mapping[Category, DedupPolicy] | None = None
                    ) -> tuple[AppType, DedupPolicy]:
    """Classify ``path`` and return ``(app_type, policy)`` in one step."""
    app = classify_path(path)
    return app, policy_for_category(app.category, table)
