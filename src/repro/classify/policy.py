"""The intelligent-chunking policy table (paper Fig. 6).

Maps each :class:`~repro.classify.filetype.Category` to its chunking
method and fingerprint hash:

===================  =======  ==================  ===========
Category             Chunker  Hash                Digest size
===================  =======  ==================  ===========
compressed           WFC      extended Rabin      12 B
static uncompressed  SC 8KiB  MD5                 16 B
dynamic uncompressed CDC 8KiB SHA-1               20 B
===================  =======  ==================  ===========

A :class:`DedupPolicy` is a *description* (names + parameters); the real
engine instantiates chunkers/hashes from it, and the trace engine reads
the very same description to charge modelled CPU costs — one source of
truth for both layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.chunking import (CDC_FAMILY, Chunker, FastCDC, GearCDC, RabinCDC,
                            SeqCDC, StaticChunker, WholeFileChunker)
from repro.classify.filetype import AppType, Category, classify_path
from repro.errors import ConfigError
from repro.hashing import Fingerprinter, get_hash
from repro.util.units import KIB

__all__ = ["DedupPolicy", "AA_POLICY_TABLE", "policy_for_category",
           "policy_for_path", "make_chunker", "cdc_policy_variant",
           "retarget_policy"]


@dataclass(frozen=True)
class DedupPolicy:
    """Declarative (chunking, hashing) choice for one file category."""

    #: ``"wfc"``, ``"sc"`` or a CDC-family name (``"cdc"``, ``"gear"``,
    #: ``"fastcdc"``, ``"seqcdc"``).
    chunker: str
    #: Registered hash name (``"rabin12"``, ``"md5"``, ``"sha1"``).
    hash_name: str
    #: Chunker keyword parameters (sizes in bytes).
    chunker_params: Mapping[str, int] = field(default_factory=dict)

    def make_chunker(self) -> Chunker:
        """Instantiate the configured chunker."""
        return make_chunker(self.chunker, dict(self.chunker_params))

    def fingerprinter(self) -> Fingerprinter:
        """Resolve the configured fingerprint hash (shared instance)."""
        return get_hash(self.hash_name)

    @property
    def average_chunk_size(self) -> float:
        """Nominal average chunk size (``inf`` for WFC), for cost models."""
        return self.make_chunker().average_chunk_size()


#: Chunker classes addressable from a policy, by policy name.
_POLICY_CHUNKERS = {
    "wfc": WholeFileChunker,
    "sc": StaticChunker,
    "cdc": RabinCDC,
    "gear": GearCDC,
    "fastcdc": FastCDC,
    "seqcdc": SeqCDC,
}

#: Geometry parameters shared by every CDC-family chunker; anything
#: else in ``chunker_params`` (Rabin's ``window``, FastCDC's
#: ``norm_level``, …) is engine-specific and dropped when a policy is
#: re-targeted at a different family member.
_CDC_GEOMETRY = ("avg_size", "min_size", "max_size")


def make_chunker(name: str, params: Dict[str, int]) -> Chunker:
    """Construct a chunker by policy name with explicit parameters."""
    try:
        factory = _POLICY_CHUNKERS[name]
    except KeyError:
        valid = ", ".join(sorted(_POLICY_CHUNKERS))
        raise ConfigError(
            f"unknown chunker name in policy: {name!r}; "
            f"valid chunkers: {valid}") from None
    return factory(**params) if params else factory()


def cdc_policy_variant(policy: DedupPolicy, chunker: str) -> DedupPolicy:
    """Re-target a CDC-family policy at another family member.

    The shared size geometry carries over; engine-specific parameters
    (e.g. Rabin's ``window``) are dropped in favour of the new engine's
    defaults.  The fingerprint hash is unchanged — chunk identity is a
    property of the digest, not of where the cuts fall.
    """
    if chunker not in CDC_FAMILY:
        raise ConfigError(
            f"unknown CDC-family chunker {chunker!r}; "
            f"valid: {', '.join(CDC_FAMILY)}")
    if policy.chunker not in CDC_FAMILY:
        raise ConfigError(
            f"policy uses {policy.chunker!r}, not a CDC-family chunker")
    if chunker == policy.chunker:
        return policy
    params = {key: value for key, value in policy.chunker_params.items()
              if key in _CDC_GEOMETRY}
    return DedupPolicy(chunker, policy.hash_name, params)


def retarget_policy(policy: DedupPolicy, chunker: str) -> DedupPolicy:
    """Re-target ``policy`` at a CDC-family engine, from any chunkable base.

    The per-application chunker override (``SchemeConfig.app_chunkers``)
    needs one more case than :func:`cdc_policy_variant`: a static-chunked
    base (e.g. the AA table's VM-image row) re-targeted at a
    content-defined engine.  The CDC geometry is derived from the SC
    chunk size the same way the AA table relates its DYNAMIC row to its
    8 KiB average — ``min = avg/4``, ``max = avg*2`` — and the
    fingerprint hash carries over unchanged, so chunk identity stays a
    property of the digest.  WFC bases refuse: re-chunking compressed
    content buys nothing (Observation 1), so an override there is a
    configuration mistake, not a tuning choice.
    """
    if chunker not in CDC_FAMILY:
        raise ConfigError(
            f"unknown CDC-family chunker {chunker!r}; "
            f"valid: {', '.join(CDC_FAMILY)}")
    if policy.chunker in CDC_FAMILY:
        return cdc_policy_variant(policy, chunker)
    if policy.chunker == "sc":
        avg = int(policy.chunker_params.get("chunk_size", 8 * KIB))
        return DedupPolicy(chunker, policy.hash_name,
                           {"avg_size": avg,
                            "min_size": max(avg // 4, 64),
                            "max_size": avg * 2})
    raise ConfigError(
        f"cannot re-target a {policy.chunker!r} policy at {chunker!r}: "
        f"only CDC-family and SC bases have a content-defined stage "
        f"to swap")


#: The AA-Dedupe policy table — the paper's Fig. 6, as data.
AA_POLICY_TABLE: Dict[Category, DedupPolicy] = {
    Category.COMPRESSED: DedupPolicy("wfc", "rabin12"),
    Category.STATIC: DedupPolicy("sc", "md5", {"chunk_size": 8 * KIB}),
    Category.DYNAMIC: DedupPolicy(
        "cdc", "sha1",
        {"avg_size": 8 * KIB, "min_size": 2 * KIB, "max_size": 16 * KIB,
         "window": 48}),
}


def policy_for_category(category: Category,
                        table: Mapping[Category, DedupPolicy] | None = None
                        ) -> DedupPolicy:
    """Look up the policy for ``category`` (default: AA-Dedupe's table)."""
    table = AA_POLICY_TABLE if table is None else table
    try:
        return table[category]
    except KeyError:
        raise ConfigError(f"policy table lacks category {category}") from None


def policy_for_path(path: str,
                    table: Mapping[Category, DedupPolicy] | None = None
                    ) -> tuple[AppType, DedupPolicy]:
    """Classify ``path`` and return ``(app_type, policy)`` in one step."""
    app = classify_path(path)
    return app, policy_for_category(app.category, table)
