"""Content sniffing (magic numbers) for extensionless or mislabelled files.

Extension-based classification (:mod:`repro.classify.filetype`) is the
paper's mechanism — "the selection ... is entirely based on file type"
— but a deployable client needs a fallback for files without a usable
extension.  :func:`sniff_bytes` recognises the magic numbers of the
formats in the registry; :func:`classify_file` combines both signals
(extension wins when present, matching the paper's behaviour).
"""

from __future__ import annotations

import os
from typing import Optional

from repro.classify.filetype import AppType, UNKNOWN, app_for_extension, classify_path

__all__ = ["sniff_bytes", "classify_file"]

# (offset, signature bytes, extension to resolve through the registry)
_SIGNATURES: tuple[tuple[int, bytes, str], ...] = (
    (0, b"\xFF\xD8\xFF", "jpg"),
    (0, b"\x89PNG\r\n\x1a\n", "png"),
    (0, b"GIF8", "png"),          # gif shares the raster-image app type
    (0, b"%PDF", "pdf"),
    (0, b"PK\x03\x04", "zip"),
    (0, b"Rar!\x1a\x07", "rar"),
    (0, b"7z\xBC\xAF\x27\x1C", "zip"),
    (0, b"\x1f\x8b", "zip"),      # gzip
    (0, b"MZ", "exe"),
    (0, b"\x7fELF", "exe"),
    (0, b"ID3", "mp3"),
    (0, b"\xFF\xFB", "mp3"),
    (0, b"OggS", "ogg"),
    (0, b"fLaC", "flac"),
    (0, b"RIFF", "avi"),          # refined below for WAVE vs AVI
    (0, b"KDMV", "vmdk"),         # VMDK sparse extent header
    (0, b"# Disk DescriptorFile", "vmdk"),
    (0, b"koly", "dmg"),
    (32769, b"CD001", "iso"),
    (0, b"\xD0\xCF\x11\xE0\xA1\xB1\x1A\xE1", "doc"),  # OLE2 (doc/ppt/xls)
    (0, b"{\\rtf", "doc"),
)

_MAX_PREFIX = 64


def sniff_bytes(head: bytes, *, tail_probe: Optional[bytes] = None) -> AppType:
    """Classify file content from its leading bytes.

    ``head`` should contain at least the first 64 bytes.  ``tail_probe``
    optionally carries bytes at offset 32769 for ISO9660 detection (the
    only deep-offset signature).  Returns :data:`UNKNOWN` when nothing
    matches.
    """
    for offset, sig, ext in _SIGNATURES:
        if offset == 0:
            if head.startswith(sig):
                if sig == b"RIFF" and len(head) >= 12:
                    kind = head[8:12]
                    if kind == b"AVI ":
                        return app_for_extension("avi")
                    if kind == b"WAVE":
                        return app_for_extension("wav")
                    continue
                return app_for_extension(ext)
        elif tail_probe is not None and tail_probe.startswith(sig):
            return app_for_extension(ext)
    return UNKNOWN


def classify_file(path: str | os.PathLike, *,
                  sniff_fallback: bool = True) -> AppType:
    """Classify a real file: extension first, magic-number fallback.

    The extension verdict is authoritative when it resolves (paper
    behaviour); sniffing only rescues files the extension cannot place.
    IO errors degrade gracefully to :data:`UNKNOWN`.
    """
    app = classify_path(path)
    if app is not UNKNOWN or not sniff_fallback:
        return app
    try:
        with open(path, "rb") as fh:
            head = fh.read(_MAX_PREFIX)
            fh.seek(0, os.SEEK_END)
            size = fh.tell()
            tail = None
            if size >= 32769 + 5:
                fh.seek(32769)
                tail = fh.read(5)
    except OSError:
        return UNKNOWN
    return sniff_bytes(head, tail_probe=tail)
