"""Directory-backed cloud backend.

Maps object keys to files under a root directory (slashes in keys become
subdirectories; path traversal is rejected).  This is the backend the
runnable examples use: a fully working "cloud" you can inspect with `ls`.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterator, Optional

from repro.cloud.base import CloudBackend
from repro.errors import CloudError
from repro.util.io import atomic_write_bytes

__all__ = ["LocalDirectoryBackend"]


class LocalDirectoryBackend(CloudBackend):
    """Object store rooted at a local directory."""

    def __init__(self, root: str | os.PathLike) -> None:
        super().__init__()
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        if not key or key.startswith("/"):
            raise CloudError(f"invalid object key {key!r}")
        path = (self.root / key).resolve()
        if not str(path).startswith(str(self.root.resolve()) + os.sep):
            raise CloudError(f"key escapes store root: {key!r}")
        return path

    def _put(self, key: str, data: bytes) -> None:
        atomic_write_bytes(self._path(key), data)

    def _get(self, key: str) -> Optional[bytes]:
        try:
            return self._path(key).read_bytes()
        except FileNotFoundError:
            return None

    def _delete(self, key: str) -> bool:
        try:
            self._path(key).unlink()
            return True
        except FileNotFoundError:
            return False

    def _list(self, prefix: str) -> Iterator[str]:
        root = self.root.resolve()
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in filenames:
                key = (Path(dirpath) / name).relative_to(root).as_posix()
                if key.startswith(prefix):
                    yield key
