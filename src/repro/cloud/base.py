"""Cloud backend interface with request/byte accounting.

Every backend counts uploads, downloads and request totals — the raw
inputs to the Amazon-S3 cost model (``CC = DS/DR·(SP+TP) + OC·OP``) and
to the WAN transfer-time model.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import ObjectNotFound

__all__ = ["CloudStats", "CloudBackend"]


@dataclass
class CloudStats:
    """Request and byte counters for one backend instance."""

    put_requests: int = 0
    get_requests: int = 0
    delete_requests: int = 0
    list_requests: int = 0
    bytes_uploaded: int = 0
    bytes_downloaded: int = 0

    @property
    def total_requests(self) -> int:
        """All billable requests issued so far."""
        return (self.put_requests + self.get_requests
                + self.delete_requests + self.list_requests)


class CloudBackend(abc.ABC):
    """Abstract object store (S3-like flat key → blob namespace)."""

    def __init__(self) -> None:
        self.stats = CloudStats()

    # -- primitive operations (implemented by subclasses) --------------
    @abc.abstractmethod
    def _put(self, key: str, data: bytes) -> None: ...

    @abc.abstractmethod
    def _get(self, key: str) -> Optional[bytes]: ...

    @abc.abstractmethod
    def _delete(self, key: str) -> bool: ...

    @abc.abstractmethod
    def _list(self, prefix: str) -> Iterator[str]: ...

    # -- public, accounted API ------------------------------------------
    def put(self, key: str, data: bytes) -> None:
        """Store ``data`` under ``key`` (overwrites)."""
        self.stats.put_requests += 1
        self.stats.bytes_uploaded += len(data)
        self._put(key, data)

    def get(self, key: str) -> bytes:
        """Fetch the blob at ``key``; raises :class:`ObjectNotFound`."""
        self.stats.get_requests += 1
        data = self._get(key)
        if data is None:
            raise ObjectNotFound(key)
        self.stats.bytes_downloaded += len(data)
        return data

    def exists(self, key: str) -> bool:
        """HEAD-style existence check (accounted as a get request)."""
        self.stats.get_requests += 1
        return self._get(key) is not None

    def delete(self, key: str) -> bool:
        """Delete ``key``; returns whether it existed."""
        self.stats.delete_requests += 1
        return self._delete(key)

    def list(self, prefix: str = "") -> list[str]:
        """Sorted keys under ``prefix``."""
        self.stats.list_requests += 1
        return sorted(self._list(prefix))

    def stored_bytes(self) -> int:
        """Total bytes currently stored (walks all objects)."""
        return sum(len(self._get(k) or b"") for k in self._list(""))
