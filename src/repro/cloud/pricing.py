"""Amazon S3 price book (April 2011) and the paper's cost model.

Sec. IV-E: "these prices are (in US dollars): $0.14 per GB·month for
storage, $0.10 per GB for upload data transfer and $0.01 per 1000 upload
requests", and the monthly cost of a backup service is::

    CC = DS/DR · (SP + TP) + OC · OP

where ``DS/DR`` is the post-dedup stored/transferred volume and ``OC``
the number of upload requests.  :class:`PriceBook` keeps the constants
and evaluates the bill from raw byte/request counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import GB

__all__ = ["PriceBook", "S3_APRIL_2011"]


@dataclass(frozen=True)
class PriceBook:
    """Cloud tariff: storage, upload transfer, and request prices."""

    #: $/GB/month of stored data (decimal GB, as billed).
    storage_per_gb_month: float = 0.14
    #: $/GB of upload transfer.
    upload_per_gb: float = 0.10
    #: $ per 1000 upload (PUT) requests.
    per_1000_put_requests: float = 0.01

    def storage_cost(self, stored_bytes: float, months: float = 1.0) -> float:
        """Monthly storage charge for ``stored_bytes`` kept ``months``."""
        return (stored_bytes / GB) * self.storage_per_gb_month * months

    def transfer_cost(self, uploaded_bytes: float) -> float:
        """Upload bandwidth charge."""
        return (uploaded_bytes / GB) * self.upload_per_gb

    def request_cost(self, put_requests: int) -> float:
        """PUT request charge."""
        return (put_requests / 1000.0) * self.per_1000_put_requests

    def monthly_cost(self, stored_bytes: float, uploaded_bytes: float,
                     put_requests: int, months: float = 1.0) -> float:
        """The paper's ``CC`` for one month of service."""
        return (self.storage_cost(stored_bytes, months)
                + self.transfer_cost(uploaded_bytes)
                + self.request_cost(put_requests))


#: The tariff quoted in the paper (April 2011).
S3_APRIL_2011 = PriceBook()
