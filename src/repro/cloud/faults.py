"""Deterministic fault injection for cloud backends.

The paper's deployment target is a consumer WAN (~500 KB/s 802.11g), a
link that *will* drop connections, time out, and occasionally corrupt a
payload.  :class:`ChaosBackend` wraps any
:class:`~repro.cloud.base.CloudBackend` and injects exactly those
failures, driven by a seeded PRNG so every test and benchmark replays
bit-identically:

* **transient errors** — each operation independently fails with
  :class:`~repro.errors.TransientCloudError` at ``transient_error_rate``
  (the side effect does *not* happen);
* **lost acks** — a put succeeds durably but the acknowledgement is
  lost (``ack_loss_rate``), so the client sees a transient error and
  must retry an already-stored object — the classic idempotency trap;
* **permanent errors** — keys listed in ``permanent_error_keys`` always
  fail with :class:`~repro.errors.PermanentCloudError` (never retried);
* **bit-flip corruption** — a get returns the payload with one flipped
  bit at ``corrupt_rate`` (transport corruption; the stored object is
  untouched, so a retry would return clean bytes);
* **latency spikes** — operations stall an extra
  ``latency_spike_seconds`` at ``latency_spike_rate``.  The backend has
  no clock of its own; it accumulates the stall in
  :meth:`consume_spike_seconds`, which
  :class:`~repro.cloud.simulated.SimulatedCloud` drains into its WAN
  timing and virtual clock after every call.

Because :class:`ChaosBackend` *is* a backend, its inherited
:class:`~repro.cloud.base.CloudStats` count every attempt (including
failed ones) — which is precisely the wasted-bytes signal the chaos
benchmark measures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.cloud.base import CloudBackend
from repro.errors import PermanentCloudError, TransientCloudError

__all__ = ["ChaosStats", "ChaosBackend"]


@dataclass
class ChaosStats:
    """Count of each fault kind injected so far."""

    transient_errors: int = 0
    lost_acks: int = 0
    permanent_errors: int = 0
    corruptions: int = 0
    latency_spikes: int = 0
    spike_seconds: float = 0.0

    @property
    def total_faults(self) -> int:
        """All injected faults (spikes included)."""
        return (self.transient_errors + self.lost_acks
                + self.permanent_errors + self.corruptions
                + self.latency_spikes)


class ChaosBackend(CloudBackend):
    """A fault-injecting wrapper around another backend.

    All parameters default to "no faults", so a zero-configured wrapper
    is a transparent pass-through (handy for parameter sweeps that
    include a fault-free baseline).
    """

    def __init__(self,
                 inner: CloudBackend,
                 *,
                 seed: int = 0,
                 transient_error_rate: float = 0.0,
                 ack_loss_rate: float = 0.0,
                 permanent_error_keys: Iterable[str] = (),
                 corrupt_rate: float = 0.0,
                 latency_spike_rate: float = 0.0,
                 latency_spike_seconds: float = 2.0) -> None:
        super().__init__()
        for name, rate in (("transient_error_rate", transient_error_rate),
                           ("ack_loss_rate", ack_loss_rate),
                           ("corrupt_rate", corrupt_rate),
                           ("latency_spike_rate", latency_spike_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        self.inner = inner
        self.seed = seed
        self.transient_error_rate = transient_error_rate
        self.ack_loss_rate = ack_loss_rate
        self.permanent_error_keys = frozenset(permanent_error_keys)
        self.corrupt_rate = corrupt_rate
        self.latency_spike_rate = latency_spike_rate
        self.latency_spike_seconds = latency_spike_seconds
        self.chaos = ChaosStats()
        self._rng = random.Random(seed)
        self._pending_spike = 0.0

    # -- fault rolls ----------------------------------------------------
    def _roll(self, rate: float) -> bool:
        return rate > 0.0 and self._rng.random() < rate

    def _inject(self, op: str, key: str) -> None:
        """Common pre-operation faults: spike, permanent, transient."""
        if self._roll(self.latency_spike_rate):
            self.chaos.latency_spikes += 1
            self.chaos.spike_seconds += self.latency_spike_seconds
            self._pending_spike += self.latency_spike_seconds
        if key in self.permanent_error_keys:
            self.chaos.permanent_errors += 1
            raise PermanentCloudError(
                f"injected permanent failure: {op} {key!r}")
        if self._roll(self.transient_error_rate):
            self.chaos.transient_errors += 1
            raise TransientCloudError(
                f"injected transient failure: {op} {key!r}")

    def consume_spike_seconds(self) -> float:
        """Return and reset latency-spike seconds accumulated since the
        last call (drained by :class:`SimulatedCloud` into WAN time)."""
        pending, self._pending_spike = self._pending_spike, 0.0
        return pending

    # -- backend primitives ---------------------------------------------
    def _put(self, key: str, data: bytes) -> None:
        self._inject("put", key)
        self.inner._put(key, data)
        if self._roll(self.ack_loss_rate):
            # The object IS durably stored; only the ack was lost.
            self.chaos.lost_acks += 1
            raise TransientCloudError(
                f"injected lost ack: put {key!r} (object stored)")

    def _get(self, key: str) -> Optional[bytes]:
        self._inject("get", key)
        data = self.inner._get(key)
        if data and self._roll(self.corrupt_rate):
            self.chaos.corruptions += 1
            flipped = bytearray(data)
            pos = self._rng.randrange(len(flipped))
            flipped[pos] ^= 1 << self._rng.randrange(8)
            return bytes(flipped)
        return data

    def _delete(self, key: str) -> bool:
        self._inject("delete", key)
        return self.inner._delete(key)

    def _list(self, prefix: str) -> Iterator[str]:
        self._inject("list", prefix)
        return self.inner._list(prefix)

    def stored_bytes(self) -> int:
        """Delegates to the wrapped backend (no faults on accounting)."""
        return self.inner.stored_bytes()
