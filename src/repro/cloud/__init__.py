"""Cloud storage substrate: backends, WAN link model, S3 pricing.

The paper backs up to Amazon S3 over 802.11g (≈0.5 MB/s up, 1 MB/s down).
We provide:

* :class:`~repro.cloud.base.CloudBackend` — the put/get/delete/list API
  with request/byte accounting;
* :class:`~repro.cloud.local.LocalDirectoryBackend` — a real backend over
  a directory (what the examples and integration tests use);
* :class:`~repro.cloud.memory.InMemoryBackend` — dict-backed, for unit
  tests;
* :class:`~repro.cloud.wan.WANLink` — transfer-time model with per-request
  protocol overhead (why tiny uploads are slow — Sec. II-B);
* :class:`~repro.cloud.simulated.SimulatedCloud` — wraps any backend,
  advancing a virtual clock per the WAN model and computing S3 bills via
  :class:`~repro.cloud.pricing.PriceBook`;
* :class:`~repro.cloud.faults.ChaosBackend` — deterministic fault
  injection (transient/permanent errors, lost acks, bit flips, latency
  spikes) for any backend;
* :class:`~repro.cloud.retry.RetryPolicy` — exponential backoff with
  decorrelated jitter and a retry budget, sleeping on the injected
  clock (see docs/RESILIENCE.md).
"""

from repro.cloud.base import CloudBackend, CloudStats
from repro.cloud.memory import InMemoryBackend
from repro.cloud.local import LocalDirectoryBackend
from repro.cloud.faults import ChaosBackend, ChaosStats
from repro.cloud.namespace import NamespacedBackend
from repro.cloud.retry import RetryPolicy, RetryStats
from repro.cloud.wan import WANLink
from repro.cloud.pricing import PriceBook, S3_APRIL_2011
from repro.cloud.simulated import SimulatedCloud

__all__ = [
    "CloudBackend",
    "CloudStats",
    "InMemoryBackend",
    "LocalDirectoryBackend",
    "ChaosBackend",
    "ChaosStats",
    "NamespacedBackend",
    "RetryPolicy",
    "RetryStats",
    "WANLink",
    "PriceBook",
    "S3_APRIL_2011",
    "SimulatedCloud",
]
