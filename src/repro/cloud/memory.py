"""Dict-backed cloud backend for unit tests and the trace simulator."""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.cloud.base import CloudBackend

__all__ = ["InMemoryBackend"]


class InMemoryBackend(CloudBackend):
    """An object store that lives in a Python dict."""

    def __init__(self) -> None:
        super().__init__()
        self._objects: Dict[str, bytes] = {}

    def _put(self, key: str, data: bytes) -> None:
        self._objects[key] = bytes(data)

    def _get(self, key: str) -> Optional[bytes]:
        return self._objects.get(key)

    def _delete(self, key: str) -> bool:
        return self._objects.pop(key, None) is not None

    def _list(self, prefix: str) -> Iterator[str]:
        return (k for k in self._objects if k.startswith(prefix))

    def stored_bytes(self) -> int:
        """O(n) over values without re-fetch accounting."""
        return sum(len(v) for v in self._objects.values())

    def object_count(self) -> int:
        """Number of stored objects."""
        return len(self._objects)
