"""Per-tenant namespaced view of one shared cloud backend.

A fleet of backup clients hitting one storage account needs two things
from the key space: *isolation* for client-private state (manifests,
journals, index replicas — a client must never read or clobber another
client's), and *sharing* for the container pool (cross-client dedup only
pays off when a chunk one client uploaded is addressable by every
other).  :class:`NamespacedBackend` provides both: keys under any of
``shared_prefixes`` pass through verbatim, every other key is
transparently prefixed with ``clients/<namespace>/``.

The wrapper keeps its own :class:`~repro.cloud.base.CloudStats` (the
per-tenant request/byte accounting the cost model prices per client)
while the wrapped backend keeps accumulating fleet-wide totals.  All
inner-backend access is serialised on ``lock``; one lock instance shared
by every tenant view makes a plain dict- or directory-backed backend
safe under concurrent multi-client load.
"""

from __future__ import annotations

import threading
from typing import Iterator, Optional, Sequence

from repro.cloud.base import CloudBackend
from repro.errors import ObjectNotFound

__all__ = ["NamespacedBackend"]


class NamespacedBackend(CloudBackend):
    """A tenant's view of a shared backend (private keys prefixed).

    By default the container and chunk pools are shared (cross-client
    dedup addresses them fleet-wide), as are the durability replicas
    and replication plan (any tenant's restore may need to fail over to
    a replica of a shared container); pass ``shared_prefixes=()`` for
    full isolation.
    """

    def __init__(self, inner: CloudBackend, namespace: str,
                 shared_prefixes: Optional[Sequence[str]] = None,
                 lock: Optional[threading.Lock] = None) -> None:
        super().__init__()
        if not namespace or "/" in namespace:
            raise ValueError(f"bad namespace {namespace!r}")
        if shared_prefixes is None:
            # Imported lazily: repro.core pulls in the whole engine, and
            # a module-level import would cycle through repro.cloud.
            from repro.core import naming
            shared_prefixes = (naming.CONTAINER_PREFIX,
                               naming.CHUNK_PREFIX,
                               naming.REPLICA_PREFIX,
                               naming.DURABILITY_PREFIX)
        self.inner = inner
        self.namespace = namespace
        self.prefix = f"clients/{namespace}/"
        self.shared_prefixes = tuple(shared_prefixes)
        self.lock = lock if lock is not None else threading.Lock()

    # ------------------------------------------------------------------
    def _map(self, key: str) -> str:
        for shared in self.shared_prefixes:
            if key.startswith(shared):
                return key
        return self.prefix + key

    # -- primitive operations (delegate through the inner *public* API
    # so fleet-wide totals accumulate on the inner backend's stats) ----
    def _put(self, key: str, data: bytes) -> None:
        with self.lock:
            self.inner.put(self._map(key), data)

    def _get(self, key: str) -> Optional[bytes]:
        with self.lock:
            try:
                return self.inner.get(self._map(key))
            except ObjectNotFound:
                return None

    def _delete(self, key: str) -> bool:
        with self.lock:
            return self.inner.delete(self._map(key))

    def _list(self, prefix: str) -> Iterator[str]:
        keys = set()
        with self.lock:
            # Shared subtrees visible through this namespace.
            for shared in self.shared_prefixes:
                if prefix.startswith(shared):
                    keys.update(self.inner.list(prefix))
                elif shared.startswith(prefix):
                    keys.update(self.inner.list(shared))
            # The tenant's private subtree, unprefixed back.
            keys.update(key[len(self.prefix):]
                        for key in self.inner.list(self.prefix + prefix))
        return iter(keys)

    def stored_bytes(self) -> int:
        """Bytes visible in this namespace (shared pool + private keys)."""
        with self.lock:
            total = 0
            for shared in self.shared_prefixes:
                total += sum(len(self.inner._get(key) or b"")
                             for key in self.inner._list(shared))
            total += sum(len(self.inner._get(key) or b"")
                         for key in self.inner._list(self.prefix))
            return total
