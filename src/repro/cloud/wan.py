"""WAN link model: bandwidth + per-request protocol overhead.

The paper's experiment platform uploads at ~500 KB/s and downloads at
~1 MB/s over 802.11g, and motivates container aggregation by the high
cost of small transfers ("the overhead of lower layer protocols can be
high for small data transfers").  :class:`WANLink` captures exactly
that: each request pays a fixed latency (TCP/TLS/HTTP round trips) plus
bytes/bandwidth, so shipping N tiny objects is far slower than one
N-times-larger container.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import KB, MB

__all__ = ["WANLink", "PAPER_WAN"]


@dataclass(frozen=True)
class WANLink:
    """Symmetric-latency, asymmetric-bandwidth WAN model."""

    #: Upstream bandwidth, bytes/second (paper: ~500 KB/s).
    up_bandwidth: float = 500 * KB
    #: Downstream bandwidth, bytes/second (paper: ~1 MB/s).
    down_bandwidth: float = 1 * MB
    #: Fixed per-request overhead in seconds (connection + HTTP round
    #: trips); 80 ms is typical for 2011-era consumer WAN + S3.
    request_latency: float = 0.08
    #: Concurrent in-flight requests a client keeps open; per-request
    #: latency amortises across them while bandwidth is shared.
    concurrent_requests: int = 4

    def upload_time(self, nbytes: int, requests: int = 1) -> float:
        """Seconds to upload ``nbytes`` split across ``requests`` PUTs."""
        stall = requests * self.request_latency / max(
            1, self.concurrent_requests)
        return stall + nbytes / self.up_bandwidth

    def download_time(self, nbytes: int, requests: int = 1) -> float:
        """Seconds to download ``nbytes`` across ``requests`` GETs."""
        stall = requests * self.request_latency / max(
            1, self.concurrent_requests)
        return stall + nbytes / self.down_bandwidth

    def effective_upload_rate(self, object_size: int) -> float:
        """Goodput (bytes/s) when uploading objects of ``object_size``.

        Shows the aggregation argument numerically: at 0.08 s/request and
        500 KB/s, 10 KiB objects achieve ~100 KB/s while 1 MiB containers
        achieve ~480 KB/s.
        """
        if object_size <= 0:
            return 0.0
        return object_size / self.upload_time(object_size, 1)


#: The link of the paper's experiment platform.
PAPER_WAN = WANLink()
