"""Retry with exponential backoff and decorrelated jitter.

A consumer-WAN backup client must survive transient cloud failures
without hammering a struggling service.  :class:`RetryPolicy` implements
the standard remedy (AWS architecture-blog "decorrelated jitter"):

* each retry sleeps ``min(max_delay, uniform(base_delay, 3 * previous))``
  — exponential growth on average, desynchronised across clients;
* only *retryable* failures are retried: any
  :class:`~repro.errors.CloudError` except the permanent ones
  (:class:`~repro.errors.ObjectNotFound`,
  :class:`~repro.errors.PermanentCloudError`);
* a **retry budget** caps total sleep per call, so a dying link fails in
  bounded time instead of backing off forever;
* on exhaustion the *original* exception is re-raised, annotated with
  ``retry_attempts`` (how many attempts were made) — callers see the
  real failure, not a wrapper;
* sleeping goes through an injected clock when one is provided
  (:class:`~repro.simulate.clock.VirtualClock` in every test and
  benchmark), so retry-heavy scenarios run instantly and
  deterministically; without a clock it falls back to ``time.sleep``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.errors import CloudError, ObjectNotFound, PermanentCloudError
from repro.obs.tracer import NOOP_TRACER

__all__ = ["RetryStats", "RetryPolicy"]

T = TypeVar("T")


@dataclass
class RetryStats:
    """Aggregate retry accounting across all calls of one policy."""

    calls: int = 0
    attempts: int = 0
    retries: int = 0
    sleep_seconds: float = 0.0
    exhausted: int = 0


class RetryPolicy:
    """Callable-wrapping retry engine (seeded, clock-injected).

    ``clock`` may be anything with an ``advance(seconds)`` method; when
    ``None``, real ``time.sleep`` is used.  One policy instance may be
    shared by a whole client stack — its stats then describe the
    session's total retry traffic.
    """

    def __init__(self,
                 max_attempts: int = 6,
                 base_delay: float = 0.2,
                 max_delay: float = 10.0,
                 retry_budget: float = 60.0,
                 seed: int = 0,
                 clock=None) -> None:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_delay < 0 or max_delay < base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.retry_budget = retry_budget
        self.clock = clock
        self.stats = RetryStats()
        self._rng = random.Random(seed)
        #: Profiling tracer (``SimulatedCloud`` propagates its own, the
        #: same way it propagates its clock).
        self.tracer = NOOP_TRACER

    # ------------------------------------------------------------------
    @staticmethod
    def is_retryable(exc: BaseException) -> bool:
        """Cloud errors are retryable unless provably permanent."""
        return (isinstance(exc, CloudError)
                and not isinstance(exc, (ObjectNotFound,
                                         PermanentCloudError)))

    def _sleep(self, seconds: float) -> None:
        if self.tracer.enabled:
            with self.tracer.span("retry.sleep", seconds=seconds):
                self._sleep_inner(seconds)
            self.tracer.metrics.counter("retry_sleeps_total").inc()
            self.tracer.metrics.counter(
                "retry_sleep_seconds").inc(seconds)
            return
        self._sleep_inner(seconds)

    def _sleep_inner(self, seconds: float) -> None:
        self.stats.sleep_seconds += seconds
        if self.clock is not None and hasattr(self.clock, "advance"):
            self.clock.advance(seconds)
        else:  # pragma: no cover - real sleeps are avoided in tests
            time.sleep(seconds)

    # ------------------------------------------------------------------
    def call(self, fn: Callable[..., T], *args, **kwargs) -> T:
        """Invoke ``fn`` under this policy; returns its result.

        Raises the last exception unchanged (annotated with
        ``retry_attempts``) once attempts, budget, or retryability run
        out.
        """
        self.stats.calls += 1
        slept = 0.0
        delay = self.base_delay
        for attempt in range(1, self.max_attempts + 1):
            self.stats.attempts += 1
            try:
                return fn(*args, **kwargs)
            except BaseException as exc:
                delay = min(self.max_delay,
                            self._rng.uniform(self.base_delay, delay * 3))
                give_up = (not self.is_retryable(exc)
                           or attempt >= self.max_attempts
                           or slept + delay > self.retry_budget)
                if give_up:
                    if self.is_retryable(exc):
                        self.stats.exhausted += 1
                    exc.retry_attempts = attempt
                    raise
                self.stats.retries += 1
                self._sleep(delay)
                slept += delay
        raise AssertionError("unreachable")  # pragma: no cover

    def wrap(self, fn: Callable[..., T]) -> Callable[..., T]:
        """Return ``fn`` bound to this policy (for upload callbacks)."""
        def wrapped(*args, **kwargs):
            return self.call(fn, *args, **kwargs)
        return wrapped
