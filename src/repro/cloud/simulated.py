"""Simulated cloud: any backend + WAN timing + S3 billing.

Wraps a :class:`~repro.cloud.base.CloudBackend`, charging every request
to a :class:`~repro.cloud.wan.WANLink` model on a clock.  With a
:class:`~repro.simulate.clock.VirtualClock` this yields deterministic
transfer times at paper scale; with no clock it is a pure accounting
wrapper around a real backend.
"""

from __future__ import annotations

from repro.cloud.base import CloudBackend
from repro.cloud.pricing import PriceBook, S3_APRIL_2011
from repro.cloud.wan import WANLink, PAPER_WAN

__all__ = ["SimulatedCloud"]


class SimulatedCloud:
    """Facade combining storage, WAN timing, and billing.

    All storage operations delegate to ``backend`` (so the data is really
    stored and restorable); ``transfer_seconds`` accumulates modelled WAN
    time, split into upload/download components; ``bill()`` prices the
    accumulated traffic.
    """

    def __init__(self,
                 backend: CloudBackend,
                 wan: WANLink = PAPER_WAN,
                 prices: PriceBook = S3_APRIL_2011,
                 clock=None) -> None:
        self.backend = backend
        self.wan = wan
        self.prices = prices
        self.clock = clock
        self.upload_seconds = 0.0
        self.download_seconds = 0.0

    def _advance(self, seconds: float) -> None:
        if self.clock is not None and hasattr(self.clock, "advance"):
            self.clock.advance(seconds)

    # ------------------------------------------------------------------
    def put(self, key: str, data: bytes) -> None:
        """Upload an object (charges WAN upload time)."""
        self.backend.put(key, data)
        t = self.wan.upload_time(len(data), 1)
        self.upload_seconds += t
        self._advance(t)

    def get(self, key: str) -> bytes:
        """Download an object (charges WAN download time)."""
        data = self.backend.get(key)
        t = self.wan.download_time(len(data), 1)
        self.download_seconds += t
        self._advance(t)
        return data

    def exists(self, key: str) -> bool:
        """Existence probe (one request latency, no payload)."""
        result = self.backend.exists(key)
        self.upload_seconds += self.wan.request_latency
        self._advance(self.wan.request_latency)
        return result

    def delete(self, key: str) -> bool:
        """Delete an object (one request latency)."""
        result = self.backend.delete(key)
        self._advance(self.wan.request_latency)
        return result

    def list(self, prefix: str = "") -> list[str]:
        """List keys (one request latency)."""
        result = self.backend.list(prefix)
        self._advance(self.wan.request_latency)
        return result

    # ------------------------------------------------------------------
    @property
    def stats(self):
        """The underlying backend's request/byte counters."""
        return self.backend.stats

    def transfer_seconds(self) -> float:
        """Total modelled WAN time so far."""
        return self.upload_seconds + self.download_seconds

    def bill(self, months: float = 1.0) -> float:
        """Monthly S3-style bill for current stored bytes + past traffic."""
        return self.prices.monthly_cost(
            stored_bytes=self.backend.stored_bytes(),
            uploaded_bytes=self.stats.bytes_uploaded,
            put_requests=self.stats.put_requests,
            months=months)
