"""Simulated cloud: any backend + WAN timing + S3 billing + retries.

Wraps a :class:`~repro.cloud.base.CloudBackend`, charging every request
to a :class:`~repro.cloud.wan.WANLink` model on a clock.  With a
:class:`~repro.simulate.clock.VirtualClock` this yields deterministic
transfer times at paper scale; with no clock it is a pure accounting
wrapper around a real backend.

Fault tolerance: pass a :class:`~repro.cloud.retry.RetryPolicy` and
every operation is retried per the policy (transient failures from e.g.
a :class:`~repro.cloud.faults.ChaosBackend` are absorbed; permanent ones
surface).  Each *attempt* — failed or not — pays full WAN transfer time,
modelling a transfer that completed but whose acknowledgement failed;
latency spikes injected by a chaos backend are drained into the WAN
timing after every call, so "goodput under faults" is directly readable
from :meth:`transfer_seconds`.
"""

from __future__ import annotations

from typing import Optional

from repro.cloud.base import CloudBackend
from repro.cloud.pricing import PriceBook, S3_APRIL_2011
from repro.cloud.retry import RetryPolicy
from repro.cloud.wan import WANLink, PAPER_WAN
from repro.obs.tracer import NOOP_TRACER

__all__ = ["SimulatedCloud"]


class SimulatedCloud:
    """Facade combining storage, WAN timing, billing and retries.

    All storage operations delegate to ``backend`` (so the data is really
    stored and restorable); ``transfer_seconds`` accumulates modelled WAN
    time, split into upload/download components; ``bill()`` prices the
    accumulated traffic.
    """

    def __init__(self,
                 backend: CloudBackend,
                 wan: WANLink = PAPER_WAN,
                 prices: PriceBook = S3_APRIL_2011,
                 clock=None,
                 retry: Optional[RetryPolicy] = None,
                 tracer=None) -> None:
        self.backend = backend
        self.wan = wan
        self.prices = prices
        self.clock = clock
        self.retry = retry
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        if retry is not None and retry.clock is None:
            retry.clock = clock  # backoff sleeps advance the same clock
        if retry is not None and retry.tracer is NOOP_TRACER:
            retry.tracer = self.tracer  # sleeps appear in the same trace
        self.upload_seconds = 0.0
        self.download_seconds = 0.0

    def _advance(self, seconds: float) -> None:
        if self.clock is not None and hasattr(self.clock, "advance"):
            self.clock.advance(seconds)

    def _charge_up(self, seconds: float) -> None:
        self.upload_seconds += seconds
        self._advance(seconds)

    def _charge_down(self, seconds: float) -> None:
        self.download_seconds += seconds
        self._advance(seconds)

    def _drain_chaos(self) -> None:
        """Charge latency spikes injected by a fault wrapper, if any."""
        consume = getattr(self.backend, "consume_spike_seconds", None)
        if consume is not None:
            self._charge_up(consume())

    def _call(self, attempt):
        if self.retry is not None:
            return self.retry.call(attempt)
        return attempt()

    def _traced_call(self, name: str, attempt, **attrs):
        """Run ``attempt`` under retry, spanning the call and each
        individual attempt (retries of one logical operation show up as
        sibling ``<name>.attempt`` spans under one ``<name>`` parent)."""
        tracer = self.tracer
        if not tracer.enabled:
            return self._call(attempt)
        counter = {"n": 0}

        def traced_attempt():
            counter["n"] += 1
            with tracer.span(name + ".attempt",
                             attempt=counter["n"], **attrs):
                return attempt()

        with tracer.span(name, **attrs) as sp:
            try:
                return self._call(traced_attempt)
            finally:
                sp.set("attempts", counter["n"])
                tracer.metrics.counter(
                    "cloud_attempts_total").inc(counter["n"])

    # ------------------------------------------------------------------
    def put(self, key: str, data: bytes) -> None:
        """Upload an object (charges WAN upload time, per attempt)."""
        def attempt():
            try:
                self.backend.put(key, data)
            finally:
                self._charge_up(self.wan.upload_time(len(data), 1))
                self._drain_chaos()
        self._traced_call("cloud.put", attempt, key=key,
                          bytes=len(data))

    def get(self, key: str) -> bytes:
        """Download an object (charges WAN download time, per attempt)."""
        def attempt():
            try:
                data = self.backend.get(key)
            except BaseException:
                self._charge_down(self.wan.download_time(0, 1))
                self._drain_chaos()
                raise
            self._charge_down(self.wan.download_time(len(data), 1))
            self._drain_chaos()
            return data
        return self._traced_call("cloud.get", attempt, key=key)

    def exists(self, key: str) -> bool:
        """HEAD-style existence probe.

        Charged exactly like a zero-byte ``get`` — per-request latency
        amortised over the link's concurrent request slots — so probe
        loops are not over- or under-billed relative to real transfers.
        """
        def attempt():
            try:
                return self.backend.exists(key)
            finally:
                self._charge_down(self.wan.download_time(0, 1))
                self._drain_chaos()
        return self._traced_call("cloud.exists", attempt, key=key)

    def delete(self, key: str) -> bool:
        """Delete an object (one request latency)."""
        def attempt():
            try:
                return self.backend.delete(key)
            finally:
                self._advance(self.wan.request_latency)
                self._drain_chaos()
        return self._traced_call("cloud.delete", attempt, key=key)

    def list(self, prefix: str = "") -> list[str]:
        """List keys (one request latency)."""
        def attempt():
            try:
                return self.backend.list(prefix)
            finally:
                self._advance(self.wan.request_latency)
                self._drain_chaos()
        return self._traced_call("cloud.list", attempt, prefix=prefix)

    # ------------------------------------------------------------------
    @property
    def stats(self):
        """The underlying backend's request/byte counters."""
        return self.backend.stats

    def transfer_seconds(self) -> float:
        """Total modelled WAN time so far."""
        return self.upload_seconds + self.download_seconds

    def bill(self, months: float = 1.0) -> float:
        """Monthly S3-style bill for current stored bytes + past traffic."""
        return self.prices.monthly_cost(
            stored_bytes=self.backend.stored_bytes(),
            uploaded_bytes=self.stats.bytes_uploaded,
            put_requests=self.stats.put_requests,
            months=months)
