"""Command-line interface: a usable AA-Dedupe backup tool.

::

    python -m repro backup  ~/Documents --store /backups/cloud
    python -m repro ls      --store /backups/cloud
    python -m repro restore 0 /tmp/out --store /backups/cloud
    python -m repro gc      --store /backups/cloud --keep-last 4
    python -m repro scrub   --store /backups/cloud
    python -m repro backup  ~/Documents --store /backups/cloud \
        --replication 2 --fault-domains d0,d1,d2
    python -m repro repair  --store /backups/cloud
    python -m repro schemes
    python -m repro fleet   --clients 8 --sessions 3
    python -m repro backup  ~/Documents --store /backups/cloud \
        --profile --trace-out /tmp/backup.trace.jsonl
    python -m repro trace-profile /tmp/backup.trace.jsonl
    python -m repro jobs run --config jobs.yaml --store /backups/cloud
    python -m repro jobs run --config jobs.yaml --list-jobs

The store is a directory-backed object store
(:class:`repro.cloud.LocalDirectoryBackend`); clients are stateless —
each invocation resumes dedup state from the synced cloud index.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.baselines import all_scheme_configs
from repro.cloud.local import LocalDirectoryBackend
from repro.core import naming
from repro.core.backup import BackupClient
from repro.core.gc import collect_garbage
from repro.core.options import SchemeConfig
from repro.core.recipe import Manifest
from repro.core.restore import RestoreClient
from repro.core.retention import keep_last
from repro.core.scrub import scrub_cloud
from repro.core.source import DirectorySource
from repro.metrics.report import Table
from repro.util.units import format_bytes, format_seconds, parse_size

__all__ = ["main", "build_parser"]


def _scheme_by_name(name: str) -> SchemeConfig:
    for config in all_scheme_configs():
        if config.name.lower() == name.lower():
            return config
    names = ", ".join(c.name for c in all_scheme_configs())
    raise SystemExit(f"unknown scheme {name!r}; available: {names}")


def _session_ids(cloud) -> list[int]:
    ids = []
    for key in cloud.list(naming.MANIFEST_PREFIX):
        stem = key.rsplit("session-", 1)[-1].split(".", 1)[0]
        try:
            ids.append(int(stem))
        except ValueError:
            continue
    return sorted(ids)


# ----------------------------------------------------------------------
def cmd_backup(args) -> int:
    """Run one backup session of SOURCE into the store."""
    config = _scheme_by_name(args.scheme)
    if args.container_size:
        config = config.with_(container_size=parse_size(
            args.container_size))
    if args.chunker:
        from repro.errors import ConfigError
        try:
            config = config.with_chunker(args.chunker)
        except ConfigError as exc:
            raise SystemExit(f"--chunker: {exc}")
    if args.delta is not None:
        config = config.with_(delta_compress=args.delta)
    if args.stat_cache is not None:
        config = config.with_(stat_cache=args.stat_cache)
    if args.parallel is not None:
        if args.parallel < 1:
            raise SystemExit("--parallel: must be >= 1")
        config = config.with_(parallel_workers=args.parallel)
    if args.pipeline is not None:
        config = config.with_(pipeline_uploads=args.pipeline)
    tracer = None
    if args.profile:
        from repro.obs import Tracer
        tracer = Tracer()  # wall clock: profiles the real run
    client = BackupClient(LocalDirectoryBackend(args.store), config,
                          tracer=tracer)
    recovered = client.resume_from_cloud()
    if recovered and not args.quiet:
        print(f"resumed {recovered} index entries from the store")
    stats = client.backup(DirectorySource(args.source))
    client.close()
    print(stats.summary())
    if args.replication:
        from repro.durability import (DurabilityPolicy, default_domains,
                                      replicate_cloud)
        domains = (tuple(d for d in args.fault_domains.split(",") if d)
                   if args.fault_domains else default_domains())
        policy = DurabilityPolicy(
            base_replicas=args.replication,
            max_replicas=max(args.replication + 1, 3))
        rep = replicate_cloud(LocalDirectoryBackend(args.store),
                              policy=policy, domains=domains,
                              tracer=tracer)
        print(f"replication: {rep.containers_replicated} of "
              f"{rep.containers_considered} containers tiered up, "
              f"{rep.replicas_written} replicas written "
              f"({format_bytes(rep.replica_bytes)}) across "
              f"{len(domains)} fault domains")
        for problem in rep.problems:
            print(f"PROBLEM: {problem}", file=sys.stderr)
    if not args.quiet:
        print(f"  saved {format_bytes(stats.bytes_saved)} "
              f"({stats.files_tiny} tiny files filtered, "
              f"{stats.chunks_unique} new chunks, "
              f"dedup {format_seconds(stats.dedup_wall_seconds)})")
        if config.stat_cache and stats.files_unchanged:
            print(f"  stat cache: {stats.files_unchanged} unchanged "
                  f"files replayed without re-chunking "
                  f"({stats.statcache_stale} stale, "
                  f"{format_bytes(stats.ops.read_bytes)} read of "
                  f"{format_bytes(stats.bytes_scanned)} scanned)")
        if config.delta_compress:
            print(f"  delta: {stats.chunks_delta} chunks stored as "
                  f"deltas, {format_bytes(stats.delta_bytes_saved)} "
                  f"saved beyond exact dedup "
                  f"({stats.delta_rejected} rejected by cutoff)")
        if stats.stage_busy_seconds:
            order = ("read", "chunk", "hash", "commit", "pack", "upload")
            busy = stats.stage_busy_seconds
            parts = [f"{name} {format_seconds(busy[name])}"
                     for name in order if name in busy]
            parts.extend(f"{name} {format_seconds(value)}"
                         for name, value in sorted(busy.items())
                         if name not in order)
            print(f"  stages: {', '.join(parts)}")
    if tracer is not None:
        from repro.obs import render_profile

        trace_out = args.trace_out or "backup.trace.jsonl"
        tracer.write_jsonl(trace_out)
        print(f"trace written to {trace_out} "
              f"({len(tracer.spans())} spans)")
        print(render_profile(tracer.spans()))
        metrics = tracer.metrics.render()
        if metrics and not args.quiet:
            print(metrics)
    return 0


def cmd_trace_profile(args) -> int:
    """Summarise a JSONL trace: stage + per-application breakdown."""
    from repro.obs import load_spans, render_profile

    try:
        with open(args.trace, encoding="utf-8") as fh:
            spans = load_spans(fh)
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 1
    print(render_profile(spans))
    return 0


def cmd_restore(args) -> int:
    """Restore a session (or selected paths) into DEST."""
    cloud = LocalDirectoryBackend(args.store)
    client = RestoreClient(cloud, verify=not args.no_verify)
    report = client.restore_to_directory(
        args.session, args.dest, paths=args.path or None)
    print(f"restored {report.files_restored} files "
          f"({format_bytes(report.bytes_restored)}) from session "
          f"{args.session}; {report.chunks_verified} chunks verified")
    return 0


def cmd_ls(args) -> int:
    """List sessions stored in the store."""
    cloud = LocalDirectoryBackend(args.store)
    ids = _session_ids(cloud)
    if not ids:
        print("no sessions in store")
        return 0
    table = Table(["session", "scheme", "files", "bytes"])
    for sid in ids:
        manifest = Manifest.from_json(cloud.get(naming.manifest_key(sid)))
        table.add_row([sid, manifest.scheme, len(manifest),
                       format_bytes(manifest.total_bytes())])
    print(table.render())
    return 0


def cmd_gc(args) -> int:
    """Delete old sessions and sweep dead containers/objects."""
    cloud = LocalDirectoryBackend(args.store)
    ids = _session_ids(cloud)
    if args.retain is not None:
        retain = {int(s) for s in args.retain.split(",") if s}
    elif args.retain_last is not None:
        # Timestamp-ordered retention (the service layer's policy):
        # newest N by manifest creation time, session id as tiebreak —
        # robust to id gaps, unlike the positional --keep-last.
        from repro.core.gc import session_catalog
        from repro.core.retention import RetainLastN
        from repro.errors import ConfigError, ReproError
        try:
            catalog = session_catalog(cloud)
            retain = RetainLastN(args.retain_last).select(catalog)
        except ConfigError as exc:
            print(f"--retain-last: {exc}", file=sys.stderr)
            return 2
        except ReproError as exc:
            print(f"PROBLEM: {exc}", file=sys.stderr)
            print("nothing deleted: session ages could not be proven",
                  file=sys.stderr)
            return 1
    else:
        retain = keep_last(ids, args.keep_last)
    report = collect_garbage(cloud, retain)
    print(f"retained sessions: {sorted(retain) or 'none'}")
    if report.problems:
        for problem in report.problems:
            print(f"PROBLEM: {problem}", file=sys.stderr)
        print("nothing deleted: the mark phase was incomplete",
              file=sys.stderr)
        return 1
    print(f"deleted {report.deleted_manifests} manifests, "
          f"{report.deleted_containers} containers, "
          f"{report.deleted_objects} objects; "
          f"{report.live_containers} containers live")
    if report.statcache_invalidated:
        print(f"stat caches invalidated "
              f"({report.statcache_blobs_deleted} blobs dropped, "
              f"GC epoch bumped)")
    return 0


def cmd_scrub(args) -> int:
    """Verify container CRCs, extent fingerprints, manifest refs and
    durability replicas."""
    cloud = LocalDirectoryBackend(args.store)
    report = scrub_cloud(cloud, verify_extents=not args.fast)
    print(f"checked {report.containers_checked} containers "
          f"({report.extents_verified} extents verified), "
          f"{report.replicas_checked} replicas, "
          f"{report.manifests_checked} manifests "
          f"({report.refs_resolved} refs resolved), "
          f"{report.index_replicas_checked} index replicas")
    print(report.summary_line())
    if report.clean:
        print("store is clean")
        return 0
    for finding in report.findings:
        tag = "DEGRADED" if finding.repairable else "PROBLEM"
        print(f"{tag}: {finding.message}", file=sys.stderr)
    if any(f.repairable for f in report.findings):
        print("repairable findings: run `repro repair` to restore "
              "full replication", file=sys.stderr)
    return 1


def cmd_repair(args) -> int:
    """Rebuild missing/corrupt container copies from survivors."""
    from repro.durability import repair_cloud

    cloud = LocalDirectoryBackend(args.store)
    report = repair_cloud(cloud)
    print(f"checked {report.containers_checked} replicated containers: "
          f"{report.primaries_restored} primaries promoted, "
          f"{report.replicas_restored} replicas rebuilt "
          f"({format_bytes(report.bytes_copied)} copied)")
    if report.ok:
        return 0
    for message in report.unrepairable:
        print(f"UNREPAIRABLE: {message}", file=sys.stderr)
    return 1


def cmd_estimate(args) -> int:
    """Predict dedup ratio / upload time / cost for a directory."""
    from repro.analysis.estimate import estimate_directory

    est = estimate_directory(args.source, delta=args.delta)
    print(f"{est.files} files, {format_bytes(est.bytes_scanned)} scanned "
          f"({est.tiny_files} tiny)")
    print(f"predicted unique data: {format_bytes(est.bytes_unique)} "
          f"(dedup ratio {est.dedup_ratio:.2f})")
    if args.delta:
        print(f"delta stage: {est.delta_chunks} chunks stored as deltas, "
              f"{format_bytes(est.delta_bytes_saved)} saved beyond "
              f"exact dedup")
    table = Table(["category", "scanned", "unique", "DR"])
    for category, (scanned, unique) in sorted(est.by_category.items()):
        table.add_row([category, format_bytes(scanned),
                       format_bytes(unique),
                       scanned / unique if unique else float("inf")])
    print(table.render())
    print(f"first backup over a 500 KB/s uplink: "
          f"~{format_seconds(est.upload_seconds())}; first-month bill "
          f"~${est.monthly_cost():.2f} (April-2011 S3 prices)")
    return 0


def cmd_fleet(args) -> int:
    """Simulate a fleet of clients backing up to one shared store."""
    from repro.fleet import (FleetService, generated_fleet_sources,
                             synthetic_fleet_sources)

    tracer = None
    if args.profile:
        from repro.obs import Tracer
        tracer = Tracer()
    if args.bytes_per_client:
        sources = generated_fleet_sources(
            args.clients, args.sessions,
            bytes_per_client=parse_size(args.bytes_per_client),
            seed=args.seed)
    else:
        sources = synthetic_fleet_sources(args.clients, args.sessions,
                                          seed=args.seed)

    def config(_rank):
        cfg = _scheme_by_name(args.scheme)
        if args.container_size:
            cfg = cfg.with_(container_size=parse_size(args.container_size))
        return cfg

    directory = None
    if args.sparse_shards:
        from repro.fleet import GlobalDedupDirectory
        from repro.index.sparse import SparseShardIndex
        directory = GlobalDedupDirectory(
            shards_per_app=args.shards,
            index_factory=lambda app, bucket: SparseShardIndex(),
            cache_capacity=args.shard_cache,
            locality_capacity=args.locality_cache,
            filter_capacity=args.shard_filter,
            shard_split_entries=args.shard_split,
            tracer=tracer)
    service = FleetService(clients=args.clients,
                           config_factory=config,
                           directory=directory,
                           shards_per_app=args.shards,
                           cache_capacity=args.shard_cache,
                           locality_capacity=args.locality_cache,
                           filter_capacity=args.shard_filter,
                           shard_split_entries=args.shard_split,
                           waves=args.waves,
                           tracer=tracer)
    try:
        report = service.run(sources, max_workers=args.workers)
    finally:
        service.close()
    print(report.render())
    if tracer is not None:
        from repro.obs import render_profile
        print(render_profile(tracer.spans()))
    return 0


def cmd_jobs(args) -> int:
    """Run declarative backup jobs from a YAML/JSON config.

    Exit codes: 0 — every job succeeded; 1 — at least one job failed
    (the report is still printed/written); 2 — configuration error.
    """
    from repro.errors import ConfigError
    from repro.service import BackupService, load_config

    try:
        spec = load_config(args.config)
    except ConfigError as exc:
        print(f"config error: {exc}", file=sys.stderr)
        return 2
    if args.list_jobs:
        table = Table(["job", "scheme", "schedule", "retention",
                       "hooks", "source"], title="configured jobs")
        for job in spec.jobs:
            schedule = (f"every {job.schedule.interval:g}s"
                        + (f" +{job.schedule.offset:g}s"
                           if job.schedule.offset else "")
                        if job.schedule else "manual")
            if job.retention is None:
                retention = "-"
            else:
                retention = repr(job.retention)
            hooks = len(job.hooks.pre) + len(job.hooks.post)
            table.add_row([job.name, job.scheme, schedule, retention,
                           hooks or "-", job.describe_source()])
        print(table.render())
        return 0
    if not args.store:
        print("jobs run needs --store (or --list-jobs)", file=sys.stderr)
        return 2
    tracer = None
    if args.profile:
        from repro.obs import Tracer
        tracer = Tracer()
    backend = LocalDirectoryBackend(args.store)
    try:
        service = BackupService(spec, backend=backend, tracer=tracer,
                                jobs=args.job or None)
    except ConfigError as exc:
        print(f"config error: {exc}", file=sys.stderr)
        return 2
    try:
        report = service.run(until=args.until)
        if args.report:
            service.write_report(args.report)
    finally:
        service.close()
    print(report.render())
    for run in report.failed:
        print(f"FAILED: {run.job} run {run.run_index}: {run.error}",
              file=sys.stderr)
    if tracer is not None:
        from repro.obs import render_profile
        print(render_profile(tracer.spans()))
    return report.exit_code


def cmd_schemes(_args) -> int:
    """List the available backup schemes."""
    table = Table(["scheme", "granularity", "index", "containers",
                   "tiny filter"])
    for config in all_scheme_configs():
        if config.incremental_only:
            granularity = "whole file (incremental)"
        elif config.policy_table is not None:
            granularity = "per-category (adaptive)"
        else:
            granularity = config.fixed_policy.chunker.upper()
        table.add_row([config.name, granularity, config.index_layout,
                       "yes" if config.use_containers else "no",
                       format_bytes(config.tiny_file_threshold)
                       if config.tiny_file_threshold else "no"])
    print(table.render())
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests/docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AA-Dedupe: application-aware source deduplication "
                    "backup tool (CLUSTER 2011 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    def store_arg(p):
        p.add_argument("--store", required=True,
                       help="directory-backed object store")

    p = sub.add_parser("backup", help=cmd_backup.__doc__)
    p.add_argument("source", help="directory to back up")
    store_arg(p)
    p.add_argument("--scheme", default="AA-Dedupe",
                   help="backup scheme (see `repro schemes`)")
    p.add_argument("--container-size", default=None,
                   help="override container size, e.g. 1MB")
    p.add_argument("--chunker", default=None,
                   help="content-defined boundary engine for dynamic "
                        "files: cdc (Rabin, the paper default), gear, "
                        "fastcdc or seqcdc (see docs/CHUNKING.md)")
    p.add_argument("--delta", action=argparse.BooleanOptionalAction,
                   default=None,
                   help="enable/disable similarity + delta compression "
                        "of unique chunks (default: scheme setting)")
    p.add_argument("--stat-cache", action=argparse.BooleanOptionalAction,
                   default=None,
                   help="enable/disable the cross-session unchanged-"
                        "file recipe cache (default: scheme setting)")
    p.add_argument("--parallel", type=int, default=None, metavar="N",
                   help="run the staged read/chunk/hash pipeline with "
                        "N-wide chunk and hash stages (default: serial; "
                        "manifests are byte-identical either way)")
    p.add_argument("--pipeline", action=argparse.BooleanOptionalAction,
                   default=None,
                   help="enable/disable overlapping container pack + "
                        "upload with dedup (default: scheme setting)")
    p.add_argument("--quiet", action="store_true")
    p.add_argument("--profile", action="store_true",
                   help="trace the run; print a stage profile and write "
                        "a Chrome-compatible JSONL trace")
    p.add_argument("--trace-out", default=None,
                   help="trace output path (default backup.trace.jsonl)")
    p.add_argument("--replication", type=int, default=0, metavar="N",
                   help="after the session, replicate every live "
                        "container to at least N copies across fault "
                        "domains (criticality may add more)")
    p.add_argument("--fault-domains", default=None, metavar="D0,D1,...",
                   help="comma-separated fault domain names for "
                        "--replication (default d0,d1,d2)")
    p.set_defaults(func=cmd_backup)

    p = sub.add_parser("restore", help=cmd_restore.__doc__)
    p.add_argument("session", type=int)
    p.add_argument("dest")
    store_arg(p)
    p.add_argument("--path", action="append",
                   help="restore only this path (repeatable)")
    p.add_argument("--no-verify", action="store_true",
                   help="skip fingerprint verification")
    p.set_defaults(func=cmd_restore)

    p = sub.add_parser("ls", help=cmd_ls.__doc__)
    store_arg(p)
    p.set_defaults(func=cmd_ls)

    p = sub.add_parser("gc", help=cmd_gc.__doc__)
    store_arg(p)
    p.add_argument("--keep-last", type=int, default=7,
                   help="retain the N most recent sessions (default 7)")
    p.add_argument("--retain", default=None,
                   help="explicit comma-separated session ids to retain")
    p.add_argument("--retain-last", type=int, default=None, metavar="N",
                   help="retain the N newest sessions by manifest "
                        "creation time (the service retention policy)")
    p.set_defaults(func=cmd_gc)

    p = sub.add_parser("scrub", help=cmd_scrub.__doc__)
    store_arg(p)
    p.add_argument("--fast", action="store_true",
                   help="CRC/structure checks only (skip re-hashing)")
    p.set_defaults(func=cmd_scrub)

    p = sub.add_parser("repair", help=cmd_repair.__doc__)
    store_arg(p)
    p.set_defaults(func=cmd_repair)

    p = sub.add_parser("estimate", help=cmd_estimate.__doc__)
    p.add_argument("source", help="directory to analyse")
    p.add_argument("--delta", action="store_true",
                   help="also model the similarity + delta stage")
    p.set_defaults(func=cmd_estimate)

    p = sub.add_parser("fleet", help=cmd_fleet.__doc__)
    p.add_argument("--clients", type=int, default=8,
                   help="number of concurrent backup clients")
    p.add_argument("--sessions", type=int, default=3,
                   help="backup sessions (rounds) per client")
    p.add_argument("--workers", type=int, default=4,
                   help="thread pool size per wave (performance knob "
                        "only; results are identical for any value)")
    p.add_argument("--waves", type=int, default=2,
                   help="staggered backup windows per round")
    p.add_argument("--shards", type=int, default=4,
                   help="directory shards per application label")
    p.add_argument("--shard-cache", type=int, default=0,
                   help="LRU entries fronting each directory shard")
    p.add_argument("--locality-cache", type=int, default=0,
                   help="HPDedup-style locality-prioritized cache entries "
                        "fronting each shard (alternative to --shard-cache)")
    p.add_argument("--shard-filter", type=int, default=0,
                   help="Bloom-filter front capacity per shard; cold "
                        "misses are absorbed without touching the index")
    p.add_argument("--shard-split", type=int, default=0,
                   help="split a shard's consistent-hash arc once its "
                        "committed entries exceed this (0 = never)")
    p.add_argument("--sparse-shards", action="store_true",
                   help="back shards with the FAST'09 sampling-based "
                        "sparse index (approximate dedup, tiny RAM)")
    p.add_argument("--scheme", default="AA-Dedupe")
    p.add_argument("--container-size", default=None,
                   help="override container size, e.g. 256KiB")
    p.add_argument("--seed", type=int, default=2011)
    p.add_argument("--bytes-per-client", default=None,
                   help="use the paper workload generator at this scale "
                        "per client (e.g. 64MB); default is a compact "
                        "synthetic corpus")
    p.add_argument("--profile", action="store_true",
                   help="trace the fleet run and print a stage profile")
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser("jobs", help=cmd_jobs.__doc__)
    p.add_argument("action", nargs="?", default="run", choices=["run"],
                   help="what to do with the configured jobs")
    p.add_argument("--config", required=True,
                   help="YAML (or JSON) service configuration file")
    p.add_argument("--store", default=None,
                   help="directory-backed object store shared by all "
                        "jobs (required unless --list-jobs)")
    p.add_argument("--job", action="append", metavar="NAME",
                   help="run only this job (repeatable; default all)")
    p.add_argument("--list-jobs", action="store_true",
                   help="print the configured jobs and exit")
    p.add_argument("--until", type=float, default=None, metavar="T",
                   help="drive schedules up to virtual time T seconds "
                        "(default: config 'until', else run each job "
                        "once)")
    p.add_argument("--report", default=None, metavar="PATH",
                   help="also write the run report as JSON to PATH")
    p.add_argument("--profile", action="store_true",
                   help="trace the run and print a stage profile")
    p.set_defaults(func=cmd_jobs)

    p = sub.add_parser("schemes", help=cmd_schemes.__doc__)
    p.set_defaults(func=cmd_schemes)

    p = sub.add_parser("trace-profile", help=cmd_trace_profile.__doc__)
    p.add_argument("trace", help="JSONL trace written by backup --profile")
    p.set_defaults(func=cmd_trace_profile)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
