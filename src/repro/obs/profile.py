"""Per-stage and per-application profiles from a span set.

A raw trace answers "what happened when"; the profile answers the
question that motivates a performance PR: *which stage dominates this
workload*.  Aggregation is by **self time** — each span's duration minus
the durations of its direct children — so nested instrumentation never
double-counts: a ``file`` span's self time is only the engine glue not
attributed to its ``chunk``/``hash``/``index.lookup`` children, and the
self times of every span in a single-threaded session sum exactly to the
session window.

Stage names are grouped into the canonical pipeline stages of the paper
(chunk / hash / index / transfer) for the per-application table; the
full stage table keeps every distinct span name.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.metrics.report import Table
from repro.obs.tracer import Span

__all__ = ["StageRow", "stage_breakdown", "render_profile",
           "stage_group"]

#: Span names that define the profiling window when present.
_ROOT_NAMES = ("session", "restore")

#: Ordered (prefix -> canonical stage) mapping for per-app aggregation.
_STAGE_GROUPS = (
    ("chunk", "chunk"),
    ("hash", "hash"),
    ("statcache", "statcache"),
    ("index", "index"),
    ("delta", "delta"),
    ("upload", "transfer"),
    ("cloud.", "transfer"),
    ("retry", "transfer"),
    ("container", "container"),
    ("durability", "durability"),
)


def stage_group(name: str) -> str:
    """Canonical pipeline stage for a span name (``"other"`` fallback)."""
    for prefix, group in _STAGE_GROUPS:
        if name.startswith(prefix):
            return group
    return "other"


@dataclass
class StageRow:
    """Aggregate for one span name."""

    stage: str
    calls: int = 0
    total_seconds: float = 0.0
    self_seconds: float = 0.0
    bytes: int = 0


@dataclass
class Profile:
    """Everything ``repro trace-profile`` renders."""

    window_seconds: float
    stages: Dict[str, StageRow] = field(default_factory=dict)
    #: app label -> canonical stage -> self seconds.
    apps: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Self time of spans inside a root span (sums to the window on a
    #: single thread) vs. spans outside any root (client construction,
    #: close-time flushes — real work, but not part of a backup window).
    accounted_seconds: float = 0.0
    outside_seconds: float = 0.0
    #: Boundary-engine name -> aggregated ``chunk.cut`` scan row, so a
    #: profile shows which chunker burned the scan time and at what
    #: throughput (the fast-chunker family makes this a real choice).
    chunkers: Dict[str, StageRow] = field(default_factory=dict)


def _self_times(spans: Sequence[Span]) -> Dict[int, float]:
    """Self time per span id (duration minus direct children)."""
    child_time: Dict[int, float] = defaultdict(float)
    for span in spans:
        if span.parent_id is not None:
            child_time[span.parent_id] += span.duration
    return {span.span_id: span.duration - child_time[span.span_id]
            for span in spans}


def stage_breakdown(spans: Sequence[Span]) -> Profile:
    """Aggregate a span set into a :class:`Profile`.

    The window is the total duration of ``session``/``restore`` root
    spans when any exist, else the overall start-to-end extent of the
    trace.  With concurrent threads (pipelined uploads, parallel
    workers) stage self times can legitimately sum past the window —
    that overlap is the parallelism the profile makes visible.
    """
    spans = list(spans)
    roots = [s for s in spans if s.name in _ROOT_NAMES]
    if roots:
        window = sum(s.duration for s in roots)
    elif spans:
        window = (max(s.end for s in spans)
                  - min(s.start for s in spans))
    else:
        window = 0.0

    # Which spans lie inside a root?  Self time outside (client setup,
    # close-time flushes) is tracked separately so the in-window total
    # can be compared against the window itself.
    if roots:
        children: Dict[int, List[int]] = defaultdict(list)
        for span in spans:
            if span.parent_id is not None:
                children[span.parent_id].append(span.span_id)
        in_window = set()
        stack = [root.span_id for root in roots]
        while stack:
            sid = stack.pop()
            if sid in in_window:
                continue
            in_window.add(sid)
            stack.extend(children[sid])
    else:
        in_window = {span.span_id for span in spans}

    selves = _self_times(spans)
    by_id = {span.span_id: span for span in spans}

    def app_of(span: Span) -> object:
        # A span belongs to the app of its nearest ancestor that names
        # one — so a ``cloud.put.attempt`` under an app-labelled
        # ``upload`` is charged to that application.
        while span is not None:
            app = span.attrs.get("app")
            if app is not None:
                return app
            span = by_id.get(span.parent_id)
        return None

    profile = Profile(window_seconds=window)
    for span in spans:
        if span.span_id in in_window:
            profile.accounted_seconds += selves[span.span_id]
        else:
            profile.outside_seconds += selves[span.span_id]
        row = profile.stages.get(span.name)
        if row is None:
            row = profile.stages[span.name] = StageRow(stage=span.name)
        row.calls += 1
        row.total_seconds += span.duration
        row.self_seconds += selves[span.span_id]
        nbytes = span.attrs.get("bytes")
        if isinstance(nbytes, (int, float)):
            row.bytes += int(nbytes)

        app = app_of(span)
        if isinstance(app, str) and span.name not in _ROOT_NAMES:
            per_app = profile.apps.setdefault(app, defaultdict(float))
            per_app[stage_group(span.name)] += selves[span.span_id]

        if span.name == "chunk.cut":
            engine = span.attrs.get("chunker")
            if isinstance(engine, str):
                crow = profile.chunkers.get(engine)
                if crow is None:
                    crow = profile.chunkers[engine] = StageRow(stage=engine)
                crow.calls += 1
                crow.total_seconds += span.duration
                crow.self_seconds += selves[span.span_id]
                if isinstance(nbytes, (int, float)):
                    crow.bytes += int(nbytes)
    return profile


_APP_COLUMNS = ("chunk", "hash", "statcache", "index", "container",
                "transfer", "other")


def render_profile(spans: Sequence[Span]) -> str:
    """Render the stage and per-application tables as aligned text."""
    profile = stage_breakdown(spans)
    if not profile.stages:
        return "trace contains no spans"
    window = profile.window_seconds

    def share(seconds: float) -> str:
        if window <= 0:
            return "-"
        return f"{100.0 * seconds / window:.1f}%"

    title = (f"Stage breakdown (window {window:.6f} s, "
             f"accounted {profile.accounted_seconds:.6f} s")
    if profile.outside_seconds > 0:
        title += f", outside window {profile.outside_seconds:.6f} s"
    stage_table = Table(
        ["stage", "calls", "total s", "self s", "share", "bytes"],
        title=title + ")")
    ordered = sorted(profile.stages.values(),
                     key=lambda row: (-row.self_seconds, row.stage))
    for row in ordered:
        stage_table.add_row([
            row.stage, row.calls, f"{row.total_seconds:.6f}",
            f"{row.self_seconds:.6f}", share(row.self_seconds),
            row.bytes or ""])
    sections = [stage_table.render()]

    if profile.chunkers:
        cut_table = Table(
            ["chunker", "scans", "bytes", "scan s", "MB/s"],
            title="Boundary-scan profile (chunk.cut spans per engine)")
        for engine in sorted(profile.chunkers):
            row = profile.chunkers[engine]
            rate = (row.bytes / row.total_seconds / 1e6
                    if row.total_seconds > 0 else 0.0)
            cut_table.add_row([engine, row.calls, row.bytes,
                               f"{row.total_seconds:.6f}",
                               f"{rate:.1f}"])
        sections.append(cut_table.render())

    if profile.apps:
        app_table = Table(["app"] + [f"{c} %" for c in _APP_COLUMNS]
                          + ["total s"],
                          title="Per-application stage shares "
                                "(% of the app's own traced time)")
        for app in sorted(profile.apps):
            per_stage = profile.apps[app]
            total = sum(per_stage.values())
            cells: List[str] = [app]
            for column in _APP_COLUMNS:
                seconds = per_stage.get(column, 0.0)
                cells.append(f"{100.0 * seconds / total:.1f}"
                             if total > 0 else "-")
            cells.append(f"{total:.6f}")
            app_table.add_row(cells)
        sections.append(app_table.render())
    return "\n\n".join(sections)
