"""Per-stage and per-application profiles from a span set.

A raw trace answers "what happened when"; the profile answers the
question that motivates a performance PR: *which stage dominates this
workload*.  Aggregation is by **self time** — each span's duration minus
the durations of its direct children — so nested instrumentation never
double-counts: a ``file`` span's self time is only the engine glue not
attributed to its ``chunk``/``hash``/``index.lookup`` children, and the
self times of every span in a single-threaded session sum exactly to the
session window.

Stage names are grouped into the canonical pipeline stages of the paper
(chunk / hash / index / transfer) for the per-application table; the
full stage table keeps every distinct span name.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.metrics.report import Table
from repro.obs.tracer import Span

__all__ = ["StageRow", "stage_breakdown", "render_profile",
           "stage_group", "overlap_seconds"]

#: Span names that define the profiling window when present.
_ROOT_NAMES = ("session", "restore")

#: Ordered (prefix -> canonical stage) mapping for per-app aggregation.
_STAGE_GROUPS = (
    ("read", "read"),
    ("chunk", "chunk"),
    ("hash", "hash"),
    ("statcache", "statcache"),
    ("index", "index"),
    ("delta", "delta"),
    ("upload", "transfer"),
    ("cloud.", "transfer"),
    ("retry", "transfer"),
    ("container", "container"),
    ("durability", "durability"),
    ("service", "service"),
)

#: Canonical stage order for the occupancy table (pipeline order).
_OCCUPANCY_ORDER = ("read", "chunk", "hash", "statcache", "index",
                    "delta", "container", "transfer", "durability",
                    "service", "other")


def stage_group(name: str) -> str:
    """Canonical pipeline stage for a span name (``"other"`` fallback)."""
    for prefix, group in _STAGE_GROUPS:
        if name.startswith(prefix):
            return group
    return "other"


@dataclass
class StageRow:
    """Aggregate for one span name."""

    stage: str
    calls: int = 0
    total_seconds: float = 0.0
    self_seconds: float = 0.0
    bytes: int = 0


@dataclass
class Profile:
    """Everything ``repro trace-profile`` renders."""

    window_seconds: float
    stages: Dict[str, StageRow] = field(default_factory=dict)
    #: app label -> canonical stage -> self seconds.
    apps: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Self time of spans inside a root span (sums to the window on a
    #: single thread) vs. spans outside any root (client construction,
    #: close-time flushes — real work, but not part of a backup window).
    accounted_seconds: float = 0.0
    outside_seconds: float = 0.0
    #: Boundary-engine name -> aggregated ``chunk.cut`` scan row, so a
    #: profile shows which chunker burned the scan time and at what
    #: throughput (the fast-chunker family makes this a real choice).
    chunkers: Dict[str, StageRow] = field(default_factory=dict)
    #: Canonical stage -> merged busy intervals (self time only, so a
    #: sync ``upload`` nested inside ``container.seal`` never fakes
    #: cross-stage overlap).  Input for the occupancy table.
    stage_intervals: Dict[str, List[tuple]] = field(default_factory=dict)

    def stage_busy(self, stage: str) -> float:
        """Total busy seconds of one canonical stage."""
        return sum(e - s for s, e in self.stage_intervals.get(stage, ()))

    def stage_concurrency(self, stage: str) -> float:
        """Seconds this stage was busy while *any other* stage was too —
        the overlap the paper's pipelining claim is about."""
        others: List[tuple] = []
        for name, intervals in self.stage_intervals.items():
            if name != stage:
                others.extend(intervals)
        return overlap_seconds(self.stage_intervals.get(stage, ()),
                               _merge_intervals(others))


def _self_times(spans: Sequence[Span]) -> Dict[int, float]:
    """Self time per span id (duration minus direct children)."""
    child_time: Dict[int, float] = defaultdict(float)
    for span in spans:
        if span.parent_id is not None:
            child_time[span.parent_id] += span.duration
    return {span.span_id: span.duration - child_time[span.span_id]
            for span in spans}


def _merge_intervals(intervals) -> List[tuple]:
    """Union of (start, end) intervals as a sorted disjoint list."""
    merged: List[tuple] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            if end > merged[-1][1]:
                merged[-1] = (merged[-1][0], end)
        else:
            merged.append((start, end))
    return merged


def _subtract_intervals(start: float, end: float,
                        blockers: Sequence[tuple]) -> List[tuple]:
    """``[start, end)`` minus a merged-sorted list of blockers."""
    out: List[tuple] = []
    cursor = start
    for b_start, b_end in blockers:
        if b_end <= cursor:
            continue
        if b_start >= end:
            break
        if b_start > cursor:
            out.append((cursor, min(b_start, end)))
        cursor = max(cursor, b_end)
        if cursor >= end:
            break
    if cursor < end:
        out.append((cursor, end))
    return out


def overlap_seconds(a: Sequence[tuple], b: Sequence[tuple]) -> float:
    """Measure of the intersection of two merged interval lists."""
    i = j = 0
    total = 0.0
    while i < len(a) and j < len(b):
        start = max(a[i][0], b[j][0])
        end = min(a[i][1], b[j][1])
        if end > start:
            total += end - start
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return total


def stage_breakdown(spans: Sequence[Span]) -> Profile:
    """Aggregate a span set into a :class:`Profile`.

    The window is the total duration of ``session``/``restore`` root
    spans when any exist, else the overall start-to-end extent of the
    trace.  With concurrent threads (pipelined uploads, parallel
    workers) stage self times can legitimately sum past the window —
    that overlap is the parallelism the profile makes visible.
    """
    spans = list(spans)
    roots = [s for s in spans if s.name in _ROOT_NAMES]
    if roots:
        window = sum(s.duration for s in roots)
    elif spans:
        window = (max(s.end for s in spans)
                  - min(s.start for s in spans))
    else:
        window = 0.0

    # Which spans lie inside a root?  Self time outside (client setup,
    # close-time flushes) is tracked separately so the in-window total
    # can be compared against the window itself.
    if roots:
        children: Dict[int, List[int]] = defaultdict(list)
        for span in spans:
            if span.parent_id is not None:
                children[span.parent_id].append(span.span_id)
        in_window = set()
        stack = [root.span_id for root in roots]
        while stack:
            sid = stack.pop()
            if sid in in_window:
                continue
            in_window.add(sid)
            stack.extend(children[sid])
    else:
        in_window = {span.span_id for span in spans}

    selves = _self_times(spans)
    by_id = {span.span_id: span for span in spans}
    child_spans: Dict[int, List[Span]] = defaultdict(list)
    for span in spans:
        if span.parent_id is not None:
            child_spans[span.parent_id].append(span)

    def app_of(span: Span) -> object:
        # A span belongs to the app of its nearest ancestor that names
        # one — so a ``cloud.put.attempt`` under an app-labelled
        # ``upload`` is charged to that application.
        while span is not None:
            app = span.attrs.get("app")
            if app is not None:
                return app
            span = by_id.get(span.parent_id)
        return None

    profile = Profile(window_seconds=window)
    for span in spans:
        if span.span_id in in_window:
            profile.accounted_seconds += selves[span.span_id]
        else:
            profile.outside_seconds += selves[span.span_id]
        row = profile.stages.get(span.name)
        if row is None:
            row = profile.stages[span.name] = StageRow(stage=span.name)
        row.calls += 1
        row.total_seconds += span.duration
        row.self_seconds += selves[span.span_id]
        nbytes = span.attrs.get("bytes")
        if isinstance(nbytes, (int, float)):
            row.bytes += int(nbytes)

        app = app_of(span)
        if isinstance(app, str) and span.name not in _ROOT_NAMES:
            per_app = profile.apps.setdefault(app, defaultdict(float))
            per_app[stage_group(span.name)] += selves[span.span_id]

        # Occupancy: each span contributes its *self* intervals — its
        # extent minus direct children — to its canonical stage, so a
        # span nested under a different stage's span never double-books
        # the same wall time against both stages.
        if span.name not in _ROOT_NAMES:
            kids = _merge_intervals(
                (c.start, c.end)
                for c in child_spans.get(span.span_id, ()))
            own = _subtract_intervals(span.start, span.end, kids)
            if own:
                profile.stage_intervals.setdefault(
                    stage_group(span.name), []).extend(own)

        if span.name == "chunk.cut":
            engine = span.attrs.get("chunker")
            if isinstance(engine, str):
                crow = profile.chunkers.get(engine)
                if crow is None:
                    crow = profile.chunkers[engine] = StageRow(stage=engine)
                crow.calls += 1
                crow.total_seconds += span.duration
                crow.self_seconds += selves[span.span_id]
                if isinstance(nbytes, (int, float)):
                    crow.bytes += int(nbytes)
    for stage, intervals in profile.stage_intervals.items():
        profile.stage_intervals[stage] = _merge_intervals(intervals)
    return profile


_APP_COLUMNS = ("read", "chunk", "hash", "statcache", "index",
                "container", "transfer", "other")


def render_profile(spans: Sequence[Span]) -> str:
    """Render the stage and per-application tables as aligned text."""
    profile = stage_breakdown(spans)
    if not profile.stages:
        return "trace contains no spans"
    window = profile.window_seconds

    def share(seconds: float) -> str:
        if window <= 0:
            return "-"
        return f"{100.0 * seconds / window:.1f}%"

    title = (f"Stage breakdown (window {window:.6f} s, "
             f"accounted {profile.accounted_seconds:.6f} s")
    if profile.outside_seconds > 0:
        title += f", outside window {profile.outside_seconds:.6f} s"
    stage_table = Table(
        ["stage", "calls", "total s", "self s", "share", "bytes"],
        title=title + ")")
    ordered = sorted(profile.stages.values(),
                     key=lambda row: (-row.self_seconds, row.stage))
    for row in ordered:
        stage_table.add_row([
            row.stage, row.calls, f"{row.total_seconds:.6f}",
            f"{row.self_seconds:.6f}", share(row.self_seconds),
            row.bytes or ""])
    sections = [stage_table.render()]

    if profile.chunkers:
        cut_table = Table(
            ["chunker", "scans", "bytes", "scan s", "MB/s"],
            title="Boundary-scan profile (chunk.cut spans per engine)")
        for engine in sorted(profile.chunkers):
            row = profile.chunkers[engine]
            rate = (row.bytes / row.total_seconds / 1e6
                    if row.total_seconds > 0 else 0.0)
            cut_table.add_row([engine, row.calls, row.bytes,
                               f"{row.total_seconds:.6f}",
                               f"{rate:.1f}"])
        sections.append(cut_table.render())

    if profile.stage_intervals:
        occ_table = Table(
            ["stage", "busy s", "busy %", "concurrent s", "concurrent %"],
            title="Stage occupancy (self-interval unions per canonical "
                  "stage; 'concurrent' = busy while any other stage was "
                  "busy — the pipelining overlap)")
        known = set(_OCCUPANCY_ORDER)
        ordered_stages = [s for s in _OCCUPANCY_ORDER
                          if s in profile.stage_intervals]
        ordered_stages += sorted(s for s in profile.stage_intervals
                                 if s not in known)
        for stage in ordered_stages:
            busy = profile.stage_busy(stage)
            concurrent = profile.stage_concurrency(stage)
            occ_table.add_row([
                stage, f"{busy:.6f}", share(busy),
                f"{concurrent:.6f}",
                f"{100.0 * concurrent / busy:.1f}%" if busy > 0 else "-"])
        sections.append(occ_table.render())

    if profile.apps:
        app_table = Table(["app"] + [f"{c} %" for c in _APP_COLUMNS]
                          + ["total s"],
                          title="Per-application stage shares "
                                "(% of the app's own traced time)")
        for app in sorted(profile.apps):
            per_stage = profile.apps[app]
            total = sum(per_stage.values())
            cells: List[str] = [app]
            for column in _APP_COLUMNS:
                seconds = per_stage.get(column, 0.0)
                cells.append(f"{100.0 * seconds / total:.1f}"
                             if total > 0 else "-")
            cells.append(f"{total:.6f}")
            app_table.add_row(cells)
        sections.append(app_table.render())
    return "\n\n".join(sections)
