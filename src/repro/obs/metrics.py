"""Metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the numeric companion to the span tracer: spans answer
"where did the time go", metrics answer "how big / how many / how
often".  Instrumented components get-or-create instruments by name, so
one registry accumulates a whole session regardless of how many layers
record into it.

Histograms use *fixed* bucket upper bounds chosen at creation
(Prometheus-style cumulative-le semantics are deliberately avoided —
each bucket counts only its own range, which renders more readably in
the fixed-width report tables).  Everything is lock-protected; the
pipelined uploader and parallel dedup workers record concurrently.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "CHUNK_SIZE_BUCKETS", "LATENCY_BUCKETS"]

#: Default byte-size buckets for chunk/container histograms (bytes).
CHUNK_SIZE_BUCKETS: Tuple[float, ...] = (
    512, 2048, 4096, 8192, 16384, 65536, 262144, 1048576)

#: Default latency buckets for lookup/transfer histograms (seconds).
LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)


class Counter:
    """Monotonically increasing count (optionally of a float quantity)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self.value += amount


class Gauge:
    """Last-written value, tracking the high-water mark as well."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self.max_value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Record the current level."""
        with self._lock:
            self.value = value
            if value > self.max_value:
                self.max_value = value


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max.

    ``buckets`` are the inclusive upper bounds of each bin; values above
    the last bound land in an implicit overflow bin.
    """

    def __init__(self, name: str,
                 buckets: Sequence[float] = CHUNK_SIZE_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a sorted non-empty sequence")
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.total: float = 0.0
        self.count: int = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    def _bucket_index(self, value: float) -> int:
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                return i
        return len(self.buckets)

    def observe(self, value: float) -> None:
        """Record one sample."""
        index = self._bucket_index(value)
        with self._lock:
            self.counts[index] += 1
            self.total += value
            self.count += 1
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all samples (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def bucket_label(self, index: int) -> str:
        """Human-readable range label for bin ``index``."""
        if index >= len(self.buckets):
            return f">{self.buckets[-1]:g}"
        lo = 0.0 if index == 0 else self.buckets[index - 1]
        return f"({lo:g}, {self.buckets[index]:g}]"


class MetricsRegistry:
    """Get-or-create home for all instruments of one profiling run."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        """The counter registered as ``name`` (created on first use)."""
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge registered as ``name`` (created on first use)."""
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str,
                  buckets: Sequence[float] = CHUNK_SIZE_BUCKETS
                  ) -> Histogram:
        """The histogram registered as ``name`` (created on first use).

        ``buckets`` only applies on creation; later callers get the
        existing instrument unchanged.
        """
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    name, buckets)
            return instrument

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict dump of every instrument (JSON-friendly)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {n: c.value for n, c in sorted(counters.items())},
            "gauges": {n: {"value": g.value, "max": g.max_value}
                       for n, g in sorted(gauges.items())},
            "histograms": {
                n: {"count": h.count, "sum": h.total, "mean": h.mean,
                    "min": h.min, "max": h.max,
                    "buckets": {h.bucket_label(i): count
                                for i, count in enumerate(h.counts)
                                if count}}
                for n, h in sorted(histograms.items())},
        }

    def render(self) -> str:
        """Fixed-width report of all instruments (empty string if none)."""
        # Imported here: repro.metrics pulls in the cloud layer, which
        # itself imports repro.obs — a top-level import would cycle.
        from repro.metrics.report import Table

        snap = self.snapshot()
        sections: List[str] = []
        if snap["counters"]:
            table = Table(["counter", "value"], title="Counters")
            for name, value in snap["counters"].items():
                table.add_row([name, value])
            sections.append(table.render())
        if snap["gauges"]:
            table = Table(["gauge", "value", "max"], title="Gauges")
            for name, values in snap["gauges"].items():
                table.add_row([name, values["value"], values["max"]])
            sections.append(table.render())
        for name, h in snap["histograms"].items():
            table = Table(["bucket", "count"],
                          title=f"Histogram {name} "
                                f"(n={h['count']}, mean={h['mean']:.4g})")
            for label, count in h["buckets"].items():
                table.add_row([label, count])
            sections.append(table.render())
        return "\n\n".join(sections)
