"""Observability: virtual-clock tracing, metrics, per-stage profiling.

The evaluation harness can *price* a session on the paper's hardware,
but pricing is not profiling: before any parallelism or caching change
we need to see where a session actually spends its time — chunking,
hashing, index probes, container seals, WAN transfer, retry sleeps.
This package provides that window:

* :class:`Tracer` — nested timed spans against any clock
  (:class:`~repro.util.timer.WallClock` for real runs,
  :class:`~repro.simulate.clock.VirtualClock` for deterministic tests),
  exported as Chrome-trace-compatible ``trace_event`` JSON lines;
* :class:`MetricsRegistry` — counters, gauges and fixed-bucket
  histograms (chunk sizes, lookup latencies, retry sleeps, queue
  depths), rendered through :class:`repro.metrics.Table`;
* :mod:`repro.obs.profile` — per-stage / per-application breakdowns of
  a span set, surfaced by ``repro trace-profile`` and ``backup
  --profile``.

Instrumentation is **zero-cost when disabled**: every instrumented
component defaults to the module-level :data:`NOOP_TRACER`, whose
``enabled`` flag lets hot loops skip span construction entirely, so
paper figures and Tier-1 timings are untouched unless a profiling run
opts in.
"""

from repro.obs.metrics import (
    CHUNK_SIZE_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import StageRow, render_profile, stage_breakdown
from repro.obs.tracer import (
    NOOP_TRACER,
    NoopTracer,
    Span,
    Tracer,
    load_spans,
)

__all__ = [
    "CHUNK_SIZE_BUCKETS",
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_TRACER",
    "NoopTracer",
    "Span",
    "StageRow",
    "Tracer",
    "load_spans",
    "render_profile",
    "stage_breakdown",
]
