"""Span-based tracer on an injectable clock.

A *span* is one named, timed, attributed interval of work.  Spans nest:
each thread keeps its own stack of active spans, so a span opened while
another is active on the same thread becomes its child.  Timing comes
from whatever clock the tracer was built with — the real
:class:`~repro.util.timer.WallClock` for profiling a live backup, or a
:class:`~repro.simulate.clock.VirtualClock` so tests see deterministic
durations with no wall-clock flakiness.

Export is Chrome-trace-compatible: :meth:`Tracer.export_jsonl` emits one
complete ``trace_event`` object (phase ``"X"``) per line; the file loads
directly in ``chrome://tracing`` / Perfetto, and :func:`load_spans`
round-trips it back into :class:`Span` records for offline analysis
(``repro trace-profile``).

The default tracer everywhere is :data:`NOOP_TRACER`; its ``enabled``
flag is ``False`` so per-chunk hot loops can skip instrumentation
without constructing a single object.
"""

from __future__ import annotations

import io
import json
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.util.timer import ClockProtocol, WallClock

__all__ = ["Span", "Tracer", "NoopTracer", "NOOP_TRACER", "load_spans"]


@dataclass
class Span:
    """One finished timed interval."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: float
    thread: str = "main"
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Elapsed seconds between start and end."""
        return self.end - self.start

    def to_trace_event(self, tid: int) -> dict:
        """Render as a Chrome ``trace_event`` complete event (phase X).

        Timestamps/durations are microseconds per the format.  The span
        and parent ids travel in ``args`` so the JSON round-trips
        losslessly through :func:`load_spans`.
        """
        args = dict(self.attrs)
        args["sid"] = self.span_id
        if self.parent_id is not None:
            args["psid"] = self.parent_id
        args["thread"] = self.thread
        # Exact seconds: the μs ts/dur below are rounded for Chrome, so
        # carry full-precision times too, keeping the round-trip through
        # load_spans lossless (profiles re-rendered from a trace file
        # match the live render bit for bit).
        args["t0"] = self.start
        args["d"] = self.duration
        return {
            "name": self.name,
            "cat": "repro",
            "ph": "X",
            "ts": round(self.start * 1e6, 3),
            "dur": round(self.duration * 1e6, 3),
            "pid": 0,
            "tid": tid,
            "args": args,
        }


class _ActiveSpan:
    """Context manager handle for one in-flight span."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def set(self, key: str, value) -> None:
        """Attach/overwrite one attribute on the span."""
        self.span.attrs[key] = value

    @property
    def duration(self) -> float:
        """Duration so far (final once the span has exited)."""
        if self.span.end < self.span.start:
            return self._tracer.clock.now() - self.span.start
        return self.span.duration

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._push(self.span)
        return self

    def __exit__(self, *exc) -> None:
        self._tracer._pop(self.span)


class Tracer:
    """Collects nested spans against one clock.

    Thread-safe: each thread nests spans independently (a span started
    on the pipelined-upload worker is a root on that thread), and the
    finished-span list is lock-protected.  ``metrics`` is the registry
    instrumented components record into; one is created when not given.
    """

    enabled = True

    def __init__(self,
                 clock: ClockProtocol | None = None,
                 metrics: MetricsRegistry | None = None) -> None:
        self.clock = clock if clock is not None else WallClock()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._finished: List[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next_id = 1

    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs) -> _ActiveSpan:
        """Open a span; use as a context manager.

        >>> tracer = Tracer()
        >>> with tracer.span("work", bytes=3) as sp:
        ...     sp.set("note", "done")
        >>> tracer.spans()[0].name
        'work'
        """
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        span = Span(span_id=span_id, parent_id=parent_id, name=name,
                    start=self.clock.now(), end=-1.0,
                    thread=threading.current_thread().name, attrs=attrs)
        return _ActiveSpan(self, span)

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        span.end = self.clock.now()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # pragma: no cover - misuse guard (overlapping exits)
            try:
                stack.remove(span)
            except ValueError:
                pass
        with self._lock:
            self._finished.append(span)

    # ------------------------------------------------------------------
    def spans(self) -> List[Span]:
        """Finished spans, ordered by start time (then id)."""
        with self._lock:
            return sorted(self._finished,
                          key=lambda s: (s.start, s.span_id))

    def clear(self) -> None:
        """Drop all finished spans (between profiling runs)."""
        with self._lock:
            self._finished.clear()

    # ------------------------------------------------------------------
    def export_jsonl(self) -> str:
        """All finished spans as ``trace_event`` JSON lines."""
        tids: Dict[str, int] = {}
        out = io.StringIO()
        for span in self.spans():
            tid = tids.setdefault(span.thread, len(tids))
            out.write(json.dumps(span.to_trace_event(tid),
                                 sort_keys=True))
            out.write("\n")
        return out.getvalue()

    def write_jsonl(self, path) -> None:
        """Write :meth:`export_jsonl` output to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.export_jsonl())


def load_spans(lines: Iterable[str] | str) -> List[Span]:
    """Parse trace_event JSON lines back into :class:`Span` records.

    Accepts the string produced by :meth:`Tracer.export_jsonl`, an open
    file, or any iterable of lines.  Events that are not complete
    (``"X"``) spans are skipped, so a trace enriched with other phases
    still loads.
    """
    if isinstance(lines, str):
        lines = lines.splitlines()
    spans: List[Span] = []
    for line in lines:
        line = line.strip().rstrip(",")
        if not line or line in ("[", "]"):
            continue
        event = json.loads(line)
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args", {}))
        span_id = args.pop("sid", len(spans) + 1)
        parent_id = args.pop("psid", None)
        thread = args.pop("thread", str(event.get("tid", 0)))
        start = args.pop("t0", event["ts"] / 1e6)
        duration = args.pop("d", event.get("dur", 0) / 1e6)
        spans.append(Span(span_id=span_id, parent_id=parent_id,
                          name=event["name"], start=start,
                          end=start + duration,
                          thread=thread, attrs=args))
    return sorted(spans, key=lambda s: (s.start, s.span_id))


class _NoopSpan:
    """Shared do-nothing span handle."""

    __slots__ = ()

    def set(self, key: str, value) -> None:
        pass

    @property
    def duration(self) -> float:
        return 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """Disabled tracer: every ``span()`` is the same inert handle.

    ``enabled`` is ``False`` so per-chunk code can skip instrumentation
    branches entirely; ``metrics`` is ``None`` by design — recording
    into it must always be guarded by ``tracer.enabled``.
    """

    enabled = False
    metrics = None

    def span(self, name: str, **attrs) -> _NoopSpan:
        """Return the shared no-op handle (attrs are discarded)."""
        return _NOOP_SPAN

    def spans(self) -> List[Span]:
        """A no-op tracer never records anything."""
        return []


#: Process-wide default: tracing disabled.
NOOP_TRACER = NoopTracer()
