"""``python -m repro`` — the AA-Dedupe backup CLI."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
