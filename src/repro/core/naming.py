"""Cloud object key conventions shared by backup, restore, sync and GC."""

from __future__ import annotations

import hashlib

__all__ = ["container_key", "chunk_key", "file_key", "manifest_key",
           "index_key", "journal_key", "delta_key", "statcache_key",
           "MANIFEST_PREFIX", "CONTAINER_PREFIX", "CHUNK_PREFIX",
           "FILE_PREFIX", "INDEX_PREFIX", "JOURNAL_PREFIX",
           "DELTA_PREFIX", "STATCACHE_PREFIX", "STATCACHE_EPOCH_KEY"]

CONTAINER_PREFIX = "containers/"
CHUNK_PREFIX = "chunks/"
FILE_PREFIX = "files/"
MANIFEST_PREFIX = "manifests/"
INDEX_PREFIX = "index/"
JOURNAL_PREFIX = "journals/"
DELTA_PREFIX = "deltas/"
STATCACHE_PREFIX = "statcache/"
#: Monotonic GC generation stamp; every sweep that deletes data bumps
#: it, invalidating any persisted (or resident) stat-cache state.
STATCACHE_EPOCH_KEY = "statcache/EPOCH"


def container_key(container_id: int) -> str:
    """Key of a sealed container blob."""
    return f"{CONTAINER_PREFIX}{container_id:010d}"


def chunk_key(fingerprint: bytes) -> str:
    """Key of a directly-uploaded chunk (schemes without containers)."""
    return f"{CHUNK_PREFIX}{fingerprint.hex()}"


def delta_key(blob_digest: bytes) -> str:
    """Key of a directly-uploaded delta blob, addressed by the digest of
    the *blob itself* — never by the target chunk's fingerprint, which
    would alias with ``chunk_key`` and let a later full store of the
    same chunk clobber a blob that older manifests still reference."""
    return f"{DELTA_PREFIX}{blob_digest.hex()}"


def file_key(session_id: int, path: str) -> str:
    """Key of a whole-file object (incremental / file-granularity schemes).

    The path is hashed so arbitrary client paths map to flat safe keys.
    """
    digest = hashlib.sha1(path.encode("utf-8")).hexdigest()
    return f"{FILE_PREFIX}{session_id:06d}/{digest}"


def manifest_key(session_id: int) -> str:
    """Key of a session manifest."""
    return f"{MANIFEST_PREFIX}session-{session_id:06d}.json"


def journal_key(session_id: int) -> str:
    """Key of an in-flight session's upload journal (resume support)."""
    return f"{JOURNAL_PREFIX}session-{session_id:06d}.json"


def index_key(app: str) -> str:
    """Key of one application subindex replica (periodic sync)."""
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in app)
    return f"{INDEX_PREFIX}{safe}.idx"


def statcache_key(app: str) -> str:
    """Key of one application's persisted stat-cache blob."""
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in app)
    return f"{STATCACHE_PREFIX}{safe}.fc"
