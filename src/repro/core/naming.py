"""Cloud object key conventions shared by backup, restore, sync and GC."""

from __future__ import annotations

import hashlib

__all__ = ["container_key", "chunk_key", "file_key", "manifest_key",
           "index_key", "journal_key", "delta_key", "statcache_key",
           "replica_key", "parse_replica_key", "namespaced_keys",
           "MANIFEST_PREFIX", "CONTAINER_PREFIX", "CHUNK_PREFIX",
           "FILE_PREFIX", "INDEX_PREFIX", "JOURNAL_PREFIX",
           "DELTA_PREFIX", "STATCACHE_PREFIX", "STATCACHE_EPOCH_KEY",
           "REPLICA_PREFIX", "DURABILITY_PREFIX", "DURABILITY_PLAN_KEY",
           "TENANT_PREFIX"]

CONTAINER_PREFIX = "containers/"
CHUNK_PREFIX = "chunks/"
FILE_PREFIX = "files/"
MANIFEST_PREFIX = "manifests/"
INDEX_PREFIX = "index/"
JOURNAL_PREFIX = "journals/"
DELTA_PREFIX = "deltas/"
STATCACHE_PREFIX = "statcache/"
#: Monotonic GC generation stamp; every sweep that deletes data bumps
#: it, invalidating any persisted (or resident) stat-cache state.
STATCACHE_EPOCH_KEY = "statcache/EPOCH"
#: Container replicas, segregated by fault domain (see
#: :mod:`repro.durability`): ``replicas/<domain>/containers/<id>``.
REPLICA_PREFIX = "replicas/"
#: Durability metadata (the persisted replication plan).
DURABILITY_PREFIX = "durability/"
DURABILITY_PLAN_KEY = "durability/plan.json"
#: Root of per-tenant namespaces (see
#: :class:`repro.cloud.NamespacedBackend`).
TENANT_PREFIX = "clients/"


def container_key(container_id: int) -> str:
    """Key of a sealed container blob."""
    return f"{CONTAINER_PREFIX}{container_id:010d}"


def chunk_key(fingerprint: bytes) -> str:
    """Key of a directly-uploaded chunk (schemes without containers)."""
    return f"{CHUNK_PREFIX}{fingerprint.hex()}"


def delta_key(blob_digest: bytes) -> str:
    """Key of a directly-uploaded delta blob, addressed by the digest of
    the *blob itself* — never by the target chunk's fingerprint, which
    would alias with ``chunk_key`` and let a later full store of the
    same chunk clobber a blob that older manifests still reference."""
    return f"{DELTA_PREFIX}{blob_digest.hex()}"


def file_key(session_id: int, path: str) -> str:
    """Key of a whole-file object (incremental / file-granularity schemes).

    The path is hashed so arbitrary client paths map to flat safe keys.
    """
    digest = hashlib.sha1(path.encode("utf-8")).hexdigest()
    return f"{FILE_PREFIX}{session_id:06d}/{digest}"


def manifest_key(session_id: int) -> str:
    """Key of a session manifest."""
    return f"{MANIFEST_PREFIX}session-{session_id:06d}.json"


def journal_key(session_id: int) -> str:
    """Key of an in-flight session's upload journal (resume support)."""
    return f"{JOURNAL_PREFIX}session-{session_id:06d}.json"


def index_key(app: str) -> str:
    """Key of one application subindex replica (periodic sync)."""
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in app)
    return f"{INDEX_PREFIX}{safe}.idx"


def statcache_key(app: str) -> str:
    """Key of one application's persisted stat-cache blob."""
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in app)
    return f"{STATCACHE_PREFIX}{safe}.fc"


def replica_key(domain: str, container_id: int) -> str:
    """Key of a container replica inside fault domain ``domain``."""
    return f"{REPLICA_PREFIX}{domain}/{container_key(container_id)}"


def parse_replica_key(key: str):
    """``(domain, container_id)`` of a replica key, or ``None``.

    Inverse of :func:`replica_key`; malformed keys (wrong prefix, bad
    id) return ``None`` instead of raising, so sweeps can skip them.
    """
    if not key.startswith(REPLICA_PREFIX):
        return None
    rest = key[len(REPLICA_PREFIX):]
    domain, sep, container = rest.partition("/")
    if not sep or not domain or not container.startswith(CONTAINER_PREFIX):
        return None
    try:
        return domain, int(container[len(CONTAINER_PREFIX):])
    except ValueError:
        return None


def namespaced_keys(cloud, prefix: str) -> list:
    """All keys under ``prefix``, in the root *and* every tenant
    namespace of a shared backend.

    A fleet backend holds each client's private state under
    ``clients/<ns>/<prefix>...`` (see
    :class:`repro.cloud.NamespacedBackend`); fleet-wide walks (scrub,
    GC liveness, durability criticality) must see those keys too.  On a
    single-tenant store the extra list returns nothing.
    """
    keys = list(cloud.list(prefix))
    for key in cloud.list(TENANT_PREFIX):
        parts = key.split("/", 2)
        if len(parts) == 3 and parts[2].startswith(prefix):
            keys.append(key)
    return keys
