"""Staged backup pipeline: bounded queues, per-stage workers, abort.

The pipelined engine (``BackupClient._backup_pipelined``) decomposes the
CPU half of a session into explicit stages — read → chunk → hash —
executed by small per-stage worker pools connected through bounded
hand-off queues.  A full queue blocks the upstream stage (backpressure),
so memory stays bounded no matter how fast one stage runs; per-stage
worker counts come from :class:`~repro.core.options.SchemeConfig`.

Ordering is *not* a property of the queues: stages complete items out of
order whenever worker counts exceed one.  Determinism lives entirely in
the coordinator, which holds every in-flight :class:`WorkItem` in a
source-ordered window and commits them strictly in that order (see
docs/PIPELINE.md for the determinism argument).

Failure semantics:

* a stage callable raising marks only its own item failed; the error
  re-raises when the coordinator waits on that item;
* :meth:`StagePipeline.shutdown` with ``abort=True`` makes every worker
  drop queued items instead of processing them, so a failed session
  stops burning CPU on doomed work promptly;
* a worker thread dying from a machinery error (not a stage callable
  error) is detected by the liveness checks in :meth:`wait` and
  :meth:`shutdown` — the session fails instead of hanging forever.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import BackupError

__all__ = ["PipelineAborted", "StagePipeline", "WorkItem"]

#: Poll interval for abort-aware blocking waits (seconds).
_POLL = 0.05

#: Worker join grace on shutdown before declaring a stage hung.
_JOIN_TIMEOUT = 10.0

_SENTINEL = object()


class PipelineAborted(BackupError):
    """The pipeline was shut down before this item was processed."""


class WorkItem:
    """One source file moving through the stages.

    Stage callables mutate the item (``data`` after read, ``prep`` after
    chunk/hash) and the coordinator waits on ``done``; ``local`` is the
    item's private :class:`~repro.core.stats.SessionStats` so stages
    never contend on the session totals — the coordinator merges it at
    commit time.
    """

    __slots__ = ("seq", "sf", "app", "replay", "data", "prep", "local",
                 "error", "_done")

    def __init__(self, seq: int, sf, app, local=None,
                 replay: bool = False) -> None:
        self.seq = seq
        self.sf = sf
        self.app = app
        self.replay = replay
        self.data: Optional[bytes] = None
        self.prep = None
        self.local = local
        self.error: Optional[BaseException] = None
        self._done = threading.Event()
        if replay:  # never enters the stages
            self._done.set()

    def finish(self) -> None:
        self._done.set()

    def fail(self, exc: BaseException) -> None:
        self.error = exc
        self._done.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._done.wait(timeout)


class _Stage:
    """One stage: a bounded input queue and its worker pool."""

    __slots__ = ("name", "fn", "workers", "queue", "downstream",
                 "busy_seconds", "items", "threads", "_lock")

    def __init__(self, name: str, fn: Callable[[WorkItem], None],
                 workers: int, depth: int) -> None:
        self.name = name
        self.fn = fn
        self.workers = workers
        self.queue: "queue.Queue" = queue.Queue(maxsize=depth)
        self.downstream: Optional["_Stage"] = None
        self.busy_seconds = 0.0
        self.items = 0
        self.threads: List[threading.Thread] = []
        self._lock = threading.Lock()

    def charge(self, seconds: float, processed: bool) -> None:
        with self._lock:
            self.busy_seconds += seconds
            if processed:
                self.items += 1


class StagePipeline:
    """Wire stages together and run them until :meth:`shutdown`.

    ``stages`` is an ordered sequence of ``(name, fn, workers, depth)``;
    items submitted to the first stage flow through all of them and set
    their ``done`` event after the last.
    """

    def __init__(self, stages: Sequence[Tuple[str, Callable[[WorkItem],
                                                            None],
                                              int, int]]) -> None:
        if not stages:
            raise BackupError("pipeline needs at least one stage")
        self._abort = threading.Event()
        self._machinery_error: Optional[BaseException] = None
        self._stages: List[_Stage] = [
            _Stage(name, fn, workers, depth)
            for name, fn, workers, depth in stages]
        for stage, downstream in zip(self._stages, self._stages[1:]):
            stage.downstream = downstream
        self._closed = False
        for stage in self._stages:
            for i in range(stage.workers):
                thread = threading.Thread(
                    target=self._worker, args=(stage,), daemon=True,
                    name=f"aa-{stage.name}-{i}")
                stage.threads.append(thread)
                thread.start()

    # -- worker side ----------------------------------------------------
    def _worker(self, stage: _Stage) -> None:
        try:
            while True:
                item = stage.queue.get()
                if item is _SENTINEL:
                    return
                if self._abort.is_set():
                    item.fail(PipelineAborted("pipeline aborted"))
                    continue
                start = time.perf_counter()
                try:
                    stage.fn(item)
                except BaseException as exc:
                    item.fail(exc)
                finally:
                    stage.charge(time.perf_counter() - start,
                                 processed=item.error is None)
                if item.error is not None:
                    continue
                if stage.downstream is None:
                    item.finish()
                else:
                    self._forward(stage.downstream, item)
        except BaseException as exc:  # machinery failure: die visibly
            if self._machinery_error is None:
                self._machinery_error = exc

    def _forward(self, downstream: _Stage, item: WorkItem) -> None:
        while True:
            try:
                downstream.queue.put(item, timeout=_POLL)
                return
            except queue.Full:
                if self._abort.is_set():
                    item.fail(PipelineAborted("pipeline aborted"))
                    return

    # -- coordinator side -----------------------------------------------
    def submit(self, item: WorkItem) -> None:
        """Hand an item to the first stage (blocks when it is full)."""
        first = self._stages[0].queue
        while True:
            if self._abort.is_set():
                raise PipelineAborted("pipeline aborted")
            if not self.alive():
                raise BackupError(
                    "pipeline stage worker died") from self._machinery_error
            try:
                first.put(item, timeout=_POLL)
                return
            except queue.Full:
                continue

    def wait(self, item: WorkItem) -> None:
        """Block until ``item`` clears the stages; re-raise its error.

        Guarded by worker liveness: if a stage thread dies from a
        machinery failure while the item is still pending, this raises
        instead of waiting forever.
        """
        while not item.wait(_POLL):
            if not self.alive():
                raise BackupError(
                    "pipeline stage worker died") from self._machinery_error
        if item.error is not None:
            raise item.error

    def alive(self) -> bool:
        """True while every stage still has at least one live worker."""
        if self._closed:
            return True
        return all(any(t.is_alive() for t in stage.threads)
                   for stage in self._stages)

    def shutdown(self, abort: bool = False) -> None:
        """Stop all workers and join them.

        ``abort=True`` (the error path) makes workers drop everything
        still queued — queued items are marked failed with
        :class:`PipelineAborted` and their stage callables never run, so
        a doomed session does not keep preparing work the coordinator
        will never commit.
        """
        if self._closed:
            return
        if abort:
            self._abort.set()
        for stage in self._stages:
            for _ in range(stage.workers):
                self._put_sentinel(stage)
        deadline = time.monotonic() + _JOIN_TIMEOUT
        for stage in self._stages:
            for thread in stage.threads:
                thread.join(max(0.0, deadline - time.monotonic()))
                if thread.is_alive():
                    raise BackupError(
                        f"pipeline stage {stage.name!r} failed to stop")
        self._closed = True
        if self._machinery_error is not None and not abort:
            raise BackupError(
                "pipeline stage worker died") from self._machinery_error

    def _put_sentinel(self, stage: _Stage) -> None:
        while True:
            try:
                stage.queue.put(_SENTINEL, timeout=_POLL)
                return
            except queue.Full:
                if not any(t.is_alive() for t in stage.threads):
                    return  # nobody left to read it

    # -- instrumentation -------------------------------------------------
    def busy_seconds(self) -> Dict[str, float]:
        """Accumulated worker busy time per stage name."""
        return {stage.name: stage.busy_seconds for stage in self._stages}

    def items_processed(self) -> Dict[str, int]:
        """Items each stage processed successfully."""
        return {stage.name: stage.items for stage in self._stages}
