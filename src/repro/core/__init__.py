"""The AA-Dedupe core: the paper's contribution, end to end.

The pipeline (paper Fig. 5)::

    source files ──> file size filter ──> intelligent chunker
        ──> application-aware deduplicator (per-app indices)
        ──> container management ──> cloud storage
                                     └─> manifests + index sync

:class:`~repro.core.backup.BackupClient` executes this pipeline for any
:class:`~repro.core.options.SchemeConfig`; the AA-Dedupe configuration is
the default, and the baseline schemes in :mod:`repro.baselines` are just
different configurations of the same engine — the comparison is therefore
a comparison of *policies*, exactly as in the paper.
"""

from repro.core.source import SourceFile, DirectorySource, MemorySource
from repro.core.recipe import ChunkRef, FileEntry, Manifest
from repro.core.stats import OpCounters, SessionStats
from repro.core.options import SchemeConfig, aa_dedupe_config
from repro.core.backup import BackupClient
from repro.core.filecache import FileCache, invalidate_statcache
from repro.core.journal import SessionJournal
from repro.core.restore import RestoreClient, restore_session
from repro.core.sync import IndexSynchronizer
from repro.core.gc import collect_garbage, GCReport

__all__ = [
    "SourceFile",
    "DirectorySource",
    "MemorySource",
    "ChunkRef",
    "FileEntry",
    "Manifest",
    "OpCounters",
    "SessionStats",
    "SchemeConfig",
    "aa_dedupe_config",
    "BackupClient",
    "FileCache",
    "invalidate_statcache",
    "SessionJournal",
    "RestoreClient",
    "restore_session",
    "IndexSynchronizer",
    "collect_garbage",
    "GCReport",
]
