"""Cloud scrubbing: verify every stored byte without restoring.

A deployable backup tool must be able to answer "is my cloud copy still
good?" cheaply.  The scrubber walks the store and validates:

* every **container** parses, passes its CRC, and each described extent
  re-hashes to its descriptor fingerprint (the digest width selects the
  hash — :func:`repro.hashing.hash_for_digest_len` — as on restore);
  extents flagged ``FLAG_DELTA`` must additionally be structurally valid
  delta blobs;
* every **replica** of the persisted durability plan (see
  :mod:`repro.durability`) exists, parses and holds the right container;
  a planned container with fewer good copies than its target is
  *under-replicated*, and a replica without a plan entry is *orphaned*;
* every **manifest** parses, references only extents that exist
  (container descriptors or standalone objects), keeps its delta chains
  within depth bounds with no dangling base, and — for standalone
  objects — the stored bytes re-hash to the recipe fingerprint (delta
  objects are validated structurally instead: their bytes are a delta
  blob, not the chunk plaintext);
* every **index replica** parses into valid entries.

Tenant namespaces of a shared fleet backend are walked too
(:func:`repro.core.naming.namespaced_keys`), so one scrub of the shared
store covers every client's manifests.

Everything found is recorded twice: machine-actionable
:class:`ScrubFinding` records (what the repair loop and the CLI exit
code key off), and — for integrity violations — human-readable
``problems`` strings.  *Repairable* findings (a lost primary whose
replica survives, a missing replica, under-replication) mean the data
is intact but durability is degraded; refs into a primary-less
container are resolved against a surviving replica rather than reported
as missing, because restore fails over the same way.

Returns a :class:`ScrubReport`; nothing is modified.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.container.format import FLAG_DELTA, ContainerReader
from repro.core import naming
from repro.core.recipe import ChunkRef, Manifest
from repro.delta import delta_target_length, validate_delta
from repro.durability.policy import ReplicationPlan
from repro.errors import ContainerFormatError, DeltaError, ReproError
from repro.hashing import hash_for_digest_len
from repro.index.base import IndexEntry

__all__ = ["ScrubFinding", "ScrubReport", "scrub_cloud"]


@dataclass(frozen=True)
class ScrubFinding:
    """One actionable scrub observation.

    ``repairable`` distinguishes durability degradations (a surviving
    copy exists; ``repro repair`` can rebuild) from integrity problems
    (data corrupt or unrecoverable).
    """

    kind: str
    message: str
    repairable: bool = False


@dataclass
class ScrubReport:
    """Outcome of one scrub pass."""

    containers_checked: int = 0
    extents_verified: int = 0
    manifests_checked: int = 0
    refs_resolved: int = 0
    #: Standalone chunk/file objects whose content was re-hashed.
    objects_verified: int = 0
    #: Delta blobs (container extents or objects) structurally validated.
    deltas_validated: int = 0
    #: Replica copies that parsed and matched their container id.
    replicas_checked: int = 0
    index_replicas_checked: int = 0
    #: Human-readable integrity problems; a subset of ``findings``.
    problems: List[str] = field(default_factory=list)
    #: Every observation, problems and repairable degradations alike.
    findings: List[ScrubFinding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when nothing at all was found."""
        return not self.findings

    def problem(self, kind: str, message: str) -> None:
        """Record an integrity problem (data corrupt/unrecoverable)."""
        self.problems.append(message)
        self.findings.append(ScrubFinding(kind, message))

    def degraded(self, kind: str, message: str) -> None:
        """Record a repairable durability degradation."""
        self.findings.append(ScrubFinding(kind, message, repairable=True))

    def summary_line(self) -> str:
        """One-line findings summary (the CLI prints this)."""
        if not self.findings:
            return "0 findings"
        kinds = Counter(f.kind for f in self.findings)
        detail = ", ".join(f"{n} {kind}"
                           for kind, n in sorted(kinds.items()))
        repairable = sum(f.repairable for f in self.findings)
        return (f"{len(self.findings)} findings "
                f"({len(self.problems)} problems, "
                f"{repairable} repairable): {detail}")


def _tenant_prefix(manifest_key: str) -> str:
    """``clients/<ns>/`` when the manifest lives in a tenant namespace."""
    if manifest_key.startswith(naming.TENANT_PREFIX):
        parts = manifest_key.split("/", 2)
        if len(parts) == 3:
            return f"{parts[0]}/{parts[1]}/"
    return ""


def _map_object_key(prefix: str, key: str) -> str:
    """Raw backend key of a recipe's object ref.

    A tenant's recipes store unprefixed keys; on the shared backend the
    private ones (files, private deltas) live under the tenant prefix
    while the chunk pool is shared verbatim — the same mapping
    :class:`~repro.cloud.NamespacedBackend` applies.
    """
    if not prefix or key.startswith(naming.CHUNK_PREFIX):
        return key
    return prefix + key


def scrub_cloud(cloud, verify_extents: bool = True,
                max_delta_depth: int = 8) -> ScrubReport:
    """Validate all containers, replicas, manifests and index replicas
    in ``cloud``."""
    report = ScrubReport()

    # --- containers ------------------------------------------------------
    # Besides per-extent verification, record every extent's location,
    # length and flags so the manifest pass can resolve refs to actual
    # extents (not just to an existing container blob).
    extent_map: Dict[Tuple[int, int], Tuple[int, int]] = {}
    containers_present = set()
    for key in cloud.list(naming.CONTAINER_PREFIX):
        try:
            reader = ContainerReader(cloud.get(key))
        except (ContainerFormatError, ReproError) as exc:
            report.problem("corrupt_primary", f"{key}: {exc}")
            continue
        report.containers_checked += 1
        containers_present.add(reader.container_id)
        for desc in reader.descriptors:
            extent_map[(reader.container_id, desc.offset)] = (
                desc.length, desc.flags)
            if not verify_extents:
                continue
            data = reader.extent(desc)
            hasher = hash_for_digest_len(len(desc.fingerprint))
            if hasher is not None:
                if hasher.hash(data) != desc.fingerprint:
                    report.problem(
                        "corrupt_extent",
                        f"{key}: extent fingerprint mismatch at "
                        f"offset {desc.offset}")
                    continue
                report.extents_verified += 1
            if desc.flags & FLAG_DELTA:
                try:
                    validate_delta(data)
                except DeltaError as exc:
                    report.problem(
                        "corrupt_extent",
                        f"{key}: invalid delta blob at offset "
                        f"{desc.offset}: {exc}")
                    continue
                report.deltas_validated += 1

    # --- durability: replicas against the persisted plan -----------------
    _scrub_replicas(cloud, report, extent_map, containers_present)

    object_keys = set(naming.namespaced_keys(cloud, naming.CHUNK_PREFIX)) \
        | set(naming.namespaced_keys(cloud, naming.FILE_PREFIX)) \
        | set(naming.namespaced_keys(cloud, naming.DELTA_PREFIX))

    # --- manifests ---------------------------------------------------------
    verified_objects: Dict[str, bool] = {}

    def check_object(ref: ChunkRef, raw_key: str, where: str) -> None:
        """Verify a standalone object's *content*, once per key.

        Existence alone is not integrity: a truncated or corrupted
        object still "exists".  Non-delta objects must re-hash to the
        recipe fingerprint; delta objects must be structurally valid
        blobs whose declared target length matches the recipe.
        """
        if not verify_extents:
            return
        cached = verified_objects.get(raw_key)
        if cached is not None:
            if not cached:
                report.problem(
                    "corrupt_object",
                    f"{where} references corrupt object {ref.object_key}")
            return
        data = cloud.get(raw_key)
        ok = True
        if ref.is_delta:
            try:
                if len(data) != ref.stored_length:
                    raise DeltaError(
                        f"stored {len(data)}B != recorded "
                        f"{ref.stored_length}B")
                if delta_target_length(data) != ref.length:
                    raise DeltaError("declared target length mismatch")
                validate_delta(data)
            except DeltaError as exc:
                ok = False
                report.problem(
                    "corrupt_object",
                    f"{where}: delta object {ref.object_key}: {exc}")
            else:
                report.deltas_validated += 1
        else:
            hasher = hash_for_digest_len(len(ref.fingerprint))
            if hasher is not None and hasher.hash(data) != ref.fingerprint:
                ok = False
                report.problem(
                    "corrupt_object",
                    f"{where}: object {ref.object_key} content does not "
                    f"match its fingerprint")
            else:
                report.objects_verified += 1
        verified_objects[raw_key] = ok

    def check_ref(ref: ChunkRef, prefix: str, where: str,
                  role: str = "extent") -> None:
        if ref.in_container:
            if ref.container_id not in containers_present:
                report.problem(
                    "missing_primary",
                    f"{where} references missing container "
                    f"{ref.container_id} ({role})")
                return
            found = extent_map.get((ref.container_id, ref.offset))
            if found is None:
                report.problem(
                    "dangling_ref",
                    f"{where}: no extent at container "
                    f"{ref.container_id} offset {ref.offset} ({role})")
                return
            length, flags = found
            if length != ref.cloud_length:
                report.problem(
                    "dangling_ref",
                    f"{where}: extent length mismatch at container "
                    f"{ref.container_id} offset {ref.offset} "
                    f"({length} != {ref.cloud_length}, {role})")
                return
            if ref.is_delta and not flags & FLAG_DELTA:
                report.problem(
                    "dangling_ref",
                    f"{where}: delta ref resolves to a non-delta extent "
                    f"at container {ref.container_id} offset "
                    f"{ref.offset}")
                return
        else:
            raw_key = _map_object_key(prefix, ref.object_key)
            if raw_key not in object_keys:
                report.problem(
                    "missing_object",
                    f"{where} references missing object "
                    f"{ref.object_key} ({role})")
                return
            check_object(ref, raw_key, where)
        report.refs_resolved += 1

    for key in naming.namespaced_keys(cloud, naming.MANIFEST_PREFIX):
        try:
            manifest = Manifest.from_json(cloud.get(key))
        except (ReproError, ValueError) as exc:
            report.problem("corrupt_manifest", f"{key}: {exc}")
            continue
        report.manifests_checked += 1
        prefix = _tenant_prefix(key)
        for entry in manifest:
            for ref in entry.refs:
                if ref.chain_depth() > max_delta_depth:
                    report.problem(
                        "delta_chain",
                        f"{key}: {entry.path} delta chain deeper than "
                        f"{max_delta_depth}")
                    continue
                check_ref(ref, prefix, f"{key}: {entry.path}")
                base: Optional[ChunkRef] = ref.delta_base
                while base is not None:
                    check_ref(base, prefix, f"{key}: {entry.path}",
                              role="delta base")
                    base = base.delta_base

    # --- index replicas ---------------------------------------------------
    record = IndexEntry.RECORD_SIZE
    for key in naming.namespaced_keys(cloud, naming.INDEX_PREFIX):
        blob = cloud.get(key)
        if len(blob) % record:
            report.problem("corrupt_index",
                           f"{key}: truncated index replica")
            continue
        try:
            for pos in range(0, len(blob), record):
                IndexEntry.unpack(blob[pos:pos + record])
        except ReproError as exc:
            report.problem("corrupt_index", f"{key}: {exc}")
            continue
        report.index_replicas_checked += 1

    return report


def _scrub_replicas(cloud, report: ScrubReport,
                    extent_map: Dict[Tuple[int, int], Tuple[int, int]],
                    containers_present: Set[int]) -> None:
    """Check every planned replica; recover refs through survivors.

    When a planned container's primary is missing (or failed to parse),
    a good replica both proves the data still exists — its extents are
    registered so the manifest pass resolves refs instead of reporting
    loss — and downgrades the failure to a repairable
    ``missing_primary`` finding.
    """
    present = set(cloud.list(naming.REPLICA_PREFIX))
    plan = ReplicationPlan.load(cloud)
    planned_keys: Set[str] = set()
    if plan is not None:
        for container_id in sorted(plan.targets):
            expected = plan.replica_keys(container_id)
            planned_keys.update(expected)
            primary_ok = container_id in containers_present
            good_copies = 1 if primary_ok else 0
            recovered = False
            for key in expected:
                if key not in present:
                    report.degraded(
                        "missing_replica",
                        f"{key}: replica missing "
                        f"(container {container_id})")
                    continue
                try:
                    reader = ContainerReader(cloud.get(key))
                    if reader.container_id != container_id:
                        raise ContainerFormatError(
                            f"replica holds container "
                            f"{reader.container_id}")
                except (ContainerFormatError, ReproError) as exc:
                    report.degraded("corrupt_replica", f"{key}: {exc}")
                    continue
                report.replicas_checked += 1
                good_copies += 1
                if not primary_ok and not recovered:
                    recovered = True
                    containers_present.add(container_id)
                    for desc in reader.descriptors:
                        extent_map[(container_id, desc.offset)] = (
                            desc.length, desc.flags)
                    report.degraded(
                        "missing_primary",
                        f"{naming.container_key(container_id)}: primary "
                        f"lost; replica {key} survives")
            if good_copies == 0:
                report.problem(
                    "container_lost",
                    f"container {container_id}: no surviving copy in "
                    f"any fault domain")
            elif good_copies < plan.target(container_id):
                report.degraded(
                    "under_replicated",
                    f"container {container_id}: {good_copies} of "
                    f"{plan.target(container_id)} planned copies "
                    f"present")
    for key in sorted(present - planned_keys):
        report.degraded("orphan_replica",
                        f"{key}: replica has no plan entry")
