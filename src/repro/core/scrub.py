"""Cloud scrubbing: verify every stored byte without restoring.

A deployable backup tool must be able to answer "is my cloud copy still
good?" cheaply.  The scrubber walks the store and validates:

* every **container** parses, passes its CRC, and each described extent
  re-hashes to its descriptor fingerprint (the digest width selects the
  hash, as on restore);
* every **manifest** parses and references only extents that exist
  (container descriptors or standalone objects);
* every **index replica** parses into valid entries.

Returns a :class:`ScrubReport`; nothing is modified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.container.format import ContainerReader
from repro.core import naming
from repro.core.recipe import Manifest
from repro.errors import ContainerFormatError, ReproError
from repro.hashing.base import get_hash
from repro.index.base import IndexEntry

__all__ = ["ScrubReport", "scrub_cloud"]

_HASH_BY_LEN = {12: "rabin12", 16: "md5", 20: "sha1"}


@dataclass
class ScrubReport:
    """Outcome of one scrub pass."""

    containers_checked: int = 0
    extents_verified: int = 0
    manifests_checked: int = 0
    refs_resolved: int = 0
    index_replicas_checked: int = 0
    #: Human-readable problem descriptions; empty means a clean store.
    problems: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no problem was found."""
        return not self.problems


def scrub_cloud(cloud, verify_extents: bool = True) -> ScrubReport:
    """Validate all containers, manifests and index replicas in ``cloud``."""
    report = ScrubReport()

    # --- containers ------------------------------------------------------
    known_fingerprints = set()
    for key in cloud.list(naming.CONTAINER_PREFIX):
        try:
            reader = ContainerReader(cloud.get(key))
        except (ContainerFormatError, ReproError) as exc:
            report.problems.append(f"{key}: {exc}")
            continue
        report.containers_checked += 1
        for desc in reader.descriptors:
            known_fingerprints.add(desc.fingerprint)
            if not verify_extents:
                continue
            hash_name = _HASH_BY_LEN.get(len(desc.fingerprint))
            if hash_name is None:
                continue
            data = reader.extent(desc)
            if get_hash(hash_name).hash(data) != desc.fingerprint:
                report.problems.append(
                    f"{key}: extent fingerprint mismatch at "
                    f"offset {desc.offset}")
            else:
                report.extents_verified += 1

    object_keys = set(cloud.list(naming.CHUNK_PREFIX)) \
        | set(cloud.list(naming.FILE_PREFIX))

    # --- manifests ---------------------------------------------------------
    containers_present = {
        int(k[len(naming.CONTAINER_PREFIX):])
        for k in cloud.list(naming.CONTAINER_PREFIX)}
    for key in cloud.list(naming.MANIFEST_PREFIX):
        try:
            manifest = Manifest.from_json(cloud.get(key))
        except (ReproError, ValueError) as exc:
            report.problems.append(f"{key}: {exc}")
            continue
        report.manifests_checked += 1
        for entry in manifest:
            for ref in entry.refs:
                if ref.in_container:
                    if ref.container_id not in containers_present:
                        report.problems.append(
                            f"{key}: {entry.path} references missing "
                            f"container {ref.container_id}")
                        continue
                elif ref.object_key not in object_keys:
                    report.problems.append(
                        f"{key}: {entry.path} references missing object "
                        f"{ref.object_key}")
                    continue
                report.refs_resolved += 1

    # --- index replicas ---------------------------------------------------
    record = IndexEntry.RECORD_SIZE
    for key in cloud.list(naming.INDEX_PREFIX):
        blob = cloud.get(key)
        if len(blob) % record:
            report.problems.append(f"{key}: truncated index replica")
            continue
        try:
            for pos in range(0, len(blob), record):
                IndexEntry.unpack(blob[pos:pos + record])
        except ReproError as exc:
            report.problems.append(f"{key}: {exc}")
            continue
        report.index_replicas_checked += 1

    return report
