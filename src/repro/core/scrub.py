"""Cloud scrubbing: verify every stored byte without restoring.

A deployable backup tool must be able to answer "is my cloud copy still
good?" cheaply.  The scrubber walks the store and validates:

* every **container** parses, passes its CRC, and each described extent
  re-hashes to its descriptor fingerprint (the digest width selects the
  hash — :func:`repro.hashing.hash_for_digest_len` — as on restore);
  extents flagged ``FLAG_DELTA`` must additionally be structurally valid
  delta blobs;
* every **manifest** parses, references only extents that exist
  (container descriptors or standalone objects), keeps its delta chains
  within depth bounds with no dangling base, and — for standalone
  objects — the stored bytes re-hash to the recipe fingerprint (delta
  objects are validated structurally instead: their bytes are a delta
  blob, not the chunk plaintext);
* every **index replica** parses into valid entries.

Returns a :class:`ScrubReport`; nothing is modified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.container.format import FLAG_DELTA, ContainerReader
from repro.core import naming
from repro.core.recipe import ChunkRef, Manifest
from repro.delta import delta_target_length, validate_delta
from repro.errors import ContainerFormatError, DeltaError, ReproError
from repro.hashing import hash_for_digest_len
from repro.index.base import IndexEntry

__all__ = ["ScrubReport", "scrub_cloud"]


@dataclass
class ScrubReport:
    """Outcome of one scrub pass."""

    containers_checked: int = 0
    extents_verified: int = 0
    manifests_checked: int = 0
    refs_resolved: int = 0
    #: Standalone chunk/file objects whose content was re-hashed.
    objects_verified: int = 0
    #: Delta blobs (container extents or objects) structurally validated.
    deltas_validated: int = 0
    index_replicas_checked: int = 0
    #: Human-readable problem descriptions; empty means a clean store.
    problems: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no problem was found."""
        return not self.problems


def scrub_cloud(cloud, verify_extents: bool = True,
                max_delta_depth: int = 8) -> ScrubReport:
    """Validate all containers, manifests and index replicas in ``cloud``."""
    report = ScrubReport()

    # --- containers ------------------------------------------------------
    # Besides per-extent verification, record every extent's location,
    # length and flags so the manifest pass can resolve refs to actual
    # extents (not just to an existing container blob).
    extent_map: Dict[Tuple[int, int], Tuple[int, int]] = {}
    containers_present = set()
    for key in cloud.list(naming.CONTAINER_PREFIX):
        try:
            reader = ContainerReader(cloud.get(key))
        except (ContainerFormatError, ReproError) as exc:
            report.problems.append(f"{key}: {exc}")
            continue
        report.containers_checked += 1
        containers_present.add(reader.container_id)
        for desc in reader.descriptors:
            extent_map[(reader.container_id, desc.offset)] = (
                desc.length, desc.flags)
            if not verify_extents:
                continue
            data = reader.extent(desc)
            hasher = hash_for_digest_len(len(desc.fingerprint))
            if hasher is not None:
                if hasher.hash(data) != desc.fingerprint:
                    report.problems.append(
                        f"{key}: extent fingerprint mismatch at "
                        f"offset {desc.offset}")
                    continue
                report.extents_verified += 1
            if desc.flags & FLAG_DELTA:
                try:
                    validate_delta(data)
                except DeltaError as exc:
                    report.problems.append(
                        f"{key}: invalid delta blob at offset "
                        f"{desc.offset}: {exc}")
                    continue
                report.deltas_validated += 1

    object_keys = set(cloud.list(naming.CHUNK_PREFIX)) \
        | set(cloud.list(naming.FILE_PREFIX)) \
        | set(cloud.list(naming.DELTA_PREFIX))

    # --- manifests ---------------------------------------------------------
    verified_objects: Dict[str, bool] = {}

    def check_object(ref: ChunkRef, where: str) -> None:
        """Verify a standalone object's *content*, once per key.

        Existence alone is not integrity: a truncated or corrupted
        object still "exists".  Non-delta objects must re-hash to the
        recipe fingerprint; delta objects must be structurally valid
        blobs whose declared target length matches the recipe.
        """
        if not verify_extents:
            return
        cached = verified_objects.get(ref.object_key)
        if cached is not None:
            if not cached:
                report.problems.append(
                    f"{where} references corrupt object {ref.object_key}")
            return
        data = cloud.get(ref.object_key)
        ok = True
        if ref.is_delta:
            try:
                if len(data) != ref.stored_length:
                    raise DeltaError(
                        f"stored {len(data)}B != recorded "
                        f"{ref.stored_length}B")
                if delta_target_length(data) != ref.length:
                    raise DeltaError("declared target length mismatch")
                validate_delta(data)
            except DeltaError as exc:
                ok = False
                report.problems.append(
                    f"{where}: delta object {ref.object_key}: {exc}")
            else:
                report.deltas_validated += 1
        else:
            hasher = hash_for_digest_len(len(ref.fingerprint))
            if hasher is not None and hasher.hash(data) != ref.fingerprint:
                ok = False
                report.problems.append(
                    f"{where}: object {ref.object_key} content does not "
                    f"match its fingerprint")
            else:
                report.objects_verified += 1
        verified_objects[ref.object_key] = ok

    def check_ref(ref: ChunkRef, where: str,
                  role: str = "extent") -> None:
        if ref.in_container:
            if ref.container_id not in containers_present:
                report.problems.append(
                    f"{where} references missing container "
                    f"{ref.container_id} ({role})")
                return
            found = extent_map.get((ref.container_id, ref.offset))
            if found is None:
                report.problems.append(
                    f"{where}: no extent at container "
                    f"{ref.container_id} offset {ref.offset} ({role})")
                return
            length, flags = found
            if length != ref.cloud_length:
                report.problems.append(
                    f"{where}: extent length mismatch at container "
                    f"{ref.container_id} offset {ref.offset} "
                    f"({length} != {ref.cloud_length}, {role})")
                return
            if ref.is_delta and not flags & FLAG_DELTA:
                report.problems.append(
                    f"{where}: delta ref resolves to a non-delta extent "
                    f"at container {ref.container_id} offset "
                    f"{ref.offset}")
                return
        else:
            if ref.object_key not in object_keys:
                report.problems.append(
                    f"{where} references missing object "
                    f"{ref.object_key} ({role})")
                return
            check_object(ref, where)
        report.refs_resolved += 1

    for key in cloud.list(naming.MANIFEST_PREFIX):
        try:
            manifest = Manifest.from_json(cloud.get(key))
        except (ReproError, ValueError) as exc:
            report.problems.append(f"{key}: {exc}")
            continue
        report.manifests_checked += 1
        for entry in manifest:
            for ref in entry.refs:
                if ref.chain_depth() > max_delta_depth:
                    report.problems.append(
                        f"{key}: {entry.path} delta chain deeper than "
                        f"{max_delta_depth}")
                    continue
                check_ref(ref, f"{key}: {entry.path}")
                base: Optional[ChunkRef] = ref.delta_base
                while base is not None:
                    check_ref(base, f"{key}: {entry.path}",
                              role="delta base")
                    base = base.delta_base

    # --- index replicas ---------------------------------------------------
    record = IndexEntry.RECORD_SIZE
    for key in cloud.list(naming.INDEX_PREFIX):
        blob = cloud.get(key)
        if len(blob) % record:
            report.problems.append(f"{key}: truncated index replica")
            continue
        try:
            for pos in range(0, len(blob), record):
                IndexEntry.unpack(blob[pos:pos + record])
        except ReproError as exc:
            report.problems.append(f"{key}: {exc}")
            continue
        report.index_replicas_checked += 1

    return report
