"""Deletion support: mark-and-sweep garbage collection of cloud state.

"Supporting deletion of files requires an additional process in the
background" (Sec. III-F).  When backup sessions are retired, containers
and standalone objects may become partially or fully dead.  The collector
walks the *retained* manifests (the authoritative liveness roots — no
reliance on client-side refcounts, so it is crash-safe), then:

* deletes containers, chunk objects and file objects referenced by no
  retained manifest;
* deletes manifests of dropped sessions;
* reports per-container utilisation so operators can see fragmentation
  (rewriting live tails of cold containers is reported, not performed —
  it would require manifest rewrites, which the paper does not do
  either).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set

from repro.core import naming
from repro.core.recipe import Manifest

__all__ = ["GCReport", "collect_garbage"]


@dataclass
class GCReport:
    """What the collector found and removed."""

    retained_sessions: List[int] = field(default_factory=list)
    deleted_manifests: int = 0
    deleted_containers: int = 0
    deleted_objects: int = 0
    live_containers: int = 0
    #: container_id -> live bytes referenced by retained manifests
    #: (fragmentation visibility; padding/framing excluded).
    container_live_bytes: Dict[int, int] = field(default_factory=dict)


def _session_id_of(manifest_key: str) -> int:
    # "manifests/session-000003.json" -> 3
    stem = manifest_key.rsplit("session-", 1)[1]
    return int(stem.split(".", 1)[0])


def collect_garbage(cloud, retain_sessions: Iterable[int]) -> GCReport:
    """Drop all sessions except ``retain_sessions`` and sweep dead data.

    ``cloud`` needs ``list/get/delete``.  Returns a :class:`GCReport`.
    """
    retain = set(retain_sessions)
    report = GCReport(retained_sessions=sorted(retain))

    # --- mark: liveness roots from retained manifests -----------------
    live_containers: Set[int] = set()
    live_objects: Set[str] = set()
    for key in cloud.list(naming.MANIFEST_PREFIX):
        session_id = _session_id_of(key)
        if session_id not in retain:
            continue
        manifest = Manifest.from_json(cloud.get(key))
        live_containers |= manifest.referenced_containers()
        live_objects |= manifest.referenced_objects()
        for entry in manifest:
            for ref in entry.refs:
                if ref.in_container:
                    report.container_live_bytes[ref.container_id] = (
                        report.container_live_bytes.get(ref.container_id, 0)
                        + ref.length)

    # --- sweep: manifests of dropped sessions --------------------------
    for key in cloud.list(naming.MANIFEST_PREFIX):
        if _session_id_of(key) not in retain:
            cloud.delete(key)
            report.deleted_manifests += 1

    # --- sweep: containers ---------------------------------------------
    for key in cloud.list(naming.CONTAINER_PREFIX):
        container_id = int(key[len(naming.CONTAINER_PREFIX):])
        if container_id not in live_containers:
            cloud.delete(key)
            report.deleted_containers += 1
    report.live_containers = len(live_containers)

    # --- sweep: standalone chunk/file objects ---------------------------
    for prefix in (naming.CHUNK_PREFIX, naming.FILE_PREFIX):
        for key in cloud.list(prefix):
            if key not in live_objects:
                cloud.delete(key)
                report.deleted_objects += 1
    return report
