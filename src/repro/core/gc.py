"""Deletion support: mark-and-sweep garbage collection of cloud state.

"Supporting deletion of files requires an additional process in the
background" (Sec. III-F).  When backup sessions are retired, containers
and standalone objects may become partially or fully dead.  The collector
walks the *retained* manifests (the authoritative liveness roots — no
reliance on client-side refcounts, so it is crash-safe), then:

* deletes containers, chunk objects and file objects referenced by no
  retained manifest;
* deletes manifests of dropped sessions;
* sweeps durability replicas *with* their containers: a replica dies
  exactly when its container leaves the live set, never before — so a
  replica is never orphaned by GC, and the last surviving copy of a
  still-referenced container is never collected (liveness, not copy
  count, decides).  Plan entries of collected containers are pruned
  from the persisted :class:`~repro.durability.policy.ReplicationPlan`;
* reports per-container utilisation so operators can see fragmentation
  (rewriting live tails of cold containers is reported, not performed —
  it would require manifest rewrites, which the paper does not do
  either).

Retention (which sessions to drop) is decided from the *root*
manifests only, but liveness is fleet-wide: manifests in tenant
namespaces (``clients/<ns>/manifests/``) mark their containers and
shared chunk objects live, so a GC run against a shared fleet backend
can never collect data a tenant still references.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set

from repro.core import naming
from repro.core.filecache import invalidate_statcache
from repro.core.recipe import Manifest
from repro.durability.policy import ReplicationPlan
from repro.errors import ReproError

__all__ = ["GCReport", "collect_garbage", "session_catalog"]


@dataclass
class GCReport:
    """What the collector found and removed."""

    retained_sessions: List[int] = field(default_factory=list)
    deleted_manifests: int = 0
    deleted_containers: int = 0
    deleted_objects: int = 0
    #: Replica copies swept alongside their dead containers.
    deleted_replicas: int = 0
    #: Replication-plan entries dropped with their containers.
    plan_pruned: int = 0
    #: Tenant-namespace manifests that contributed liveness marks.
    tenant_manifests_marked: int = 0
    live_containers: int = 0
    #: container_id -> live bytes referenced by retained manifests
    #: (fragmentation visibility; padding/framing excluded).  Delta
    #: extents count their *stored* (delta blob) bytes, and base extents
    #: reached only through delta chains count too — a delta base is
    #: live as long as any retained delta references it.
    container_live_bytes: Dict[int, int] = field(default_factory=dict)
    #: Conditions that made the collector refuse to sweep (e.g. a
    #: retained manifest that failed to parse).  Non-empty problems mean
    #: nothing was deleted and the CLI exits non-zero.
    problems: List[str] = field(default_factory=list)
    #: Whether the sweep deleted data and therefore bumped the GC epoch,
    #: invalidating all stat caches (see docs/STATCACHE.md).
    statcache_invalidated: bool = False
    #: Persisted stat-cache blobs removed by the invalidation.
    statcache_blobs_deleted: int = 0


def _session_id_of(manifest_key: str) -> int:
    # "manifests/session-000003.json" -> 3
    stem = manifest_key.rsplit("session-", 1)[1]
    return int(stem.split(".", 1)[0])


def session_catalog(cloud) -> Dict[int, float]:
    """``{session_id: created_ts}`` for every manifest ``cloud`` sees.

    This is the retention selection helper: the timestamp-based
    policies (:class:`~repro.core.retention.RetainLastN`,
    :class:`~repro.core.retention.RetainMaxAge`) select their retained
    set from this catalog.  Called through a
    :class:`~repro.cloud.NamespacedBackend` view it catalogues that
    tenant's private sessions.  An unreadable manifest raises
    :class:`~repro.errors.ReproError` — a session whose age cannot be
    proven must never be silently classified as droppable.
    """
    catalog: Dict[int, float] = {}
    for key in cloud.list(naming.MANIFEST_PREFIX):
        try:
            session_id = _session_id_of(key)
        except (IndexError, ValueError):
            continue
        try:
            manifest = Manifest.from_json(cloud.get(key))
        except (ReproError, ValueError, KeyError) as exc:
            raise ReproError(
                f"manifest {key} unreadable: {exc}") from exc
        catalog[session_id] = manifest.created
    return catalog


def collect_garbage(cloud, retain_sessions: Iterable[int]) -> GCReport:
    """Drop all sessions except ``retain_sessions`` and sweep dead data.

    ``cloud`` needs ``list/get/delete``.  Returns a :class:`GCReport`.
    """
    retain = set(retain_sessions)
    report = GCReport(retained_sessions=sorted(retain))

    # --- mark: liveness roots from retained manifests -----------------
    # iter_refs walks every ref *including nested delta bases*, so a
    # base extent stays live while any retained delta references it,
    # even when no retained manifest references the base directly.
    live_containers: Set[int] = set()
    live_objects: Set[str] = set()
    seen_retained: Set[int] = set()
    for key in cloud.list(naming.MANIFEST_PREFIX):
        session_id = _session_id_of(key)
        if session_id not in retain:
            continue
        seen_retained.add(session_id)
        try:
            manifest = Manifest.from_json(cloud.get(key))
        except (ReproError, ValueError, KeyError) as exc:
            report.problems.append(
                f"retained manifest {key} unreadable: {exc}")
            continue
        live_containers |= manifest.referenced_containers()
        live_objects |= manifest.referenced_objects()
        for ref in manifest.iter_refs():
            if ref.in_container:
                report.container_live_bytes[ref.container_id] = (
                    report.container_live_bytes.get(ref.container_id, 0)
                    + ref.cloud_length)
    for session_id in sorted(retain - seen_retained):
        report.problems.append(
            f"retained session {session_id} has no manifest")

    # --- mark: fleet-wide liveness from tenant namespaces ---------------
    # Retention applies to root sessions only, but on a shared fleet
    # backend every tenant manifest pins its containers and shared
    # chunks live — an unreadable one makes the live sets
    # untrustworthy, so it blocks the sweep like a root manifest would.
    for key in cloud.list(naming.TENANT_PREFIX):
        if f"/{naming.MANIFEST_PREFIX}" not in key:
            continue
        try:
            manifest = Manifest.from_json(cloud.get(key))
        except (ReproError, ValueError, KeyError) as exc:
            report.problems.append(
                f"tenant manifest {key} unreadable: {exc}")
            continue
        report.tenant_manifests_marked += 1
        tenant = key.split(f"/{naming.MANIFEST_PREFIX}", 1)[0] + "/"
        live_containers |= manifest.referenced_containers()
        for obj_key in manifest.referenced_objects():
            if obj_key.startswith(naming.CHUNK_PREFIX):
                live_objects.add(obj_key)       # shared chunk pool
            else:
                live_objects.add(tenant + obj_key)

    # An incomplete mark phase means the live sets are untrustworthy;
    # sweeping on them could delete live data.  Refuse instead.
    if report.problems:
        report.live_containers = len(live_containers)
        return report

    # --- sweep: manifests of dropped sessions --------------------------
    for key in cloud.list(naming.MANIFEST_PREFIX):
        if _session_id_of(key) not in retain:
            cloud.delete(key)
            report.deleted_manifests += 1

    # --- sweep: containers ---------------------------------------------
    for key in cloud.list(naming.CONTAINER_PREFIX):
        container_id = int(key[len(naming.CONTAINER_PREFIX):])
        if container_id not in live_containers:
            cloud.delete(key)
            report.deleted_containers += 1
    report.live_containers = len(live_containers)

    # --- sweep: durability replicas with their containers ---------------
    # A replica's lifetime is its container's: live container -> every
    # copy is kept (even when it is the last survivor of a lost
    # primary); dead container -> all copies go with it.  Keys that do
    # not parse as replica keys are left for scrub to flag.
    for key in cloud.list(naming.REPLICA_PREFIX):
        parsed = naming.parse_replica_key(key)
        if parsed is not None and parsed[1] not in live_containers:
            cloud.delete(key)
            report.deleted_replicas += 1
    plan = ReplicationPlan.load(cloud)
    if plan is not None:
        report.plan_pruned = plan.prune(live_containers)
        if report.plan_pruned:
            plan.save(cloud)

    # --- sweep: standalone chunk/file/delta objects ---------------------
    for prefix in (naming.CHUNK_PREFIX, naming.FILE_PREFIX,
                   naming.DELTA_PREFIX):
        for key in cloud.list(prefix):
            if key not in live_objects:
                cloud.delete(key)
                report.deleted_objects += 1

    # --- sweep: tenant-private file/delta objects -----------------------
    # Chunk objects and containers are fleet-shared (a tenant view maps
    # them through verbatim), but whole-file and delta blobs live under
    # the tenant prefix.  When the service's retention drops a tenant
    # session, its file/delta objects become unreachable through any
    # manifest — sweep them here so per-job retention actually frees
    # space for file-granularity (JungleDisk-style) and delta jobs.
    # Live entries were recorded tenant-prefixed during the mark phase.
    _PRIVATE_SWEEP = (naming.FILE_PREFIX, naming.DELTA_PREFIX)
    for key in list(cloud.list(naming.TENANT_PREFIX)):
        rest = key[len(naming.TENANT_PREFIX):]
        _ns, _, sub = rest.partition("/")
        if any(sub.startswith(p) for p in _PRIVATE_SWEEP) \
                and key not in live_objects:
            cloud.delete(key)
            report.deleted_objects += 1

    # --- invalidate stat caches ----------------------------------------
    # Cached recipes may reference the extents just deleted, so any
    # sweep that removed data bumps the GC epoch: persisted blobs are
    # dropped here, resident client caches on their next epoch check.
    # Manifest-only deletions leave every extent in place, so caches
    # stay warm.
    if report.deleted_containers or report.deleted_objects:
        report.statcache_blobs_deleted = invalidate_statcache(cloud)
        report.statcache_blobs_deleted += _invalidate_tenant_statcaches(
            cloud)
        report.statcache_invalidated = True
    return report


def _invalidate_tenant_statcaches(cloud) -> int:
    """Drop every tenant's persisted stat cache and bump its epoch.

    The root :func:`~repro.core.filecache.invalidate_statcache` only
    touches the root ``statcache/`` subtree, but a sweep on a shared
    fleet backend deletes extents tenant caches may also reference —
    each tenant namespace gets the same treatment so its clients'
    resident caches invalidate on their next epoch check.  Returns the
    number of tenant blobs deleted.
    """
    deleted = 0
    namespaces = set()
    for key in list(cloud.list(naming.TENANT_PREFIX)):
        rest = key[len(naming.TENANT_PREFIX):]
        namespace, sep, sub = rest.partition("/")
        if not sep:
            continue
        # Every tenant gets an epoch bump — including ones with no
        # persisted blobs (stat cache off today, maybe on tomorrow):
        # the epoch is the proof-of-currency for *any* cached recipe.
        namespaces.add(namespace)
        if sub.startswith(naming.STATCACHE_PREFIX) \
                and sub != naming.STATCACHE_EPOCH_KEY:
            cloud.delete(key)
            deleted += 1
    for namespace in sorted(namespaces):
        epoch_key = (naming.TENANT_PREFIX + namespace + "/"
                     + naming.STATCACHE_EPOCH_KEY)
        try:
            epoch = int(cloud.get(epoch_key).decode("ascii"))
        except (ReproError, KeyError, ValueError, UnicodeDecodeError):
            epoch = 0
        cloud.put(epoch_key, str(epoch + 1).encode("ascii"))
    return deleted
