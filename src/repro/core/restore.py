"""Restore engine: reassemble any backed-up session from the cloud.

Restore needs only the session manifest and the self-describing
containers/objects it references.  Containers are fetched once and kept
in a small LRU cache — the *chunk locality* preserved by the container
manager (Sec. III-F) is what makes this effective, and the restore tests
assert both bit-exactness and the bounded fetch count.

Every extent is verified against its recipe fingerprint: the digest
length identifies the hash (see
:func:`repro.hashing.hash_for_digest_len`), so verification needs no
side channel.  Delta extents (see :mod:`repro.delta`) are decoded by
recursively materialising their base chain, whose depth is capped by
``max_delta_depth``.

Verification failures are not immediately fatal: a transport-level bit
flip (modelled by ``ChaosBackend.corrupt_rate``) and at-rest corruption
look identical on first read, so the client **retries the fetch once**
— a container whose CRC fails is re-fetched; a standalone object whose
content misses its fingerprint is re-fetched; a delta blob that fails
to apply is re-fetched.  Only a second failure is treated as real.  A
container whose primary is missing or corrupt after the retry **fails
over** to the replica copies recorded in the durability plan
(:mod:`repro.durability`) instead of aborting the restore.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.container.format import ContainerFormatError, ContainerReader
from repro.core import naming
from repro.core.recipe import ChunkRef, Manifest
from repro.delta import DeltaError, apply_delta
from repro.errors import (CloudError, IntegrityError, PermanentCloudError,
                          RestoreError)
from repro.hashing import hash_for_digest_len
from repro.obs.tracer import NOOP_TRACER

__all__ = ["RestoreClient", "RestoreReport", "restore_session"]


@dataclass
class RestoreReport:
    """Outcome of one restore."""

    session_id: int
    files_restored: int = 0
    bytes_restored: int = 0
    containers_fetched: int = 0
    objects_fetched: int = 0
    chunks_verified: int = 0
    #: Delta extents decoded against their base chain.
    deltas_applied: int = 0
    #: Fetches repeated after a verification failure (cumulative over
    #: the client's lifetime, like ``containers_fetched``).
    fetch_retries: int = 0
    #: Containers served from a replica copy after the primary was
    #: missing or corrupt (cumulative).
    failovers: int = 0
    #: paths that failed verification (empty on success).
    corrupt: list = field(default_factory=list)


class RestoreClient:
    """Reassembles files of a session from cloud storage."""

    def __init__(self, cloud, verify: bool = True,
                 container_cache_size: int = 8,
                 master_key: Optional[bytes] = None,
                 max_delta_depth: int = 8,
                 tracer=None) -> None:
        self.cloud = cloud
        self.verify = verify
        self.master_key = master_key
        #: Longest delta chain this client will follow.  A chain deeper
        #: than the writer could produce (``delta_max_chain``) means a
        #: corrupt or adversarial manifest, not data — refuse it rather
        #: than recurse without bound.
        self.max_delta_depth = max(1, max_delta_depth)
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self._cache_size = max(1, container_cache_size)
        self._containers: "OrderedDict[int, ContainerReader]" = OrderedDict()
        self._fetched = 0
        self._retries = 0
        self._failovers = 0
        #: Durability plan, loaded lazily on the first primary failure
        #: (the healthy path never pays for it).
        self._plan_loaded = False
        self._plan = None
        #: Reconstructed delta targets by extent location — duplicate
        #: refs to a delta chunk decode its chain once, not per file.
        self._delta_memo: "OrderedDict[tuple, bytes]" = OrderedDict()

    # ------------------------------------------------------------------
    def load_manifest(self, session_id: int) -> Manifest:
        """Fetch and parse the manifest of ``session_id``."""
        blob = self.cloud.get(naming.manifest_key(session_id))
        return Manifest.from_json(blob)

    def _replica_candidates(self, container_id: int) -> List[str]:
        """Planned replica keys to fail over to (empty without a plan)."""
        if not self._plan_loaded:
            self._plan_loaded = True
            from repro.durability.policy import ReplicationPlan
            self._plan = ReplicationPlan.load(self.cloud)
        if self._plan is None:
            return []
        return self._plan.replica_keys(container_id)

    def _container(self, container_id: int) -> ContainerReader:
        reader = self._containers.get(container_id)
        if reader is not None:
            self._containers.move_to_end(container_id)
            return reader
        with self.tracer.span("restore.container_fetch",
                              container=container_id):
            reader = self._fetch_container(container_id)
        self._fetched += 1
        self._containers[container_id] = reader
        while len(self._containers) > self._cache_size:
            self._containers.popitem(last=False)
        return reader

    def _fetch_container(self, container_id: int) -> ContainerReader:
        """Primary, retried once on corruption, then replica failover."""
        key = naming.container_key(container_id)
        failure: Exception
        try:
            return ContainerReader(self.cloud.get(key))
        except (ContainerFormatError, PermanentCloudError) as exc:
            failure = exc
        if isinstance(failure, ContainerFormatError):
            self._retries += 1
            try:
                return ContainerReader(self.cloud.get(key))
            except (ContainerFormatError, PermanentCloudError) as exc:
                failure = exc
        for replica in self._replica_candidates(container_id):
            try:
                reader = ContainerReader(self.cloud.get(replica))
            except (ContainerFormatError, CloudError):
                continue
            if reader.container_id != container_id:
                continue
            self._failovers += 1
            if self.tracer.enabled:
                self.tracer.metrics.counter(
                    "restore_failover_total").inc()
            return reader
        if isinstance(failure, ContainerFormatError):
            raise IntegrityError(
                f"container {container_id} failed validation: {failure}"
            ) from failure
        raise failure

    def _read_extent(self, ref: ChunkRef, length: int,
                     report: RestoreReport) -> bytes:
        """Raw stored bytes of ``ref`` (container slice or object)."""
        if ref.in_container:
            data = self._container(ref.container_id).read_at(ref.offset,
                                                             length)
        else:
            data = self.cloud.get(ref.object_key)
            report.objects_fetched += 1
        if len(data) != length:
            raise IntegrityError(
                f"extent length mismatch ({len(data)} != {length})")
        return data

    def _verify_payload(self, data: bytes, ref: ChunkRef,
                        report: RestoreReport) -> None:
        hasher = hash_for_digest_len(len(ref.fingerprint))
        if hasher is not None:
            if hasher.hash(data) != ref.fingerprint:
                raise IntegrityError("fingerprint mismatch on restore")
            report.chunks_verified += 1

    def _fetch_delta(self, ref: ChunkRef, report: RestoreReport,
                     depth: int) -> bytes:
        """Materialise a delta extent by resolving its base chain."""
        if depth > self.max_delta_depth:
            raise RestoreError(
                f"delta chain deeper than max_delta_depth="
                f"{self.max_delta_depth}")
        memo_key = ((ref.container_id, ref.offset) if ref.in_container
                    else ref.object_key)
        cached = self._delta_memo.get(memo_key)
        if cached is not None:
            self._delta_memo.move_to_end(memo_key)
            return cached
        blob = self._read_extent(ref, ref.stored_length, report)
        base = self._fetch_ref(ref.delta_base, report, depth=depth + 1)
        try:
            data = self._apply_delta(base, blob, ref)
        except IntegrityError:
            if ref.in_container:
                # Container extents are CRC-covered at fetch time, so
                # the blob is what was stored — a decode failure is
                # real corruption, not transport noise.
                raise
            self._retries += 1
            blob = self._read_extent(ref, ref.stored_length, report)
            data = self._apply_delta(base, blob, ref)
        report.deltas_applied += 1
        self._delta_memo[memo_key] = data
        while len(self._delta_memo) > 128:
            self._delta_memo.popitem(last=False)
        return data

    def _apply_delta(self, base: bytes, blob: bytes,
                     ref: ChunkRef) -> bytes:
        try:
            data = apply_delta(base, blob)
        except DeltaError as exc:
            raise IntegrityError(f"delta decode failed: {exc}") from exc
        if len(data) != ref.length:
            raise IntegrityError(
                f"delta target length mismatch "
                f"({len(data)} != {ref.length})")
        return data

    def _fetch_ref(self, ref: ChunkRef, report: RestoreReport,
                   depth: int = 1) -> bytes:
        if ref.is_delta:
            if self.tracer.enabled and depth == 1:
                with self.tracer.span("restore.delta_chain",
                                      depth=ref.chain_depth()):
                    data = self._fetch_delta(ref, report, depth)
            else:
                data = self._fetch_delta(ref, report, depth)
        else:
            data = self._read_extent(ref, ref.length, report)
        if self.verify:
            try:
                self._verify_payload(data, ref, report)
            except IntegrityError:
                if ref.is_delta or ref.in_container:
                    # Decoded deltas and CRC-covered container extents
                    # cannot be transport flips — the mismatch is real.
                    raise
                self._retries += 1
                data = self._read_extent(ref, ref.length, report)
                self._verify_payload(data, ref, report)
        if ref.wrapped_key is not None:
            # Convergently encrypted extent: recover and apply its key.
            if self.master_key is None:
                raise RestoreError(
                    "session is encrypted; a master_key is required")
            from repro.secure import ConvergentCipher, unwrap_key
            key = unwrap_key(ref.wrapped_key, self.master_key,
                             ref.fingerprint)
            data = ConvergentCipher.decrypt(data, key)
        return data

    # ------------------------------------------------------------------
    def restore_to_memory(self, session_id: int,
                          paths: Optional[list[str]] = None
                          ) -> tuple[Dict[str, bytes], RestoreReport]:
        """Restore a session (or selected ``paths``) into a dict."""
        with self.tracer.span("restore", session=session_id):
            manifest = self.load_manifest(session_id)
            report = RestoreReport(session_id=session_id)
            wanted = set(paths) if paths is not None else None
            out: Dict[str, bytes] = {}
            for entry in manifest:
                if wanted is not None and entry.path not in wanted:
                    continue
                with self.tracer.span("restore.file", app=entry.app,
                                      bytes=entry.size):
                    pieces = [self._fetch_ref(ref, report)
                              for ref in entry.refs]
                    data = b"".join(pieces)
                if len(data) != entry.size:
                    raise IntegrityError(
                        f"file size mismatch for {entry.path!r}")
                out[entry.path] = data
                report.files_restored += 1
                report.bytes_restored += len(data)
            if wanted is not None and len(out) != len(wanted):
                missing = sorted(wanted - set(out))
                raise RestoreError(f"paths not in session: {missing}")
            report.containers_fetched = self._fetched
            report.fetch_retries = self._retries
            report.failovers = self._failovers
            return out, report

    def restore_to_directory(self, session_id: int,
                             dest: str | os.PathLike,
                             paths: Optional[list[str]] = None
                             ) -> RestoreReport:
        """Restore a session into a directory tree."""
        files, report = self.restore_to_memory(session_id, paths)
        dest = Path(dest)
        for relpath, data in files.items():
            target = dest / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_bytes(data)
        return report


def restore_session(cloud, session_id: int, dest: str | os.PathLike,
                    verify: bool = True) -> RestoreReport:
    """Convenience one-shot restore of a whole session to ``dest``."""
    return RestoreClient(cloud, verify=verify).restore_to_directory(
        session_id, dest)
