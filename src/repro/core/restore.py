"""Restore engine: reassemble any backed-up session from the cloud.

Restore needs only the session manifest and the self-describing
containers/objects it references.  Containers are fetched once and kept
in a small LRU cache — the *chunk locality* preserved by the container
manager (Sec. III-F) is what makes this effective, and the restore tests
assert both bit-exactness and the bounded fetch count.

Every extent is verified against its recipe fingerprint: the digest
length identifies the hash (12 B extended Rabin / 16 B MD5 / 20 B SHA-1),
so verification needs no side channel.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

from repro.container.format import ContainerFormatError, ContainerReader
from repro.core import naming
from repro.core.recipe import ChunkRef, Manifest
from repro.errors import IntegrityError, RestoreError
from repro.hashing.base import get_hash
from repro.obs.tracer import NOOP_TRACER

__all__ = ["RestoreClient", "RestoreReport", "restore_session"]

_HASH_BY_DIGEST_LEN = {12: "rabin12", 16: "md5", 20: "sha1"}


@dataclass
class RestoreReport:
    """Outcome of one restore."""

    session_id: int
    files_restored: int = 0
    bytes_restored: int = 0
    containers_fetched: int = 0
    objects_fetched: int = 0
    chunks_verified: int = 0
    #: paths that failed verification (empty on success).
    corrupt: list = field(default_factory=list)


class RestoreClient:
    """Reassembles files of a session from cloud storage."""

    def __init__(self, cloud, verify: bool = True,
                 container_cache_size: int = 8,
                 master_key: Optional[bytes] = None,
                 tracer=None) -> None:
        self.cloud = cloud
        self.verify = verify
        self.master_key = master_key
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self._cache_size = max(1, container_cache_size)
        self._containers: "OrderedDict[int, ContainerReader]" = OrderedDict()
        self._fetched = 0

    # ------------------------------------------------------------------
    def load_manifest(self, session_id: int) -> Manifest:
        """Fetch and parse the manifest of ``session_id``."""
        blob = self.cloud.get(naming.manifest_key(session_id))
        return Manifest.from_json(blob)

    def _container(self, container_id: int) -> ContainerReader:
        reader = self._containers.get(container_id)
        if reader is not None:
            self._containers.move_to_end(container_id)
            return reader
        with self.tracer.span("restore.container_fetch",
                              container=container_id):
            blob = self.cloud.get(naming.container_key(container_id))
        try:
            reader = ContainerReader(blob)
        except ContainerFormatError as exc:
            raise IntegrityError(
                f"container {container_id} failed validation: {exc}"
            ) from exc
        self._fetched += 1
        self._containers[container_id] = reader
        while len(self._containers) > self._cache_size:
            self._containers.popitem(last=False)
        return reader

    def _fetch_ref(self, ref: ChunkRef, report: RestoreReport) -> bytes:
        if ref.in_container:
            data = self._container(ref.container_id).read_at(ref.offset,
                                                             ref.length)
        else:
            data = self.cloud.get(ref.object_key)
            report.objects_fetched += 1
        if len(data) != ref.length:
            raise IntegrityError(
                f"extent length mismatch ({len(data)} != {ref.length})")
        if self.verify:
            hash_name = _HASH_BY_DIGEST_LEN.get(len(ref.fingerprint))
            if hash_name is not None:
                if get_hash(hash_name).hash(data) != ref.fingerprint:
                    raise IntegrityError("fingerprint mismatch on restore")
                report.chunks_verified += 1
        if ref.wrapped_key is not None:
            # Convergently encrypted extent: recover and apply its key.
            if self.master_key is None:
                raise RestoreError(
                    "session is encrypted; a master_key is required")
            from repro.secure import ConvergentCipher, unwrap_key
            key = unwrap_key(ref.wrapped_key, self.master_key,
                             ref.fingerprint)
            data = ConvergentCipher.decrypt(data, key)
        return data

    # ------------------------------------------------------------------
    def restore_to_memory(self, session_id: int,
                          paths: Optional[list[str]] = None
                          ) -> tuple[Dict[str, bytes], RestoreReport]:
        """Restore a session (or selected ``paths``) into a dict."""
        with self.tracer.span("restore", session=session_id):
            manifest = self.load_manifest(session_id)
            report = RestoreReport(session_id=session_id)
            wanted = set(paths) if paths is not None else None
            out: Dict[str, bytes] = {}
            for entry in manifest:
                if wanted is not None and entry.path not in wanted:
                    continue
                with self.tracer.span("restore.file", app=entry.app,
                                      bytes=entry.size):
                    pieces = [self._fetch_ref(ref, report)
                              for ref in entry.refs]
                    data = b"".join(pieces)
                if len(data) != entry.size:
                    raise IntegrityError(
                        f"file size mismatch for {entry.path!r}")
                out[entry.path] = data
                report.files_restored += 1
                report.bytes_restored += len(data)
            if wanted is not None and len(out) != len(wanted):
                missing = sorted(wanted - set(out))
                raise RestoreError(f"paths not in session: {missing}")
            report.containers_fetched = self._fetched
            return out, report

    def restore_to_directory(self, session_id: int,
                             dest: str | os.PathLike,
                             paths: Optional[list[str]] = None
                             ) -> RestoreReport:
        """Restore a session into a directory tree."""
        files, report = self.restore_to_memory(session_id, paths)
        dest = Path(dest)
        for relpath, data in files.items():
            target = dest / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_bytes(data)
        return report


def restore_session(cloud, session_id: int, dest: str | os.PathLike,
                    verify: bool = True) -> RestoreReport:
    """Convenience one-shot restore of a whole session to ``dest``."""
    return RestoreClient(cloud, verify=verify).restore_to_directory(
        session_id, dest)
