"""Retention policies: which backup sessions to keep.

The garbage collector (:mod:`repro.core.gc`) takes an explicit retain
set; these helpers compute that set from operator-friendly policies —
the glue a deployable backup tool needs around "supporting deletion of
files" (paper Sec. III-F).

Four policies are provided:

* :func:`keep_last` — the simplest rolling window over session ids;
* :class:`RetainLastN` — rolling window over manifest *timestamps*
  (the declarative service layer's ``retain-last`` policy);
* :class:`RetainMaxAge` — drop sessions older than a cutoff;
* :class:`GFSPolicy` — grandfather-father-son: keep the last *d* daily,
  *w* weekly and *m* monthly sessions, the standard backup rotation.

:class:`RetainLastN` and :class:`RetainMaxAge` share one interface —
``select(sessions, now)`` over a ``{session_id: created_ts}`` catalog
(see :func:`repro.core.gc.session_catalog`) — so the service runner and
``repro gc`` apply either interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Set

from repro.errors import ConfigError

__all__ = ["keep_last", "RetainLastN", "RetainMaxAge", "GFSPolicy"]

_DAY = 86_400.0


def keep_last(session_ids: Iterable[int], count: int) -> Set[int]:
    """Retain the ``count`` most recent session ids.

    ``count <= 0`` retains nothing (drop-everything is an explicit
    choice the caller must make; GC will then sweep the whole store).
    """
    if count <= 0:
        return set()
    ordered = sorted(session_ids)
    return set(ordered[-count:])


@dataclass(frozen=True)
class RetainLastN:
    """Retain the ``count`` newest sessions by creation time.

    Unlike :func:`keep_last`, recency is decided by the manifest's
    ``created`` stamp (session ids break ties), so explicit re-runs of
    an old session id never shadow genuinely newer sessions.
    ``count <= 0`` is a configuration error — a drop-everything policy
    must be the explicit :func:`keep_last` call, never a config typo.
    """

    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigError(
                f"retain-last count must be >= 1, got {self.count}")

    def select(self, sessions: Mapping[int, float],
               now: float = 0.0) -> Set[int]:
        """Return the retained ids from ``{session_id: created_ts}``."""
        ordered = sorted(sessions, key=lambda sid: (sessions[sid], sid))
        return set(ordered[-self.count:])


@dataclass(frozen=True)
class RetainMaxAge:
    """Retain sessions no older than ``max_age_seconds`` at ``now``.

    The newest session is always retained, whatever its age: a backup
    service must never transition from "old backups" to "no backups"
    purely by the passage of time.
    """

    max_age_seconds: float

    def __post_init__(self) -> None:
        if self.max_age_seconds <= 0:
            raise ConfigError(
                f"max-age must be > 0 seconds, got {self.max_age_seconds}")

    def select(self, sessions: Mapping[int, float],
               now: float) -> Set[int]:
        """Return the retained ids from ``{session_id: created_ts}``."""
        if not sessions:
            return set()
        retain = {sid for sid, ts in sessions.items()
                  if now - ts <= self.max_age_seconds}
        retain.add(max(sessions, key=lambda sid: (sessions[sid], sid)))
        return retain


@dataclass(frozen=True)
class GFSPolicy:
    """Grandfather-father-son rotation.

    ``apply`` selects, from ``(session_id, created_ts)`` pairs:

    * the newest session of each of the last ``daily`` days,
    * the newest session of each of the last ``weekly`` weeks,
    * the newest session of each of the last ``monthly`` ~30-day months,

    all relative to the newest session's timestamp.  A session retained
    by any tier is retained.
    """

    daily: int = 7
    weekly: int = 4
    monthly: int = 6

    def apply(self, sessions: Dict[int, float]) -> Set[int]:
        """Return the retain set for ``{session_id: created_ts}``."""
        if not sessions:
            return set()
        newest = max(sessions.values())
        retain: Set[int] = set()
        tiers = ((self.daily, _DAY), (self.weekly, 7 * _DAY),
                 (self.monthly, 30 * _DAY))
        for count, period in tiers:
            for slot in range(count):
                window_end = newest - slot * period
                window_start = window_end - period
                candidates = [sid for sid, ts in sessions.items()
                              if window_start < ts <= window_end]
                if candidates:
                    retain.add(max(
                        candidates, key=lambda sid: (sessions[sid], sid)))
        return retain
