"""Retention policies: which backup sessions to keep.

The garbage collector (:mod:`repro.core.gc`) takes an explicit retain
set; these helpers compute that set from operator-friendly policies —
the glue a deployable backup tool needs around "supporting deletion of
files" (paper Sec. III-F).

Two policies are provided:

* :func:`keep_last` — the simplest rolling window;
* :class:`GFSPolicy` — grandfather-father-son: keep the last *d* daily,
  *w* weekly and *m* monthly sessions, the standard backup rotation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Set

__all__ = ["keep_last", "GFSPolicy"]

_DAY = 86_400.0


def keep_last(session_ids: Iterable[int], count: int) -> Set[int]:
    """Retain the ``count`` most recent session ids.

    ``count <= 0`` retains nothing (drop-everything is an explicit
    choice the caller must make; GC will then sweep the whole store).
    """
    if count <= 0:
        return set()
    ordered = sorted(session_ids)
    return set(ordered[-count:])


@dataclass(frozen=True)
class GFSPolicy:
    """Grandfather-father-son rotation.

    ``apply`` selects, from ``(session_id, created_ts)`` pairs:

    * the newest session of each of the last ``daily`` days,
    * the newest session of each of the last ``weekly`` weeks,
    * the newest session of each of the last ``monthly`` ~30-day months,

    all relative to the newest session's timestamp.  A session retained
    by any tier is retained.
    """

    daily: int = 7
    weekly: int = 4
    monthly: int = 6

    def apply(self, sessions: Dict[int, float]) -> Set[int]:
        """Return the retain set for ``{session_id: created_ts}``."""
        if not sessions:
            return set()
        newest = max(sessions.values())
        retain: Set[int] = set()
        tiers = ((self.daily, _DAY), (self.weekly, 7 * _DAY),
                 (self.monthly, 30 * _DAY))
        for count, period in tiers:
            for slot in range(count):
                window_end = newest - slot * period
                window_start = window_end - period
                candidates = [sid for sid, ts in sessions.items()
                              if window_start < ts <= window_end]
                if candidates:
                    retain.add(max(
                        candidates, key=lambda sid: (sessions[sid], sid)))
        return retain
