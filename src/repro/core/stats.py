"""Per-session statistics and operation accounting.

:class:`OpCounters` records *what work was done* — bytes pushed through
each hash function, bytes scanned by the CDC boundary detector, chunk and
file counts, index probe counts — in a representation-independent way.
The same counters are filled by the real engine and by the trace engine,
and are the sole input the virtual CPU model
(:mod:`repro.simulate.cpumodel`) needs to price a session on the paper's
hardware.  :class:`SessionStats` adds the data-volume and request
outcomes from which every paper metric (DR, DE, BWS, CC, energy) derives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["OpCounters", "SessionStats"]


@dataclass
class OpCounters:
    """Work accounting for one backup session."""

    #: Bytes fingerprinted, per hash name ("rabin12", "md5", "sha1").
    hashed_bytes: Dict[str, int] = field(default_factory=dict)
    #: Bytes scanned by the rolling-hash CDC boundary detector.
    cdc_scanned_bytes: int = 0
    #: Bytes read from the source (disk read model input).
    read_bytes: int = 0
    #: Chunks produced by chunking (before dedup).
    chunks_produced: int = 0
    #: Index lookups issued / hits / lookups that had to touch disk.
    index_lookups: int = 0
    index_hits: int = 0
    index_disk_probes: int = 0
    #: Bytes pushed through the resemblance sketcher (delta stage).
    sketch_bytes: int = 0
    #: Bytes delta-encoded (target side) by the delta codec.
    delta_encode_bytes: int = 0

    def add_hashed(self, hash_name: str, nbytes: int) -> None:
        """Charge ``nbytes`` of fingerprinting under ``hash_name``."""
        self.hashed_bytes[hash_name] = (
            self.hashed_bytes.get(hash_name, 0) + nbytes)

    def merge(self, other: "OpCounters") -> None:
        """Accumulate ``other`` into ``self``."""
        for name, nbytes in other.hashed_bytes.items():
            self.add_hashed(name, nbytes)
        self.cdc_scanned_bytes += other.cdc_scanned_bytes
        self.read_bytes += other.read_bytes
        self.chunks_produced += other.chunks_produced
        self.index_lookups += other.index_lookups
        self.index_hits += other.index_hits
        self.index_disk_probes += other.index_disk_probes
        self.sketch_bytes += other.sketch_bytes
        self.delta_encode_bytes += other.delta_encode_bytes


@dataclass
class SessionStats:
    """Outcome of one backup session under one scheme."""

    session_id: int
    scheme: str

    # -- data volumes ---------------------------------------------------
    #: Logical bytes offered for backup (the paper's DS).
    bytes_scanned: int = 0
    #: Payload bytes that were new (stored for the first time).
    bytes_unique: int = 0
    #: Bytes actually shipped to the cloud (payload + container framing/
    #: padding + manifests) — what transfer time and cost are paid on.
    bytes_uploaded: int = 0

    # -- population -----------------------------------------------------
    files_total: int = 0
    files_tiny: int = 0
    #: Files skipped by metadata: incremental mode's size+mtime check,
    #: or a stat-cache recipe replay (see docs/STATCACHE.md).
    files_unchanged: int = 0
    #: Stat-cache hits whose cached refs failed revalidation against
    #: the live index (the file fell back to the full pipeline).
    statcache_stale: int = 0
    chunks_unique: int = 0

    # -- delta compression (similarity stage, see repro.delta) ----------
    #: Unique chunks stored as a delta against a resembling base.
    chunks_delta: int = 0
    #: Cloud bytes actually occupied by delta blobs.
    delta_bytes_stored: int = 0
    #: Bytes the delta stage avoided uploading (target minus delta size,
    #: summed) — savings *beyond* what exact dedup could reach.
    delta_bytes_saved: int = 0
    #: Similarity probes that found a candidate but whose delta missed
    #: the cutoff (stored in full anyway).
    delta_rejected: int = 0

    # -- cloud requests ---------------------------------------------------
    put_requests: int = 0

    # -- resilience -------------------------------------------------------
    #: Uploads skipped on session resume (journal proved them durable).
    resume_skipped_objects: int = 0
    resume_skipped_bytes: int = 0
    #: Non-fatal degradations (failed index sync, journal maintenance).
    warnings: list = field(default_factory=list)

    # -- work -------------------------------------------------------------
    ops: OpCounters = field(default_factory=OpCounters)

    # -- per-application breakdown (application-awareness made visible) --
    #: app label -> logical bytes offered.
    app_scanned: Dict[str, int] = field(default_factory=dict)
    #: app label -> unique (stored) bytes.
    app_unique: Dict[str, int] = field(default_factory=dict)

    def note_app(self, app: str, scanned: int, unique: int) -> None:
        """Accumulate one file's outcome under its application label."""
        self.app_scanned[app] = self.app_scanned.get(app, 0) + scanned
        self.app_unique[app] = self.app_unique.get(app, 0) + unique

    def app_dedup_ratio(self, app: str) -> float:
        """Per-application dedup ratio (1.0 when nothing was scanned)."""
        scanned = self.app_scanned.get(app, 0)
        unique = self.app_unique.get(app, 0)
        if unique <= 0:
            return float("inf") if scanned > 0 else 1.0
        return scanned / unique

    # -- measured wall time (real engine only; simulators use cpumodel) --
    dedup_wall_seconds: float = 0.0
    upload_wall_seconds: float = 0.0
    #: Pipelined engine only: accumulated worker busy seconds per stage
    #: ("read"/"chunk"/"hash"/"commit"/"upload").  Busy times sum past
    #: the session wall time exactly when stages overlapped — the
    #: paper's pipelining claim made measurable.
    stage_busy_seconds: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def bytes_saved(self) -> int:
        """Logical bytes eliminated by deduplication (SC in the paper)."""
        return self.bytes_scanned - self.bytes_unique

    @property
    def dedup_ratio(self) -> float:
        """DR = size before dedup / size after dedup (>= 1)."""
        if self.bytes_unique <= 0:
            return float("inf") if self.bytes_scanned > 0 else 1.0
        return self.bytes_scanned / self.bytes_unique

    def merge(self, other: "SessionStats") -> None:
        """Fold a per-worker partial into this session's totals (used by
        the parallel per-application dedup mode)."""
        self.bytes_scanned += other.bytes_scanned
        self.bytes_unique += other.bytes_unique
        self.bytes_uploaded += other.bytes_uploaded
        self.files_total += other.files_total
        self.files_tiny += other.files_tiny
        self.files_unchanged += other.files_unchanged
        self.statcache_stale += other.statcache_stale
        self.chunks_unique += other.chunks_unique
        self.chunks_delta += other.chunks_delta
        self.delta_bytes_stored += other.delta_bytes_stored
        self.delta_bytes_saved += other.delta_bytes_saved
        self.delta_rejected += other.delta_rejected
        self.put_requests += other.put_requests
        self.resume_skipped_objects += other.resume_skipped_objects
        self.resume_skipped_bytes += other.resume_skipped_bytes
        self.warnings.extend(other.warnings)
        self.ops.merge(other.ops)
        for stage, seconds in other.stage_busy_seconds.items():
            self.stage_busy_seconds[stage] = (
                self.stage_busy_seconds.get(stage, 0.0) + seconds)
        for app, n in other.app_scanned.items():
            self.app_scanned[app] = self.app_scanned.get(app, 0) + n
        for app, n in other.app_unique.items():
            self.app_unique[app] = self.app_unique.get(app, 0) + n

    def summary(self) -> str:
        """One-line human summary for logs and example output."""
        return (f"[{self.scheme}] session {self.session_id}: "
                f"scanned={self.bytes_scanned:,}B "
                f"unique={self.bytes_unique:,}B "
                f"uploaded={self.bytes_uploaded:,}B "
                f"DR={self.dedup_ratio:.2f} "
                f"files={self.files_total} puts={self.put_requests}")
