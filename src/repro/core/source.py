"""Backup sources: where the bytes to back up come from.

A *source* is an ordered collection of :class:`SourceFile` records, each
able to produce its content bytes on demand.  Two concrete sources:

* :class:`DirectorySource` — a real directory tree (the deployable path);
* :class:`MemorySource` — an in-memory snapshot, used by the synthetic
  workload generator and the tests.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, Mapping

from repro.util.io import walk_files

__all__ = ["SourceFile", "DirectorySource", "MemorySource"]


@dataclass(frozen=True)
class SourceFile:
    """One file offered for backup.

    ``path`` is the logical (store-relative) path; ``reader`` returns the
    file's full content.  Content is read lazily and exactly once per
    backup so large datasets stream through the pipeline.
    """

    path: str
    size: int
    mtime_ns: int
    reader: Callable[[], bytes] = field(repr=False)

    def read(self) -> bytes:
        """Return the file's bytes."""
        return self.reader()


class DirectorySource:
    """All regular files under a root directory, in sorted path order."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)

    def __iter__(self) -> Iterator[SourceFile]:
        for stat in walk_files(self.root):
            yield SourceFile(
                path=stat.relpath,
                size=stat.size,
                mtime_ns=stat.mtime_ns,
                reader=lambda p=stat.path: p.read_bytes(),
            )

    def total_bytes(self) -> int:
        """Sum of file sizes (the session's dataset size DS)."""
        return sum(s.size for s in walk_files(self.root))


class MemorySource:
    """An in-memory snapshot: ``{path: bytes}`` (+ optional mtimes).

    Used to drive the engine from the synthetic workload generator
    without touching disk; iteration order is sorted by path for
    determinism.
    """

    def __init__(self, files: Mapping[str, bytes],
                 mtimes: Mapping[str, int] | None = None) -> None:
        self._files: Dict[str, bytes] = dict(files)
        self._mtimes: Dict[str, int] = dict(mtimes or {})

    def __iter__(self) -> Iterator[SourceFile]:
        for path in sorted(self._files):
            data = self._files[path]
            yield SourceFile(
                path=path,
                size=len(data),
                mtime_ns=self._mtimes.get(path, 0),
                reader=lambda d=data: d,
            )

    def __len__(self) -> int:
        return len(self._files)

    def total_bytes(self) -> int:
        """Sum of file sizes (the session's dataset size DS)."""
        return sum(len(v) for v in self._files.values())
