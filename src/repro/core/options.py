"""Scheme configuration: every knob that distinguishes the five schemes.

One :class:`SchemeConfig` fully determines the behaviour of
:class:`~repro.core.backup.BackupClient`.  AA-Dedupe is the default
configuration (:func:`aa_dedupe_config`); the baselines in
:mod:`repro.baselines` are alternative configurations of the *same*
engine, making the evaluation an apples-to-apples policy comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Optional

from repro.chunking import CDC_FAMILY
from repro.classify.filetype import AppType, Category
from repro.classify.policy import AA_POLICY_TABLE, DedupPolicy, \
    cdc_policy_variant, retarget_policy
from repro.errors import ConfigError
from repro.util.units import KIB, MIB

__all__ = ["SchemeConfig", "aa_dedupe_config"]


@dataclass(frozen=True)
class SchemeConfig:
    """Declarative description of one backup scheme."""

    #: Human-readable scheme name (appears in stats and reports).
    name: str

    #: Files strictly smaller than this bypass deduplication (paper: 10 KB
    #: — Observation 1).  0 disables the filter.
    tiny_file_threshold: int = 10 * KIB

    #: Pack tiny files (and unique chunks) into containers before upload.
    #: When False every unique chunk/file is PUT as its own object.
    use_containers: bool = True

    #: Container size (paper: ~1 MB) and padding behaviour.
    container_size: int = 1 * MIB
    pad_containers: bool = True

    #: Per-category policy table (None ⇒ ``fixed_policy`` applies to all).
    policy_table: Optional[Mapping[Category, DedupPolicy]] = None

    #: Single policy used for every file when ``policy_table`` is None.
    fixed_policy: Optional[DedupPolicy] = None

    #: ``"app"`` — one subindex per application label (AA-Dedupe);
    #: ``"global"`` — one index for everything (traditional);
    #: ``"tier"`` — one index per chunking method (SAM-style hybrid).
    index_layout: str = "app"

    #: Pure incremental mode (Jungle Disk): no fingerprint index at all;
    #: files unchanged since the previous session (size+mtime) are skipped,
    #: changed files are uploaded whole.
    incremental_only: bool = False

    #: File-level dedup pass before chunk-level (SAM's first tier): the
    #: whole file's fingerprint is probed first and chunking only happens
    #: on a whole-file miss.
    file_level_first: bool = False

    #: Replicate the chunk index to the cloud every N sessions (0 = never).
    index_sync_interval: int = 1

    #: Overlap container uploads with deduplication via a worker thread
    #: (the paper's pipelined design).
    pipeline_uploads: bool = False

    #: Verify chunk fingerprints during restore.
    verify_on_restore: bool = True

    #: Parallel per-application deduplication (Observation 2: apps share
    #: no data, so each can be deduplicated "independently and in
    #: parallel").  >1 enables a thread pool of that many application
    #: workers in the real engine; requires a non-incremental scheme.
    parallel_workers: int = 1

    #: Per-stage worker counts for the pipelined parallel engine
    #: (read → chunk → hash stages; see docs/PIPELINE.md).  0 means
    #: auto: reads get ``min(2, parallel_workers)`` workers (a personal
    #: computer's disk rarely rewards deeper read concurrency), chunk
    #: and hash each get ``parallel_workers``.  Only consulted when
    #: ``parallel_workers > 1``.
    read_workers: int = 0
    chunk_workers: int = 0
    hash_workers: int = 0

    #: Capacity of each inter-stage hand-off queue (0 = auto: twice the
    #: widest stage).  A full queue blocks the upstream stage — this is
    #: the backpressure bound on resident prepared payloads.
    stage_queue_depth: int = 0

    #: Capacity of the pipelined uploader's queue (sealed containers /
    #: blobs awaiting WAN transfer).
    upload_queue_depth: int = 4

    #: Convergent encryption (secure dedup — the paper's future work):
    #: chunks are encrypted under content-derived keys before
    #: fingerprinting/storage, keys are wrapped into the recipes.  The
    #: client must be given a master key.
    encrypt_chunks: bool = False

    #: Keep a cloud-side session journal of durably-uploaded objects so
    #: an interrupted session can be re-run without re-uploading data
    #: (see docs/RESILIENCE.md).  Off by default: the journal costs one
    #: extra small PUT per recorded upload, which would perturb the
    #: paper-faithful request/byte accounting of the evaluation.
    resumable: bool = False

    #: Flush the session journal to the cloud every N recorded uploads.
    journal_flush_interval: int = 1

    #: Post-dedup similarity detection + delta compression of unique
    #: CDC/SC chunks (see :mod:`repro.delta` and docs/DELTA.md).
    #: WFC/compressed categories always bypass the stage.  Off by
    #: default: the paper's evaluation is exact-only.
    delta_compress: bool = False

    #: Max acceptable delta/target size ratio; larger deltas are "not
    #: worth it" and the chunk is stored in full.
    delta_cutoff: float = 0.5

    #: Max delta hops from any chunk back to a full base extent.  Deeper
    #: chains save more bytes but cost chained decodes on restore.
    delta_max_chain: int = 3

    #: Chunks smaller than this skip similarity detection (sketch +
    #: probe overhead cannot pay off on near-empty chunks).
    delta_min_chunk: int = 2048

    #: Super-feature slots per application namespace in the similarity
    #: index (LRU-bounded).
    delta_sim_capacity: int = 8192

    #: Recent base payloads kept in memory per application namespace —
    #: delta encoding needs the base bytes, and a source deduplicator
    #: must never re-download them mid-backup.
    delta_base_cache: int = 256

    #: Cross-session unchanged-file recipe cache (stat cache): a file
    #: whose ``(path, size, mtime_ns)`` triple matches the previous
    #: successful session replays its cached recipe without being read,
    #: chunked or hashed (see docs/STATCACHE.md).  Replayed refs are
    #: revalidated against the live index and the GC epoch; a stale hit
    #: falls back to the full pipeline.  On for AA-Dedupe; the baselines
    #: keep it off so their measured work stays paper-faithful.
    stat_cache: bool = False

    #: Per-application chunker overrides: app label -> CDC-family engine
    #: name (``{"vmdk": "seqcdc"}``).  Resolved *after* the category
    #: policy table, so one application class can run a different
    #: boundary engine than its category default — the declarative
    #: service layer's ``app_chunkers`` job knob.  ``None``/empty means
    #: no overrides.  Restore needs no knowledge of this: chunk identity
    #: lives in the manifest.
    app_chunkers: Optional[Mapping[str, str]] = None

    #: Where the fingerprint index physically lives — a modelling knob
    #: consumed by the trace engine: ``"ram"`` (hash table with the
    #: residency model) or ``"fs"`` (a filesystem pool à la BackupPC,
    #: where every probe/insert costs fixed file-system IOs).
    index_media: str = "ram"

    def __post_init__(self) -> None:
        if self.index_layout not in ("app", "global", "tier"):
            raise ConfigError(f"bad index_layout {self.index_layout!r}")
        if self.index_media not in ("ram", "fs"):
            raise ConfigError(f"bad index_media {self.index_media!r}")
        if self.encrypt_chunks and self.incremental_only:
            raise ConfigError(
                "encrypt_chunks requires a dedup scheme, not incremental")
        if self.parallel_workers < 1:
            raise ConfigError("parallel_workers must be >= 1")
        if self.parallel_workers > 1 and self.incremental_only:
            raise ConfigError(
                "parallel dedup requires a dedup scheme, not incremental")
        if self.parallel_workers > 1 and self.file_level_first:
            raise ConfigError(
                "parallel dedup is incompatible with file_level_first")
        if self.parallel_workers > 1 and self.index_layout != "app":
            raise ConfigError(
                "parallel dedup requires the application-aware index "
                "layout (workers must own disjoint subindices)")
        if (self.read_workers < 0 or self.chunk_workers < 0
                or self.hash_workers < 0):
            raise ConfigError("per-stage worker counts must be >= 0")
        if self.stage_queue_depth < 0:
            raise ConfigError("stage_queue_depth must be >= 0")
        if self.upload_queue_depth < 1:
            raise ConfigError("upload_queue_depth must be >= 1")
        if not self.incremental_only:
            if (self.policy_table is None) == (self.fixed_policy is None):
                raise ConfigError(
                    "exactly one of policy_table/fixed_policy required")
        if self.tiny_file_threshold < 0:
            raise ConfigError("tiny_file_threshold must be >= 0")
        if self.delta_compress:
            if self.incremental_only:
                raise ConfigError(
                    "delta_compress requires a dedup scheme, not "
                    "incremental")
            if self.encrypt_chunks:
                raise ConfigError(
                    "delta_compress is incompatible with encrypt_chunks "
                    "(convergent ciphertexts destroy resemblance; see "
                    "docs/DELTA.md)")
            if not (0.0 < self.delta_cutoff <= 1.0):
                raise ConfigError("delta_cutoff must be in (0, 1]")
            if self.delta_max_chain < 1:
                raise ConfigError("delta_max_chain must be >= 1")
            if self.delta_min_chunk < 0:
                raise ConfigError("delta_min_chunk must be >= 0")
            if self.delta_sim_capacity < 1 or self.delta_base_cache < 1:
                raise ConfigError(
                    "delta_sim_capacity/delta_base_cache must be >= 1")
        if self.stat_cache and self.incremental_only:
            raise ConfigError(
                "stat_cache requires a dedup scheme: incremental mode "
                "already skips unchanged files by metadata")
        if self.journal_flush_interval < 1:
            raise ConfigError("journal_flush_interval must be >= 1")
        if self.use_containers and self.container_size < 4096:
            raise ConfigError("container_size too small")
        if self.app_chunkers:
            if self.incremental_only:
                raise ConfigError(
                    "app_chunkers requires a dedup scheme, not "
                    "incremental")
            from repro.classify.filetype import known_app_types
            known = {app.label: app for app in known_app_types()}
            for label, engine in self.app_chunkers.items():
                app = known.get(label)
                if app is None and label != "unknown":
                    raise ConfigError(
                        f"app_chunkers: unknown application label "
                        f"{label!r}")
                category = (app.category if app is not None
                            else Category.DYNAMIC)
                # Raises ConfigError for non-CDC engines and for bases
                # (WFC) with no content-defined stage to swap.
                try:
                    retarget_policy(self.policy_for(category), engine)
                except ConfigError as exc:
                    raise ConfigError(
                        f"app_chunkers[{label!r}]: {exc}") from exc

    # ------------------------------------------------------------------
    def policy_for(self, category: Category) -> DedupPolicy:
        """Resolve the dedup policy for a file category."""
        if self.policy_table is not None:
            try:
                return self.policy_table[category]
            except KeyError:
                raise ConfigError(
                    f"policy table lacks category {category}") from None
        assert self.fixed_policy is not None
        return self.fixed_policy

    def policy_for_app(self, app: AppType) -> DedupPolicy:
        """Resolve the dedup policy for one application type.

        The category policy applies unless :attr:`app_chunkers` names a
        per-application boundary-engine override for ``app.label`` — the
        intelligent chunker's *category* decisions stay authoritative
        for hashing and tiering; only the cut-point engine is swapped.
        """
        policy = self.policy_for(app.category)
        if not self.app_chunkers:
            return policy
        engine = self.app_chunkers.get(app.label)
        if engine is None:
            return policy
        return retarget_policy(policy, engine)

    def index_namespace(self, app_label: str, policy: DedupPolicy) -> str:
        """Subindex key for a chunk of application ``app_label``.

        This is where the application-aware index structure lives: the
        ``"app"`` layout gives each file type its own small index, the
        ``"global"`` layout collapses everything into one, and ``"tier"``
        groups by chunking method (file-level vs chunk-level tiers).
        """
        if self.index_layout == "app":
            return app_label
        if self.index_layout == "tier":
            return policy.chunker
        return "global"

    def stage_workers(self) -> Mapping[str, int]:
        """Resolved worker count per pipelined stage (auto = 0 filled).

        ``parallel_workers`` remains the single headline knob: by
        default the chunk and hash stages each get that many workers
        while reads stay at ``min(2, parallel_workers)``.
        """
        base = self.parallel_workers
        return {
            "read": self.read_workers or min(2, base),
            "chunk": self.chunk_workers or base,
            "hash": self.hash_workers or base,
        }

    def resolved_queue_depth(self) -> int:
        """Inter-stage queue capacity with the auto default applied."""
        if self.stage_queue_depth:
            return self.stage_queue_depth
        return 2 * max(self.stage_workers().values())

    def with_(self, **changes) -> "SchemeConfig":
        """Return a modified copy (convenience for ablation sweeps)."""
        return replace(self, **changes)

    def with_chunker(self, name: str) -> "SchemeConfig":
        """Swap the content-defined boundary engine (CLI ``--chunker``).

        Every CDC-family policy in the scheme (the DYNAMIC row of the
        AA table, or a fixed all-CDC policy) is re-targeted at the
        named engine; WFC/SC rows are untouched, so the intelligent
        chunker's per-application decisions are preserved.  Raises
        :class:`ConfigError` for unknown names or schemes with no
        content-defined stage to swap.
        """
        if name not in CDC_FAMILY:
            raise ConfigError(
                f"unknown CDC-family chunker {name!r}; "
                f"valid: {', '.join(CDC_FAMILY)}")
        if self.incremental_only:
            raise ConfigError(
                f"scheme {self.name!r} is incremental-only and never "
                f"chunks; --chunker does not apply")
        if self.policy_table is not None:
            table = {
                category: (cdc_policy_variant(policy, name)
                           if policy.chunker in CDC_FAMILY else policy)
                for category, policy in self.policy_table.items()}
            if all(policy.chunker not in CDC_FAMILY
                   for policy in self.policy_table.values()):
                raise ConfigError(
                    f"scheme {self.name!r} has no content-defined "
                    f"chunking stage to swap")
            return self.with_(policy_table=table)
        assert self.fixed_policy is not None
        if self.fixed_policy.chunker not in CDC_FAMILY:
            raise ConfigError(
                f"scheme {self.name!r} chunks with "
                f"{self.fixed_policy.chunker!r}, not a CDC-family "
                f"engine; --chunker does not apply")
        return self.with_(
            fixed_policy=cdc_policy_variant(self.fixed_policy, name))


def aa_dedupe_config(**overrides) -> SchemeConfig:
    """The AA-Dedupe scheme exactly as the paper configures it.

    10 KB tiny-file filter, per-category intelligent chunking with
    adaptive hashing (Fig. 6), application-aware index, 1 MB padded
    containers, index sync every session.
    """
    base = dict(
        name="AA-Dedupe",
        tiny_file_threshold=10 * KIB,
        use_containers=True,
        container_size=1 * MIB,
        policy_table=AA_POLICY_TABLE,
        index_layout="app",
        index_sync_interval=1,
        stat_cache=True,
    )
    base.update(overrides)
    return SchemeConfig(**base)
