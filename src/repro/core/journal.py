"""Crash-consistent session journals for resumable backups.

A backup session over a flaky consumer WAN can die mid-flight — power
loss, crash, link gone for hours.  Without a journal a re-run re-uploads
every container, because nothing below the final manifest records what
already made it to the cloud.  :class:`SessionJournal` fixes that:

* one small JSON object per *in-flight* session
  (``journals/session-NNNNNN.json``) maps each durably-uploaded object
  key to the SHA-1 of the bytes that were stored under it;
* an entry is recorded only **after** the corresponding put succeeded
  (write-behind), so the journal never claims an object the cloud does
  not hold;
* on a re-run of the same session id, the client reloads the journal,
  restarts container numbering from the journalled
  ``first_container_id``, and skips any upload whose key **and blob
  digest** match a journal entry.  The digest check makes skipping
  *safe* rather than merely plausible: if re-chunking produced different
  bytes for a journalled key (non-deterministic packing, changed
  source), the object is simply re-uploaded — resume degrades to
  correctness, never to corruption;
* the successful manifest upload is the session's commit record; the
  journal is then deleted (:meth:`commit`).  A journal present in the
  cloud therefore always denotes an interrupted session.

Journal maintenance is best-effort by design: a failed journal put or
delete is recorded as a warning (the backup itself must not fail because
its *resume optimisation* hit a cloud error).
"""

from __future__ import annotations

import hashlib
import json
import threading
from typing import Dict, List

from repro.core import naming
from repro.errors import CloudError, ObjectNotFound

__all__ = ["SessionJournal"]


def _digest(blob: bytes) -> str:
    return hashlib.sha1(blob).hexdigest()


class SessionJournal:
    """Durable record of one session's completed uploads.

    ``flush_interval`` trades resume granularity against journal puts:
    1 (the default) flushes after every recorded upload — with 1 MB
    containers the overhead is a tiny object per ~1 MB of payload.
    """

    VERSION = 1

    def __init__(self, cloud, session_id: int,
                 first_container_id: int = 0,
                 flush_interval: int = 1) -> None:
        if flush_interval < 1:
            raise ValueError("flush_interval must be >= 1")
        self.cloud = cloud
        self.session_id = session_id
        self.key = naming.journal_key(session_id)
        self.first_container_id = first_container_id
        self.flush_interval = flush_interval
        #: True when this journal was reloaded from an interrupted run.
        self.resumed = False
        #: Uploads skipped because the journal proved them durable.
        self.skipped_objects = 0
        self.skipped_bytes = 0
        #: Non-fatal journal maintenance failures.
        self.warnings: List[str] = []
        self._done: Dict[str, str] = {}
        self._dirty = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, cloud, session_id: int,
             first_container_id: int = 0,
             flush_interval: int = 1) -> "SessionJournal":
        """Open the journal for ``session_id``, resuming a cloud copy
        left by an interrupted run when one exists."""
        journal = cls(cloud, session_id, first_container_id,
                      flush_interval)
        try:
            blob = cloud.get(journal.key)
        except ObjectNotFound:
            return journal
        except CloudError as exc:
            journal.warnings.append(
                f"journal load failed (starting fresh): {exc}")
            return journal
        try:
            doc = json.loads(blob)
            journal._done = dict(doc["done"])
            journal.first_container_id = int(doc["first_container_id"])
        except (ValueError, KeyError, TypeError) as exc:
            journal.warnings.append(
                f"journal unreadable (starting fresh): {exc}")
            journal._done = {}
            return journal
        journal.resumed = True
        return journal

    # ------------------------------------------------------------------
    def completed(self, key: str, blob: bytes) -> bool:
        """True iff ``key`` was durably uploaded with exactly ``blob``."""
        with self._lock:
            recorded = self._done.get(key)
        if recorded is None or recorded != _digest(blob):
            return False
        self.skipped_objects += 1
        self.skipped_bytes += len(blob)
        return True

    def record(self, key: str, blob: bytes) -> None:
        """Note that ``blob`` is now durable under ``key``; flush per
        the configured interval.  Call only after the put succeeded."""
        with self._lock:
            self._done[key] = _digest(blob)
            self._dirty += 1
            flush_now = self._dirty >= self.flush_interval
        if flush_now:
            self.flush()

    def flush(self) -> None:
        """Replicate the journal to the cloud (best effort)."""
        with self._lock:
            doc = {"version": self.VERSION,
                   "session": self.session_id,
                   "first_container_id": self.first_container_id,
                   "done": dict(sorted(self._done.items()))}
            self._dirty = 0
        blob = json.dumps(doc, separators=(",", ":")).encode("utf-8")
        try:
            self.cloud.put(self.key, blob)
        except CloudError as exc:
            self.warnings.append(f"journal flush failed: {exc}")

    def commit(self) -> None:
        """Delete the journal: the session's manifest is durable, so the
        resume record is no longer needed (best effort)."""
        try:
            self.cloud.delete(self.key)
        except CloudError as exc:
            self.warnings.append(f"journal cleanup failed: {exc}")

    def __len__(self) -> int:
        with self._lock:
            return len(self._done)
