"""Cross-session unchanged-file recipe cache (the *stat cache*).

AA-Dedupe's premise is repeated backups of the same PC dataset, where
the overwhelming majority of files are byte-identical between sessions.
Re-reading, re-chunking and re-hashing them every session is the
dominant client CPU cost; this cache removes it.  After a successful
session the client remembers, per application, each file's
``(path, size, mtime_ns)`` stat triple together with its committed
recipe (:class:`~repro.core.recipe.FileEntry`).  On the next session a
file whose triple matches replays the cached :class:`ChunkRef` chain
straight into the manifest — no ``read()``, no chunking, no hashing —
while the engine still bumps index refcounts and feeds the dedup
accounting.

Safety rules (see docs/STATCACHE.md):

* a triple matches only when **both** size and ``mtime_ns`` are equal;
  ``mtime_ns == 0`` means "unknown" and never matches or records —
  sources without modification stamps always take the full pipeline;
* replayed refs are revalidated against the live index before use, and
  a stale hit falls back to the full pipeline;
* every persisted blob and the resident cache are stamped with the
  cloud's **GC epoch** (:data:`repro.core.naming.STATCACHE_EPOCH_KEY`);
  a ``repro gc`` sweep that deletes data bumps the epoch via
  :func:`invalidate_statcache`, so no cached ref can outlive a
  collection that may have removed its extents.

The cache is a pure performance hint: losing it (crash, failed save,
epoch bump) costs re-chunking work on the next session, never
correctness.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.core import naming
from repro.core.recipe import FileEntry
from repro.errors import ObjectNotFound

__all__ = ["FileCache", "read_epoch", "invalidate_statcache"]


def read_epoch(cloud) -> int:
    """Current GC epoch of ``cloud`` (0 when none was ever written)."""
    try:
        return int(cloud.get(naming.STATCACHE_EPOCH_KEY).decode("ascii"))
    except ObjectNotFound:
        return 0
    except (ValueError, UnicodeDecodeError):
        # A corrupt epoch object cannot prove caches current; treating
        # it as a fresh epoch forces every client to drop its cache.
        return 0


def invalidate_statcache(cloud) -> int:
    """Drop every persisted stat-cache blob and bump the GC epoch.

    Called by the garbage collector after a sweep that deleted data:
    cached recipes may reference the deleted extents, so both the
    persisted blobs and (via the epoch stamp) every client's resident
    cache must be invalidated.  Returns the number of blobs deleted.
    """
    epoch = read_epoch(cloud)
    deleted = 0
    for key in list(cloud.list(naming.STATCACHE_PREFIX)):
        if key == naming.STATCACHE_EPOCH_KEY:
            continue
        cloud.delete(key)
        deleted += 1
    cloud.put(naming.STATCACHE_EPOCH_KEY,
              str(epoch + 1).encode("ascii"))
    return deleted


class FileCache:
    """Per-application ``(path, size, mtime_ns) -> FileEntry`` map.

    Session lifecycle: :meth:`begin_session` drops any staging left by
    a failed run, :meth:`record` stages every entry the session commits
    to its manifest (replayed or freshly processed), and
    :meth:`commit` — called only after the manifest upload succeeded —
    promotes the staged generation, returning the application labels
    whose persisted blob is now out of date.  Until ``commit``, lookups
    keep serving the previous successful session, so a crashed session
    never poisons the cache.

    All access happens on the backup coordinator thread; the class is
    intentionally unsynchronised.
    """

    FORMAT = 1

    def __init__(self, scheme: str) -> None:
        self._scheme = scheme
        #: Committed generation: app label -> path -> FileEntry.
        self._apps: Dict[str, Dict[str, FileEntry]] = {}
        #: Staging area for the in-flight session.
        self._staged: Dict[str, Dict[str, FileEntry]] = {}
        #: GC epoch the committed generation is valid for.
        self.epoch: int = 0

    def __len__(self) -> int:
        return sum(len(files) for files in self._apps.values())

    # -- lookups --------------------------------------------------------
    def match(self, app: str, path: str, size: int,
              mtime_ns: int) -> Optional[FileEntry]:
        """Cached entry for ``path`` iff its stat triple matches.

        Both size and mtime must be equal — an mtime rollback with a
        same-size content change must miss — and a zero mtime never
        matches (it is the "unknown" sentinel of mtime-less sources).
        """
        if mtime_ns == 0:
            return None
        entry = self._apps.get(app, {}).get(path)
        if entry is None:
            return None
        if entry.size != size or entry.mtime_ns != mtime_ns:
            return None
        return entry

    def discard(self, app: str, path: str) -> None:
        """Forget one entry (its refs failed revalidation)."""
        self._apps.get(app, {}).pop(path, None)

    # -- session lifecycle ----------------------------------------------
    def begin_session(self) -> None:
        """Reset staging (discards leftovers of any failed session)."""
        self._staged = {}

    def record(self, entry: FileEntry) -> None:
        """Stage one committed-manifest entry for the next generation."""
        if entry.mtime_ns == 0:
            return  # unknown mtime can never be matched — don't keep it
        self._staged.setdefault(entry.app, {})[entry.path] = entry

    def commit(self) -> List[str]:
        """Promote the staged generation; return dirty app labels.

        An application is dirty when its staged map differs from the
        committed one — including apps whose files all vanished this
        session (their blob must be rewritten as empty).
        """
        dirty = [app for app in sorted(set(self._staged) | set(self._apps))
                 if self._staged.get(app, {}) != self._apps.get(app, {})]
        self._apps = self._staged
        self._staged = {}
        return dirty

    def clear(self) -> None:
        """Drop everything (epoch mismatch / load failure)."""
        self._apps = {}
        self._staged = {}

    # -- persistence ----------------------------------------------------
    def blob_for(self, app: str) -> bytes:
        """Serialised cache blob for one application."""
        files = self._apps.get(app, {})
        doc = {
            "format": self.FORMAT,
            "scheme": self._scheme,
            "epoch": self.epoch,
            "app": app,
            "files": [files[path].to_json() for path in sorted(files)],
        }
        return json.dumps(doc, separators=(",", ":")).encode("utf-8")

    def load_blob(self, blob: bytes) -> int:
        """Install one persisted blob; returns entries loaded.

        Blobs from another scheme, another format or another GC epoch
        are ignored — their refs cannot be trusted.  Raises ``ValueError``
        / ``KeyError`` on structurally-corrupt input (callers treat that
        the same as a missing blob).
        """
        doc = json.loads(blob)
        if (doc.get("format") != self.FORMAT
                or doc.get("scheme") != self._scheme
                or int(doc.get("epoch", -1)) != self.epoch):
            return 0
        entries = {e["path"]: FileEntry.from_json(e)
                   for e in doc["files"]}
        if entries:
            self._apps[str(doc["app"])] = entries
        return len(entries)
