"""Periodic index synchronisation to the cloud (paper Sec. III-E).

"A periodical data synchronization scheme is also proposed in AA-Dedupe
to backup the application-aware index in the cloud storage to protect
the data integrity of the PC backup datasets."  Each application
subindex is serialised as one object (its partition is a free sharding),
so after a client loss the index — and with it dedup continuity — is
recoverable from the cloud alone.

Change detection is *content-exact*.  An earlier revision skipped any
subindex whose entry count matched the last push, which silently
dropped refcount-only updates (last-writer-wins re-inserts keep the
count constant) and fed GC stale refcounts after a disaster recovery.
Replication now keys off two signals per subindex:

* the subindex ``generation`` (bumped by every insert, including
  refcount re-inserts) — a cheap skip that avoids serialising an
  untouched subindex at all;
* a SHA-1 digest of the serialised subindex — the authoritative
  comparison against what the cloud replica actually contains, so a
  recovered-then-extended local subindex is always re-replicated.
"""

from __future__ import annotations

import hashlib
from typing import Dict

from repro.core import naming
from repro.errors import CloudError
from repro.index.appaware import AppAwareIndex
from repro.index.base import IndexEntry

__all__ = ["IndexSynchronizer"]


class IndexSynchronizer:
    """Pushes/pulls the application-aware index to/from cloud storage."""

    def __init__(self, cloud, retry=None) -> None:
        self.cloud = cloud
        #: Optional :class:`~repro.cloud.retry.RetryPolicy` for pushes.
        self.retry = retry
        #: Subindex ``generation`` at the last successful push — fast
        #: path: an unchanged generation means no insert happened, so
        #: the subindex need not even be serialised.
        self._pushed_generations: Dict[str, int] = {}
        #: SHA-1 of the replica blob the cloud is known to hold.  Only
        #: ever recorded from bytes that were actually uploaded (push)
        #: or downloaded (pull) — never inferred from local state.
        self._replica_digests: Dict[str, bytes] = {}

    # ------------------------------------------------------------------
    def push(self, index: AppAwareIndex) -> int:
        """Replicate every *changed* subindex; returns objects uploaded.

        Fault-tolerant per subindex: a failed put is skipped (its dirty
        state is kept, so the next push retries it) while the remaining
        subindices still replicate.  When any subindex failed, a
        :class:`~repro.errors.CloudError` summarising the failures is
        raised *after* the full pass — the caller decides whether that
        degrades to a warning (the backup engine does: dedup continuity
        is recoverable, so an index-sync failure must not fail the
        backup).
        """
        uploaded = 0
        failures = []
        for app in index.apps:
            sub = index.subindex(app)
            generation = sub.generation
            if self._pushed_generations.get(app) == generation:
                continue  # no insert since the last successful push
            blob = b"".join(e.pack() for e in sub.entries())
            digest = hashlib.sha1(blob).digest()
            if digest == self._replica_digests.get(app):
                # Mutations happened but the serialised content matches
                # the replica byte for byte (e.g. re-insert of identical
                # entries) — record the generation, skip the upload.
                self._pushed_generations[app] = generation
                continue
            try:
                if self.retry is not None:
                    self.retry.call(self.cloud.put,
                                    naming.index_key(app), blob)
                else:
                    self.cloud.put(naming.index_key(app), blob)
            except CloudError as exc:
                failures.append(f"{app}: {exc}")
                continue
            self._pushed_generations[app] = generation
            self._replica_digests[app] = digest
            uploaded += 1
        if failures:
            raise CloudError(
                f"index sync incomplete ({uploaded} pushed, "
                f"{len(failures)} failed): " + "; ".join(failures))
        return uploaded

    def pull(self, index: AppAwareIndex) -> int:
        """Disaster recovery: rebuild subindices from cloud replicas.

        Returns the number of entries restored.  Existing local entries
        are preserved (cloud entries do not overwrite newer local state).
        Only the *replica's* content is recorded as pushed: when the
        merge target already held local-only entries, the subindex stays
        dirty so the next :meth:`push` replicates the merged state —
        local survivors of a recovery must reach the cloud.
        """
        restored = 0
        record = IndexEntry.RECORD_SIZE
        for key in self.cloud.list(naming.INDEX_PREFIX):
            app = key[len(naming.INDEX_PREFIX):].rsplit(".", 1)[0]
            blob = self.cloud.get(key)
            sub = index.subindex(app)
            was_empty = len(sub) == 0
            for pos in range(0, len(blob), record):
                entry = IndexEntry.unpack(blob[pos:pos + record])
                if sub.lookup(entry.fingerprint) is None:
                    sub.insert(entry)
                    restored += 1
            self._replica_digests[app] = hashlib.sha1(blob).digest()
            if was_empty:
                # Local state now equals the replica exactly; the next
                # push may skip it without re-serialising.
                self._pushed_generations[app] = sub.generation
            else:
                # Merged into pre-existing local entries: content may
                # exceed the replica, so leave the subindex dirty (the
                # digest check decides whether an upload is needed).
                self._pushed_generations.pop(app, None)
        return restored
