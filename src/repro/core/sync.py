"""Periodic index synchronisation to the cloud (paper Sec. III-E).

"A periodical data synchronization scheme is also proposed in AA-Dedupe
to backup the application-aware index in the cloud storage to protect
the data integrity of the PC backup datasets."  Each application
subindex is serialised as one object (its partition is a free sharding),
so after a client loss the index — and with it dedup continuity — is
recoverable from the cloud alone.
"""

from __future__ import annotations

from typing import Dict

from repro.core import naming
from repro.errors import CloudError
from repro.index.appaware import AppAwareIndex
from repro.index.base import IndexEntry

__all__ = ["IndexSynchronizer"]


class IndexSynchronizer:
    """Pushes/pulls the application-aware index to/from cloud storage."""

    def __init__(self, cloud, retry=None) -> None:
        self.cloud = cloud
        #: Optional :class:`~repro.cloud.retry.RetryPolicy` for pushes.
        self.retry = retry
        #: Entry counts at last push, used to skip unchanged subindices.
        self._pushed_sizes: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def push(self, index: AppAwareIndex) -> int:
        """Replicate every *changed* subindex; returns objects uploaded.

        Fault-tolerant per subindex: a failed put is skipped (its
        recorded size stays stale, so the next push retries it) while
        the remaining subindices still replicate.  When any subindex
        failed, a :class:`~repro.errors.CloudError` summarising the
        failures is raised *after* the full pass — the caller decides
        whether that degrades to a warning (the backup engine does:
        dedup continuity is recoverable, so an index-sync failure must
        not fail the backup).
        """
        uploaded = 0
        failures = []
        for app, size in index.sizes().items():
            if self._pushed_sizes.get(app) == size:
                continue  # unchanged since last sync
            blob = b"".join(e.pack()
                            for e in index.subindex(app).entries())
            try:
                if self.retry is not None:
                    self.retry.call(self.cloud.put,
                                    naming.index_key(app), blob)
                else:
                    self.cloud.put(naming.index_key(app), blob)
            except CloudError as exc:
                failures.append(f"{app}: {exc}")
                continue
            self._pushed_sizes[app] = size
            uploaded += 1
        if failures:
            raise CloudError(
                f"index sync incomplete ({uploaded} pushed, "
                f"{len(failures)} failed): " + "; ".join(failures))
        return uploaded

    def pull(self, index: AppAwareIndex) -> int:
        """Disaster recovery: rebuild subindices from cloud replicas.

        Returns the number of entries restored.  Existing local entries
        are preserved (cloud entries do not overwrite newer local state).
        """
        restored = 0
        record = IndexEntry.RECORD_SIZE
        for key in self.cloud.list(naming.INDEX_PREFIX):
            app = key[len(naming.INDEX_PREFIX):].rsplit(".", 1)[0]
            blob = self.cloud.get(key)
            sub = index.subindex(app)
            for pos in range(0, len(blob), record):
                entry = IndexEntry.unpack(blob[pos:pos + record])
                if sub.lookup(entry.fingerprint) is None:
                    sub.insert(entry)
                    restored += 1
            self._pushed_sizes[app] = len(sub)
        return restored
