"""Periodic index synchronisation to the cloud (paper Sec. III-E).

"A periodical data synchronization scheme is also proposed in AA-Dedupe
to backup the application-aware index in the cloud storage to protect
the data integrity of the PC backup datasets."  Each application
subindex is serialised as one object (its partition is a free sharding),
so after a client loss the index — and with it dedup continuity — is
recoverable from the cloud alone.
"""

from __future__ import annotations

from typing import Dict

from repro.core import naming
from repro.index.appaware import AppAwareIndex
from repro.index.base import IndexEntry

__all__ = ["IndexSynchronizer"]


class IndexSynchronizer:
    """Pushes/pulls the application-aware index to/from cloud storage."""

    def __init__(self, cloud) -> None:
        self.cloud = cloud
        #: Entry counts at last push, used to skip unchanged subindices.
        self._pushed_sizes: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def push(self, index: AppAwareIndex) -> int:
        """Replicate every *changed* subindex; returns objects uploaded."""
        uploaded = 0
        for app, size in index.sizes().items():
            if self._pushed_sizes.get(app) == size:
                continue  # unchanged since last sync
            blob = b"".join(e.pack()
                            for e in index.subindex(app).entries())
            self.cloud.put(naming.index_key(app), blob)
            self._pushed_sizes[app] = size
            uploaded += 1
        return uploaded

    def pull(self, index: AppAwareIndex) -> int:
        """Disaster recovery: rebuild subindices from cloud replicas.

        Returns the number of entries restored.  Existing local entries
        are preserved (cloud entries do not overwrite newer local state).
        """
        restored = 0
        record = IndexEntry.RECORD_SIZE
        for key in self.cloud.list(naming.INDEX_PREFIX):
            app = key[len(naming.INDEX_PREFIX):].rsplit(".", 1)[0]
            blob = self.cloud.get(key)
            sub = index.subindex(app)
            for pos in range(0, len(blob), record):
                entry = IndexEntry.unpack(blob[pos:pos + record])
                if sub.lookup(entry.fingerprint) is None:
                    sub.insert(entry)
                    restored += 1
            self._pushed_sizes[app] = len(sub)
        return restored
