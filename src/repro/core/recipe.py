"""File recipes and session manifests.

A *recipe* describes how to reassemble one file from stored extents; a
*manifest* is the complete recipe set of one backup session plus its
metadata.  Manifests are JSON (debuggable, diff-able), stored both
locally and in the cloud — together with the self-describing containers
they make every session restorable with no other client state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.errors import RestoreError

__all__ = ["ChunkRef", "FileEntry", "Manifest"]


@dataclass(frozen=True)
class ChunkRef:
    """Reference to one stored extent of a file.

    Either a container extent (``container_id >= 0`` with ``offset``) or
    a standalone cloud object (``object_key`` set) — the latter is used
    by baseline schemes that upload chunks/files without aggregation.

    When the chunk is convergently encrypted, ``wrapped_key`` carries
    its content key sealed under the client's master secret (see
    :mod:`repro.secure`); the stored fingerprint then refers to the
    ciphertext.

    A *delta* extent stores a copy/insert program instead of the chunk
    bytes: ``stored_length`` is the on-cloud size of the delta blob,
    ``delta_base`` the (possibly itself delta) reference whose bytes
    the program rebuilds against, and ``fingerprint``/``length`` still
    describe the reconstructed *target* chunk — so restore verification
    works unchanged after the chain is resolved.  Embedding the base
    chain keeps manifests self-contained: restore and GC need no index
    to resolve a delta, only the manifest.
    """

    fingerprint: bytes
    length: int
    container_id: int = -1
    offset: int = 0
    object_key: Optional[str] = None
    wrapped_key: Optional[bytes] = None
    stored_length: Optional[int] = None
    delta_base: Optional["ChunkRef"] = None

    def __post_init__(self) -> None:
        if (self.container_id < 0) == (self.object_key is None):
            raise RestoreError(
                "ChunkRef needs exactly one of container_id/object_key")
        if (self.delta_base is None) != (self.stored_length is None):
            raise RestoreError(
                "delta ChunkRef needs both delta_base and stored_length")

    @property
    def in_container(self) -> bool:
        """Whether this extent lives inside a container."""
        return self.container_id >= 0

    @property
    def is_delta(self) -> bool:
        """Whether the stored extent is a delta against a base chunk."""
        return self.delta_base is not None

    @property
    def cloud_length(self) -> int:
        """Bytes this extent occupies in cloud storage."""
        return self.stored_length if self.is_delta else self.length

    def chain_depth(self) -> int:
        """Delta hops until a full extent (0 for a non-delta ref)."""
        depth = 0
        ref = self
        while ref.delta_base is not None:
            depth += 1
            ref = ref.delta_base
        return depth

    def to_json(self) -> dict:
        """JSON-serialisable form."""
        doc = {"fp": self.fingerprint.hex(), "len": self.length}
        if self.in_container:
            doc["cid"] = self.container_id
            doc["off"] = self.offset
        else:
            doc["key"] = self.object_key
        if self.wrapped_key is not None:
            doc["ek"] = self.wrapped_key.hex()
        if self.is_delta:
            doc["slen"] = self.stored_length
            doc["base"] = self.delta_base.to_json()
        return doc

    @classmethod
    def from_json(cls, doc: dict) -> "ChunkRef":
        """Inverse of :meth:`to_json`."""
        ek = doc.get("ek")
        base = doc.get("base")
        slen = doc.get("slen")
        return cls(fingerprint=bytes.fromhex(doc["fp"]),
                   length=int(doc["len"]),
                   container_id=int(doc.get("cid", -1)),
                   offset=int(doc.get("off", 0)),
                   object_key=doc.get("key"),
                   wrapped_key=bytes.fromhex(ek) if ek else None,
                   stored_length=int(slen) if slen is not None else None,
                   delta_base=cls.from_json(base) if base else None)


@dataclass
class FileEntry:
    """Manifest record for one backed-up file."""

    path: str
    size: int
    mtime_ns: int
    app: str
    category: str
    #: Ordered extents whose concatenation is the file content.
    refs: List[ChunkRef] = field(default_factory=list)
    #: True when the file bypassed dedup via the tiny-file filter.
    tiny: bool = False

    def to_json(self) -> dict:
        """JSON-serialisable form."""
        return {"path": self.path, "size": self.size,
                "mtime_ns": self.mtime_ns, "app": self.app,
                "category": self.category, "tiny": self.tiny,
                "refs": [r.to_json() for r in self.refs]}

    @classmethod
    def from_json(cls, doc: dict) -> "FileEntry":
        """Inverse of :meth:`to_json`."""
        return cls(path=doc["path"], size=int(doc["size"]),
                   mtime_ns=int(doc["mtime_ns"]), app=doc["app"],
                   category=doc["category"], tiny=bool(doc["tiny"]),
                   refs=[ChunkRef.from_json(r) for r in doc["refs"]])


class Manifest:
    """All file recipes of one backup session."""

    FORMAT = 1

    def __init__(self, session_id: int, scheme: str,
                 created: float = 0.0) -> None:
        self.session_id = session_id
        self.scheme = scheme
        self.created = created
        self._files: Dict[str, FileEntry] = {}

    # ------------------------------------------------------------------
    def add(self, entry: FileEntry) -> None:
        """Record ``entry`` (one per path; duplicates are an error)."""
        if entry.path in self._files:
            raise RestoreError(f"duplicate manifest path {entry.path!r}")
        self._files[entry.path] = entry

    def get(self, path: str) -> Optional[FileEntry]:
        """Entry for ``path`` or ``None``."""
        return self._files.get(path)

    def __iter__(self) -> Iterator[FileEntry]:
        for path in sorted(self._files):
            yield self._files[path]

    def __len__(self) -> int:
        return len(self._files)

    def total_bytes(self) -> int:
        """Logical dataset size covered by this manifest."""
        return sum(e.size for e in self._files.values())

    def iter_refs(self) -> Iterator[ChunkRef]:
        """Every extent reference of every recipe, delta bases included.

        Delta bases count as references: a base is needed (and must stay
        live) for as long as any retained delta rebuilds against it, so
        GC liveness and scrub resolution both walk this iterator rather
        than the top-level refs alone.
        """
        for entry in self._files.values():
            for ref in entry.refs:
                while ref is not None:
                    yield ref
                    ref = ref.delta_base

    def referenced_containers(self) -> set[int]:
        """Container ids any recipe points into (GC liveness input)."""
        return {r.container_id for r in self.iter_refs() if r.in_container}

    def referenced_objects(self) -> set[str]:
        """Standalone object keys any recipe references."""
        return {r.object_key for r in self.iter_refs()
                if not r.in_container}

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialise to a JSON document string."""
        return json.dumps({
            "format": self.FORMAT,
            "session": self.session_id,
            "scheme": self.scheme,
            "created": self.created,
            "files": [e.to_json() for e in self],
        }, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str | bytes) -> "Manifest":
        """Parse a manifest previously produced by :meth:`to_json`."""
        doc = json.loads(text)
        if doc.get("format") != cls.FORMAT:
            raise RestoreError(f"unsupported manifest format "
                               f"{doc.get('format')!r}")
        manifest = cls(session_id=int(doc["session"]), scheme=doc["scheme"],
                       created=float(doc["created"]))
        for entry in doc["files"]:
            manifest.add(FileEntry.from_json(entry))
        return manifest
