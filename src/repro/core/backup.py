"""The backup engine: one client, five schemes.

:class:`BackupClient` executes backup sessions for any
:class:`~repro.core.options.SchemeConfig` against any cloud facade that
offers ``put/get/exists`` (e.g. :class:`repro.cloud.SimulatedCloud` or a
bare backend).  For AA-Dedupe it realises the full paper pipeline:

1. **file size filter** — tiny files skip dedup and are packed into
   containers;
2. **intelligent chunker** — per-category chunking (WFC/SC/CDC);
3. **application-aware deduplicator** — per-app subindex lookups with
   adaptive fingerprints;
4. **container management** — unique data accumulates into 1 MB padded
   containers, optionally uploaded by a pipeline thread overlapping
   deduplication (the paper's pipelined design);
5. **manifest + periodic index synchronisation** to the cloud.

All work is charged to :class:`~repro.core.stats.OpCounters` so the
virtual platform model can price a session on the paper's hardware.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, Iterable, Optional

from repro.chunking import CDC_FAMILY
from repro.chunking.base import Chunker
from repro.chunking.cdc import ContentDefinedChunker
from repro.classify.filetype import classify_name
from repro.classify.policy import DedupPolicy
from repro.container.manager import ContainerManager
from repro.core import naming
from repro.cloud.retry import RetryPolicy
from repro.core.filecache import FileCache, read_epoch
from repro.core.journal import SessionJournal
from repro.core.options import SchemeConfig, aa_dedupe_config
from repro.core.pipeline import StagePipeline, WorkItem
from repro.core.recipe import ChunkRef, FileEntry, Manifest
from repro.core.source import SourceFile
from repro.core.stats import SessionStats
from repro.core.sync import IndexSynchronizer
from repro.delta import SimilarityIndex, compute_sketch, encode_if_worthwhile
from repro.errors import BackupError, CloudError
from repro.hashing.base import get_hash
from repro.index.appaware import AppAwareIndex
from repro.index.base import ChunkIndex, IndexEntry
from repro.obs.metrics import CHUNK_SIZE_BUCKETS
from repro.obs.tracer import NOOP_TRACER
from repro.util.timer import ConcurrentStopwatch, Stopwatch

__all__ = ["BackupClient"]

#: File-level tier policy used by ``file_level_first`` schemes (SAM).
_FILE_TIER_POLICY = DedupPolicy("wfc", "sha1")

#: Chunking methods whose output the delta stage may target.  WFC means
#: compressed content (application-awareness: re-deltaing compressed
#: media buys nothing), so only CDC-family and SC chunks are sketched.
_DELTA_CHUNKERS = CDC_FAMILY + ("sc",)


class _DeltaBase:
    """A resident delta base: its plaintext, its recipe reference (full
    or itself a delta) and its delta-chain depth."""

    __slots__ = ("payload", "ref", "depth")

    def __init__(self, payload: bytes, ref: ChunkRef, depth: int) -> None:
        self.payload = payload
        self.ref = ref
        self.depth = depth


class _PreparedFile:
    """Output of the CPU half of the pipeline for one file.

    Holds everything :meth:`BackupClient._place_prepared` needs to make
    placement decisions: the sealed chunk payloads with their
    fingerprints, in file order.  Preparation is thread-safe (it touches
    no shared dedup state), so parallel mode runs it on worker threads
    and replays the placements serially in source order.
    """

    __slots__ = ("sf", "app", "tiny", "file_fp", "policy", "raw",
                 "chunks")

    def __init__(self, sf: SourceFile, app) -> None:
        self.sf = sf
        self.app = app
        self.tiny = False
        #: SAM file-level-tier whole-file fingerprint (when probed).
        self.file_fp: Optional[bytes] = None
        self.policy: Optional[DedupPolicy] = None
        #: Chunk-stage output awaiting fingerprints: raw chunk payloads
        #: in file order (``None`` once hashed, or on a file-tier peek
        #: hit where nothing needs hashing).
        self.raw: Optional[list] = None
        #: (fingerprint, sealed payload, wrapped key, logical length).
        self.chunks: list = []


class _PipelinedUploader:
    """Bounded-queue background uploader overlapping WAN transfer with
    deduplication.

    Fails fast: after the first upload error the worker *drops* all
    queued work (nothing further is uploaded) and new submits are
    rejected; the error re-raises on :meth:`drain`/:meth:`close`.
    :meth:`close` always joins the worker thread, error or not, so no
    thread outlives the session.  ``on_success(key, blob)`` (when given)
    runs on the worker thread after each durable upload — the hook the
    session journal uses to record completed uploads.

    Completion tracking is an outstanding-item counter under a
    condition variable rather than ``queue.join()``: every blocking
    wait is a timed loop that checks worker liveness, so a worker
    thread killed by an unexpected exception (a poison item, a bug in a
    success hook) surfaces as a :class:`BackupError` instead of hanging
    the session forever on a join that can never complete.
    """

    def __init__(self, put: Callable[[str, bytes], None],
                 depth: int = 4,
                 on_success: Optional[Callable[[str, bytes], None]] = None,
                 tracer=None) -> None:
        self._put = put
        self._on_success = on_success
        self._tracer = tracer if tracer is not None else NOOP_TRACER
        self._queue: "queue.Queue" = queue.Queue(maxsize=depth)
        self._error: Optional[BaseException] = None
        self._cond = threading.Condition()
        self._outstanding = 0
        self.busy_seconds = 0.0
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="aa-uploader")
        self._thread.start()

    def _upload_one(self, key: str, blob: bytes) -> None:
        self._put(key, blob)
        if self._on_success is not None:
            self._on_success(key, blob)

    def _finish_one(self) -> None:
        with self._cond:
            self._outstanding -= 1
            self._cond.notify_all()

    def _run(self) -> None:
        try:
            while True:
                item = self._queue.get()
                if item is None:
                    return
                if self._error is not None:  # fail fast: drop queued work
                    self._finish_one()
                    continue
                key, blob, app = item  # a poison item kills the worker
                start = time.perf_counter()
                try:
                    if self._tracer.enabled:
                        attrs = {"key": key, "bytes": len(blob)}
                        if app is not None:
                            attrs["app"] = app
                        with self._tracer.span("upload", **attrs):
                            self._upload_one(key, blob)
                    else:
                        self._upload_one(key, blob)
                except BaseException as exc:  # propagate on drain/close
                    self._error = exc
                finally:
                    self.busy_seconds += time.perf_counter() - start
                    self._finish_one()
        finally:
            # Dying (sentinel or unexpected exception) wakes any waiter
            # so drain/close notice the liveness change promptly.
            with self._cond:
                self._cond.notify_all()

    def _dead(self) -> BackupError:
        err = BackupError("pipelined upload worker died")
        err.__cause__ = self._error
        return err

    @property
    def queue_depth(self) -> int:
        """Items currently waiting in the pipeline (approximate)."""
        return self._queue.qsize()

    def submit(self, key: str, blob: bytes,
               app: Optional[str] = None) -> None:
        """Enqueue an upload (blocks when the pipeline is full)."""
        if self._error is not None:
            raise BackupError("pipelined upload failed") from self._error
        with self._cond:
            self._outstanding += 1
        while True:
            if not self._thread.is_alive():
                self._finish_one()
                raise self._dead()
            try:
                self._queue.put((key, blob, app), timeout=0.1)
                return
            except queue.Full:
                continue

    def drain(self) -> None:
        """Wait for all queued uploads; re-raise any worker error."""
        with self._cond:
            while self._outstanding > 0:
                if not self._thread.is_alive():
                    break
                self._cond.wait(0.1)
            stranded = self._outstanding
        if self._error is not None:
            raise BackupError("pipelined upload failed") from self._error
        if stranded > 0:
            raise self._dead()

    def close(self) -> None:
        """Stop and join the worker thread, then surface any error."""
        pending: Optional[BaseException] = None
        try:
            self.drain()
        except BackupError as exc:
            pending = exc
        if self._thread.is_alive():
            try:
                self._queue.put(None, timeout=5.0)
            except queue.Full:
                pass  # worker died with a full queue; join below
        self._thread.join(timeout=10.0)
        if pending is not None:
            raise pending
        if self._error is not None:
            raise BackupError("pipelined upload failed") from self._error
        if self._thread.is_alive():
            raise BackupError("pipelined upload worker failed to stop")


class BackupClient:
    """Stateful backup client for one scheme against one cloud store.

    The client owns the chunk index (layout per config), the container
    manager (container ids persist across sessions) and the manifest
    history; call :meth:`backup` once per session with a source snapshot.
    """

    def __init__(self,
                 cloud,
                 config: SchemeConfig | None = None,
                 index_factory: Callable[[str], ChunkIndex] | None = None,
                 master_key: bytes | None = None,
                 retry: Optional[RetryPolicy] = None,
                 tracer=None,
                 first_container_id: Optional[int] = None,
                 ) -> None:
        self.cloud = cloud
        self.config = config or aa_dedupe_config()
        if self.config.encrypt_chunks and not master_key:
            raise BackupError(
                "encrypt_chunks requires a master_key")
        self.master_key = master_key
        #: Optional client-side retry for the upload path.  When the
        #: cloud facade already retries (SimulatedCloud(retry=...)),
        #: leave this None — stacking both would retry retries.
        self.retry = retry
        #: Profiling tracer, propagated into every instrumented layer
        #: this client owns (index, containers, chunkers, uploader).
        #: The no-op default keeps the hot path unchanged.
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        if retry is not None and retry.tracer is NOOP_TRACER:
            retry.tracer = self.tracer
        self.index = AppAwareIndex(factory=index_factory,
                                   tracer=self.tracer)
        self.manifests: Dict[int, Manifest] = {}
        self._prev_manifest: Optional[Manifest] = None
        self._next_session = 0
        self._chunkers: Dict[tuple, Chunker] = {}
        self._chunkers_lock = threading.Lock()
        #: SAM-style file-level tier: whole-file fingerprint -> recipe.
        self._file_tier: Dict[bytes, list] = {}
        self._uploader: Optional[_PipelinedUploader] = None
        self._upload_watch = ConcurrentStopwatch()
        self._cloud_lock = threading.Lock()
        # -- cross-session stat cache (see repro.core.filecache) --------
        self._filecache: Optional[FileCache] = (
            FileCache(self.config.name) if self.config.stat_cache
            else None)
        #: Replays allowed this session (epoch validated, cache warm).
        self._replay_enabled = False
        #: Whether the cache may be persisted at session commit.
        self._statcache_ok = False
        #: Whether the GC epoch was read from the cloud this session.
        self._statcache_epoch_fresh = False
        #: Per-thread application label of the file being processed, so
        #: uploads triggered mid-file can be attributed to its app.
        self._app_ctx = threading.local()
        self._journal: Optional[SessionJournal] = None
        self._sync = IndexSynchronizer(cloud, retry=retry)
        # -- delta-compression stage state (see repro.delta) -----------
        # The similarity index and base cache are *client-local hints*:
        # losing them costs dedup opportunity, never correctness.  Delta
        # targets deliberately never enter the exact chunk index — a
        # synced IndexEntry cannot carry a base chain, so a later exact
        # hit would emit a plain ref pointing at delta-blob bytes.
        self._sim: Optional[SimilarityIndex] = (
            SimilarityIndex(capacity=self.config.delta_sim_capacity)
            if self.config.delta_compress else None)
        #: namespace -> OrderedDict[fingerprint -> _DeltaBase] (LRU).
        self._delta_bases: Dict[str, "OrderedDict[bytes, _DeltaBase]"] = {}
        #: namespace -> {target fingerprint -> delta ChunkRef}, so a
        #: repeat of a delta-stored chunk reuses its ref.
        self._delta_refs: Dict[str, Dict[bytes, ChunkRef]] = {}
        # Multi-client deployments sharing one container pool assign
        # each client a disjoint id range up front; single clients probe
        # the cloud so a fresh client never reuses a live id.
        self._containers = ContainerManager(
            upload=self._upload_container,
            container_size=self.config.container_size,
            pad_containers=self.config.pad_containers,
            first_container_id=(first_container_id
                                if first_container_id is not None
                                else self._resume_container_id()),
            tracer=self.tracer,
            # Sealing (serialize + pad) moves off the commit thread only
            # in pipelined mode; the paper-faithful serial schemes keep
            # synchronous sealing so their accounting is unperturbed.
            pack_async=self.config.pipeline_uploads,
        ) if self.config.use_containers else None

    def _resume_container_id(self) -> int:
        """Continue container numbering after any containers already in
        the cloud — a fresh client (e.g. after disaster recovery) must
        never reuse an id, or it would overwrite live data."""
        try:
            existing = self.cloud.list(naming.CONTAINER_PREFIX)
        except Exception:
            return 0
        ids = []
        for key in existing:
            try:
                ids.append(int(key[len(naming.CONTAINER_PREFIX):]))
            except ValueError:
                continue
        return max(ids, default=-1) + 1

    # ------------------------------------------------------------------
    def _cloud_put(self, key: str, blob: bytes) -> None:
        """One cloud PUT, retried per the client retry policy if set."""
        if self.retry is not None:
            self.retry.call(self.cloud.put, key, blob)
        else:
            self.cloud.put(key, blob)

    def _put(self, key: str, blob: bytes) -> None:
        journal = self._journal
        if journal is not None and journal.completed(key, blob):
            return  # durably uploaded by the interrupted run
        tracer = self.tracer
        app = getattr(self._app_ctx, "label", None)
        if self._uploader is not None:
            if tracer.enabled:
                tracer.metrics.gauge("uploader_queue_depth").set(
                    self._uploader.queue_depth + 1)
            self._uploader.submit(key, blob, app=app)
        elif tracer.enabled:
            attrs = {"key": key, "bytes": len(blob)}
            if app is not None:
                attrs["app"] = app
            with tracer.span("upload", **attrs):
                self._put_sync(key, blob, journal)
        else:
            self._put_sync(key, blob, journal)

    def _put_sync(self, key: str, blob: bytes,
                  journal: Optional[SessionJournal]) -> None:
        with self._cloud_lock:
            with self._upload_watch:
                self._cloud_put(key, blob)
            if journal is not None:
                journal.record(key, blob)

    def _upload_container(self, container_id: int, blob: bytes) -> None:
        self._put(naming.container_key(container_id), blob)

    def _open_journal(self, session_id: int) -> SessionJournal:
        """Open (or resume) the session journal for ``session_id``.

        When an interrupted run left a journal in the cloud, container
        numbering is rewound to that run's starting id so re-generated
        containers land on their original keys — the digest check in
        :meth:`SessionJournal.completed` then skips every upload the
        crashed run already made durable.
        """
        first_id = (self._containers.next_container_id
                    if self._containers is not None else 0)
        journal = SessionJournal.load(
            self.cloud, session_id, first_container_id=first_id,
            flush_interval=self.config.journal_flush_interval)
        if journal.resumed and self._containers is not None:
            self._containers.set_next_id(journal.first_container_id)
        if not journal.resumed:
            # Make the starting container id durable before the first
            # upload, so even an immediate crash resumes correctly.
            journal.flush()
        return journal

    def _chunker_for(self, policy: DedupPolicy) -> Chunker:
        key = (policy.chunker, tuple(sorted(policy.chunker_params.items())))
        chunker = self._chunkers.get(key)
        if chunker is None:
            # Pipelined chunk-stage workers race on first use of a
            # policy; chunkers themselves are stateless per call.
            with self._chunkers_lock:
                chunker = self._chunkers.get(key)
                if chunker is None:
                    chunker = self._chunkers[key] = policy.make_chunker()
                    chunker.tracer = self.tracer
        return chunker

    # ------------------------------------------------------------------
    def backup(self, source: Iterable[SourceFile],
               session_id: int | None = None) -> SessionStats:
        """Run one backup session over ``source``; returns its stats."""
        cfg = self.config
        if session_id is None:
            session_id = self._next_session
        # Never rewind the auto counter: re-running an older explicit id
        # must not make later auto ids collide with (and silently
        # overwrite) newer manifests.
        self._next_session = max(self._next_session, session_id + 1)
        with self.tracer.span("session", scheme=cfg.name,
                              session=session_id):
            return self._backup_traced(source, session_id)

    def _backup_traced(self, source: Iterable[SourceFile],
                       session_id: int) -> SessionStats:
        cfg = self.config
        stats = SessionStats(session_id=session_id, scheme=cfg.name)
        # Simulated runs stamp manifests with virtual time so serialized
        # output (and therefore byte accounting) is fully deterministic;
        # real deployments keep the wall clock.
        clock = getattr(self.cloud, "clock", None)
        created = clock.now() if clock is not None else time.time()
        manifest = Manifest(session_id, cfg.name, created=created)
        self.index.reset_stats()
        puts_before = self.cloud.stats.put_requests
        up_before = self.cloud.stats.bytes_uploaded
        pack_before = (self._containers.pack_busy_seconds
                       if self._containers is not None else 0.0)
        self._upload_watch = ConcurrentStopwatch()
        self._statcache_begin(stats)
        self._journal = self._open_journal(session_id) \
            if cfg.resumable else None
        if cfg.pipeline_uploads:
            journal = self._journal
            self._uploader = _PipelinedUploader(
                self._cloud_put,
                depth=cfg.upload_queue_depth,
                on_success=(journal.record if journal is not None
                            else None),
                tracer=self.tracer)
        dedup_watch = Stopwatch().start()
        try:
            if cfg.parallel_workers > 1:
                self._backup_parallel(source, stats, manifest, session_id)
            else:
                for sf in source:
                    unique_before = stats.bytes_unique
                    entry = self._process_file(sf, stats, session_id)
                    stats.note_app(entry.app, sf.size,
                                   stats.bytes_unique - unique_before)
                    manifest.add(entry)
                    if self._filecache is not None:
                        self._filecache.record(entry)
            if self._containers is not None:
                self._containers.flush()
        finally:
            dedup_watch.stop()
            if self._uploader is not None:
                uploader, self._uploader = self._uploader, None
                try:
                    uploader.close()
                finally:
                    stats.upload_wall_seconds = uploader.busy_seconds
                    stats.stage_busy_seconds["upload"] = \
                        uploader.busy_seconds
                    if self._containers is not None:
                        pack = (self._containers.pack_busy_seconds
                                - pack_before)
                        if pack > 0:
                            stats.stage_busy_seconds["pack"] = pack
            else:
                stats.upload_wall_seconds = self._upload_watch.elapsed
            if self._journal is not None:
                stats.resume_skipped_objects = \
                    self._journal.skipped_objects
                stats.resume_skipped_bytes = self._journal.skipped_bytes

        # Manifest upload (counted like any other transfer).  Its
        # success is the session's commit record: afterwards the journal
        # (if any) is obsolete and is deleted.
        manifest_blob = manifest.to_json().encode("utf-8")
        with self.tracer.span("manifest", bytes=len(manifest_blob)):
            with self._upload_watch:
                self._cloud_put(naming.manifest_key(session_id),
                                manifest_blob)
        if self._journal is not None:
            self._journal.commit()
            stats.warnings.extend(self._journal.warnings)
            self._journal = None

        # The manifest upload committed the session, so the recipes
        # staged during it become the next session's stat cache.
        self._statcache_commit(stats)

        # Periodic index replication for disaster recovery (Sec. III-E).
        # A failed push degrades to a warning: dedup continuity is
        # recoverable (the next sync retries the stale subindices), so
        # it must not fail an otherwise-complete backup.
        if (cfg.index_sync_interval
                and (session_id + 1) % cfg.index_sync_interval == 0):
            try:
                with self.tracer.span("index.sync"):
                    self._sync.push(self.index)
            except CloudError as exc:
                stats.warnings.append(
                    f"index sync failed (retried next sync): {exc}")

        # Merge index accounting into the op counters.
        idx_stats = self.index.combined_stats()
        stats.ops.index_lookups += idx_stats.lookups
        stats.ops.index_hits += idx_stats.hits
        stats.ops.index_disk_probes += idx_stats.disk_probes

        stats.dedup_wall_seconds = dedup_watch.elapsed
        stats.put_requests = self.cloud.stats.put_requests - puts_before
        stats.bytes_uploaded = self.cloud.stats.bytes_uploaded - up_before
        self.manifests[session_id] = manifest
        self._prev_manifest = manifest
        return stats

    # ------------------------------------------------------------------
    def _backup_parallel(self, source: Iterable[SourceFile],
                         stats: SessionStats, manifest: Manifest,
                         session_id: int) -> None:
        """Pipelined stages feeding a deterministic serial commit.

        The CPU half of the session runs as three explicit stages —
        read → chunk → hash — each with its own worker pool, connected
        by bounded queues (:class:`~repro.core.pipeline.StagePipeline`);
        a full queue blocks the upstream stage, so backpressure bounds
        resident payloads.  None of the stages touches shared dedup
        state.  The coordinator drains completed files **strictly in
        source order** and performs all placement (index probes,
        container appends, the delta stage, manifest append) itself, so
        container ids and offsets — and therefore manifest bytes — are
        identical to a serial run of the same source (the PR 5
        guarantee; see docs/PIPELINE.md).  Container sealing and WAN
        upload continue downstream of the commit on their own threads
        when ``pipeline_uploads`` is on.

        A bounded submission window keeps at most a few prepared
        payloads resident; stat-cache matches skip the stages entirely
        and replay at drain time.  On any error the stages are aborted
        — queued items are dropped, not prepared — so a failed session
        stops promptly instead of grinding through a doomed window.
        """
        from collections import deque

        cache = self._filecache
        tracer = self.tracer
        workers = self.config.stage_workers()
        depth = self.config.resolved_queue_depth()

        def run_read(item: WorkItem) -> None:
            item.data = self._read_file(item.sf, item.app, item.local)

        def run_chunk(item: WorkItem) -> None:
            item.prep = self._chunk_file(item.sf, item.app, item.data,
                                         item.local)
            item.data = None

        def run_hash(item: WorkItem) -> None:
            self._hash_prepared(item.prep, item.local)

        pipeline = StagePipeline([
            ("read", run_read, workers["read"], depth),
            ("chunk", run_chunk, workers["chunk"], depth),
            ("hash", run_hash, workers["hash"], depth),
        ])
        commit_watch = Stopwatch()
        window = max(4, 2 * sum(workers.values()))
        pending: deque = deque()
        source_iter = iter(source)
        exhausted = False
        seq = 0
        try:
            while True:
                while not exhausted and len(pending) < window:
                    try:
                        sf = next(source_iter)
                    except StopIteration:
                        exhausted = True
                        break
                    app = classify_name(sf.path)
                    if (cache is not None and self._replay_enabled
                            and cache.match(app.label, sf.path, sf.size,
                                            sf.mtime_ns) is not None):
                        pending.append(WorkItem(seq, sf, app,
                                                replay=True))
                    else:
                        item = WorkItem(seq, sf, app,
                                        local=SessionStats(
                                            session_id=session_id,
                                            scheme=self.config.name))
                        pipeline.submit(item)
                        pending.append(item)
                    seq += 1
                if not pending:
                    break
                item = pending.popleft()
                sf, app = item.sf, item.app
                if not item.replay:
                    pipeline.wait(item)
                commit_watch.start()
                try:
                    stats.files_total += 1
                    stats.bytes_scanned += sf.size
                    unique_before = stats.bytes_unique
                    if item.replay:
                        entry = self._replay_cached(sf, app, stats)
                        if entry is None:  # went stale since submission
                            entry = self._process_fresh(sf, app, stats,
                                                        session_id)
                    else:
                        # Fold the item's whole local stats — ops AND
                        # warnings/degradations recorded by the stages.
                        stats.merge(item.local)
                        if tracer.enabled:
                            self._app_ctx.label = app.label
                        try:
                            entry = self._place_prepared(item.prep, stats)
                        finally:
                            if tracer.enabled:
                                self._app_ctx.label = None
                    stats.note_app(app.label, sf.size,
                                   stats.bytes_unique - unique_before)
                    manifest.add(entry)
                    if cache is not None:
                        cache.record(entry)
                finally:
                    commit_watch.stop()
        except BaseException:
            try:
                pipeline.shutdown(abort=True)
            finally:
                raise
        else:
            pipeline.shutdown()
        finally:
            busy = stats.stage_busy_seconds
            for name, seconds in pipeline.busy_seconds().items():
                busy[name] = busy.get(name, 0.0) + seconds
            busy["commit"] = (busy.get("commit", 0.0)
                              + commit_watch.elapsed)

    # ------------------------------------------------------------------
    def _process_file(self, sf: SourceFile, stats: SessionStats,
                      session_id: int) -> FileEntry:
        app = classify_name(sf.path)
        stats.files_total += 1
        stats.bytes_scanned += sf.size
        entry = self._replay_cached(sf, app, stats)
        if entry is not None:
            return entry
        return self._process_fresh(sf, app, stats, session_id)

    def _process_fresh(self, sf: SourceFile, app, stats: SessionStats,
                       session_id: int) -> FileEntry:
        """Full pipeline for one file (no usable stat-cache entry)."""
        tracer = self.tracer
        if not tracer.enabled:
            return self._dedup_file(sf, app, stats, session_id)
        # The thread-local app label lets uploads fired mid-file (a
        # container sealing under this file's chunks) carry the right
        # application attribution in the trace.
        self._app_ctx.label = app.label
        try:
            with tracer.span("file", app=app.label,
                             category=app.category.value, bytes=sf.size):
                return self._dedup_file(sf, app, stats, session_id)
        finally:
            self._app_ctx.label = None

    def _fingerprint(self, hasher, hash_name: str, payload: bytes,
                     length: int, app_label: str,
                     stats: SessionStats) -> bytes:
        """Hash one extent, charged to op counters and (if profiling)
        timed under a ``hash`` span."""
        stats.ops.add_hashed(hash_name, length)
        tracer = self.tracer
        if not tracer.enabled:
            return hasher.hash(payload)
        with tracer.span("hash", app=app_label, algo=hash_name,
                         bytes=length):
            return hasher.hash(payload)

    def _dedup_file(self, sf: SourceFile, app, stats: SessionStats,
                    session_id: int) -> FileEntry:
        cfg = self.config
        if cfg.incremental_only:
            return self._process_incremental(sf, app, stats, session_id)
        # Preparation (CPU) and placement (shared dedup state) are split
        # so parallel mode can run preparation on worker threads while
        # keeping every placement decision serial and deterministic.
        prep = self._prepare_file(sf, app, stats)
        return self._place_prepared(prep, stats)

    def _prepare_file(self, sf: SourceFile, app,
                      stats: SessionStats) -> _PreparedFile:
        """CPU half of the pipeline: read, chunk, seal, fingerprint.

        Touches no shared dedup state (index, containers, file tier,
        delta stage), so it is safe on any thread; all side effects are
        charged to the caller's ``stats``.  The pipelined engine runs
        the same three stages on separate worker pools
        (:meth:`_read_file` → :meth:`_chunk_file` →
        :meth:`_hash_prepared`); this composition is the serial path.
        """
        data = self._read_file(sf, app, stats)
        prep = self._chunk_file(sf, app, data, stats)
        self._hash_prepared(prep, stats)
        return prep

    def _read_file(self, sf: SourceFile, app,
                   stats: SessionStats) -> bytes:
        """Read stage: pull the file's bytes off the source device."""
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span("read", app=app.label, bytes=sf.size):
                data = sf.read()
        else:
            data = sf.read()
        stats.ops.read_bytes += len(data)
        if len(data) != sf.size:
            stats.warnings.append(
                f"{sf.path}: size changed during read "
                f"(metadata {sf.size}, read {len(data)} bytes)")
        return data

    def _chunk_file(self, sf: SourceFile, app, data: bytes,
                    stats: SessionStats) -> _PreparedFile:
        """Chunk stage: tiny-file filter, file-tier probe prep, boundary
        scan.  Output (``prep.raw``) awaits the hash stage.
        """
        cfg = self.config
        tracer = self.tracer
        prep = _PreparedFile(sf, app)

        # 1. File size filter (Observation 1): tiny files bypass dedup;
        # the whole file is the single "chunk" the hash stage seals.
        if sf.size < cfg.tiny_file_threshold:
            prep.tiny = True
            prep.raw = [data] if sf.size else []
            return prep

        # 2. Optional file-level tier (SAM): whole-file fingerprint for
        # the probe that placement performs.
        policy = cfg.policy_for_app(app)
        prep.policy = policy
        if cfg.file_level_first and policy.chunker != "wfc" and sf.size:
            prep.file_fp = self._fingerprint(
                _FILE_TIER_POLICY.fingerprinter(),
                _FILE_TIER_POLICY.hash_name, data, len(data),
                app.label, stats)
            # A known whole file will replay its tier recipe during
            # placement, so chunking it here would be wasted work — the
            # very work the tier exists to save.  Peeking at the tier is
            # safe: file_level_first is serial-only (ConfigError guards
            # the parallel combination), and the accounted probe still
            # happens in _place_prepared.
            if self._file_tier.get(prep.file_fp) is not None:
                return prep

        # 3. Intelligent chunking (the boundary scan).
        chunker = self._chunker_for(policy)
        if isinstance(chunker, ContentDefinedChunker):
            stats.ops.cdc_scanned_bytes += len(data)
        if tracer.enabled:
            with tracer.span("chunk", app=app.label,
                             chunker=policy.chunker, bytes=len(data)):
                prep.raw = chunker.chunk(data)
        else:
            prep.raw = chunker.chunk(data)
        return prep

    def _hash_prepared(self, prep: _PreparedFile,
                       stats: SessionStats) -> None:
        """Hash stage: seal + fingerprint every chunk of ``prep.raw``."""
        tracer = self.tracer
        app_label = prep.app.label
        if prep.tiny:
            for data in prep.raw or ():
                payload, key = self._seal(data)
                fp = self._fingerprint(get_hash("sha1"), "sha1", payload,
                                       len(payload), app_label, stats)
                prep.chunks.append((fp, payload, key, len(payload)))
            prep.raw = None
            return
        if prep.raw is None:  # file-tier peek hit: nothing to hash
            return
        policy = prep.policy
        hasher = policy.fingerprinter()
        for chunk in prep.raw:
            payload, key = self._seal(chunk.data)
            fp = self._fingerprint(hasher, policy.hash_name, payload,
                                   chunk.length, app_label, stats)
            stats.ops.chunks_produced += 1
            if tracer.enabled:
                tracer.metrics.histogram(
                    "chunk_bytes",
                    CHUNK_SIZE_BUCKETS).observe(chunk.length)
            prep.chunks.append((fp, payload, key, chunk.length))
        prep.raw = None

    def _place_prepared(self, prep: _PreparedFile,
                        stats: SessionStats) -> FileEntry:
        """Placement half: dedup against the index, store unique data.

        Must run on the coordinator thread — it mutates the index, the
        container streams, the SAM file tier and the delta stage, and
        the order of these mutations determines manifest bytes.
        """
        sf, app = prep.sf, prep.app
        entry = FileEntry(path=sf.path, size=sf.size, mtime_ns=sf.mtime_ns,
                          app=app.label, category=app.category.value)

        if prep.tiny:
            stats.files_tiny += 1
            entry.tiny = True
            for fp, payload, key, _length in prep.chunks:
                ref = self._store_unique(fp, payload, stream="tiny",
                                         tiny=True)
                entry.refs.append(self._attach_key(ref, key))
                stats.bytes_unique += len(payload)
            return entry

        # File-level tier (SAM): a whole-file hit replays the previous
        # recipe, skipping chunk-level dedup entirely — the tier saves
        # *work*, which is its purpose in SAM.
        if prep.file_fp is not None:
            stats.ops.index_lookups += 1
            recipe = self._file_tier.get(prep.file_fp)
            if recipe is not None:
                stats.ops.index_hits += 1
                entry.refs.extend(recipe)
                return entry

        # 4. Application-aware dedup.
        policy = prep.policy
        namespace = self.config.index_namespace(app.label, policy)
        for fp, payload, key, length in prep.chunks:
            existing = self.index.lookup(namespace, fp)
            if existing is not None:
                self.index.insert(namespace, existing.bumped())
                ref = self._ref_for(existing)
            else:
                ref = self._place_unique(fp, payload, length,
                                         namespace, app.label, stats,
                                         policy)
            entry.refs.append(self._attach_key(ref, key))
        if prep.file_fp is not None:
            self._file_tier[prep.file_fp] = list(entry.refs)
        return entry

    # -- convergent encryption hooks (secure dedup, paper Sec. VI) ------
    def _seal(self, plaintext: bytes) -> tuple:
        """Convergently encrypt when configured; returns
        ``(stored_bytes, chunk_key_or_None)``."""
        if not self.config.encrypt_chunks:
            return plaintext, None
        from repro.secure import ConvergentCipher
        return ConvergentCipher.seal(plaintext)

    def _attach_key(self, ref: ChunkRef, key: Optional[bytes]) -> ChunkRef:
        """Bind the wrapped chunk key into a recipe reference."""
        if key is None:
            return ref
        from dataclasses import replace
        from repro.secure import wrap_key
        assert self.master_key is not None
        return replace(ref, wrapped_key=wrap_key(key, self.master_key,
                                                 ref.fingerprint))

    def _process_incremental(self, sf: SourceFile, app, stats: SessionStats,
                             session_id: int) -> FileEntry:
        """Jungle-Disk mode: metadata-based change detection, whole-file
        upload of anything new or modified."""
        prev = (self._prev_manifest.get(sf.path)
                if self._prev_manifest is not None else None)
        if (prev is not None and prev.size == sf.size
                and prev.mtime_ns == sf.mtime_ns):
            stats.files_unchanged += 1
            return FileEntry(path=sf.path, size=sf.size,
                             mtime_ns=sf.mtime_ns, app=app.label,
                             category=app.category.value,
                             refs=list(prev.refs), tiny=prev.tiny)
        data = sf.read()
        stats.ops.read_bytes += len(data)
        entry = FileEntry(path=sf.path, size=sf.size, mtime_ns=sf.mtime_ns,
                          app=app.label, category=app.category.value)
        if sf.size:
            fp = self._fingerprint(get_hash("sha1"), "sha1", data,
                                   len(data), app.label, stats)
            key = naming.file_key(session_id, sf.path)
            self._put(key, data)
            stats.bytes_unique += len(data)
            entry.refs.append(ChunkRef(fingerprint=fp, length=len(data),
                                       object_key=key))
        return entry

    # -- cross-session stat cache (see repro.core.filecache) ------------
    def _statcache_begin(self, stats: SessionStats) -> None:
        """Start-of-session cache maintenance and epoch validation.

        Replay is enabled only when the cloud's GC epoch matches the
        resident cache's: a sweep between sessions may have deleted
        extents the cached recipes reference.  The epoch read is skipped
        while the cache is empty (nothing to validate), so schemes that
        never accumulate cache state — mtime-less sources — cost no
        extra cloud requests at all.
        """
        cache = self._filecache
        self._replay_enabled = False
        self._statcache_ok = False
        self._statcache_epoch_fresh = False
        if cache is None:
            return
        cache.begin_session()
        if len(cache) == 0:
            self._statcache_ok = True
            return
        try:
            epoch = read_epoch(self.cloud)
        except CloudError as exc:
            stats.warnings.append(
                f"stat cache disabled this session "
                f"(GC epoch unreadable): {exc}")
            return
        self._statcache_epoch_fresh = True
        if epoch != cache.epoch:
            cache.clear()
            cache.epoch = epoch
        self._statcache_ok = True
        self._replay_enabled = len(cache) > 0

    def _statcache_commit(self, stats: SessionStats) -> None:
        """Promote and (best-effort) persist the cache post-manifest.

        Runs only after the manifest upload succeeded — the session is
        committed, so every staged recipe is durably referenced.  A
        failed blob save degrades to a warning: the resident cache is
        already current, and a stale cloud blob is safe (its refs stay
        live until a GC sweep, which bumps the epoch it is stamped
        with).
        """
        cache = self._filecache
        if cache is None:
            return
        dirty = cache.commit()
        if not self._statcache_ok or not dirty:
            return
        if not self._statcache_epoch_fresh:
            try:
                cache.epoch = read_epoch(self.cloud)
            except CloudError as exc:
                stats.warnings.append(
                    f"stat cache not persisted (GC epoch unreadable): "
                    f"{exc}")
                return
        tracer = self.tracer
        for app in dirty:
            blob = cache.blob_for(app)
            key = naming.statcache_key(app)
            try:
                if tracer.enabled:
                    with tracer.span("statcache.save", app=app,
                                     bytes=len(blob)):
                        with self._upload_watch:
                            self._cloud_put(key, blob)
                else:
                    with self._upload_watch:
                        self._cloud_put(key, blob)
            except CloudError as exc:
                stats.warnings.append(
                    f"stat cache save failed for {app!r} "
                    f"(retried next session): {exc}")

    def _replay_cached(self, sf: SourceFile, app,
                       stats: SessionStats) -> Optional[FileEntry]:
        """Stat-cache fast path: replay an unchanged file's recipe.

        Returns ``None`` on a miss or a stale hit (caller runs the full
        pipeline).  On a hit the file is never ``read()``, chunked or
        hashed; refcounts are still bumped and the dedup accounting
        still sees the file's logical bytes.
        """
        cache = self._filecache
        if cache is None or not self._replay_enabled:
            return None
        cached = cache.match(app.label, sf.path, sf.size, sf.mtime_ns)
        if cached is None:
            return None
        tracer = self.tracer
        entry = self._validated_replay(cached, sf, app)
        if entry is None:
            stats.statcache_stale += 1
            cache.discard(app.label, sf.path)
            if tracer.enabled:
                tracer.metrics.counter("statcache_stale_total").inc()
            return None
        stats.files_unchanged += 1
        if entry.tiny:
            stats.files_tiny += 1
        if tracer.enabled:
            with tracer.span("statcache.replay", app=app.label,
                             bytes=sf.size, refs=len(entry.refs)):
                pass
            tracer.metrics.counter("statcache_hits_total").inc()
        return entry

    def _validated_replay(self, cached: FileEntry, sf: SourceFile,
                          app) -> Optional[FileEntry]:
        """Revalidate a cached recipe against the live index and bump.

        Every non-delta ref in every chain must still resolve to the
        same container extent (or standalone object) in the exact
        index; tiny-file refs bypass the index by design and are
        covered by the GC-epoch check alone.  Refcounts are bumped only
        after *all* refs validate, so a stale entry leaves no partial
        refcount churn behind.
        """
        cfg = self.config
        policy = cfg.policy_for_app(app)
        namespace = cfg.index_namespace(app.label, policy)
        bumps = []
        for top in cached.refs:
            ref = top
            while ref is not None:
                if not ref.is_delta and not cached.tiny:
                    existing = self.index.lookup(namespace,
                                                 ref.fingerprint)
                    if existing is None:
                        return None
                    if ref.in_container and (
                            existing.container_id != ref.container_id
                            or existing.offset != ref.offset):
                        return None
                    bumps.append(existing)
                ref = ref.delta_base
        for existing in bumps:
            self.index.insert(namespace, existing.bumped())
        return FileEntry(path=sf.path, size=sf.size,
                         mtime_ns=sf.mtime_ns, app=app.label,
                         category=app.category.value,
                         refs=list(cached.refs), tiny=cached.tiny)

    def _load_statcache(self) -> int:
        """Pull persisted stat-cache blobs (disaster-recovery resume).

        Returns the number of file entries recovered.  Blobs stamped
        with another GC epoch or another scheme are ignored; any cloud
        failure degrades to an empty cache.
        """
        cache = self._filecache
        if cache is None:
            return 0
        loaded = 0
        try:
            cache.epoch = read_epoch(self.cloud)
            for key in self.cloud.list(naming.STATCACHE_PREFIX):
                if key == naming.STATCACHE_EPOCH_KEY:
                    continue
                try:
                    loaded += cache.load_blob(self.cloud.get(key))
                except (ValueError, KeyError):
                    continue  # corrupt blob: equivalent to a cache miss
        except CloudError:
            cache.clear()
            return 0
        return loaded

    # -- delta-compression stage (post-dedup similarity detection) ------
    def _place_unique(self, fp: bytes, payload: bytes, length: int,
                      namespace: str, app_label: str,
                      stats: SessionStats,
                      policy: DedupPolicy) -> ChunkRef:
        """Place a chunk the exact index has never seen.

        With delta compression enabled the chunk first passes through
        the similarity stage: repeat of a known delta target → reuse its
        ref; resemblance hit with an affordable delta → store the delta;
        otherwise fall through to a full store, which also registers the
        chunk as a future delta base.
        """
        cfg = self.config
        sketch = None
        if self._sim is not None:
            prior = self._delta_refs.get(namespace, {}).get(fp)
            if prior is not None:
                # Duplicate of a chunk stored as a delta earlier: the
                # exact index missed by design, but no bytes move.
                stats.ops.index_hits += 1
                return prior
            if (policy.chunker in _DELTA_CHUNKERS
                    and len(payload) >= cfg.delta_min_chunk):
                sketch = self._sketch(payload, app_label, stats)
                ref = self._try_delta(fp, payload, sketch, namespace,
                                      app_label, stats)
                if ref is not None:
                    return ref
        ref = self._store_unique(fp, payload, stream=namespace)
        stats.bytes_unique += length
        stats.chunks_unique += 1
        self.index.insert(namespace, IndexEntry(
            fingerprint=fp,
            container_id=max(ref.container_id, 0),
            offset=ref.offset, length=ref.length))
        if sketch is not None:
            self._register_base(namespace, fp, payload, ref, 0, sketch)
        return ref

    def _sketch(self, payload: bytes, app_label: str,
                stats: SessionStats):
        stats.ops.sketch_bytes += len(payload)
        tracer = self.tracer
        if not tracer.enabled:
            return compute_sketch(payload)
        with tracer.span("delta.sketch", app=app_label,
                         bytes=len(payload)):
            return compute_sketch(payload)

    def _try_delta(self, fp: bytes, payload: bytes, sketch,
                   namespace: str, app_label: str,
                   stats: SessionStats) -> Optional[ChunkRef]:
        """Probe the similarity index and, on a usable hit, store the
        chunk as a delta.  Returns ``None`` when the chunk must be
        stored in full (no base, chain too deep, or delta too large)."""
        cfg = self.config
        base_fp = self._sim.probe(namespace, sketch)
        if base_fp is None:
            return None
        base = self._delta_bases.get(namespace, {}).get(base_fp)
        if base is None or base.depth >= cfg.delta_max_chain:
            return None
        stats.ops.delta_encode_bytes += len(payload)
        tracer = self.tracer
        if tracer.enabled:
            with tracer.span("delta.encode", app=app_label,
                             bytes=len(payload), base_depth=base.depth):
                blob = encode_if_worthwhile(base.payload, payload,
                                            cutoff=cfg.delta_cutoff)
        else:
            blob = encode_if_worthwhile(base.payload, payload,
                                        cutoff=cfg.delta_cutoff)
        if blob is None:
            stats.delta_rejected += 1
            return None
        ref = self._store_delta(fp, blob, len(payload), namespace,
                                base.ref)
        stats.bytes_unique += len(blob)
        stats.chunks_delta += 1
        stats.delta_bytes_stored += len(blob)
        stats.delta_bytes_saved += len(payload) - len(blob)
        if tracer.enabled:
            tracer.metrics.counter("delta_chunks_total").inc()
            tracer.metrics.counter("delta_bytes_saved_total").inc(
                len(payload) - len(blob))
        self._delta_refs.setdefault(namespace, {})[fp] = ref
        depth = base.depth + 1
        if depth < cfg.delta_max_chain:
            self._register_base(namespace, fp, payload, ref, depth,
                                sketch)
        return ref

    def _store_delta(self, fp: bytes, blob: bytes, target_len: int,
                     namespace: str, base_ref: ChunkRef) -> ChunkRef:
        """Place a delta blob; its extent identity is the digest of the
        blob itself so scrub can verify it without resolving bases."""
        blob_digest = get_hash("sha1").hash(blob)
        if self._containers is not None:
            loc = self._containers.add(blob_digest, blob,
                                       stream=namespace, delta=True)
            return ChunkRef(fingerprint=fp, length=target_len,
                            container_id=loc.container_id,
                            offset=loc.offset, stored_length=len(blob),
                            delta_base=base_ref)
        key = naming.delta_key(blob_digest)
        self._put(key, blob)
        return ChunkRef(fingerprint=fp, length=target_len,
                        object_key=key, stored_length=len(blob),
                        delta_base=base_ref)

    def _register_base(self, namespace: str, fp: bytes, payload: bytes,
                       ref: ChunkRef, depth: int, sketch) -> None:
        """Admit a stored chunk as a candidate base for future deltas
        (LRU-bounded; evicted bases leave the similarity index too)."""
        bases = self._delta_bases.setdefault(namespace, OrderedDict())
        if fp in bases:
            bases.move_to_end(fp)
        bases[fp] = _DeltaBase(payload, ref, depth)
        while len(bases) > self.config.delta_base_cache:
            old_fp, _ = bases.popitem(last=False)
            self._sim.discard(namespace, old_fp)
        self._sim.insert(namespace, sketch, fp)

    # ------------------------------------------------------------------
    def _store_unique(self, fp: bytes, data: bytes, stream: str,
                      tiny: bool = False) -> ChunkRef:
        """Place a unique extent: container append or direct object PUT."""
        if self._containers is not None:
            loc = self._containers.add(fp, data, stream=stream,
                                       tiny_file=tiny)
            return ChunkRef(fingerprint=fp, length=loc.length,
                            container_id=loc.container_id,
                            offset=loc.offset)
        key = naming.chunk_key(fp)
        self._put(key, data)
        return ChunkRef(fingerprint=fp, length=len(data), object_key=key)

    def _ref_for(self, entry: IndexEntry) -> ChunkRef:
        """Build a recipe reference from an index hit."""
        if self._containers is not None:
            return ChunkRef(fingerprint=entry.fingerprint,
                            length=entry.length,
                            container_id=entry.container_id,
                            offset=entry.offset)
        return ChunkRef(fingerprint=entry.fingerprint, length=entry.length,
                        object_key=naming.chunk_key(entry.fingerprint))

    # ------------------------------------------------------------------
    def resume_from_cloud(self) -> int:
        """Rebuild dedup state from cloud replicas (new process/machine).

        Pulls every synced application subindex, loads the most recent
        manifest (for incremental change detection), reloads the
        persisted stat cache (so unchanged files skip re-chunking even
        across process restarts), and fast-forwards the session counter
        past existing manifests.  Returns the number of index entries
        recovered.  Together with the containers being self-describing,
        this makes the client fully stateless across invocations — the
        CLI calls it on startup.
        """
        restored = self._sync.pull(self.index)
        self._load_statcache()
        latest_id = -1
        for key in self.cloud.list(naming.MANIFEST_PREFIX):
            stem = key.rsplit("session-", 1)[-1].split(".", 1)[0]
            try:
                latest_id = max(latest_id, int(stem))
            except ValueError:
                continue
        if latest_id >= 0:
            manifest = Manifest.from_json(
                self.cloud.get(naming.manifest_key(latest_id)))
            self.manifests[latest_id] = manifest
            self._prev_manifest = manifest
            self._next_session = latest_id + 1
        return restored

    def close(self) -> None:
        """Flush containers/index and release resources."""
        if self._containers is not None:
            self._containers.close()
        self.index.flush()
        self.index.close()
