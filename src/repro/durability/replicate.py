"""Replication pass: bring the store up to its durability targets.

The replicator is idempotent and crash-safe: it computes criticality
from live manifests, derives each container's target copy count from
the :class:`~repro.durability.policy.DurabilityPolicy`, uploads only
the replica copies that are missing (reading from the primary or, when
the primary is already gone, from any surviving replica), and persists
the resulting :class:`~repro.durability.policy.ReplicationPlan` last —
so a plan never promises copies that were not yet attempted.  Re-running
after a crash simply tops up whatever is left.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.container.format import ContainerReader
from repro.core import naming
from repro.durability.placement import default_domains, replica_keys
from repro.durability.policy import (DurabilityPolicy, ReplicationPlan,
                                     collect_criticality)
from repro.errors import ContainerFormatError, ReproError
from repro.obs.tracer import NOOP_TRACER

__all__ = ["ReplicationReport", "replicate_cloud"]


@dataclass
class ReplicationReport:
    """Outcome of one replication pass."""

    #: Live containers considered (referenced by any live manifest).
    containers_considered: int = 0
    #: Containers whose target is more than one copy.
    containers_replicated: int = 0
    #: Replica objects uploaded by this pass.
    replicas_written: int = 0
    #: Replica objects already in place and left untouched.
    replicas_existing: int = 0
    #: Bytes of replica payload uploaded.
    replica_bytes: int = 0
    #: container_id -> planned total copies (the persisted plan).
    targets: Dict[int, int] = field(default_factory=dict)
    #: Containers that could not be replicated (no readable copy).
    problems: List[str] = field(default_factory=list)


def _read_container(cloud, key: str, container_id: int):
    """Validated container bytes at ``key``, or ``None``."""
    try:
        blob = cloud.get(key)
        reader = ContainerReader(blob)
    except (ReproError, ContainerFormatError):
        return None
    return blob if reader.container_id == container_id else None


def replicate_cloud(cloud,
                    policy: Optional[DurabilityPolicy] = None,
                    domains: Optional[Sequence[str]] = None,
                    manifest_keys: Optional[Iterable[str]] = None,
                    tracer=None) -> ReplicationReport:
    """Replicate live containers per ``policy`` and persist the plan.

    ``domains`` defaults to the persisted plan's domain list (so repeat
    passes keep placement stable) or, on a fresh store, to
    :func:`~repro.durability.placement.default_domains`.
    """
    tracer = tracer if tracer is not None else NOOP_TRACER
    policy = policy if policy is not None else DurabilityPolicy()
    if domains is None:
        prior = ReplicationPlan.load(cloud)
        domains = (prior.domains if prior is not None
                   else default_domains())
    report = ReplicationReport()
    with tracer.span("durability.replicate", domains=len(domains)):
        crit = collect_criticality(cloud, manifest_keys=manifest_keys)
        report.containers_considered = len(crit)
        for container_id in sorted(crit):
            target = policy.target_replicas(crit[container_id], domains)
            if target <= 1:
                continue
            report.targets[container_id] = target
            report.containers_replicated += 1
            blob = _read_container(
                cloud, naming.container_key(container_id), container_id)
            keys = replica_keys(container_id, domains, target)
            if blob is None:
                # Primary unreadable: replicate from a surviving copy
                # (repair promotes it back to primary separately).
                for key in keys:
                    blob = _read_container(cloud, key, container_id)
                    if blob is not None:
                        break
            if blob is None:
                report.problems.append(
                    f"container {container_id}: no readable copy to "
                    f"replicate from")
                continue
            for key in keys:
                if cloud.exists(key):
                    report.replicas_existing += 1
                    continue
                cloud.put(key, blob)
                report.replicas_written += 1
                report.replica_bytes += len(blob)
        plan = ReplicationPlan(domains=domains, targets=report.targets)
        plan.save(cloud)
        if tracer.enabled:
            tracer.metrics.counter("replicas_written_total").inc(
                report.replicas_written)
            tracer.metrics.counter("replica_bytes_total").inc(
                report.replica_bytes)
    return report
