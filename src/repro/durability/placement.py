"""Deterministic replica placement across fault domains.

A *fault domain* is a named group of blobs expected to fail together —
an availability zone, a disk shelf, a storage account.  The store
models domains logically: every container is *assigned* to a primary
domain by its id, and its replicas are placed in the following domains
round-robin, so ``R`` copies always occupy ``R`` distinct domains.  The
assignment is a pure function of ``(container_id, domains)`` — no
placement table to lose, and every client computes identical keys.

Replica copies are byte-identical to the primary and live at
``replicas/<domain>/containers/<id>`` (:func:`repro.core.naming.replica_key`);
the primary keeps its classic ``containers/<id>`` key so every existing
reader works unchanged.

:func:`kill_domain` implements the failure model for chaos tests: it
deletes every replica hosted in the domain *and* every primary assigned
to it — exactly what losing one zone of a real deployment would take
out.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core import naming
from repro.errors import ConfigError

__all__ = ["DEFAULT_DOMAIN_COUNT", "default_domains", "primary_domain",
           "replica_domains", "replica_keys", "kill_domain"]

#: Three domains cover the paper's deployment class (one consumer cloud
#: account spread over availability zones) and allow up to R=3.
DEFAULT_DOMAIN_COUNT = 3


def default_domains(count: int = DEFAULT_DOMAIN_COUNT) -> Tuple[str, ...]:
    """``count`` generically-named fault domains (``d0``, ``d1``, ...)."""
    if count < 1:
        raise ConfigError("need at least one fault domain")
    return tuple(f"d{i}" for i in range(count))


def primary_domain(container_id: int,
                   domains: Sequence[str]) -> str:
    """Fault domain the primary copy of ``container_id`` is assigned to."""
    if not domains:
        raise ConfigError("need at least one fault domain")
    return domains[container_id % len(domains)]


def replica_domains(container_id: int, domains: Sequence[str],
                    replicas: int) -> List[str]:
    """Domains hosting the ``replicas`` total copies beyond the primary.

    Copies rotate away from the primary's domain, so ``replicas`` of
    ``R`` places ``R - 1`` replica copies in the ``R - 1`` domains after
    the primary's — all distinct while ``R <= len(domains)``.
    """
    if not domains:
        raise ConfigError("need at least one fault domain")
    n = len(domains)
    start = container_id % n
    count = min(max(replicas, 1), n) - 1
    return [domains[(start + i) % n] for i in range(1, count + 1)]


def replica_keys(container_id: int, domains: Sequence[str],
                 replicas: int) -> List[str]:
    """Cloud keys of every replica copy of ``container_id``."""
    return [naming.replica_key(domain, container_id)
            for domain in replica_domains(container_id, domains, replicas)]


def kill_domain(cloud, domain: str, domains: Sequence[str]) -> int:
    """Destroy fault domain ``domain``: every replica it hosts and every
    primary container assigned to it.  Returns the number of objects
    deleted.  This is the chaos-test failure model, not an operation a
    healthy deployment performs.
    """
    killed = 0
    for key in list(cloud.list(naming.REPLICA_PREFIX + domain + "/")):
        if cloud.delete(key):
            killed += 1
    for key in list(cloud.list(naming.CONTAINER_PREFIX)):
        try:
            container_id = int(key[len(naming.CONTAINER_PREFIX):])
        except ValueError:
            continue
        if primary_domain(container_id, domains) == domain:
            if cloud.delete(key):
                killed += 1
    return killed
