"""Criticality-weighted durability tiers and the persisted plan.

Deduplication concentrates risk: a chunk stored once may be the only
copy backing thousands of recipes, so the cost of losing its container
grows with how referenced it is.  The policy turns three observable
criticality signals into a per-container replication factor:

* **refcount** — extent references from live manifests into the
  container (a hot shared container breaks many recipes at once);
* **manifest fan-in** — how many distinct manifests (sessions and, in a
  fleet, clients) reference the container — breadth of the blast
  radius, independent of depth;
* **application class** — containers holding dynamic, user-authored
  content (the hardest data to recreate) rank above re-downloadable
  compressed media.

Tiers: every live container gets at least ``base_replicas`` copies; one
extra copy when any signal crosses its threshold; a further copy when
all three do — capped by ``max_replicas`` and by the number of fault
domains (each copy needs its own domain).

The resulting :class:`ReplicationPlan` (domains + per-container target)
is persisted at ``durability/plan.json`` so scrub can detect
under-replication, repair knows what to rebuild, restore knows where to
fail over, and GC can prune entries with their containers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Set, Tuple

from repro.core import naming
from repro.core.recipe import Manifest
from repro.durability.placement import (default_domains, replica_keys)
from repro.errors import ReproError

__all__ = ["ContainerCriticality", "DurabilityPolicy", "ReplicationPlan",
           "collect_criticality"]


@dataclass
class ContainerCriticality:
    """Liveness-derived criticality signals for one container."""

    container_id: int
    #: Extent references from live manifests (delta bases included).
    refcount: int = 0
    #: Distinct manifest keys referencing the container.
    manifests: Set[str] = field(default_factory=set)
    #: Application categories of the referencing recipes.
    categories: Set[str] = field(default_factory=set)

    @property
    def fan_in(self) -> int:
        """Number of distinct manifests referencing the container."""
        return len(self.manifests)


def collect_criticality(cloud,
                        manifest_keys: Optional[Iterable[str]] = None
                        ) -> Dict[int, ContainerCriticality]:
    """Walk live manifests and aggregate per-container criticality.

    ``manifest_keys`` defaults to every manifest in the store, tenant
    namespaces included (:func:`repro.core.naming.namespaced_keys`) —
    in a fleet, a shared container's criticality is the sum over every
    client that references it.  Unreadable manifests are skipped here;
    scrub, not the durability planner, is the integrity authority.
    """
    if manifest_keys is None:
        manifest_keys = naming.namespaced_keys(cloud,
                                               naming.MANIFEST_PREFIX)
    stats: Dict[int, ContainerCriticality] = {}
    for key in manifest_keys:
        try:
            manifest = Manifest.from_json(cloud.get(key))
        except (ReproError, ValueError, KeyError):
            continue
        for entry in manifest:
            for ref in entry.refs:
                while ref is not None:
                    if ref.in_container:
                        crit = stats.get(ref.container_id)
                        if crit is None:
                            crit = stats[ref.container_id] = \
                                ContainerCriticality(ref.container_id)
                        crit.refcount += 1
                        crit.manifests.add(key)
                        crit.categories.add(entry.category)
                    ref = ref.delta_base
    return stats


@dataclass(frozen=True)
class DurabilityPolicy:
    """Maps container criticality to a target replication factor."""

    #: Copies every live container gets (1 = primary only).
    base_replicas: int = 1
    #: Ceiling on copies per container (further capped by the domain
    #: count at planning time).
    max_replicas: int = 3
    #: Refcount at which a container counts as highly referenced.
    refcount_threshold: int = 8
    #: Distinct-manifest fan-in at which it counts as widely shared.
    fanin_threshold: int = 2
    #: Application categories whose data is considered irreplaceable.
    critical_categories: frozenset = frozenset({"dynamic_uncompressed"})

    def target_replicas(self, crit: ContainerCriticality,
                        domains: Sequence[str]) -> int:
        """Total copies (primary included) ``crit`` should have."""
        signals = sum((
            crit.refcount >= self.refcount_threshold,
            crit.fan_in >= self.fanin_threshold,
            bool(crit.categories & self.critical_categories),
        ))
        target = self.base_replicas
        if signals >= 1:
            target += 1
        if signals == 3:
            target += 1
        return max(1, min(target, self.max_replicas, len(domains)))


class ReplicationPlan:
    """Durable record of the fleet's replication targets.

    Holds the fault-domain list and each replicated container's target
    copy count; replica *keys* are recomputed from deterministic
    placement, so the plan stays small and cannot disagree with it.
    Containers absent from the plan have a target of 1 (primary only).
    """

    FORMAT = 1

    def __init__(self, domains: Sequence[str] = (),
                 targets: Optional[Dict[int, int]] = None) -> None:
        self.domains: Tuple[str, ...] = (tuple(domains)
                                         or default_domains())
        #: container_id -> total copies (>= 2; 1-copy entries are not
        #: recorded).
        self.targets: Dict[int, int] = {
            cid: r for cid, r in (targets or {}).items() if r > 1}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.targets)

    def __contains__(self, container_id: int) -> bool:
        return container_id in self.targets

    def target(self, container_id: int) -> int:
        """Planned total copies for ``container_id`` (1 when unplanned)."""
        return self.targets.get(container_id, 1)

    def replica_keys(self, container_id: int) -> list:
        """Planned replica keys for ``container_id`` (placement order)."""
        return replica_keys(container_id, self.domains,
                            self.target(container_id))

    def prune(self, live_containers) -> int:
        """Drop entries for containers not in ``live_containers``;
        returns how many were removed (GC calls this with its mark
        set so plan entries die with their containers)."""
        dead = [cid for cid in self.targets if cid not in live_containers]
        for cid in dead:
            del self.targets[cid]
        return len(dead)

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialise to a JSON document string."""
        return json.dumps({
            "format": self.FORMAT,
            "domains": list(self.domains),
            "targets": {str(cid): r
                        for cid, r in sorted(self.targets.items())},
        }, separators=(",", ":"))

    @classmethod
    def from_json(cls, text) -> "ReplicationPlan":
        """Inverse of :meth:`to_json`."""
        doc = json.loads(text)
        if doc.get("format") != cls.FORMAT:
            raise ReproError(
                f"unsupported replication plan format "
                f"{doc.get('format')!r}")
        return cls(domains=doc["domains"],
                   targets={int(cid): int(r)
                            for cid, r in doc["targets"].items()})

    def save(self, cloud) -> None:
        """Persist (or, once empty, remove) the plan blob."""
        if self.targets:
            cloud.put(naming.DURABILITY_PLAN_KEY,
                      self.to_json().encode("utf-8"))
        else:
            cloud.delete(naming.DURABILITY_PLAN_KEY)

    @classmethod
    def load(cls, cloud) -> Optional["ReplicationPlan"]:
        """The persisted plan, or ``None`` when the store has none (or
        the blob is unreadable — callers treat that as no plan and a
        fresh replication pass rewrites it)."""
        try:
            blob = cloud.get(naming.DURABILITY_PLAN_KEY)
        except ReproError:
            return None
        try:
            return cls.from_json(blob)
        except (ReproError, ValueError, KeyError):
            return None
