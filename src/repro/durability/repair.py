"""Scrub-driven repair: rebuild every planned copy from any survivor.

Where the replicator *extends* durability (new containers, raised
targets), repair *restores* it after damage.  For every container in
the persisted plan it gathers the surviving copies — the primary plus
each planned replica, each one validated (parse + CRC + id match, so a
corrupt survivor is never propagated) — then:

* **promotes** a replica to primary when the primary is missing or
  corrupt (restore fails over to replicas on its own, but a promoted
  primary ends the degradation instead of papering over it);
* **re-replicates** into every planned replica slot that is missing or
  corrupt, from any good copy;
* reports a container **unrepairable** when no copy survives — data
  loss that replication at the planned factor could not absorb.

The loop is driven by the same invariants scrub checks
(:class:`~repro.core.scrub.ScrubFinding` kinds ``missing_primary`` /
``corrupt_primary`` / ``missing_replica`` / ``corrupt_replica`` /
``under_replicated``), so ``scrub → repair → scrub`` converges to a
clean store whenever one copy of everything survived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core import naming
from repro.durability.policy import ReplicationPlan
from repro.durability.replicate import _read_container
from repro.obs.tracer import NOOP_TRACER

__all__ = ["RepairReport", "repair_cloud"]


@dataclass
class RepairReport:
    """Outcome of one repair pass."""

    containers_checked: int = 0
    #: Replicas promoted back to the primary key.
    primaries_restored: int = 0
    #: Replica slots refilled from a surviving copy.
    replicas_restored: int = 0
    #: Bytes uploaded by promotions + re-replications (repair traffic).
    bytes_copied: int = 0
    #: Containers with no surviving copy (permanent data loss).
    unrepairable: List[str] = field(default_factory=list)

    @property
    def repaired(self) -> int:
        """Total copies rebuilt by this pass."""
        return self.primaries_restored + self.replicas_restored

    @property
    def ok(self) -> bool:
        """True when every planned container has all copies again."""
        return not self.unrepairable


def repair_cloud(cloud, plan: Optional[ReplicationPlan] = None,
                 tracer=None) -> RepairReport:
    """Restore full replication for every container in ``plan``.

    ``plan`` defaults to the plan persisted in the store; with no plan
    there is nothing to repair and the report is empty.  Each rebuilt
    copy is uploaded at its deterministic key, so a subsequent scrub
    finds the store fully replicated.
    """
    tracer = tracer if tracer is not None else NOOP_TRACER
    report = RepairReport()
    if plan is None:
        plan = ReplicationPlan.load(cloud)
    if plan is None:
        return report
    with tracer.span("durability.repair", containers=len(plan)):
        for container_id in sorted(plan.targets):
            report.containers_checked += 1
            primary_key = naming.container_key(container_id)
            good = _read_container(cloud, primary_key, container_id)
            bad_slots = []
            if good is None:
                bad_slots.append(primary_key)
            survivor = good
            for key in plan.replica_keys(container_id):
                blob = _read_container(cloud, key, container_id)
                if blob is None:
                    bad_slots.append(key)
                elif survivor is None:
                    survivor = blob
            if survivor is None:
                report.unrepairable.append(
                    f"container {container_id}: no surviving copy in "
                    f"any fault domain")
                continue
            for key in bad_slots:
                cloud.put(key, survivor)
                report.bytes_copied += len(survivor)
                if key == primary_key:
                    report.primaries_restored += 1
                else:
                    report.replicas_restored += 1
        if tracer.enabled:
            tracer.metrics.counter("repair_promotions_total").inc(
                report.primaries_restored)
            tracer.metrics.counter("repair_copies_total").inc(
                report.repaired)
            tracer.metrics.counter("repair_bytes_total").inc(
                report.bytes_copied)
    return report
