"""Durability tiering: balance replication against deduplication.

Deduplication stores each chunk exactly once, which is precisely what
makes it fragile: one lost container can break every recipe that
references it, across thousands of sessions and — in a fleet — across
clients.  This package spends a controlled amount of the storage that
dedup saved to buy that risk back down:

* :mod:`~repro.durability.policy` — criticality signals (refcount over
  live manifests, manifest fan-in, application class) → per-container
  replication factor, persisted as a :class:`ReplicationPlan`;
* :mod:`~repro.durability.placement` — deterministic assignment of
  copies to named fault domains (``replicas/<domain>/containers/<id>``),
  plus the :func:`kill_domain` chaos failure model;
* :mod:`~repro.durability.replicate` — idempotent pass that uploads
  missing copies and writes the plan;
* :mod:`~repro.durability.repair` — scrub-driven loop that promotes a
  surviving replica when the primary is lost and re-replicates every
  damaged slot.

Scrub surfaces durability degradations as structured findings
(:class:`repro.core.scrub.ScrubFinding`), restore fails over to replica
copies (:class:`repro.core.restore.RestoreClient`), and GC sweeps
replicas with their primaries (:func:`repro.core.gc.collect_garbage`).
See ``docs/DURABILITY.md``.
"""

from repro.durability.placement import (
    DEFAULT_DOMAIN_COUNT,
    default_domains,
    kill_domain,
    primary_domain,
    replica_domains,
    replica_keys,
)
from repro.durability.policy import (
    ContainerCriticality,
    DurabilityPolicy,
    ReplicationPlan,
    collect_criticality,
)
from repro.durability.repair import RepairReport, repair_cloud
from repro.durability.replicate import ReplicationReport, replicate_cloud

__all__ = [
    "DEFAULT_DOMAIN_COUNT",
    "default_domains",
    "kill_domain",
    "primary_domain",
    "replica_domains",
    "replica_keys",
    "ContainerCriticality",
    "DurabilityPolicy",
    "ReplicationPlan",
    "collect_criticality",
    "RepairReport",
    "repair_cloud",
    "ReplicationReport",
    "replicate_cloud",
]
