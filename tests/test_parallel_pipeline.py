"""Tests for parallel per-application dedup and the pipeline simulator."""

import pytest

from repro.cloud import InMemoryBackend, SimulatedCloud
from repro.core import (
    BackupClient,
    RestoreClient,
    aa_dedupe_config,
)
from repro.core import naming
from repro.simulate.clock import VirtualClock
from repro.errors import ConfigError
from repro.simulate.pipeline import backup_window, simulate_two_stage_pipeline
from repro.util.units import KIB, MB
from repro.workloads import (
    WorkloadGenerator,
    materialize_snapshot,
    snapshot_to_memory_source,
)


@pytest.fixture(scope="module")
def snapshot():
    generator = WorkloadGenerator(total_bytes=14 * MB, seed=19,
                                  max_mean_file_size=1 * MB)
    return generator.initial_snapshot()


class TestParallelDedup:
    def test_equivalent_to_serial(self, snapshot):
        serial_cloud = InMemoryBackend()
        serial = BackupClient(
            serial_cloud, aa_dedupe_config(container_size=64 * KIB))
        s_stats = serial.backup(snapshot_to_memory_source(snapshot))

        parallel_cloud = InMemoryBackend()
        parallel = BackupClient(
            parallel_cloud, aa_dedupe_config(container_size=64 * KIB,
                                             parallel_workers=4))
        p_stats = parallel.backup(snapshot_to_memory_source(snapshot))

        # Identical dedup outcome (order-independent quantities).
        assert p_stats.bytes_scanned == s_stats.bytes_scanned
        assert p_stats.bytes_unique == s_stats.bytes_unique
        assert p_stats.files_total == s_stats.files_total
        assert p_stats.files_tiny == s_stats.files_tiny
        assert p_stats.app_scanned == s_stats.app_scanned
        assert p_stats.app_unique == s_stats.app_unique
        assert parallel.index.sizes() == serial.index.sizes()

    @pytest.mark.parametrize("workers", [2, 4, 7])
    def test_manifest_bytes_identical_to_serial(self, snapshot, workers):
        # Regression: parallel placement used to interleave container-id
        # and offset allocation across worker threads, so the refs in
        # the manifest — and hence its bytes — differed from a serial
        # run of the same source.  Placement is now serial in source
        # order; a virtual clock removes the only other source of
        # nondeterminism (the created-at stamp).
        def manifest_bytes(n_workers):
            cloud = SimulatedCloud(InMemoryBackend(), clock=VirtualClock())
            client = BackupClient(cloud, aa_dedupe_config(
                container_size=64 * KIB, parallel_workers=n_workers))
            client.backup(snapshot_to_memory_source(snapshot))
            client.close()
            return cloud.get(naming.manifest_key(0))

        assert manifest_bytes(workers) == manifest_bytes(1)

    def test_parallel_restores_bit_exact(self, snapshot):
        cloud = InMemoryBackend()
        client = BackupClient(cloud, aa_dedupe_config(
            container_size=64 * KIB, parallel_workers=3))
        client.backup(snapshot_to_memory_source(snapshot))
        restored, _ = RestoreClient(cloud).restore_to_memory(0)
        assert restored == materialize_snapshot(snapshot)

    def test_parallel_multi_session(self, snapshot):
        gen = WorkloadGenerator(total_bytes=14 * MB, seed=19,
                                max_mean_file_size=1 * MB)
        snaps = list(gen.sessions(2))
        cloud = InMemoryBackend()
        client = BackupClient(cloud, aa_dedupe_config(
            container_size=64 * KIB, parallel_workers=4))
        client.backup(snapshot_to_memory_source(snaps[0]))
        s2 = client.backup(snapshot_to_memory_source(snaps[1]))
        assert s2.dedup_ratio > 3
        restored, _ = RestoreClient(cloud).restore_to_memory(1)
        assert restored == materialize_snapshot(snaps[1])

    def test_parallel_with_pipelined_uploads(self, snapshot):
        cloud = InMemoryBackend()
        client = BackupClient(cloud, aa_dedupe_config(
            container_size=64 * KIB, parallel_workers=3,
            pipeline_uploads=True))
        client.backup(snapshot_to_memory_source(snapshot))
        restored, _ = RestoreClient(cloud).restore_to_memory(0)
        assert restored == materialize_snapshot(snapshot)

    def test_config_guards(self):
        with pytest.raises(ConfigError):
            aa_dedupe_config(parallel_workers=0)
        with pytest.raises(ConfigError):
            aa_dedupe_config(parallel_workers=2, index_layout="global")
        from repro.baselines import jungle_disk_config, sam_config
        with pytest.raises(ConfigError):
            jungle_disk_config(parallel_workers=2)
        with pytest.raises(ConfigError):
            sam_config(parallel_workers=2, file_level_first=True,
                       index_layout="app")


class TestPipelineSimulator:
    def test_empty(self):
        assert simulate_two_stage_pipeline([], []) == 0.0

    def test_single_item_is_sum(self):
        assert simulate_two_stage_pipeline([3.0], [4.0]) == 7.0

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            simulate_two_stage_pipeline([1.0], [])

    def test_bounds(self):
        s1 = [1.0, 2.0, 0.5, 3.0, 1.5]
        s2 = [2.0, 1.0, 2.5, 0.5, 2.0]
        makespan = simulate_two_stage_pipeline(s1, s2)
        lower = max(sum(s1), sum(s2))
        assert lower <= makespan <= sum(s1) + sum(s2)

    def test_converges_to_paper_formula(self):
        # Many small items: the DES makespan approaches
        # max(dedup_total, transfer_total) — the paper's BWS.
        n = 500
        s1 = [0.01] * n      # dedup per container
        s2 = [0.03] * n      # upload per container (transfer-bound)
        makespan = simulate_two_stage_pipeline(s1, s2)
        closed_form = backup_window(sum(s1), sum(s2), pipelined=True)
        assert makespan == pytest.approx(closed_form, rel=0.01)

    def test_dedup_bound_case(self):
        n = 300
        makespan = simulate_two_stage_pipeline([0.05] * n, [0.01] * n)
        assert makespan == pytest.approx(
            backup_window(0.05 * n, 0.01 * n), rel=0.01)

    def test_queue_depth_backpressure(self):
        # A slow stage 2 with a tiny queue throttles stage 1.
        s1 = [0.0] * 50
        s2 = [1.0] * 50
        deep = simulate_two_stage_pipeline(s1, s2, queue_depth=50)
        shallow = simulate_two_stage_pipeline(s1, s2, queue_depth=1)
        assert shallow >= deep
