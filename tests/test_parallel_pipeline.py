"""Tests for parallel per-application dedup and the pipeline simulator."""

import os
import random
import time

import pytest

from repro.cloud import InMemoryBackend, SimulatedCloud
from repro.core import (
    BackupClient,
    RestoreClient,
    aa_dedupe_config,
)
from repro.core import naming
from repro.core.backup import _PipelinedUploader
from repro.core.pipeline import PipelineAborted, StagePipeline, WorkItem
from repro.core.source import SourceFile
from repro.simulate.clock import VirtualClock
from repro.errors import BackupError, ConfigError
from repro.simulate.pipeline import backup_window, simulate_two_stage_pipeline
from repro.util.units import KIB, MB
from repro.workloads import (
    WorkloadGenerator,
    materialize_snapshot,
    snapshot_to_memory_source,
)


@pytest.fixture(scope="module")
def snapshot():
    generator = WorkloadGenerator(total_bytes=14 * MB, seed=19,
                                  max_mean_file_size=1 * MB)
    return generator.initial_snapshot()


class TestParallelDedup:
    def test_equivalent_to_serial(self, snapshot):
        serial_cloud = InMemoryBackend()
        serial = BackupClient(
            serial_cloud, aa_dedupe_config(container_size=64 * KIB))
        s_stats = serial.backup(snapshot_to_memory_source(snapshot))

        parallel_cloud = InMemoryBackend()
        parallel = BackupClient(
            parallel_cloud, aa_dedupe_config(container_size=64 * KIB,
                                             parallel_workers=4))
        p_stats = parallel.backup(snapshot_to_memory_source(snapshot))

        # Identical dedup outcome (order-independent quantities).
        assert p_stats.bytes_scanned == s_stats.bytes_scanned
        assert p_stats.bytes_unique == s_stats.bytes_unique
        assert p_stats.files_total == s_stats.files_total
        assert p_stats.files_tiny == s_stats.files_tiny
        assert p_stats.app_scanned == s_stats.app_scanned
        assert p_stats.app_unique == s_stats.app_unique
        assert parallel.index.sizes() == serial.index.sizes()

    @pytest.mark.parametrize("arm", ["plain", "statcache", "delta"])
    @pytest.mark.parametrize("workers", [2, 7])
    def test_manifest_bytes_identical_to_serial(self, snapshot, workers,
                                                arm):
        # Regression: parallel placement used to interleave container-id
        # and offset allocation across worker threads, so the refs in
        # the manifest — and hence its bytes — differed from a serial
        # run of the same source.  Placement is now serial in source
        # order; a virtual clock removes the only other source of
        # nondeterminism (the created-at stamp).  The "statcache" arm
        # re-backs-up the same snapshot so session 1 exercises the
        # recipe-replay path inside the staged pipeline; the "delta"
        # arm adds similarity + delta compression in the commit stage.
        def manifest_bytes(n_workers):
            kwargs = dict(container_size=64 * KIB,
                          parallel_workers=n_workers)
            if arm == "statcache":
                kwargs["stat_cache"] = True
            elif arm == "delta":
                kwargs["delta_compress"] = True
            cloud = SimulatedCloud(InMemoryBackend(), clock=VirtualClock())
            client = BackupClient(cloud, aa_dedupe_config(**kwargs))
            client.backup(snapshot_to_memory_source(snapshot))
            if arm == "statcache":
                client.backup(snapshot_to_memory_source(snapshot))
            client.close()
            session = 1 if arm == "statcache" else 0
            return cloud.get(naming.manifest_key(session))

        assert manifest_bytes(workers) == manifest_bytes(1)

    def test_parallel_restores_bit_exact(self, snapshot):
        cloud = InMemoryBackend()
        client = BackupClient(cloud, aa_dedupe_config(
            container_size=64 * KIB, parallel_workers=3))
        client.backup(snapshot_to_memory_source(snapshot))
        restored, _ = RestoreClient(cloud).restore_to_memory(0)
        assert restored == materialize_snapshot(snapshot)

    def test_parallel_multi_session(self, snapshot):
        gen = WorkloadGenerator(total_bytes=14 * MB, seed=19,
                                max_mean_file_size=1 * MB)
        snaps = list(gen.sessions(2))
        cloud = InMemoryBackend()
        client = BackupClient(cloud, aa_dedupe_config(
            container_size=64 * KIB, parallel_workers=4))
        client.backup(snapshot_to_memory_source(snaps[0]))
        s2 = client.backup(snapshot_to_memory_source(snaps[1]))
        assert s2.dedup_ratio > 3
        restored, _ = RestoreClient(cloud).restore_to_memory(1)
        assert restored == materialize_snapshot(snaps[1])

    def test_parallel_with_pipelined_uploads(self, snapshot):
        cloud = InMemoryBackend()
        client = BackupClient(cloud, aa_dedupe_config(
            container_size=64 * KIB, parallel_workers=3,
            pipeline_uploads=True))
        client.backup(snapshot_to_memory_source(snapshot))
        restored, _ = RestoreClient(cloud).restore_to_memory(0)
        assert restored == materialize_snapshot(snapshot)

    def test_config_guards(self):
        with pytest.raises(ConfigError):
            aa_dedupe_config(parallel_workers=0)
        with pytest.raises(ConfigError):
            aa_dedupe_config(parallel_workers=2, index_layout="global")
        from repro.baselines import jungle_disk_config, sam_config
        with pytest.raises(ConfigError):
            jungle_disk_config(parallel_workers=2)
        with pytest.raises(ConfigError):
            sam_config(parallel_workers=2, file_level_first=True,
                       index_layout="app")


class TestPipelineBugfixes:
    """Regression tests for the parallel-path bugs fixed by the staged
    pipeline refactor (see docs/PIPELINE.md)."""

    def test_prepare_stage_warnings_surface(self):
        # Bugfix 1: the old parallel drain merged only `local.ops`, so
        # a warning recorded on the prepare side (here: file size
        # changing between stat and read) vanished from session stats.
        payload = os.urandom(32 * KIB)
        files = [
            SourceFile(path="docs/report.doc", size=64 * KIB,
                       mtime_ns=0, reader=lambda: payload),
            SourceFile(path="docs/other.doc", size=32 * KIB,
                       mtime_ns=0, reader=lambda: payload),
        ]
        client = BackupClient(InMemoryBackend(), aa_dedupe_config(
            container_size=64 * KIB, parallel_workers=3))
        stats = client.backup(files)
        client.close()
        assert any("size changed during read" in w
                   for w in stats.warnings), stats.warnings

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning")
    def test_uploader_poison_item_raises_instead_of_hanging(self):
        # Bugfix 2: drain()/close() used queue.join(); a worker thread
        # killed by a malformed queue item never called task_done(), so
        # the session hung forever.  The outstanding-counter + liveness
        # guard turns that into a prompt BackupError.
        uploader = _PipelinedUploader(lambda key, blob: None, depth=4)
        uploader._queue.put(object())  # poison: kills the worker thread
        start = time.monotonic()
        with pytest.raises(BackupError):
            # Real work behind the poison is stranded: either submit
            # notices the dead worker or close() reports the stranded
            # item — both must raise rather than hang.
            uploader.submit("containers/c-000000", b"payload")
            uploader.close()
        assert time.monotonic() - start < 8.0

    def test_uploader_error_drops_queued_work(self):
        # Fail-fast: after the first failed upload nothing else is
        # uploaded and the error resurfaces on close().
        seen = []

        def put(key, blob):
            if key == "bad":
                raise IOError("backend exploded")
            seen.append(key)

        uploader = _PipelinedUploader(put, depth=8)
        uploader.submit("ok-1", b"x")
        uploader.submit("bad", b"x")
        deadline = time.monotonic() + 5.0
        with pytest.raises(BackupError):
            while time.monotonic() < deadline:
                uploader.submit("late", b"x")
                time.sleep(0.01)
            uploader.close()
        assert "late" not in seen

    def test_placement_error_aborts_stages_promptly(self, monkeypatch):
        # Bugfix 3: a placement (commit) error used to let the stage
        # pool grind through the entire submission window before the
        # session failed.  shutdown(abort=True) now drops queued items,
        # so only the in-flight window gets chunked.
        rng = random.Random(7)
        n_files = 60
        files = [
            SourceFile(path=f"docs/file-{i:03d}.doc", size=16 * KIB,
                       mtime_ns=0,
                       reader=lambda seed=rng.getrandbits(64):
                       random.Random(seed).randbytes(16 * KIB))
            for i in range(n_files)
        ]

        chunk_calls = []
        orig_chunk = BackupClient._chunk_file

        def slow_chunk(self, sf, app, data, stats):
            chunk_calls.append(sf.path)
            time.sleep(0.02)
            return orig_chunk(self, sf, app, data, stats)

        def bad_place(self, prep, stats):
            raise RuntimeError("placement exploded")

        monkeypatch.setattr(BackupClient, "_chunk_file", slow_chunk)
        monkeypatch.setattr(BackupClient, "_place_prepared", bad_place)
        config = aa_dedupe_config(container_size=64 * KIB,
                                  parallel_workers=4)
        client = BackupClient(InMemoryBackend(), config)
        with pytest.raises(RuntimeError, match="placement exploded"):
            client.backup(files)
        # At most one submission window of files can ever enter the
        # stages before the first commit fails; the abort must drop the
        # still-queued part of that window, so strictly fewer than
        # `window` files get chunked (the old engine ground through all
        # of them — and without the window, through every file).
        window = max(4, 2 * sum(config.stage_workers().values()))
        assert window < n_files
        assert len(chunk_calls) < window, (
            f"{len(chunk_calls)} of {n_files} files chunked after abort "
            f"(window {window})")


class TestStagePipeline:
    """Unit tests for the bounded-queue stage machinery itself."""

    @staticmethod
    def _item(seq):
        return WorkItem(seq, None, None, local=None)

    def test_items_flow_through_stages(self):
        order = []

        def double(item):
            item.data = item.seq * 2

        def stash(item):
            order.append(item.seq)

        pipeline = StagePipeline([
            ("double", double, 2, 4),
            ("stash", stash, 1, 4),
        ])
        items = [self._item(i) for i in range(10)]
        for item in items:
            pipeline.submit(item)
        for item in items:
            pipeline.wait(item)
        pipeline.shutdown()
        assert [item.data for item in items] == [i * 2 for i in range(10)]
        assert sorted(order) == list(range(10))
        assert pipeline.items_processed() == {"double": 10, "stash": 10}
        assert set(pipeline.busy_seconds()) == {"double", "stash"}

    def test_stage_error_fails_only_its_item(self):
        def maybe_boom(item):
            if item.seq == 1:
                raise ValueError("bad item")

        pipeline = StagePipeline([("work", maybe_boom, 2, 4)])
        items = [self._item(i) for i in range(3)]
        for item in items:
            pipeline.submit(item)
        pipeline.wait(items[0])
        pipeline.wait(items[2])
        with pytest.raises(ValueError, match="bad item"):
            pipeline.wait(items[1])
        pipeline.shutdown()

    def test_abort_drops_queued_items(self):
        release = time.monotonic() + 0.2

        def slow(item):
            while time.monotonic() < release:
                time.sleep(0.01)

        pipeline = StagePipeline([("slow", slow, 1, 32)])
        items = [self._item(i) for i in range(8)]
        for item in items:
            pipeline.submit(item)
        pipeline.shutdown(abort=True)
        failed = [item for item in items
                  if isinstance(item.error, PipelineAborted)]
        assert failed, "abort should drop still-queued items"
        with pytest.raises(PipelineAborted):
            pipeline.wait(failed[0])

    def test_submit_after_abort_rejected(self):
        pipeline = StagePipeline([("noop", lambda item: None, 1, 4)])
        pipeline.shutdown(abort=True)
        with pytest.raises(PipelineAborted):
            pipeline.submit(self._item(0))

    def test_replay_items_start_done(self):
        item = WorkItem(0, None, None, replay=True)
        assert item.wait(0.0)

    def test_needs_at_least_one_stage(self):
        with pytest.raises(BackupError):
            StagePipeline([])


class TestPipelineSimulator:
    def test_empty(self):
        assert simulate_two_stage_pipeline([], []) == 0.0

    def test_single_item_is_sum(self):
        assert simulate_two_stage_pipeline([3.0], [4.0]) == 7.0

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            simulate_two_stage_pipeline([1.0], [])

    def test_bounds(self):
        s1 = [1.0, 2.0, 0.5, 3.0, 1.5]
        s2 = [2.0, 1.0, 2.5, 0.5, 2.0]
        makespan = simulate_two_stage_pipeline(s1, s2)
        lower = max(sum(s1), sum(s2))
        assert lower <= makespan <= sum(s1) + sum(s2)

    def test_converges_to_paper_formula(self):
        # Many small items: the DES makespan approaches
        # max(dedup_total, transfer_total) — the paper's BWS.
        n = 500
        s1 = [0.01] * n      # dedup per container
        s2 = [0.03] * n      # upload per container (transfer-bound)
        makespan = simulate_two_stage_pipeline(s1, s2)
        closed_form = backup_window(sum(s1), sum(s2), pipelined=True)
        assert makespan == pytest.approx(closed_form, rel=0.01)

    def test_dedup_bound_case(self):
        n = 300
        makespan = simulate_two_stage_pipeline([0.05] * n, [0.01] * n)
        assert makespan == pytest.approx(
            backup_window(0.05 * n, 0.01 * n), rel=0.01)

    def test_queue_depth_backpressure(self):
        # A slow stage 2 with a tiny queue throttles stage 1.
        s1 = [0.0] * 50
        s2 = [1.0] * 50
        deep = simulate_two_stage_pipeline(s1, s2, queue_depth=50)
        shallow = simulate_two_stage_pipeline(s1, s2, queue_depth=1)
        assert shallow >= deep
