"""Property and unit tests for the HPDedup-style locality cache.

The cache's contract has three load-bearing pieces the fleet
directory relies on:

* **eviction order respects locality scores** — when space runs out,
  the victim comes from the stream with the lowest effective locality
  (EWMA of hit run lengths, or the live run if higher);
* **hit accounting sums across levels** — a lookup is served by
  exactly one level, so cache hits + backing lookups = total lookups
  and the merged ``IndexStats`` invariants hold;
* **correctness is cache-independent** — whatever the probe order or
  capacity, every lookup returns exactly what the backing index holds
  (the cache can change *cost*, never *answers*).
"""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import IndexEntry, LocalityCache, MemoryIndex
from repro.index.locality import DEFAULT_STREAM


def fp(i: int) -> bytes:
    return hashlib.sha1(str(i).encode()).digest()


def entry(i: int) -> IndexEntry:
    return IndexEntry(fingerprint=fp(i), container_id=i, offset=0,
                      length=64, refcount=1)


def make(capacity=4, alpha=0.25, preload=()):
    backing = MemoryIndex()
    for i in preload:
        backing.insert(entry(i))
    return LocalityCache(backing, capacity=capacity, alpha=alpha)


class TestLocalityCacheBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            make(capacity=0)
        with pytest.raises(ValueError):
            LocalityCache(MemoryIndex(), capacity=4, alpha=0.0)
        with pytest.raises(ValueError):
            LocalityCache(MemoryIndex(), capacity=4, alpha=1.5)

    def test_miss_falls_through_and_caches(self):
        c = make(preload=[1])
        assert c.lookup(fp(1)) == entry(1)
        assert (c.cache_hits, c.cache_misses) == (0, 1)
        assert c.lookup(fp(1)) == entry(1)
        assert (c.cache_hits, c.cache_misses) == (1, 1)
        assert c.backing.stats.lookups == 1  # repeat never hit the backing

    def test_negative_lookups_not_cached(self):
        c = make()
        assert c.lookup(fp(9)) is None
        assert c.lookup(fp(9)) is None
        assert c.backing.stats.lookups == 2

    def test_default_stream_before_begin_stream(self):
        c = make(preload=[1])
        c.lookup(fp(1))
        assert DEFAULT_STREAM in c.locality_scores()

    def test_write_through(self):
        c = make()
        c.insert(entry(5))
        assert c.backing.lookup(fp(5)) == entry(5)
        assert len(c) == 1

    def test_hit_ratio(self):
        c = make(preload=[1])
        assert c.hit_ratio == 0.0
        c.lookup(fp(1))
        c.lookup(fp(1))
        assert c.hit_ratio == 0.5


class TestEvictionOrder:
    def test_low_locality_stream_evicted_first(self):
        # "hot" replays a two-fingerprint working set (long hit runs);
        # "cold" scans fingerprints it never revisits (runs of zero).
        c = make(capacity=4, preload=range(20))
        c.begin_stream("hot")
        for _ in range(6):
            c.lookup(fp(0))
            c.lookup(fp(1))
        c.begin_stream("cold")
        for i in range(2, 12):
            c.lookup(fp(i))
        scores = c.locality_scores()
        assert scores["hot"] > scores["cold"]
        # The cold scan churned through the cache without ever evicting
        # the hot stream's working set.
        c.begin_stream("hot")
        before = c.backing.stats.lookups
        assert c.lookup(fp(0)) == entry(0)
        assert c.lookup(fp(1)) == entry(1)
        assert c.backing.stats.lookups == before

    def test_eviction_within_stream_is_oldest_first(self):
        c = make(capacity=2, preload=range(10))
        c.begin_stream("s")
        c.lookup(fp(0))
        c.lookup(fp(1))
        c.lookup(fp(2))  # capacity 2: evicts fp(0), the oldest
        assert fp(0) not in c._entries
        assert fp(1) in c._entries and fp(2) in c._entries
        assert c.evictions == 1

    def test_touch_reassigns_ownership(self):
        c = make(capacity=4, preload=range(4))
        c.begin_stream("a")
        c.lookup(fp(0))
        c.begin_stream("b")
        c.lookup(fp(0))  # b touches a's entry: ownership moves
        assert c._owner[fp(0)] == "b"
        assert fp(0) not in c._lru["a"]

    def test_mid_burst_stream_protected_by_live_run(self):
        # A stream with no history but a hit run in progress must not
        # be the eviction victim over a stream with zero locality.
        c = make(capacity=3, preload=range(10))
        c.begin_stream("burst")
        c.lookup(fp(0))
        c.lookup(fp(0))
        c.lookup(fp(0))  # live run = 2 (score 2.0, EWMA still 0)
        c.begin_stream("cold")
        c.lookup(fp(1))
        c.lookup(fp(2))
        c.lookup(fp(3))  # forces evictions
        assert fp(0) in c._entries  # burst survived


FPS = st.integers(0, 15)
STREAMS = st.sampled_from(["a", "b", "c"])
OPS = st.lists(st.tuples(STREAMS, FPS), max_size=120)


class TestLocalityCacheProperties:
    @given(OPS, st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_answers_match_backing(self, ops, capacity):
        """The cache changes cost, never answers."""
        backing = MemoryIndex()
        for i in range(0, 16, 2):  # even fingerprints exist
            backing.insert(entry(i))
        c = LocalityCache(backing, capacity=capacity)
        for stream, i in ops:
            c.begin_stream(stream)
            expected = entry(i) if i % 2 == 0 else None
            assert c.lookup(fp(i)) == expected

    @given(OPS, st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_hit_accounting_sums_across_levels(self, ops, capacity):
        c = make(capacity=capacity, preload=range(0, 16, 2))
        for stream, i in ops:
            c.begin_stream(stream)
            c.lookup(fp(i))
        # Every lookup is served by exactly one level.
        assert c.cache_hits + c.cache_misses == len(ops)
        assert c.backing.stats.lookups == c.cache_misses
        total_hits = sum(1 for _s, i in ops if i % 2 == 0)
        assert c.cache_hits + c.backing.stats.hits == total_hits
        s = c.stats
        assert s.memory_hits == c.cache_hits
        assert s.memory_hits <= s.hits <= s.lookups
        assert s.hits == total_hits

    @given(OPS, st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_capacity_never_exceeded_and_structures_agree(self, ops,
                                                          capacity):
        c = make(capacity=capacity, preload=range(0, 16, 2))
        for stream, i in ops:
            c.begin_stream(stream)
            c.lookup(fp(i))
        assert len(c._entries) <= capacity
        assert set(c._entries) == set(c._owner)
        per_stream = [fprint for lru in c._lru.values() for fprint in lru]
        assert sorted(per_stream) == sorted(c._entries)
        for stream, lru in c._lru.items():
            assert all(c._owner[fprint] == stream for fprint in lru)

    @given(OPS)
    @settings(max_examples=40, deadline=None)
    def test_eviction_victim_has_minimal_score(self, ops):
        """Whenever an eviction fires, the victim's stream score is the
        minimum over all streams that still hold cached entries."""
        c = make(capacity=2, preload=range(0, 16, 2))
        original = c._evict_one

        def checked():
            populated = {s: c._score(s)
                         for s, lru in c._lru.items() if lru}
            victim = min(populated, key=lambda s: (populated[s], s))
            before = set(c._lru[victim])
            original()
            evicted = before - set(c._lru[victim])
            assert len(evicted) == 1
            assert c._owner.get(next(iter(evicted))) is None

        c._evict_one = checked
        for stream, i in ops:
            c.begin_stream(stream)
            c.lookup(fp(i))
