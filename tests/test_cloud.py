"""Tests for cloud backends, WAN model, pricing, and the simulated cloud."""

import pytest

from repro.cloud import (
    InMemoryBackend,
    LocalDirectoryBackend,
    PriceBook,
    S3_APRIL_2011,
    SimulatedCloud,
    WANLink,
)
from repro.errors import CloudError, ObjectNotFound
from repro.util.units import GB, KB, KIB, MB, MIB


class BackendContract:
    """Behavioural contract every backend must satisfy."""

    def make(self, tmp_path):
        raise NotImplementedError

    def test_put_get(self, tmp_path):
        be = self.make(tmp_path)
        be.put("a/b/key1", b"value-1")
        assert be.get("a/b/key1") == b"value-1"

    def test_get_missing_raises(self, tmp_path):
        with pytest.raises(ObjectNotFound):
            self.make(tmp_path).get("ghost")

    def test_overwrite(self, tmp_path):
        be = self.make(tmp_path)
        be.put("k", b"one")
        be.put("k", b"two")
        assert be.get("k") == b"two"

    def test_exists(self, tmp_path):
        be = self.make(tmp_path)
        assert not be.exists("k")
        be.put("k", b"v")
        assert be.exists("k")

    def test_delete(self, tmp_path):
        be = self.make(tmp_path)
        be.put("k", b"v")
        assert be.delete("k")
        assert not be.delete("k")
        assert not be.exists("k")

    def test_list_prefix(self, tmp_path):
        be = self.make(tmp_path)
        be.put("containers/0001", b"x")
        be.put("containers/0002", b"y")
        be.put("manifests/s1", b"z")
        assert be.list("containers/") == ["containers/0001",
                                          "containers/0002"]
        assert len(be.list()) == 3

    def test_stats_accounting(self, tmp_path):
        be = self.make(tmp_path)
        be.put("k", b"12345")
        be.get("k")
        assert be.stats.put_requests == 1
        assert be.stats.get_requests == 1
        assert be.stats.bytes_uploaded == 5
        assert be.stats.bytes_downloaded == 5

    def test_stored_bytes(self, tmp_path):
        be = self.make(tmp_path)
        be.put("a", b"123")
        be.put("b", b"4567")
        assert be.stored_bytes() == 7


class TestInMemoryBackend(BackendContract):
    def make(self, tmp_path):
        return InMemoryBackend()

    def test_object_count(self, tmp_path):
        be = self.make(tmp_path)
        be.put("x", b"1")
        assert be.object_count() == 1


class TestLocalDirectoryBackend(BackendContract):
    def make(self, tmp_path):
        return LocalDirectoryBackend(tmp_path / "store")

    def test_key_traversal_rejected(self, tmp_path):
        be = self.make(tmp_path)
        with pytest.raises(CloudError):
            be.put("../escape", b"x")
        with pytest.raises(CloudError):
            be.put("/abs", b"x")
        with pytest.raises(CloudError):
            be.put("", b"x")

    def test_files_really_on_disk(self, tmp_path):
        be = self.make(tmp_path)
        be.put("containers/c1", b"blob")
        assert (tmp_path / "store" / "containers" / "c1").read_bytes() == \
            b"blob"


class TestWANLink:
    def test_paper_defaults(self):
        wan = WANLink()
        assert wan.up_bandwidth == 500 * KB
        assert wan.down_bandwidth == 1 * MB

    def test_upload_time_scales(self):
        wan = WANLink(request_latency=0.1, concurrent_requests=1)
        assert wan.upload_time(500 * KB, 1) == pytest.approx(1.1)
        assert wan.upload_time(500 * KB, 10) == pytest.approx(2.0)

    def test_request_concurrency_amortises_latency(self):
        serial = WANLink(request_latency=0.1, concurrent_requests=1)
        pipelined = WANLink(request_latency=0.1, concurrent_requests=4)
        assert pipelined.upload_time(0, 100) == pytest.approx(
            serial.upload_time(0, 100) / 4)

    def test_download_faster_than_upload(self):
        wan = WANLink()
        assert wan.download_time(MB) < wan.upload_time(MB)

    def test_aggregation_improves_goodput(self):
        # The container-management motivation, quantified.
        wan = WANLink(concurrent_requests=1)
        assert wan.effective_upload_rate(1 * MIB) > \
            3 * wan.effective_upload_rate(10 * KIB)

    def test_zero_size(self):
        assert WANLink().effective_upload_rate(0) == 0.0


class TestPriceBook:
    def test_paper_constants(self):
        assert S3_APRIL_2011.storage_per_gb_month == 0.14
        assert S3_APRIL_2011.upload_per_gb == 0.10
        assert S3_APRIL_2011.per_1000_put_requests == 0.01

    def test_monthly_cost_formula(self):
        # CC = DS/DR (SP + TP) + OC*OP with DS/DR = 10 GB, OC = 5000.
        cost = S3_APRIL_2011.monthly_cost(stored_bytes=10 * GB,
                                          uploaded_bytes=10 * GB,
                                          put_requests=5000)
        assert cost == pytest.approx(10 * 0.14 + 10 * 0.10 + 5 * 0.01)

    def test_components(self):
        pb = PriceBook()
        assert pb.storage_cost(GB, months=2) == pytest.approx(0.28)
        assert pb.transfer_cost(GB / 2) == pytest.approx(0.05)
        assert pb.request_cost(100) == pytest.approx(0.001)


class TestSimulatedCloud:
    def test_timing_accumulates(self):
        cloud = SimulatedCloud(InMemoryBackend(), wan=WANLink(
            request_latency=0.1, concurrent_requests=1))
        cloud.put("k", bytes(500 * KB))
        assert cloud.upload_seconds == pytest.approx(1.1)
        cloud.get("k")
        assert cloud.download_seconds == pytest.approx(0.6)
        assert cloud.transfer_seconds() == pytest.approx(1.7)

    def test_virtual_clock_advances(self):
        class Clock:
            t = 0.0

            def advance(self, dt):
                self.t += dt

        clock = Clock()
        cloud = SimulatedCloud(InMemoryBackend(), clock=clock,
                               wan=WANLink(request_latency=0.5,
                                           concurrent_requests=1))
        cloud.put("k", b"")
        assert clock.t == pytest.approx(0.5)

    def test_bill(self):
        cloud = SimulatedCloud(InMemoryBackend())
        cloud.put("k", bytes(1000))
        bill = cloud.bill()
        expected = S3_APRIL_2011.monthly_cost(1000, 1000, 1)
        assert bill == pytest.approx(expected)

    def test_data_really_stored(self):
        cloud = SimulatedCloud(InMemoryBackend())
        cloud.put("key", b"payload")
        assert cloud.get("key") == b"payload"
        assert cloud.exists("key")
        assert cloud.list() == ["key"]
        assert cloud.delete("key")
