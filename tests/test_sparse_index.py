"""Tests for the Sparse Indexing comparator (repro.index.sparse)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.sparse import SparseIndexDeduper


def stream_of(ids, length=8192):
    return [(int(i), length) for i in ids]


class TestSparseIndexDeduper:
    def test_validation(self):
        with pytest.raises(ValueError):
            SparseIndexDeduper(segment_chunks=0)
        with pytest.raises(ValueError):
            SparseIndexDeduper(max_champions=0)

    def test_no_duplicates_all_unique(self):
        dedup = SparseIndexDeduper(segment_chunks=16, sample_bits=2)
        dedup.push_stream(stream_of(range(1, 101)))
        stats = dedup.finish()
        assert stats.chunks_total == 100
        assert stats.chunks_deduped <= 25  # low-id collisions only
        assert stats.bytes_unique + stats.bytes_deduped == stats.bytes_total

    def test_repeated_stream_mostly_dedups(self):
        rng = np.random.default_rng(1)
        ids = rng.integers(1, 2**60, size=2000)
        dedup = SparseIndexDeduper(segment_chunks=128, sample_bits=4,
                                   max_champions=4)
        dedup.push_stream(stream_of(ids))
        dedup.push_stream(stream_of(ids))  # the second "weekly full"
        stats = dedup.finish()
        # The second pass re-presents identical segments: hook overlap
        # finds the right champions and nearly everything dedups.
        assert stats.chunks_deduped >= 0.9 * len(ids)

    def test_approximate_misses_without_hooks(self):
        # A duplicate region with NO sampled hook cannot be found — the
        # defining limitation vs exact indexing.
        dedup = SparseIndexDeduper(segment_chunks=8, sample_bits=8,
                                   max_champions=2)
        # ids chosen so none is a hook (low 8 bits never zero).
        ids = [(i << 9) | 1 for i in range(1, 17)]
        dedup.push_stream(stream_of(ids))
        dedup.push_stream(stream_of(ids))
        stats = dedup.finish()
        assert stats.chunks_deduped == 0  # exact dedup would find 16

    def test_intra_segment_duplicates_found(self):
        dedup = SparseIndexDeduper(segment_chunks=32)
        dedup.push_stream(stream_of([5, 6, 7, 5, 6, 7]))
        stats = dedup.finish()
        assert stats.chunks_deduped == 3

    def test_ram_is_sampled(self):
        rng = np.random.default_rng(2)
        ids = rng.integers(1, 2**60, size=5000)
        dedup = SparseIndexDeduper(segment_chunks=256, sample_bits=6)
        dedup.push_stream(stream_of(ids))
        dedup.finish()
        # ~1/64 of fingerprints are hooks.
        assert dedup.ram_entries() < len(ids) / 16
        assert dedup.manifest_entries() == dedup.stats.chunks_total

    def test_champion_budget_respected(self):
        rng = np.random.default_rng(3)
        ids = rng.integers(1, 2**60, size=4000)
        dedup = SparseIndexDeduper(segment_chunks=128, max_champions=2)
        for _ in range(3):
            dedup.push_stream(stream_of(ids))
        stats = dedup.finish()
        assert stats.champions_loaded <= 2 * stats.segments_processed

    def test_dedup_ratio_property(self):
        dedup = SparseIndexDeduper(segment_chunks=64)
        dedup.push_stream(stream_of(range(1, 65)))
        dedup.push_stream(stream_of(range(1, 65)))
        stats = dedup.finish()
        assert stats.dedup_ratio == pytest.approx(
            stats.bytes_total / stats.bytes_unique)
        assert stats.dedup_ratio > 1.5

    @given(st.lists(st.integers(1, 2**40), min_size=1, max_size=300),
           st.integers(1, 64))
    @settings(max_examples=30)
    def test_property_conservation(self, ids, segment_chunks):
        dedup = SparseIndexDeduper(segment_chunks=segment_chunks,
                                   sample_bits=3)
        dedup.push_stream(stream_of(ids, length=100))
        stats = dedup.finish()
        assert stats.chunks_total == len(ids)
        assert stats.bytes_unique + stats.bytes_deduped == 100 * len(ids)
        # Never dedups more than exact dedup could.
        max_dupes = len(ids) - len(set(ids))
        assert stats.chunks_deduped <= max_dupes
