"""Tests for the rolling Rabin window and the vectorised batch scan."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ChunkingError
from repro.hashing.rabin import POLY64, RabinFingerprinter
from repro.hashing.rolling import RollingRabin, window_fingerprints, window_tables


class TestRollingRabin:
    def test_partial_window_equals_block_hash(self):
        r = RollingRabin(window=16)
        block = RabinFingerprinter()
        for b in b"hello":
            r.push(b)
        assert r.value == block.hash_int(b"hello")

    def test_full_window_equals_block_hash_of_window(self):
        data = bytes(range(100))
        r = RollingRabin(window=48)
        for b in data:
            r.push(b)
        assert r.value == RabinFingerprinter().hash_int(data[-48:])

    def test_of_classmethod(self):
        data = b"the quick brown fox jumps over the lazy dog" * 3
        assert RollingRabin.of(data, window=48) == RabinFingerprinter(
        ).hash_int(data[-48:])

    def test_reset(self):
        r = RollingRabin(window=4)
        for b in b"abcd":
            r.push(b)
        r.reset()
        assert r.value == 0
        r.push(ord("x"))
        assert r.value == RabinFingerprinter().hash_int(b"x")

    def test_window_must_be_positive(self):
        with pytest.raises(ChunkingError):
            RollingRabin(window=0)

    @given(st.binary(min_size=48, max_size=300))
    @settings(max_examples=40)
    def test_rolling_is_position_independent(self, data):
        # The fingerprint depends only on the last `window` bytes.
        window = 48
        tail = data[-window:]
        direct = RollingRabin(window=window)
        for b in tail:
            direct.push(b)
        streamed = RollingRabin(window=window)
        for b in data:
            streamed.push(b)
        assert streamed.value == direct.value


class TestWindowFingerprints:
    def test_matches_rolling_oracle(self, random_bytes):
        data = random_bytes[:4096]
        window = 48
        batch = window_fingerprints(data, window=window)
        roller = RollingRabin(window=window)
        stream = [roller.push(b) for b in data]
        for i in range(len(batch)):
            assert int(batch[i]) == stream[i + window - 1]

    def test_short_input_empty(self):
        assert window_fingerprints(b"abc", window=48).shape == (0,)

    def test_exact_window_length(self):
        data = bytes(range(48))
        out = window_fingerprints(data, window=48)
        assert out.shape == (1,)
        assert int(out[0]) == RabinFingerprinter().hash_int(data)

    def test_accepts_numpy_input(self, random_bytes):
        arr = np.frombuffer(random_bytes[:1000], dtype=np.uint8)
        a = window_fingerprints(arr, window=16)
        b = window_fingerprints(random_bytes[:1000], window=16)
        assert np.array_equal(a, b)

    @given(st.binary(min_size=8, max_size=200),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=40)
    def test_property_matches_rolling(self, data, window):
        batch = window_fingerprints(data, window=window)
        roller = RollingRabin(window=window)
        stream = [roller.push(b) for b in data]
        assert len(batch) == max(0, len(data) - window + 1)
        for i in range(len(batch)):
            assert int(batch[i]) == stream[i + window - 1]

    def test_tables_shape(self):
        tables = window_tables(window=4, poly=POLY64)
        assert tables.shape == (4, 256)
        assert tables.dtype == np.uint64
        # Last position contributes the raw byte value.
        assert int(tables[3, 200]) == 200
