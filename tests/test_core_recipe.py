"""Tests for recipes/manifests and cloud key naming."""

import pytest

from repro.core import naming
from repro.core.recipe import ChunkRef, FileEntry, Manifest
from repro.errors import RestoreError


def cref(i: int, container: bool = True) -> ChunkRef:
    fp = bytes([i]) * 20
    if container:
        return ChunkRef(fingerprint=fp, length=100 + i, container_id=i,
                        offset=i * 10)
    return ChunkRef(fingerprint=fp, length=100 + i,
                    object_key=f"chunks/{fp.hex()}")


class TestChunkRef:
    def test_container_ref_roundtrip(self):
        ref = cref(3)
        assert ChunkRef.from_json(ref.to_json()) == ref
        assert ref.in_container

    def test_object_ref_roundtrip(self):
        ref = cref(4, container=False)
        assert ChunkRef.from_json(ref.to_json()) == ref
        assert not ref.in_container

    def test_must_have_exactly_one_locator(self):
        with pytest.raises(RestoreError):
            ChunkRef(fingerprint=b"x" * 20, length=10)
        with pytest.raises(RestoreError):
            ChunkRef(fingerprint=b"x" * 20, length=10, container_id=1,
                     object_key="k")


class TestManifest:
    def make(self) -> Manifest:
        m = Manifest(session_id=7, scheme="AA-Dedupe", created=123.5)
        m.add(FileEntry(path="a/b.doc", size=200, mtime_ns=1, app="doc",
                        category="dynamic_uncompressed",
                        refs=[cref(1), cref(2, container=False)]))
        m.add(FileEntry(path="t.txt", size=5, mtime_ns=2, app="txt",
                        category="dynamic_uncompressed", refs=[cref(3)],
                        tiny=True))
        return m

    def test_json_roundtrip(self):
        m = self.make()
        clone = Manifest.from_json(m.to_json())
        assert clone.session_id == 7 and clone.scheme == "AA-Dedupe"
        assert len(clone) == 2
        entry = clone.get("a/b.doc")
        assert entry.refs == m.get("a/b.doc").refs
        assert clone.get("t.txt").tiny

    def test_duplicate_path_rejected(self):
        m = self.make()
        with pytest.raises(RestoreError):
            m.add(FileEntry(path="t.txt", size=1, mtime_ns=0, app="txt",
                            category="dynamic_uncompressed"))

    def test_iteration_sorted(self):
        assert [e.path for e in self.make()] == ["a/b.doc", "t.txt"]

    def test_totals_and_references(self):
        m = self.make()
        assert m.total_bytes() == 205
        assert m.referenced_containers() == {1, 3}
        assert m.referenced_objects() == {cref(2, container=False).object_key}

    def test_bad_format_rejected(self):
        with pytest.raises(RestoreError):
            Manifest.from_json('{"format": 99, "session": 1, '
                               '"scheme": "x", "created": 0, "files": []}')

    def test_get_missing(self):
        assert self.make().get("nope") is None


class TestNaming:
    def test_container_key(self):
        assert naming.container_key(5) == "containers/0000000005"

    def test_chunk_key(self):
        assert naming.chunk_key(b"\xab\xcd") == "chunks/abcd"

    def test_file_key_deterministic_and_safe(self):
        k1 = naming.file_key(3, "weird/../path with spaces")
        k2 = naming.file_key(3, "weird/../path with spaces")
        assert k1 == k2
        assert k1.startswith("files/000003/")
        assert "/../" not in k1[6:]

    def test_manifest_key(self):
        assert naming.manifest_key(12) == "manifests/session-000012.json"

    def test_index_key_sanitised(self):
        assert naming.index_key("my app/2") == "index/my_app_2.idx"
