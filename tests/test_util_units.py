"""Unit tests for repro.util.units."""

import pytest

from repro.util.units import (
    GB,
    GIB,
    KIB,
    MIB,
    format_bytes,
    format_rate,
    format_seconds,
    parse_size,
)


class TestParseSize:
    def test_plain_int_passthrough(self):
        assert parse_size(4096) == 4096

    def test_float_rounds(self):
        assert parse_size(10.6) == 11

    def test_kb_is_binary(self):
        assert parse_size("8KB") == 8 * KIB

    def test_mib(self):
        assert parse_size("1MiB") == MIB

    def test_fractional(self):
        assert parse_size("1.5k") == 1536

    def test_bare_number_string(self):
        assert parse_size("123") == 123

    def test_whitespace_tolerated(self):
        assert parse_size("  2 MB ") == 2 * MIB

    def test_bad_suffix_raises(self):
        with pytest.raises(ValueError):
            parse_size("5 parsecs")

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            parse_size("not a size")


class TestFormatting:
    def test_format_bytes_small(self):
        assert format_bytes(512) == "512B"

    def test_format_bytes_binary(self):
        assert format_bytes(8 * KIB) == "8.0KiB"

    def test_format_bytes_decimal(self):
        assert format_bytes(GB, decimal=True) == "1.0GB"

    def test_format_bytes_large(self):
        assert format_bytes(3 * GIB) == "3.0GiB"

    def test_format_rate(self):
        assert format_rate(500_000) == "500.0KB/s"

    def test_format_seconds_ms(self):
        assert format_seconds(0.0123) == "12.3ms"

    def test_format_seconds_s(self):
        assert format_seconds(5.25) == "5.2s"

    def test_format_seconds_minutes(self):
        assert format_seconds(90) == "1m30s"

    def test_format_seconds_hours(self):
        assert format_seconds(7265) == "2h1m"

    def test_format_seconds_negative(self):
        assert format_seconds(-90) == "-1m30s"
