"""Tests for the chunking substrate: WFC, SC, CDC and shared invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chunking import (
    Chunk,
    RabinCDC,
    StaticChunker,
    WholeFileChunker,
    get_chunker,
)
from repro.chunking.base import available_chunkers
from repro.chunking.cdc import default_mask_bits
from repro.errors import ChunkingError
from repro.util.units import KIB


def assert_partition(chunker, data: bytes) -> list:
    """Assert the chunker invariants and return the chunks."""
    chunks = chunker.chunk(data)
    if not data:
        assert chunks == []
        return chunks
    assert chunks[0].offset == 0
    for a, b in zip(chunks, chunks[1:]):
        assert a.end == b.offset
    assert chunks[-1].end == len(data)
    assert b"".join(c.data for c in chunks) == data
    return chunks


class TestChunkRecord:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ChunkingError):
            Chunk(offset=0, length=5, data=b"abc")

    def test_end(self):
        assert Chunk(offset=10, length=3, data=b"abc").end == 13


class TestWholeFileChunker:
    def test_single_chunk(self):
        chunks = assert_partition(WholeFileChunker(), b"some file content")
        assert len(chunks) == 1

    def test_empty_file(self):
        assert_partition(WholeFileChunker(), b"")

    def test_average_is_infinite(self):
        assert WholeFileChunker().average_chunk_size() == float("inf")


class TestStaticChunker:
    def test_exact_multiple(self):
        chunks = assert_partition(StaticChunker(chunk_size=4), b"abcdefgh")
        assert [c.length for c in chunks] == [4, 4]

    def test_tail_chunk(self):
        chunks = assert_partition(StaticChunker(chunk_size=4), b"abcdefghi")
        assert [c.length for c in chunks] == [4, 4, 1]

    def test_file_smaller_than_chunk(self):
        chunks = assert_partition(StaticChunker(chunk_size=1024), b"tiny")
        assert len(chunks) == 1

    def test_default_is_8kib(self):
        assert StaticChunker().chunk_size == 8 * KIB

    def test_invalid_size(self):
        with pytest.raises(ChunkingError):
            StaticChunker(chunk_size=0)

    def test_boundary_shift_on_insert(self, random_bytes):
        # The SC weakness the paper exploits CDC for: one inserted byte
        # invalidates every later chunk.
        data = random_bytes[:64 * 1024]
        mutated = data[:100] + b"!" + data[100:]
        sc = StaticChunker(chunk_size=4 * KIB)
        before = {c.data for c in sc.chunk(data)}
        after = {c.data for c in sc.chunk(mutated)}
        assert len(before & after) <= 1

    @given(st.binary(max_size=5000), st.integers(1, 900))
    @settings(max_examples=40)
    def test_property_partition(self, data, size):
        assert_partition(StaticChunker(chunk_size=size), data)


class TestRabinCDC:
    def test_parameter_validation(self):
        with pytest.raises(ChunkingError):
            RabinCDC(min_size=0)
        with pytest.raises(ChunkingError):
            RabinCDC(min_size=100, avg_size=50, max_size=200)
        with pytest.raises(ChunkingError):
            RabinCDC(avg_size=300, min_size=200, max_size=250)

    def test_default_mask_bits(self):
        # 8 KiB avg / 2 KiB min -> round(log2(6144)) = 13.
        assert default_mask_bits(8 * KIB, 2 * KIB) == 13

    def test_partition_invariants(self, random_bytes):
        assert_partition(RabinCDC(), random_bytes)

    def test_chunk_size_bounds(self, random_bytes):
        cdc = RabinCDC()
        chunks = cdc.chunk(random_bytes)
        for c in chunks[:-1]:
            assert cdc.min_size <= c.length <= cdc.max_size
        assert chunks[-1].length <= cdc.max_size

    def test_mean_chunk_size_near_expected(self, rng):
        data = rng.integers(0, 256, size=2 * 1024 * 1024,
                            dtype=np.uint8).tobytes()
        cdc = RabinCDC()
        chunks = cdc.chunk(data)
        mean = len(data) / len(chunks)
        expected = cdc.expected_chunk_size()
        assert 0.5 * expected < mean < 1.6 * expected

    def test_numpy_matches_python_oracle(self, random_bytes):
        data = random_bytes[:96 * 1024]
        fast = RabinCDC(use_numpy=True)
        slow = RabinCDC(use_numpy=False)
        assert fast.cut_points(data) == slow.cut_points(data)

    def test_content_defined_boundaries_survive_insert(self, random_bytes):
        data = random_bytes[:128 * 1024]
        mutated = data[: 40 * 1024] + b"INSERTED" * 4 + data[40 * 1024:]
        cdc = RabinCDC()
        before = {c.data for c in cdc.chunk(data)}
        after = {c.data for c in cdc.chunk(mutated)}
        # Most chunks survive (only those straddling the edit change).
        assert len(before & after) >= 0.6 * len(before)

    def test_zero_runs_forced_cuts(self):
        # All-zero data never matches the magic (fp == 0), so CDC emits
        # forced max-size cuts — Observation 3's failure mode.
        data = bytes(200 * 1024)
        cdc = RabinCDC()
        chunks = cdc.chunk(data)
        assert all(c.length == cdc.max_size for c in chunks[:-1])

    def test_small_file_single_chunk(self):
        chunks = RabinCDC().chunk(b"below minimum size")
        assert len(chunks) == 1

    def test_empty(self):
        assert RabinCDC().chunk(b"") == []

    def test_boundaries_deterministic(self, random_bytes):
        cdc = RabinCDC()
        assert cdc.cut_points(random_bytes) == cdc.cut_points(random_bytes)

    @given(st.binary(max_size=30_000))
    @settings(max_examples=25, deadline=None)
    def test_property_partition(self, data):
        cdc = RabinCDC(avg_size=1024, min_size=256, max_size=4096, window=16)
        assert_partition(cdc, data)
        for c in cdc.chunk(data)[:-1]:
            assert 256 <= c.length <= 4096


class TestRegistry:
    def test_names(self):
        assert set(available_chunkers()) >= {"wfc", "sc", "cdc"}

    def test_get_chunker_defaults(self):
        assert isinstance(get_chunker("cdc"), RabinCDC)
        assert get_chunker("sc").chunk_size == 8 * KIB

    def test_unknown(self):
        with pytest.raises(ChunkingError):
            get_chunker("rolling-stones")
