"""Tests for the chunking substrate: WFC, SC, the CDC family and shared
invariants, including the vectorized-vs-reference differential oracles."""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chunking import (
    CDC_FAMILY,
    Chunk,
    ContentDefinedChunker,
    FastCDC,
    GearCDC,
    RabinCDC,
    SeqCDC,
    StaticChunker,
    WholeFileChunker,
    get_chunker,
)
from repro.chunking.base import available_chunkers
from repro.chunking.cdc import default_mask_bits
from repro.chunking.gear import GEAR_WINDOW, gear_table, gear_window_hashes
from repro.errors import ChunkingError
from repro.util.units import KIB


def assert_partition(chunker, data: bytes) -> list:
    """Assert the chunker invariants and return the chunks."""
    chunks = chunker.chunk(data)
    if not data:
        assert chunks == []
        return chunks
    assert chunks[0].offset == 0
    for a, b in zip(chunks, chunks[1:]):
        assert a.end == b.offset
    assert chunks[-1].end == len(data)
    assert b"".join(c.data for c in chunks) == data
    return chunks


class TestChunkRecord:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ChunkingError):
            Chunk(offset=0, length=5, data=b"abc")

    def test_end(self):
        assert Chunk(offset=10, length=3, data=b"abc").end == 13


class TestWholeFileChunker:
    def test_single_chunk(self):
        chunks = assert_partition(WholeFileChunker(), b"some file content")
        assert len(chunks) == 1

    def test_empty_file(self):
        assert_partition(WholeFileChunker(), b"")

    def test_average_is_infinite(self):
        assert WholeFileChunker().average_chunk_size() == float("inf")


class TestStaticChunker:
    def test_exact_multiple(self):
        chunks = assert_partition(StaticChunker(chunk_size=4), b"abcdefgh")
        assert [c.length for c in chunks] == [4, 4]

    def test_tail_chunk(self):
        chunks = assert_partition(StaticChunker(chunk_size=4), b"abcdefghi")
        assert [c.length for c in chunks] == [4, 4, 1]

    def test_file_smaller_than_chunk(self):
        chunks = assert_partition(StaticChunker(chunk_size=1024), b"tiny")
        assert len(chunks) == 1

    def test_default_is_8kib(self):
        assert StaticChunker().chunk_size == 8 * KIB

    def test_invalid_size(self):
        with pytest.raises(ChunkingError):
            StaticChunker(chunk_size=0)

    def test_boundary_shift_on_insert(self, random_bytes):
        # The SC weakness the paper exploits CDC for: one inserted byte
        # invalidates every later chunk.
        data = random_bytes[:64 * 1024]
        mutated = data[:100] + b"!" + data[100:]
        sc = StaticChunker(chunk_size=4 * KIB)
        before = {c.data for c in sc.chunk(data)}
        after = {c.data for c in sc.chunk(mutated)}
        assert len(before & after) <= 1

    @given(st.binary(max_size=5000), st.integers(1, 900))
    @settings(max_examples=40)
    def test_property_partition(self, data, size):
        assert_partition(StaticChunker(chunk_size=size), data)


class TestRabinCDC:
    def test_parameter_validation(self):
        with pytest.raises(ChunkingError):
            RabinCDC(min_size=0)
        with pytest.raises(ChunkingError):
            RabinCDC(min_size=100, avg_size=50, max_size=200)
        with pytest.raises(ChunkingError):
            RabinCDC(avg_size=300, min_size=200, max_size=250)

    def test_default_mask_bits(self):
        # 8 KiB avg / 2 KiB min -> round(log2(6144)) = 13.
        assert default_mask_bits(8 * KIB, 2 * KIB) == 13

    def test_partition_invariants(self, random_bytes):
        assert_partition(RabinCDC(), random_bytes)

    def test_chunk_size_bounds(self, random_bytes):
        cdc = RabinCDC()
        chunks = cdc.chunk(random_bytes)
        for c in chunks[:-1]:
            assert cdc.min_size <= c.length <= cdc.max_size
        assert chunks[-1].length <= cdc.max_size

    def test_mean_chunk_size_near_expected(self, rng):
        data = rng.integers(0, 256, size=2 * 1024 * 1024,
                            dtype=np.uint8).tobytes()
        cdc = RabinCDC()
        chunks = cdc.chunk(data)
        mean = len(data) / len(chunks)
        expected = cdc.expected_chunk_size()
        assert 0.5 * expected < mean < 1.6 * expected

    def test_numpy_matches_python_oracle(self, random_bytes):
        data = random_bytes[:96 * 1024]
        fast = RabinCDC(use_numpy=True)
        slow = RabinCDC(use_numpy=False)
        assert fast.cut_points(data) == slow.cut_points(data)

    def test_content_defined_boundaries_survive_insert(self, random_bytes):
        data = random_bytes[:128 * 1024]
        mutated = data[: 40 * 1024] + b"INSERTED" * 4 + data[40 * 1024:]
        cdc = RabinCDC()
        before = {c.data for c in cdc.chunk(data)}
        after = {c.data for c in cdc.chunk(mutated)}
        # Most chunks survive (only those straddling the edit change).
        assert len(before & after) >= 0.6 * len(before)

    def test_zero_runs_forced_cuts(self):
        # All-zero data never matches the magic (fp == 0), so CDC emits
        # forced max-size cuts — Observation 3's failure mode.
        data = bytes(200 * 1024)
        cdc = RabinCDC()
        chunks = cdc.chunk(data)
        assert all(c.length == cdc.max_size for c in chunks[:-1])

    def test_small_file_single_chunk(self):
        chunks = RabinCDC().chunk(b"below minimum size")
        assert len(chunks) == 1

    def test_empty(self):
        assert RabinCDC().chunk(b"") == []

    def test_boundaries_deterministic(self, random_bytes):
        cdc = RabinCDC()
        assert cdc.cut_points(random_bytes) == cdc.cut_points(random_bytes)

    @given(st.binary(max_size=30_000))
    @settings(max_examples=25, deadline=None)
    def test_property_partition(self, data):
        cdc = RabinCDC(avg_size=1024, min_size=256, max_size=4096, window=16)
        assert_partition(cdc, data)
        for c in cdc.chunk(data)[:-1]:
            assert 256 <= c.length <= 4096


class TestRegistry:
    def test_names(self):
        assert set(available_chunkers()) >= {
            "wfc", "sc", "cdc", "gear", "fastcdc", "seqcdc"}
        assert set(CDC_FAMILY) <= set(available_chunkers())

    def test_get_chunker_defaults(self):
        assert isinstance(get_chunker("cdc"), RabinCDC)
        assert get_chunker("sc").chunk_size == 8 * KIB
        assert isinstance(get_chunker("gear"), GearCDC)
        assert isinstance(get_chunker("fastcdc"), FastCDC)
        assert isinstance(get_chunker("seqcdc"), SeqCDC)

    def test_cdc_family_members_share_geometry(self):
        for name in CDC_FAMILY:
            chunker = get_chunker(name)
            assert isinstance(chunker, ContentDefinedChunker)
            assert (chunker.min_size, chunker.max_size) == (2048, 16384)

    def test_unknown(self):
        with pytest.raises(ChunkingError):
            get_chunker("rolling-stones")


# ---------------------------------------------------------------------------
# The fast-chunker family: Gear, FastCDC, SeqCDC.

def _fast_classes():
    return [GearCDC, FastCDC, SeqCDC]


def _adversarial_cases(rng):
    """The differential-oracle input set from the issue: random buffers
    plus the inputs most likely to expose scan/warm-up disagreements."""
    return {
        "random": rng.integers(0, 256, 120_000,
                               dtype=np.uint8).tobytes(),
        "all-zero": bytes(80_000),
        "repeated-byte": b"\xc7" * 80_000,
        "ascending-cycle": bytes(range(256)) * 300,
        "shorter-than-window": rng.integers(0, 256, 5,
                                            dtype=np.uint8).tobytes(),
        "window-minus-one": rng.integers(0, 256, GEAR_WINDOW - 1,
                                         dtype=np.uint8).tobytes(),
        "exactly-min": rng.integers(0, 256, 2048,
                                    dtype=np.uint8).tobytes(),
        "exactly-max": rng.integers(0, 256, 16384,
                                    dtype=np.uint8).tobytes(),
        "empty": b"",
    }


class TestGearHash:
    def test_gear_table_deterministic(self):
        table = gear_table()
        assert table.shape == (256,) and table.dtype == np.uint32
        assert np.array_equal(table, gear_table())

    def test_window_hashes_match_streaming_recurrence(self, rng):
        data = rng.integers(0, 256, 4096, dtype=np.uint8).tobytes()
        gear = [int(v) for v in gear_table()]
        h, expected = 0, []
        for pos, byte in enumerate(data):
            h = ((h << 1) + gear[byte]) & 0xFFFFFFFF
            if pos + 1 >= GEAR_WINDOW:
                expected.append(h)
        assert gear_window_hashes(data).tolist() == expected

    def test_window_hashes_short_input(self):
        assert gear_window_hashes(b"x" * (GEAR_WINDOW - 1)).size == 0


class TestGearCDC:
    def test_parameter_validation(self):
        with pytest.raises(ChunkingError):
            GearCDC(min_size=0)
        with pytest.raises(ChunkingError):
            GearCDC(min_size=100, avg_size=50, max_size=200)
        with pytest.raises(ChunkingError):
            GearCDC(mask_bits=0)
        with pytest.raises(ChunkingError):
            GearCDC(mask_bits=32)

    def test_mask_selects_high_bits(self):
        gear = GearCDC(mask_bits=13)
        assert gear.mask == 0x1FFF << 19
        assert gear.magic == gear.mask

    def test_mean_chunk_size_near_expected(self, rng):
        data = rng.integers(0, 256, size=2 * 1024 * 1024,
                            dtype=np.uint8).tobytes()
        gear = GearCDC()
        chunks = gear.chunk(data)
        mean = len(data) / len(chunks)
        expected = gear.expected_chunk_size()
        assert 0.5 * expected < mean < 1.6 * expected

    def test_low_entropy_forced_cuts(self):
        # No gear candidate fires on constant data (magic is all-ones
        # under the mask), so the family degrades to forced max-size
        # cuts exactly like Rabin — Observation 3's failure mode.
        gear = GearCDC()
        for data in (bytes(100_000), b"\x5a" * 100_000):
            chunks = gear.chunk(data)
            assert all(c.length == gear.max_size for c in chunks[:-1])

    def test_boundaries_survive_insert(self, random_bytes):
        data = random_bytes[:128 * 1024]
        mutated = data[: 40 * 1024] + b"INSERTED" * 4 + data[40 * 1024:]
        gear = GearCDC()
        before = {c.data for c in gear.chunk(data)}
        after = {c.data for c in gear.chunk(mutated)}
        assert len(before & after) >= 0.6 * len(before)


class TestFastCDC:
    def test_parameter_validation(self):
        with pytest.raises(ChunkingError):
            FastCDC(normal_size=1024)          # below min
        with pytest.raises(ChunkingError):
            FastCDC(normal_size=32 * KIB)      # above max
        with pytest.raises(ChunkingError):
            FastCDC(norm_level=-1)

    def test_masks_nest(self, random_bytes):
        fast = FastCDC()
        assert fast.small_bits > fast.large_bits
        assert fast.mask_small & fast.mask_large == fast.mask_large
        small, large = fast._candidate_pair(random_bytes)
        assert set(small.tolist()) <= set(large.tolist())

    def test_normalization_tightens_distribution(self, rng):
        """The two-mask walk trades tail chunks for centre chunks: far
        fewer forced maximum-size cuts than the single-mask gear scan,
        and a mean still near the 8 KiB target."""
        data = rng.integers(0, 256, size=4 * 1024 * 1024,
                            dtype=np.uint8).tobytes()
        gear_sizes = np.diff([0] + GearCDC().cut_points(data))
        fast = FastCDC()
        fast_sizes = np.diff([0] + fast.cut_points(data))
        forced_gear = np.mean(gear_sizes == 16384)
        forced_fast = np.mean(fast_sizes == 16384)
        assert forced_fast < 0.5 * forced_gear
        assert 0.6 * fast.avg_size < fast_sizes.mean() < 1.6 * fast.avg_size

    def test_low_entropy_forced_cuts(self):
        fast = FastCDC()
        chunks = fast.chunk(bytes(100_000))
        assert all(c.length == fast.max_size for c in chunks[:-1])

    def test_boundaries_survive_insert(self, random_bytes):
        data = random_bytes[:128 * 1024]
        mutated = data[: 40 * 1024] + b"INSERTED" * 4 + data[40 * 1024:]
        fast = FastCDC()
        before = {c.data for c in fast.chunk(data)}
        after = {c.data for c in fast.chunk(mutated)}
        assert len(before & after) >= 0.6 * len(before)


class TestSeqCDC:
    def test_parameter_validation(self):
        with pytest.raises(ChunkingError):
            SeqCDC(seq_length=1)
        with pytest.raises(ChunkingError):
            SeqCDC(seq_length=300)
        with pytest.raises(ChunkingError):
            SeqCDC(min_size=0)

    def test_cuts_after_ascending_runs(self):
        # One long ascending ramp placed past min_size must attract the
        # first cut to its end (run end = earliest candidate).
        seq = SeqCDC(avg_size=512, min_size=128, max_size=4096,
                     seq_length=5)
        ramp_at = 200
        data = bytearray(b"\x80\x00" * 3000)   # no ascents anywhere else
        data[ramp_at: ramp_at + 5] = bytes(range(10, 15))
        data[ramp_at - 1] = 0xFF               # pin the run start
        cuts = seq.cut_points(bytes(data))
        assert cuts[0] == ramp_at + 5

    def test_low_entropy_forced_cuts(self):
        seq = SeqCDC()
        chunks = seq.chunk(b"\x11" * 100_000)
        assert all(c.length == seq.max_size for c in chunks[:-1])

    def test_mean_chunk_size_near_expected(self, rng):
        data = rng.integers(0, 256, size=2 * 1024 * 1024,
                            dtype=np.uint8).tobytes()
        seq = SeqCDC()
        mean = len(data) / len(seq.chunk(data))
        assert 0.5 * seq.avg_size < mean < 1.6 * seq.avg_size


class TestDifferentialOracles:
    """Vectorized slab scans must be byte-identical to the pure-Python
    reference implementations — on random buffers and on every
    adversarial input class from the issue."""

    @pytest.mark.parametrize("cls", _fast_classes(),
                             ids=lambda c: c.name)
    def test_cut_points_identical(self, cls, rng):
        for label, data in _adversarial_cases(rng).items():
            fast = cls(use_numpy=True)
            slow = cls(use_numpy=False)
            assert fast.cut_points(data) == slow.cut_points(data), label

    @pytest.mark.parametrize("cls", _fast_classes(),
                             ids=lambda c: c.name)
    def test_candidates_identical(self, cls, rng):
        for label, data in _adversarial_cases(rng).items():
            chunker = cls()
            assert np.array_equal(
                chunker._candidates_numpy(data),
                chunker._candidates_python(data)), label

    def test_fastcdc_candidate_pair_identical(self, rng):
        fast = FastCDC()
        for label, data in _adversarial_cases(rng).items():
            ns, nl = fast._candidate_pair_numpy(data)
            ps, pl = fast._candidate_pair_python(data)
            assert np.array_equal(ns, ps) and np.array_equal(nl, pl), label


def _versioned_documents(docs=4, sessions=4, doc_kib=64, seed=2011):
    """Flat list of document versions under light editing (the delta
    bench's churn pattern, miniaturised for a tier-1 test)."""
    r = np.random.default_rng(seed)

    def edit(data):
        arr = bytearray(data)
        for _ in range(int(r.integers(2, 7))):
            pos = int(r.integers(0, max(1, len(arr) - 40)))
            arr[pos:pos + 24] = r.integers(0, 256, 24,
                                           dtype=np.uint8).tobytes()
        pos = int(r.integers(0, len(arr) + 1))
        patch = r.integers(0, 256, int(r.integers(16, 80)),
                           dtype=np.uint8).tobytes()
        return bytes(arr[:pos]) + patch + bytes(arr[pos:])

    current = [r.integers(0, 256, doc_kib * 1024, dtype=np.uint8).tobytes()
               for _ in range(docs)]
    versions = []
    for _ in range(sessions):
        versions.extend(current)
        current = [edit(doc) for doc in current]
    return versions


def _dedup_ratio(chunker, buffers) -> float:
    seen = set()
    total = unique = 0
    for data in buffers:
        for chunk in chunker.chunk(data):
            total += chunk.length
            digest = hashlib.sha1(chunk.data).digest()
            if digest not in seen:
                seen.add(digest)
                unique += chunk.length
    return total / unique


class TestDedupRatioParity:
    """The speed family must not silently wreck the metric the paper
    optimizes: on the versioned-document workload each fast engine's
    dedup ratio stays within 5% of the Rabin baseline."""

    def test_fast_family_within_5pct_of_rabin(self):
        versions = _versioned_documents()
        rabin = _dedup_ratio(RabinCDC(), versions)
        for cls in (FastCDC, GearCDC):
            ratio = _dedup_ratio(cls(), versions)
            assert ratio >= 0.95 * rabin, (cls.name, ratio, rabin)
