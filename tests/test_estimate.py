"""Tests for the sampling-based dedup estimator."""

import numpy as np
import pytest

from repro.analysis import estimate_directory
from repro.cloud import InMemoryBackend
from repro.core import BackupClient, DirectorySource, aa_dedupe_config
from repro.util.units import KIB


@pytest.fixture()
def tree(tmp_path, rng):
    root = tmp_path / "data"
    (root / "docs").mkdir(parents=True)
    (root / "media").mkdir()
    doc = rng.integers(0, 256, 50_000, dtype=np.uint8).tobytes()
    (root / "docs" / "a.doc").write_bytes(doc)
    (root / "docs" / "a_copy.doc").write_bytes(doc)       # full duplicate
    (root / "docs" / "b.doc").write_bytes(
        doc[:25_000] + rng.integers(0, 256, 25_000,
                                    dtype=np.uint8).tobytes())
    (root / "media" / "x.mp3").write_bytes(
        rng.integers(0, 256, 40_000, dtype=np.uint8).tobytes())
    (root / "tiny.txt").write_bytes(b"hello")
    return root


class TestEstimateDirectory:
    def test_counts(self, tree):
        est = estimate_directory(tree)
        assert est.files == 5
        assert est.tiny_files == 1
        assert est.bytes_scanned == 50_000 * 2 + 50_000 + 40_000 + 5

    def test_detects_duplicate_and_overlap(self, tree):
        est = estimate_directory(tree)
        # The full copy (50k) and ~half of b.doc dedup away.
        assert est.bytes_unique < est.bytes_scanned - 50_000
        assert est.dedup_ratio > 1.3

    def test_matches_actual_backup(self, tree):
        est = estimate_directory(tree)
        client = BackupClient(InMemoryBackend(),
                              aa_dedupe_config(container_size=32 * KIB))
        stats = client.backup(DirectorySource(tree))
        assert est.bytes_unique == pytest.approx(stats.bytes_unique,
                                                 rel=0.05)

    def test_by_category_breakdown(self, tree):
        est = estimate_directory(tree)
        assert "dynamic_uncompressed" in est.by_category
        assert "compressed" in est.by_category
        scanned = sum(s for s, _u in est.by_category.values())
        assert scanned == est.bytes_scanned

    def test_sampling_cap(self, tree, rng):
        big = rng.integers(0, 256, 300_000, dtype=np.uint8).tobytes()
        (tree / "media" / "big.mp3").write_bytes(big)
        capped = estimate_directory(tree, max_file_bytes=100_000)
        full = estimate_directory(tree)
        # Extrapolation keeps the estimates close for media (no sub-file
        # redundancy either way).
        assert capped.bytes_unique == pytest.approx(full.bytes_unique,
                                                    rel=0.05)

    def test_derived_predictions(self, tree):
        est = estimate_directory(tree)
        assert est.upload_seconds() > 0
        assert est.monthly_cost() > 0
        # Smaller unique volume => cheaper and faster, trivially.
        assert est.upload_seconds() < est.bytes_scanned / 100  # sanity

    def test_empty_directory(self, tmp_path):
        est = estimate_directory(tmp_path)
        assert est.files == 0
        assert est.dedup_ratio == 1.0
